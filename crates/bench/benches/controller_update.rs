//! Criterion micro-benchmark of the supercharger engine's update path
//! (the §4 controller micro-benchmark, statistically rigorous form):
//! Listing 1 per UPDATE message, for the common cases that dominate a
//! feed — new-prefix announcements, second-candidate announcements that
//! create/join backup-groups, and withdrawals.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sc_bgp::attrs::{AsPath, RouteAttrs};
use sc_bgp::msg::UpdateMsg;
use sc_net::{Ipv4Prefix, MacAddr};
use std::net::Ipv4Addr;
use supercharger::engine::PeerSpec;
use supercharger::{Engine, EngineConfig};

const R2: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const R3: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

fn engine() -> Engine {
    Engine::new(EngineConfig::new(
        "10.0.200.0/24".parse().unwrap(),
        vec![
            PeerSpec {
                id: R2,
                mac: MacAddr([2, 0, 0, 0, 0, 2]),
                switch_port: 2,
                local_pref: 200,
                router_id: R2,
            },
            PeerSpec {
                id: R3,
                mac: MacAddr([2, 0, 0, 0, 0, 3]),
                switch_port: 3,
                local_pref: 100,
                router_id: R3,
            },
        ],
    ))
}

fn batch_update(peer: Ipv4Addr, base: u32, count: u32) -> UpdateMsg {
    let attrs = RouteAttrs::ebgp(AsPath::sequence(vec![65002, 174, 3356]), peer).shared();
    let nlri: Vec<Ipv4Prefix> = (0..count)
        .map(|i| Ipv4Prefix::new(Ipv4Addr::from(0x0100_0000 + ((base + i) << 8)), 24))
        .collect();
    UpdateMsg::announce(attrs, nlri)
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");

    // Fresh announcements: 300 prefixes per UPDATE (feed-style).
    g.throughput(Throughput::Elements(300));
    g.bench_function("announce_300_new_prefixes", |b| {
        let mut base = 0u32;
        b.iter_batched(
            || {
                let e = engine();
                base += 300;
                (e, batch_update(R2, base, 300))
            },
            |(mut e, upd)| {
                let actions = e.process_update(R2, &upd);
                std::hint::black_box(actions.len())
            },
            BatchSize::SmallInput,
        )
    });

    // The group-forming case: second peer announces the same prefixes.
    g.bench_function("announce_300_backup_candidates", |b| {
        b.iter_batched(
            || {
                let mut e = engine();
                e.process_update(R2, &batch_update(R2, 0, 300));
                (e, batch_update(R3, 0, 300))
            },
            |(mut e, upd)| {
                let actions = e.process_update(R3, &upd);
                std::hint::black_box(actions.len())
            },
            BatchSize::SmallInput,
        )
    });

    // Withdrawal of protected prefixes (regroup + re-announce).
    g.bench_function("withdraw_300_protected", |b| {
        b.iter_batched(
            || {
                let mut e = engine();
                e.process_update(R2, &batch_update(R2, 0, 300));
                e.process_update(R3, &batch_update(R3, 0, 300));
                let nlri: Vec<Ipv4Prefix> = (0..300u32)
                    .map(|i| Ipv4Prefix::new(Ipv4Addr::from(0x0100_0000 + (i << 8)), 24))
                    .collect();
                (e, UpdateMsg::withdraw(nlri))
            },
            |(mut e, upd)| {
                let actions = e.process_update(R2, &upd);
                std::hint::black_box(actions.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();

    // Listing 2: the failover itself, on a 10k-prefix table.
    let mut g = c.benchmark_group("failover");
    g.bench_function("failover_plan_10k_prefixes", |b| {
        b.iter_batched(
            || {
                let mut e = engine();
                for chunk in 0..34u32 {
                    e.process_update(R2, &batch_update(R2, chunk * 300, 300));
                    e.process_update(R3, &batch_update(R3, chunk * 300, 300));
                }
                e
            },
            |mut e| {
                let plan = e.failover_plan(R2);
                std::hint::black_box(plan.rewrites.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
