//! Criterion micro-benchmark of the data-plane hot paths: longest-prefix
//! match on a full-table FIB, the switch flow-table lookup, the in-place
//! VMAC rewrite, and the **end-to-end forwarding world** (source →
//! full-FIB router → sink, the same world `sc-bench perf` measures) —
//! the per-packet costs of the supercharged forwarding pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sc_bench::fwd::{build_forwarding_world, FwdParams};
use sc_net::wire::{udp_frame, EthernetRepr, UdpEndpoints};
use sc_net::{MacAddr, PrefixTrie, SimDuration};
use sc_openflow::{Action, FlowEntry, FlowKey, FlowMatch, FlowTable};
use sc_routegen::prefix_universe;
use std::net::Ipv4Addr;

fn full_fib(n: u32) -> (PrefixTrie<u32>, Vec<Ipv4Addr>) {
    let universe = prefix_universe(n, 1);
    let mut t = PrefixTrie::new();
    for (i, p) in universe.iter().enumerate() {
        t.insert(*p, i as u32);
    }
    let probes: Vec<Ipv4Addr> = universe
        .iter()
        .step_by(97)
        .map(|p| p.sample_host())
        .collect();
    (t, probes)
}

fn probe_frame() -> Vec<u8> {
    udp_frame(
        UdpEndpoints {
            src_mac: MacAddr([2, 0, 0, 0, 0, 1]),
            dst_mac: MacAddr::virtual_mac(0),
            src_ip: Ipv4Addr::new(10, 0, 0, 100),
            dst_ip: Ipv4Addr::new(1, 2, 3, 4),
            src_port: 49152,
            dst_port: 7,
        },
        64,
        &[0x5c; 22],
    )
}

fn bench_dataplane(c: &mut Criterion) {
    let mut g = c.benchmark_group("lpm");
    for n in [10_000u32, 100_000, 500_000] {
        let (fib, probes) = full_fib(n);
        g.throughput(Throughput::Elements(probes.len() as u64));
        g.bench_function(format!("lookup_{n}_prefixes"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for ip in &probes {
                    if let Some((_, v)) = fib.lookup(*ip) {
                        acc += *v as u64;
                    }
                }
                std::hint::black_box(acc)
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("switch");
    // A realistic supercharged table: 90 VMAC rules + ARP punt.
    let mut table = FlowTable::new();
    for i in 0..90u32 {
        table.add(FlowEntry {
            priority: 100,
            cookie: 0x5c,
            matcher: FlowMatch::dst_mac(MacAddr::virtual_mac(i)),
            actions: vec![
                Action::SetDstMac(MacAddr([2, 0, 0, 0, 0, 2])),
                Action::Output(2),
            ],
            stats: Default::default(),
        });
    }
    let frame = probe_frame();
    g.bench_function("flow_lookup_90_rules", |b| {
        b.iter(|| {
            let key = FlowKey::extract(4, std::hint::black_box(&frame)).unwrap();
            std::hint::black_box(table.lookup(&key, frame.len()).is_some())
        })
    });
    g.bench_function("vmac_rewrite_in_place", |b| {
        let mut f = frame.clone();
        b.iter(|| {
            EthernetRepr::rewrite_dst(std::hint::black_box(&mut f), MacAddr([2, 0, 0, 0, 0, 3]))
                .unwrap();
            std::hint::black_box(f[0])
        })
    });
    g.finish();
}

/// End-to-end forwarding: one shared world in steady state; every
/// iteration advances it 5 ms of virtual time (probe templates →
/// router flow cache → sink CAM, ≈2 kernel events per packet).
fn bench_e2e_forwarding(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e");
    let p = FwdParams {
        prefixes: 1_000,
        flows: 20,
        rate_pps: 14_000,
        // Far beyond what the iterations consume: the source must keep
        // transmitting for every timed window.
        window: SimDuration::from_secs(3600),
        seed: 42,
        scheduler: sc_sim::SchedulerKind::default(),
    };
    let mut fw = build_forwarding_world(p);
    // Reach steady state (templates warm, flow cache populated).
    fw.world.run_for(SimDuration::from_millis(50));
    let step = SimDuration::from_millis(5);
    let packets_per_iter = p.rate_pps * p.flows as u64 * step.as_nanos() / 1_000_000_000;
    g.throughput(Throughput::Elements(packets_per_iter));
    g.bench_function("forward_1k_prefixes_20_flows", |b| {
        b.iter(|| {
            fw.world.run_for(step);
            std::hint::black_box(fw.world.stats().events_processed)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dataplane, bench_e2e_forwarding);
criterion_main!(benches);
