//! Criterion micro-benchmark of the backup-group machinery (§2 of the
//! paper): group lookup/creation, VNH allocation, and ARP resolution —
//! the per-update fixed costs of the supercharger.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sc_bgp::PeerId;
use std::net::Ipv4Addr;
use supercharger::{GroupTable, VnhAllocator};

fn peer(i: u8) -> PeerId {
    Ipv4Addr::new(10, 0, 1, i)
}

fn table_with_groups(n_peers: u8) -> GroupTable {
    let mut t = GroupTable::new(VnhAllocator::new("10.0.200.0/24".parse().unwrap()));
    for a in 1..=n_peers {
        for b in 1..=n_peers {
            if a != b {
                let id = t.get_or_create(&[peer(a), peer(b)]).0.id;
                t.add_ref(id);
            }
        }
    }
    t
}

fn bench_groups(c: &mut Criterion) {
    let mut g = c.benchmark_group("groups");

    g.bench_function("get_or_create_hit_10peers", |b| {
        let mut t = table_with_groups(10);
        let key = vec![peer(3), peer(7)];
        b.iter(|| {
            let (grp, created) = t.get_or_create(std::hint::black_box(&key));
            assert!(!created);
            std::hint::black_box(grp.vnh)
        })
    });

    g.bench_function("create_90_groups", |b| {
        b.iter_batched(
            || (),
            |_| {
                let t = table_with_groups(10);
                std::hint::black_box(t.len())
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("arp_lookup_by_vnh", |b| {
        let t = table_with_groups(10);
        let vnh = Ipv4Addr::new(10, 0, 200, 45);
        b.iter(|| std::hint::black_box(t.by_vnh(std::hint::black_box(vnh)).map(|g| g.vmac)))
    });

    g.bench_function("groups_targeting_failed_peer", |b| {
        let t = table_with_groups(10);
        b.iter(|| std::hint::black_box(t.groups_targeting(peer(5)).len()))
    });

    g.finish();
}

criterion_group!(benches, bench_groups);
criterion_main!(benches);
