//! Criterion micro-benchmark of the wire formats: BGP UPDATE
//! encode/decode (the controller's per-message I/O cost), BFD control
//! packets, and OpenFlow FLOW_MODs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sc_bfd::{BfdDiag, BfdPacket, BfdState};
use sc_bgp::attrs::{AsPath, RouteAttrs};
use sc_bgp::msg::{BgpMessage, UpdateMsg};
use sc_net::{Ipv4Prefix, MacAddr};
use sc_openflow::msg::{FlowModCommand, OfMessage};
use sc_openflow::{Action, FlowMatch};
use std::net::Ipv4Addr;

fn update_300() -> BgpMessage {
    let attrs = RouteAttrs::ebgp(
        AsPath::sequence(vec![65002, 174, 3356, 15169]),
        Ipv4Addr::new(10, 0, 0, 2),
    )
    .shared();
    let nlri: Vec<Ipv4Prefix> = (0..300u32)
        .map(|i| Ipv4Prefix::new(Ipv4Addr::from(0x0100_0000 + (i << 8)), 24))
        .collect();
    BgpMessage::Update(UpdateMsg::announce(attrs, nlri))
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("bgp");
    let msg = update_300();
    let encoded = msg.encode();
    g.throughput(Throughput::Elements(300));
    g.bench_function("encode_update_300_nlri", |b| {
        b.iter(|| std::hint::black_box(msg.encode().len()))
    });
    g.bench_function("decode_update_300_nlri", |b| {
        b.iter(|| {
            let m = BgpMessage::decode(std::hint::black_box(&encoded)).unwrap();
            std::hint::black_box(matches!(m, BgpMessage::Update(_)))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("bfd");
    let pkt = BfdPacket {
        diag: BfdDiag::None,
        state: BfdState::Up,
        poll: false,
        final_bit: false,
        detect_mult: 3,
        my_discr: 1,
        your_discr: 2,
        desired_min_tx_us: 30_000,
        required_min_rx_us: 30_000,
    };
    let bytes = pkt.to_bytes();
    g.bench_function("roundtrip_control_packet", |b| {
        b.iter(|| {
            let p = BfdPacket::parse(std::hint::black_box(&bytes)).unwrap();
            std::hint::black_box(p.my_discr)
        })
    });
    g.finish();

    let mut g = c.benchmark_group("openflow");
    let fm = OfMessage::FlowMod {
        command: FlowModCommand::Modify,
        priority: 100,
        cookie: 0x5c,
        matcher: FlowMatch::dst_mac(MacAddr::virtual_mac(7)),
        actions: vec![
            Action::SetDstMac(MacAddr([2, 0, 0, 0, 0, 3])),
            Action::Output(3),
        ],
    };
    let enc = fm.encode(1);
    g.bench_function("flow_mod_roundtrip", |b| {
        b.iter(|| {
            let (xid, m) = OfMessage::decode(std::hint::black_box(&enc)).unwrap();
            std::hint::black_box((xid, matches!(m, OfMessage::FlowMod { .. })))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
