//! **Ablations** — the design-choice sweeps DESIGN.md §4 calls out,
//! beyond what the paper itself measures:
//!
//! 1. *BFD interval sweep* — how detection splits the supercharged
//!    convergence budget (detection dominates: ~3× interval).
//! 2. *Router FIB-walk-rate sensitivity* — how fast would the stock
//!    router's hardware have to be before supercharging stops paying?
//! 3. *Controller reaction-delay sweep* — the margin left for a slower
//!    (e.g. Python) controller inside the 150 ms envelope.
//! 4. *Replica determinism at scale* — N engine replicas fed a full
//!    table agree bit-for-bit (the §3 reliability argument).
//!
//! ```text
//! cargo run --release -p sc-bench --bin ablations [--prefixes N] [--flows N]
//! ```

use sc_bench::{fig5_label, Args, Table};
use sc_lab::{run_convergence_trial, LabConfig, Mode};
use sc_net::SimDuration;
use sc_router::Calibration;

fn main() {
    let args = Args::parse();
    let prefixes: u32 = args.value("--prefixes", 1_000);
    let flows: usize = args.value("--flows", 30);
    let base = LabConfig {
        prefixes,
        flows,
        seed: 42,
        ..LabConfig::default()
    };

    // ------------------------------------------------ 1. BFD interval
    let mut t = Table::new(&[
        "bfd interval",
        "detection (measured)",
        "median convergence",
        "max convergence",
    ]);
    for interval_ms in [10u64, 30, 50, 100] {
        let cfg = LabConfig {
            mode: Mode::Supercharged,
            bfd_interval: SimDuration::from_millis(interval_ms),
            ..base.clone()
        };
        let r = run_convergence_trial(cfg);
        let detect = r
            .detected_at
            .map(|d| fig5_label(d - r.fail_at))
            .unwrap_or_else(|| "-".into());
        let st = r.stats();
        t.row(vec![
            format!("{interval_ms}ms"),
            detect,
            fig5_label(st.median),
            fig5_label(st.max),
        ]);
    }
    println!("Ablation 1 — BFD interval vs supercharged convergence");
    println!("(detection <= 3x interval dominates the budget; the paper uses 30ms)");
    println!("{}", t.render());

    // --------------------------------------- 2. FIB walk-rate sweep
    let mut t = Table::new(&["per-entry cost", "stock max", "supercharged max", "speedup"]);
    for cost_us in [281u64, 100, 30, 10, 1] {
        let cal = Calibration {
            fib_entry_update: SimDuration::from_micros(cost_us),
            ..Calibration::nexus7k()
        };
        let stock = run_convergence_trial(LabConfig {
            mode: Mode::Stock,
            cal,
            ..base.clone()
        });
        let sup = run_convergence_trial(LabConfig {
            mode: Mode::Supercharged,
            cal,
            ..base.clone()
        });
        let ratio = stock.stats().max.as_secs_f64() / sup.stats().max.as_secs_f64();
        t.row(vec![
            format!("{cost_us}us"),
            fig5_label(stock.stats().max),
            fig5_label(sup.stats().max),
            format!("{ratio:.1}x"),
        ]);
    }
    println!("Ablation 2 — how fast must the router's FIB update be before");
    println!("supercharging stops paying? (paper hardware: 281us/entry; at");
    println!("{prefixes} prefixes — the gap only closes when the whole walk");
    println!("fits inside the detection+install budget)");
    println!("{}", t.render());

    // ------------------------------------ 3. controller reaction delay
    let mut t = Table::new(&["reaction delay", "max convergence", "within 150ms?"]);
    for delay_ms in [1u64, 3, 10, 30, 60] {
        let cfg = LabConfig {
            mode: Mode::Supercharged,
            reaction_delay: SimDuration::from_millis(delay_ms),
            ..base.clone()
        };
        let r = run_convergence_trial(cfg);
        let max = r.stats().max;
        t.row(vec![
            format!("{delay_ms}ms"),
            fig5_label(max),
            if max <= SimDuration::from_millis(150) {
                "yes"
            } else {
                "NO"
            }
            .into(),
        ]);
    }
    println!("Ablation 3 — controller reaction delay inside the 150ms envelope");
    println!("(detection ~90ms + install ~17ms leaves ~40ms of controller budget)");
    println!("{}", t.render());

    // ------------------------------------------ 4. replica determinism
    use sc_lab::topology::{IP_R2, IP_R3};
    use sc_routegen::{generate_feed_for, prefix_universe, FeedConfig};
    use supercharger::replication::ReplicaSet;
    let n_replicas = 5;
    let universe = prefix_universe(prefixes, 42);
    let feeds = [
        (
            IP_R2,
            generate_feed_for(&FeedConfig::new(prefixes, 42, IP_R2, 65002), &universe),
        ),
        (
            IP_R3,
            generate_feed_for(&FeedConfig::new(prefixes, 42, IP_R3, 65003), &universe),
        ),
    ];
    let engine_cfg = supercharger::EngineConfig::new(
        "10.0.200.0/24".parse().unwrap(),
        vec![
            supercharger::engine::PeerSpec {
                id: IP_R2,
                mac: sc_lab::topology::MAC_R2,
                switch_port: 2,
                local_pref: 200,
                router_id: IP_R2,
            },
            supercharger::engine::PeerSpec {
                id: IP_R3,
                mac: sc_lab::topology::MAC_R3,
                switch_port: 3,
                local_pref: 100,
                router_id: IP_R3,
            },
        ],
    );
    let mut set = ReplicaSet::new(engine_cfg, n_replicas);
    let mut steps = 0u64;
    for (peer, feed) in &feeds {
        for upd in feed {
            set.process_update(*peer, upd).expect("replicas must agree");
            steps += 1;
        }
    }
    set.failover(IP_R2).expect("replicas agree on failover");
    set.repair(IP_R2).expect("replicas agree on repair");
    println!(
        "Ablation 4 — replica determinism: {n_replicas} replicas x {steps} updates \
         + failover + repair: digests identical (state 0x{:016x})",
        set.primary().state_digest()
    );
    println!("-> the paper's SS3 no-synchronization failover is sound for this engine.");
}
