//! **§2 scaling claims** — backup-group counts and failover rewrite
//! counts as a function of the number of peers.
//!
//! The paper: *"the total number of backup-groups is n!/(n−2)!. For
//! instance, considering a router with 10 neighbors (a lot in practice),
//! the number of backup-groups is only 90"* and *"In the worst case, the
//! number of flow rewritings that has to be done is the number of peers
//! of the supercharged router, i.e. a small constant value."*
//!
//! This binary measures both directly on the engine with a worst-case
//! workload (prefixes spread over *every* (primary, backup) pair), and
//! the flow-table occupancy that results.
//!
//! ```text
//! cargo run --release -p sc-bench --bin backup_groups [--max-peers N]
//! ```

use sc_bench::{Args, Table};
use sc_bgp::attrs::{AsPath, RouteAttrs};
use sc_bgp::msg::UpdateMsg;
use sc_net::{Ipv4Prefix, MacAddr};
use std::net::Ipv4Addr;
use supercharger::engine::{EngineAction, PeerSpec};
use supercharger::{Engine, EngineConfig};

fn peer_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 1, i as u8 + 1)
}

fn build_engine(n: usize) -> Engine {
    let peers = (0..n)
        .map(|i| PeerSpec {
            id: peer_ip(i),
            mac: MacAddr([2, 0, 0, 0, 1, i as u8 + 1]),
            switch_port: i as u16 + 1,
            // Distinct preferences so rankings are deterministic.
            local_pref: 1_000 - i as u32,
            router_id: peer_ip(i),
        })
        .collect();
    Engine::new(EngineConfig::new("10.0.200.0/24".parse().unwrap(), peers))
}

fn main() {
    let args = Args::parse();
    let max_peers: usize = args.value("--max-peers", 12);
    let prefixes_per_pair: u32 = args.value("--per-pair", 10);

    let mut table = Table::new(&[
        "peers",
        "groups (measured)",
        "n(n-1) (paper)",
        "worst-case rewrites",
        "flow rules",
    ]);

    for n in 2..=max_peers {
        let mut e = build_engine(n);
        // Worst case: every ordered (primary, backup) pair carries
        // prefixes. We force each pair by announcing a block of prefixes
        // where `primary` and `backup` carry shorter AS paths than
        // everyone else (local-pref equal within the block).
        let mut prefix_block = 0u32;
        for p in 0..n {
            for b in 0..n {
                if p == b {
                    continue;
                }
                for k in 0..prefixes_per_pair {
                    let pfx = Ipv4Prefix::new(
                        Ipv4Addr::from(
                            0x0100_0000u32 + ((prefix_block * prefixes_per_pair + k) << 8),
                        ),
                        24,
                    );
                    // Announce from every peer; rank via path length:
                    // primary len 1, backup len 2, others len 3. Equal
                    // local-pref inside this block (override via attrs).
                    for i in 0..n {
                        let len = if i == p {
                            1
                        } else if i == b {
                            2
                        } else {
                            3
                        };
                        let path: Vec<u16> = (0..len).map(|h| 60000 + h as u16).collect();
                        let mut attrs = RouteAttrs::ebgp(AsPath::sequence(path), peer_ip(i));
                        attrs.local_pref = Some(500); // neutralize import policy
                        let upd = UpdateMsg::announce(attrs.shared(), vec![pfx]);
                        e.process_update(peer_ip(i), &upd);
                    }
                }
                prefix_block += 1;
            }
        }

        let groups = e.groups().len();
        let paper = n * (n - 1);
        // Count flow rules = live groups (one VMAC rule each).
        let rules = e.groups().iter().filter(|g| !g.retired).count();
        // Worst-case rewrites: fail the peer that is primary for the
        // most groups (every peer is primary for (n-1) pairs here).
        let plan = e.failover_plan(peer_ip(0));
        table.row(vec![
            n.to_string(),
            groups.to_string(),
            paper.to_string(),
            plan.rewrites.len().to_string(),
            rules.to_string(),
        ]);
        assert_eq!(groups, paper, "measured groups must equal n(n-1)");
        assert_eq!(
            plan.rewrites.len(),
            n - 1,
            "failing one peer rewrites exactly its n-1 groups"
        );
    }

    println!("Backup-group scaling (SS2 of the paper: n peers -> n(n-1) groups)");
    println!("{}", table.render());
    println!("10 peers -> 90 groups, exactly as the paper computes.");

    // Constant-rewrites demonstration: prefix count does not change the
    // failover size.
    let mut t2 = Table::new(&["prefixes", "groups", "rewrites on failure"]);
    for prefixes in [100u32, 1_000, 10_000, 100_000] {
        let mut e = build_engine(2);
        let nlri: Vec<Ipv4Prefix> = (0..prefixes)
            .map(|i| Ipv4Prefix::new(Ipv4Addr::from(0x0100_0000 + (i << 8)), 24))
            .collect();
        for i in 0..2 {
            let attrs = RouteAttrs::ebgp(AsPath::sequence(vec![65000 + i as u16]), peer_ip(i));
            for chunk in nlri.chunks(300) {
                e.process_update(
                    peer_ip(i),
                    &UpdateMsg::announce(attrs.clone().shared(), chunk.to_vec()),
                );
            }
        }
        let plan = e.failover_plan(peer_ip(0));
        t2.row(vec![
            prefixes.to_string(),
            e.groups().len().to_string(),
            plan.rewrites.len().to_string(),
        ]);
        assert_eq!(plan.rewrites.len(), 1);
    }
    println!("\nPrefix-independence of the failover (Listing 2)");
    println!("{}", t2.render());

    // Sanity: the data-plane convergence procedure emits Modify actions
    // only, never a remove+add pair (no blackhole window).
    let mut e = build_engine(3);
    let attrs_a = RouteAttrs::ebgp(AsPath::sequence(vec![1]), peer_ip(0)).shared();
    let attrs_b = RouteAttrs::ebgp(AsPath::sequence(vec![1, 2]), peer_ip(1)).shared();
    let pfx: Ipv4Prefix = "1.0.0.0/24".parse().unwrap();
    e.process_update(peer_ip(0), &UpdateMsg::announce(attrs_a, vec![pfx]));
    let actions = e.process_update(peer_ip(1), &UpdateMsg::announce(attrs_b, vec![pfx]));
    assert!(actions
        .iter()
        .any(|a| matches!(a, EngineAction::FlowAdd { .. })));
    println!("failover path uses in-place rule modification only: OK");
}
