//! **Figure 5** — convergence time vs. number of prefixes, stock vs.
//! supercharged.
//!
//! Reproduces the paper's headline experiment: R2 and R3 loaded with the
//! same feed of N prefixes (N swept along the paper's x-axis), traffic
//! to 100 monitored flows, R2 disconnected, per-flow convergence
//! measured at the sink as the maximum inter-packet gap.
//!
//! ```text
//! cargo run --release -p sc-bench --bin fig5 [--quick] [--full] \
//!     [--trials N] [--flows N] [--csv out.csv]
//! ```
//!
//! * default: the full paper x-axis (1k … 500k), 1 trial per point;
//! * `--quick`: 1k/5k/10k/50k only (CI-sized);
//! * `--full`: the paper's 3 trials per point;
//! * `--csv`: also write the pooled samples summary as CSV.

use sc_bench::{fig5_label, Args, Table};
use sc_lab::{run_fig5_sweep, Csv, LabConfig, Mode, SweepRow, FIG5_PREFIX_COUNTS};
use sc_net::SimDuration;

/// Fig. 5's printed maxima for the non-supercharged router (seconds).
const PAPER_STOCK_MAX_S: [(u32, f64); 9] = [
    (1_000, 0.9),
    (5_000, 1.6),
    (10_000, 3.4),
    (50_000, 13.8),
    (100_000, 29.2),
    (200_000, 56.9),
    (300_000, 86.4),
    (400_000, 113.1),
    (500_000, 140.9),
];

fn paper_stock_max(prefixes: u32) -> Option<f64> {
    PAPER_STOCK_MAX_S
        .iter()
        .find(|(p, _)| *p == prefixes)
        .map(|(_, s)| *s)
}

fn main() {
    let args = Args::parse();
    let counts: Vec<u32> = if args.flag("--quick") {
        vec![1_000, 5_000, 10_000, 50_000]
    } else {
        FIG5_PREFIX_COUNTS.to_vec()
    };
    let trials: usize = if args.flag("--full") {
        3
    } else {
        args.value("--trials", 1)
    };
    let flows: usize = args.value("--flows", 100);

    let base = LabConfig {
        flows,
        seed: args.value("--seed", 42),
        ..LabConfig::default()
    };

    eprintln!(
        "fig5: sweeping {:?} prefixes, {trials} trial(s) x {flows} flows per point, both modes",
        counts
    );
    eprintln!(
        "      probe load: 64-byte UDP frames, auto-rated (<=14kpps/flow, the paper's rate)\n"
    );

    let (stock, took) =
        sc_bench::timing::timed(|| run_fig5_sweep(Mode::Stock, &counts, trials, &base));
    eprintln!("stock sweep done in {:.1}s", took.as_secs_f64());
    let (supercharged, took) =
        sc_bench::timing::timed(|| run_fig5_sweep(Mode::Supercharged, &counts, trials, &base));
    eprintln!("supercharged sweep done in {:.1}s\n", took.as_secs_f64());

    let mut table = Table::new(&[
        "prefixes",
        "mode",
        "n",
        "p5",
        "q1",
        "median",
        "q3",
        "p95",
        "max",
        "paper-max",
    ]);
    let mut csv = Csv::new(&[
        "prefixes",
        "mode",
        "n",
        "p5_ms",
        "q1_ms",
        "median_ms",
        "q3_ms",
        "p95_ms",
        "max_ms",
    ]);
    let mut speedups = Vec::new();
    for (s_row, u_row) in stock.iter().zip(&supercharged) {
        for row in [s_row, u_row] {
            let st = row.stats();
            let paper = match row.mode {
                Mode::Stock => paper_stock_max(row.prefixes)
                    .map(|s| format!("{s:.1}s"))
                    .unwrap_or_else(|| "-".into()),
                Mode::Supercharged => "<=150ms".into(),
            };
            table.row(vec![
                row.prefixes.to_string(),
                row.mode.label().into(),
                st.n.to_string(),
                fig5_label(st.p5),
                fig5_label(st.q1),
                fig5_label(st.median),
                fig5_label(st.q3),
                fig5_label(st.p95),
                fig5_label(st.max),
                paper,
            ]);
            csv.row(&[
                row.prefixes.to_string(),
                row.mode.label().into(),
                st.n.to_string(),
                st.p5.as_millis().to_string(),
                st.q1.as_millis().to_string(),
                st.median.as_millis().to_string(),
                st.q3.as_millis().to_string(),
                st.p95.as_millis().to_string(),
                st.max.as_millis().to_string(),
            ]);
        }
        let ratio = s_row.stats().max.as_secs_f64() / u_row.stats().max.as_secs_f64().max(1e-9);
        speedups.push((s_row.prefixes, ratio));
    }

    println!("Figure 5 — convergence time distribution per flow (box stats)");
    println!("{}", table.render());

    let mut sp = Table::new(&["prefixes", "speedup (stock max / supercharged max)"]);
    for (p, r) in &speedups {
        sp.row(vec![p.to_string(), format!("{r:.0}x")]);
    }
    println!("Improvement factor (paper: 900x at 500k)");
    println!("{}", sp.render());

    check_shape(&stock, &supercharged);

    if let Some(path) = std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--csv")
        .map(|w| w[1].clone())
    {
        std::fs::write(&path, csv.finish()).expect("write csv");
        eprintln!("wrote {path}");
    }
}

/// Assert the qualitative shape the paper reports; print PASS/FAIL so a
/// full run doubles as a reproduction check.
fn check_shape(stock: &[SweepRow], supercharged: &[SweepRow]) {
    let mut ok = true;
    // 1. Supercharged is flat and ≤ ~150ms everywhere.
    for row in supercharged {
        let max = row.stats().max;
        if max > SimDuration::from_millis(150) {
            ok = false;
            println!(
                "FAIL supercharged max at {} prefixes: {}",
                row.prefixes,
                fig5_label(max)
            );
        }
    }
    // 2. Stock grows monotonically (allowing 5% noise).
    for pair in stock.windows(2) {
        let a = pair[0].stats().max.as_secs_f64();
        let b = pair[1].stats().max.as_secs_f64();
        if b < a * 0.95 {
            ok = false;
            println!(
                "FAIL stock max not growing: {} -> {} prefixes",
                pair[0].prefixes, pair[1].prefixes
            );
        }
    }
    // 3. Stock is within 25% of the paper's printed maxima (40% below
    //    10k prefixes: the paper's own small-scale points sit above its
    //    linear trend — 375ms best case + 1k x 281us/entry puts the 1k
    //    worst case at ~0.66s, yet Fig. 5 prints 0.9s; see
    //    EXPERIMENTS.md for the discussion).
    for row in stock {
        if let Some(paper) = paper_stock_max(row.prefixes) {
            let got = row.stats().max.as_secs_f64();
            let tolerance = if row.prefixes < 10_000 { 0.40 } else { 0.25 };
            if (got / paper - 1.0).abs() > tolerance {
                ok = false;
                println!(
                    "FAIL stock max at {} prefixes: got {got:.1}s, paper {paper:.1}s",
                    row.prefixes
                );
            }
        }
    }
    // 4. The supercharged worst case beats the stock *best* case (the
    //    paper: 150ms < 375ms first-entry best case).
    if let (Some(s), Some(u)) = (stock.first(), supercharged.first()) {
        if u.stats().max >= s.stats().min {
            ok = false;
            println!(
                "FAIL supercharged worst ({}) must beat stock best ({})",
                fig5_label(u.stats().max),
                fig5_label(s.stats().min)
            );
        }
    }
    println!(
        "shape check: {}",
        if ok {
            "PASS (matches the paper)"
        } else {
            "FAIL (see above)"
        }
    );
}
