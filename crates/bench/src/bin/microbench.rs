//! **§4 controller micro-benchmark** — per-update processing latency.
//!
//! The paper: *"we measured the time our unoptimized, python-based BGP
//! controller took to process two times 500K updates from two different
//! peers. In the worst-case, processing an update took 0.8s but the 99th
//! percentile was only 125ms."*
//!
//! Same workload here: a full synthetic table announced by two peers,
//! every UPDATE message pushed through the engine (Listing 1: decision
//! process, backup-group computation, VNH rewriting), wall-clock time
//! measured per message. Our engine is native Rust rather than
//! interpreted Python, so absolute numbers are ~4 orders of magnitude
//! smaller; the *shape* — a heavy tail on the updates that flip
//! backup-groups and a cheap common case — is preserved and reported.
//!
//! ```text
//! cargo run --release -p sc-bench --bin microbench [--prefixes N]
//! ```

use sc_bench::timing::timed;
use sc_bench::{Args, Table};
use sc_lab::topology::{IP_R2, IP_R3, MAC_R2, MAC_R3};
use sc_routegen::{generate_feed_for, prefix_universe, FeedConfig};
use std::net::Ipv4Addr;
use supercharger::engine::PeerSpec;
use supercharger::{Engine, EngineConfig};

fn engine() -> Engine {
    Engine::new(EngineConfig::new(
        "10.0.200.0/24".parse().unwrap(),
        vec![
            PeerSpec {
                id: IP_R2,
                mac: MAC_R2,
                switch_port: 2,
                local_pref: 200,
                router_id: Ipv4Addr::new(2, 2, 2, 2),
            },
            PeerSpec {
                id: IP_R3,
                mac: MAC_R3,
                switch_port: 3,
                local_pref: 100,
                router_id: Ipv4Addr::new(3, 3, 3, 3),
            },
        ],
    ))
}

fn pct(sorted: &[u128], p: f64) -> u128 {
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

fn human_ns(ns: u128) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn main() {
    let args = Args::parse();
    let prefixes: u32 = args.value("--prefixes", 500_000);
    let seed: u64 = args.value("--seed", 42);

    eprintln!("generating 2 x {prefixes} route feed (seed {seed})...");
    let universe = prefix_universe(prefixes, seed);
    let feed_r2 = generate_feed_for(&FeedConfig::new(prefixes, seed, IP_R2, 65002), &universe);
    let feed_r3 = generate_feed_for(&FeedConfig::new(prefixes, seed, IP_R3, 65003), &universe);
    eprintln!(
        "{} + {} UPDATE messages carrying {} prefixes each",
        feed_r2.len(),
        feed_r3.len(),
        prefixes
    );

    let mut e = engine();
    let mut latencies: Vec<u128> = Vec::with_capacity(feed_r2.len() + feed_r3.len());
    // The paper's feed order: first peer's full table, then the second's
    // (which flips every prefix from unprotected to a backup-group).
    let ((), total) = timed(|| {
        for (peer, feed) in [(IP_R2, &feed_r2), (IP_R3, &feed_r3)] {
            for upd in feed {
                let (actions, took) = timed(|| e.process_update(peer, upd));
                std::hint::black_box(&actions);
                latencies.push(took.as_nanos());
            }
        }
    });
    let routes = e.stats.routes_learned;
    latencies.sort_unstable();

    let mut table = Table::new(&["metric", "this implementation", "paper (python)"]);
    table.row(vec![
        "updates processed".into(),
        latencies.len().to_string(),
        "~2x500k routes".into(),
    ]);
    table.row(vec![
        "routes learned".into(),
        routes.to_string(),
        format!("{}", 2 * prefixes),
    ]);
    table.row(vec![
        "median / update".into(),
        human_ns(pct(&latencies, 50.0)),
        "-".into(),
    ]);
    table.row(vec![
        "p99 / update".into(),
        human_ns(pct(&latencies, 99.0)),
        "125ms".into(),
    ]);
    table.row(vec![
        "worst / update".into(),
        human_ns(*latencies.last().unwrap()),
        "0.8s".into(),
    ]);
    table.row(vec![
        "total".into(),
        format!("{:.2}s", total.as_secs_f64()),
        "-".into(),
    ]);
    table.row(vec![
        "throughput".into(),
        format!("{:.0} routes/s", routes as f64 / total.as_secs_f64()),
        "-".into(),
    ]);
    println!("Controller micro-benchmark (SS4 of the paper)");
    println!("{}", table.render());

    println!(
        "groups: {} live, {} created; announcements to router: {}",
        e.groups().len(),
        e.stats.groups_created,
        e.stats.announcements,
    );
    println!(
        "\nNote: the paper's controller is interpreted Python ('unoptimized'); this\n\
         engine is native Rust, so absolute latencies are ~10^4 smaller. The shape\n\
         matches: a cheap common case and a heavy tail on updates that change the\n\
         (primary, backup) pair. p99/median tail ratio here: {:.1}x",
        pct(&latencies, 99.0) as f64 / pct(&latencies, 50.0).max(1) as f64
    );
}
