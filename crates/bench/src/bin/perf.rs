//! **Perf trajectory** — wall-clock events/sec on two end-to-end
//! worlds: the data-plane forwarding world (source → full-FIB router →
//! sink) and, with `--churn`, the control-plane churn world (full
//! feeds + BFD + scripted withdraw/re-announce bursts).
//!
//! ```text
//! cargo run --release -p sc-bench --bin perf -- \
//!     [--smoke] [--prefixes N] [--flows N] [--rate PPS] [--ms MS] \
//!     [--repeat K] [--label NAME] [--out FILE]
//! cargo run --release -p sc-bench --bin perf -- \
//!     --churn [--smoke] [--baseline] [--sched heap|wheel|sharded] \
//!     [--shards N] [--cells C] [--legacy-encode] [--prefixes N] \
//!     [--providers K] [--bursts B]
//! cargo run --release -p sc-bench --bin perf -- \
//!     --merge baseline.json after.json [--out BENCH_PR4.json]
//! cargo run --release -p sc-bench --bin perf -- \
//!     --repeat 3 --check BENCH_PR3.json [--tolerance 20]
//! ```
//!
//! Emits one flat JSON object per run: the world parameters (all
//! deterministic) plus the wall-clock readings (machine-dependent).
//! `--repeat K` keeps the fastest of K runs — the usual noise guard.
//! `--merge A B` combines two run files into the committed
//! `BENCH_PRn.json` shape (`{"baseline":…,"after":…,"speedup":…}`),
//! which is how the per-PR perf trajectory is regenerated.
//!
//! `--churn --baseline` reconstructs the pre-refactor control path
//! (reference heap scheduler + fresh-`Vec` encode); the event stream
//! is identical either way, so the events/s ratio isolates kernel cost.
//! `--churn --shards N` runs the sharded parallel kernel; pair it with
//! `--cells C` (C replicated churn cells, ring-connected by idle
//! links) so there is real per-shard work to spread. The event stream
//! is identical at any shard count — the events/s ratio against
//! `--shards 1` on the same cell count is the parallel speedup.
//! `--check FILE` compares the run against the `after` entry of a
//! committed trajectory point and fails (exit 1) on a regression
//! beyond the tolerance (percent, default 20) — tolerance-gated so
//! run-to-run jitter does not flake the build. Run the check at the
//! *same scale* as the committed point (the trajectory files record
//! paper-scale runs, so no `--smoke`): absolute events/s across
//! different world sizes is not comparable.

use sc_bench::churn::{build_churn_world, run_churn, ChurnMeasurement, ChurnParams};
use sc_bench::fwd::{build_forwarding_world, run_forwarding, FwdMeasurement, FwdParams};
use sc_bench::Args;
use sc_net::SimDuration;
use sc_sim::SchedulerKind;

fn run_json(label: &str, p: FwdParams, m: &FwdMeasurement) -> String {
    format!(
        concat!(
            "{{\"label\":\"{}\",\"bench\":\"dataplane_forward\",",
            "\"prefixes\":{},\"flows\":{},\"rate_pps\":{},\"virtual_ms\":{},",
            "\"events\":{},\"packets_sent\":{},\"packets_forwarded\":{},",
            "\"wall_ms\":{:.3},\"events_per_sec\":{},\"packets_per_sec\":{}}}"
        ),
        label,
        p.prefixes,
        p.flows,
        p.rate_pps,
        p.window.as_nanos() / 1_000_000,
        m.events,
        m.packets_sent,
        m.packets_forwarded,
        m.wall.as_secs_f64() * 1e3,
        m.events_per_sec() as u64,
        m.packets_per_sec() as u64,
    )
}

/// Pull an integer field out of a flat run JSON (the merge path; the
/// workspace deliberately carries no JSON parser).
fn extract_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let digits: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Pull a string field out of a flat run JSON.
fn extract_str(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let at = json.find(&needle)? + needle.len();
    let end = json[at..].find('"')?;
    Some(json[at..at + end].to_string())
}

fn merge(baseline_path: &str, after_path: &str) -> String {
    let read = |p: &str| {
        std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("read {p}: {e}"))
            .trim()
            .to_string()
    };
    let baseline = read(baseline_path);
    let after = read(after_path);
    let bench = extract_str(&baseline, "bench").unwrap_or_else(|| "dataplane_forward".into());
    let b = extract_u64(&baseline, "events_per_sec").expect("baseline events_per_sec");
    let a = extract_u64(&after, "events_per_sec").expect("after events_per_sec");
    let speedup = a as f64 / b.max(1) as f64;
    format!(
        "{{\"bench\":\"{bench}\",\"speedup_events_per_sec\":{speedup:.2},\n \"baseline\":{baseline},\n \"after\":{after}}}\n"
    )
}

fn churn_json(label: &str, p: ChurnParams, m: &ChurnMeasurement) -> String {
    format!(
        concat!(
            "{{\"label\":\"{}\",\"bench\":\"control_churn\",",
            "\"prefixes\":{},\"providers\":{},\"bursts\":{},\"burst_prefixes\":{},",
            "\"cells\":{},\"scheduler\":\"{}\",\"legacy_encode\":{},",
            "\"events\":{},\"updates_processed\":{},\"fib_ops_applied\":{},",
            "\"wall_ms\":{:.3},\"events_per_sec\":{}}}"
        ),
        label,
        p.prefixes,
        p.providers,
        p.bursts,
        p.burst_prefixes,
        p.cells.max(1),
        match p.scheduler {
            SchedulerKind::TimerWheel => "wheel".into(),
            SchedulerKind::ReferenceHeap => "heap".into(),
            SchedulerKind::Sharded { shards } => format!("sharded-{shards}"),
        },
        p.legacy_encode,
        m.events,
        m.updates_processed,
        m.fib_ops_applied,
        m.wall.as_secs_f64() * 1e3,
        m.events_per_sec() as u64,
    )
}

fn run_churn_bench(args: &Args) -> (String, u64) {
    let smoke = args.flag("--smoke");
    let base = if smoke {
        ChurnParams::smoke()
    } else {
        ChurnParams::paper()
    };
    let baseline = args.flag("--baseline");
    // An explicit --sched overrides the --baseline default (heap), so
    // e.g. `--baseline --sched wheel` isolates the legacy encode path.
    // `--shards N` selects the sharded parallel kernel and likewise
    // overrides the defaults.
    let shards: Option<usize> = args.raw_value("--shards").map(|s| {
        s.parse()
            .unwrap_or_else(|e| panic!("bad --shards {s}: {e}"))
    });
    let scheduler = match (args.raw_value("--sched").as_deref(), shards) {
        (Some("heap"), _) => SchedulerKind::ReferenceHeap,
        (Some("wheel"), _) => SchedulerKind::TimerWheel,
        (Some("sharded") | None, Some(n)) => SchedulerKind::Sharded { shards: n.max(1) },
        (Some("sharded"), None) => SchedulerKind::Sharded { shards: 2 },
        (None, None) if baseline => SchedulerKind::ReferenceHeap,
        (None, None) => SchedulerKind::TimerWheel,
        (Some(other), _) => panic!("unknown --sched {other} (heap|wheel|sharded)"),
    };
    let p = ChurnParams {
        prefixes: args.value("--prefixes", base.prefixes),
        providers: args.value("--providers", base.providers),
        bursts: args.value("--bursts", base.bursts),
        burst_prefixes: args.value("--burst-prefixes", base.burst_prefixes),
        interval: SimDuration::from_micros(
            args.value("--interval-us", base.interval.as_nanos() / 1_000),
        ),
        bfd_interval: SimDuration::from_micros(
            args.value("--bfd-us", base.bfd_interval.as_nanos() / 1_000),
        ),
        seed: args.value("--seed", base.seed),
        scheduler,
        legacy_encode: baseline || args.flag("--legacy-encode"),
        cells: args.value("--cells", base.cells),
    };
    let repeat: u32 = args.value("--repeat", if smoke { 1 } else { 3 });
    let label = args.raw_value("--label").unwrap_or_else(|| {
        if baseline {
            "churn-baseline".into()
        } else if smoke {
            "churn-smoke".into()
        } else {
            "churn".into()
        }
    });
    let mut best: Option<ChurnMeasurement> = None;
    for _ in 0..repeat.max(1) {
        let mut cw = build_churn_world(p);
        let m = run_churn(&mut cw);
        if best.map(|b| m.wall < b.wall).unwrap_or(true) {
            best = Some(m);
        }
    }
    let m = best.unwrap();
    eprintln!(
        "{} events in {:.1} ms -> {:.2} M events/sec ({} updates, {} FIB ops)",
        m.events,
        m.wall.as_secs_f64() * 1e3,
        m.events_per_sec() / 1e6,
        m.updates_processed,
        m.fib_ops_applied,
    );
    (churn_json(&label, p, &m), m.events_per_sec() as u64)
}

fn main() {
    let args = Args::parse();

    if args.flag("--merge") {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let i = raw.iter().position(|a| a == "--merge").unwrap();
        let operands: Vec<&String> = raw[i + 1..]
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .collect();
        let [b, a] = operands[..] else {
            eprintln!("usage: perf --merge <baseline.json> <after.json> [--out FILE]");
            std::process::exit(2);
        };
        let out = merge(b, a);
        match args.raw_value("--out") {
            Some(path) => {
                std::fs::write(&path, &out).expect("write merged JSON");
                println!("wrote {path}");
            }
            None => print!("{out}"),
        }
        return;
    }

    let (json, events_per_sec) = if args.flag("--churn") {
        run_churn_bench(&args)
    } else {
        let smoke = args.flag("--smoke");
        let base = if smoke {
            FwdParams::smoke()
        } else {
            FwdParams::paper()
        };
        let p = FwdParams {
            prefixes: args.value("--prefixes", base.prefixes),
            flows: args.value("--flows", base.flows),
            rate_pps: args.value("--rate", base.rate_pps),
            window: SimDuration::from_millis(
                args.value("--ms", base.window.as_nanos() / 1_000_000),
            ),
            seed: args.value("--seed", base.seed),
            scheduler: match args.raw_value("--sched").as_deref() {
                Some("heap") => SchedulerKind::ReferenceHeap,
                Some("wheel") | None => SchedulerKind::TimerWheel,
                Some(other) => panic!("unknown --sched {other} (heap|wheel)"),
            },
        };
        let repeat: u32 = args.value("--repeat", if smoke { 1 } else { 3 });
        let label = args.raw_value("--label").unwrap_or_else(|| {
            if smoke {
                "smoke".into()
            } else {
                "paper".into()
            }
        });

        let mut best: Option<FwdMeasurement> = None;
        for _ in 0..repeat.max(1) {
            let mut fw = build_forwarding_world(p);
            let m = run_forwarding(&mut fw);
            if best.map(|b| m.wall < b.wall).unwrap_or(true) {
                best = Some(m);
            }
        }
        let m = best.unwrap();
        eprintln!(
            "{} events in {:.1} ms -> {:.2} M events/sec ({:.2} M fwd pkts/sec)",
            m.events,
            m.wall.as_secs_f64() * 1e3,
            m.events_per_sec() / 1e6,
            m.packets_per_sec() / 1e6,
        );
        (run_json(&label, p, &m), m.events_per_sec() as u64)
    };
    println!("{json}");
    if let Some(path) = args.raw_value("--out") {
        std::fs::write(&path, format!("{json}\n")).expect("write JSON");
        eprintln!("wrote {path}");
    }
    // Regression gate: compare against a committed trajectory point.
    if let Some(path) = args.raw_value("--check") {
        sc_bench::check_perf_gate(&path, events_per_sec, args.value("--tolerance", 20));
    }
}
