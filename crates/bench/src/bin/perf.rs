//! **Perf trajectory** — wall-clock events/sec on two end-to-end
//! worlds: the data-plane forwarding world (source → full-FIB router →
//! sink) and, with `--churn`, the control-plane churn world (full
//! feeds + BFD + scripted withdraw/re-announce bursts).
//!
//! ```text
//! cargo run --release -p sc-bench --bin perf -- \
//!     [--smoke] [--prefixes N] [--flows N] [--rate PPS] [--ms MS] \
//!     [--repeat K] [--label NAME] [--out FILE]
//! cargo run --release -p sc-bench --bin perf -- \
//!     --churn [--smoke] [--baseline] [--sched heap|wheel|sharded] \
//!     [--shards N] [--cells C] [--legacy-encode] [--prefixes N] \
//!     [--providers K] [--bursts B]
//! cargo run --release -p sc-bench --bin perf -- \
//!     --merge baseline.json after.json [--out BENCH_PR4.json]
//! cargo run --release -p sc-bench --bin perf -- \
//!     --repeat 3 --check BENCH_PR3.json [--tolerance 20]
//! ```
//!
//! Emits one flat JSON object per run: the world parameters (all
//! deterministic) plus the wall-clock readings (machine-dependent).
//! `--repeat K` keeps the fastest of K runs — the usual noise guard.
//! `--merge A B` combines two run files into the committed
//! `BENCH_PRn.json` shape (`{"baseline":…,"after":…,"speedup":…}`),
//! which is how the per-PR perf trajectory is regenerated.
//!
//! `--churn --baseline` reconstructs the pre-refactor control path
//! (reference heap scheduler + fresh-`Vec` encode); the event stream
//! is identical either way, so the events/s ratio isolates kernel cost.
//! `--churn --shards N` runs the sharded parallel kernel; pair it with
//! `--cells C` (C replicated churn cells, ring-connected by idle
//! links) so there is real per-shard work to spread. The event stream
//! is identical at any shard count — the events/s ratio against
//! `--shards 1` on the same cell count is the parallel speedup.
//! `--check FILE` compares the run against the `after` entry of a
//! committed trajectory point and fails (exit 1) on a regression
//! beyond the tolerance (percent, default 20) — tolerance-gated so
//! run-to-run jitter does not flake the build. Run the check at the
//! *same scale* as the committed point (the trajectory files record
//! paper-scale runs, so no `--smoke`): absolute events/s across
//! different world sizes is not comparable.

use sc_bench::churn::{build_churn_world, run_churn, ChurnMeasurement, ChurnParams};
use sc_bench::fwd::{build_forwarding_world, run_forwarding, FwdMeasurement, FwdParams};
use sc_bench::Args;
use sc_net::SimDuration;
use sc_sim::SchedulerKind;

fn run_json(label: &str, p: FwdParams, m: &FwdMeasurement) -> String {
    format!(
        concat!(
            "{{\"label\":\"{}\",\"bench\":\"dataplane_forward\",",
            "\"prefixes\":{},\"flows\":{},\"rate_pps\":{},\"virtual_ms\":{},",
            "\"events\":{},\"packets_sent\":{},\"packets_forwarded\":{},",
            "\"wall_ms\":{:.3},\"events_per_sec\":{},\"packets_per_sec\":{}}}"
        ),
        label,
        p.prefixes,
        p.flows,
        p.rate_pps,
        p.window.as_nanos() / 1_000_000,
        m.events,
        m.packets_sent,
        m.packets_forwarded,
        m.wall.as_secs_f64() * 1e3,
        m.events_per_sec() as u64,
        m.packets_per_sec() as u64,
    )
}

/// Pull an integer field out of a flat run JSON (the merge path; the
/// workspace deliberately carries no JSON parser).
fn extract_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let digits: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Pull a string field out of a flat run JSON.
fn extract_str(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let at = json.find(&needle)? + needle.len();
    let end = json[at..].find('"')?;
    Some(json[at..at + end].to_string())
}

/// Split a JSON object's top level into `(key, raw value)` pairs —
/// string/escape-aware, depth-tracked, no JSON parser. Raw values keep
/// their exact bytes, so whatever a hand-edited trajectory point
/// carries survives a round trip.
fn top_level_fields(json: &str) -> Vec<(String, String)> {
    let body = json
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or_default();
    let mut fields = Vec::new();
    let (mut depth, mut in_str, mut esc) = (0u32, false, false);
    let mut start = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            _ if esc => esc = false,
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            ',' if !in_str && depth == 0 => {
                fields.push(body[start..i].to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    if !body[start..].trim().is_empty() {
        fields.push(body[start..].to_string());
    }
    fields
        .into_iter()
        .filter_map(|f| {
            let f = f.trim();
            let (k, v) = f.split_once(':')?;
            Some((k.trim().trim_matches('"').to_string(), v.trim().to_string()))
        })
        .collect()
}

/// The keys the merged shape itself owns; anything else on a prior
/// trajectory point (scaling arrays, notes, …) is cargo to preserve.
const MERGE_KEYS: [&str; 4] = ["bench", "speedup_events_per_sec", "baseline", "after"];

/// Resolve one `--merge` operand to `(flat run JSON, extra fields)`.
/// A plain run file passes through; a previously merged trajectory
/// point stands in for its own `after` run — so
/// `--merge BENCH_PRn.json new.json` chains PRs without re-running the
/// old baseline — and donates its extra top-level keys.
fn unwrap_point(json: &str) -> (String, Vec<(String, String)>) {
    let fields = top_level_fields(json);
    match fields.iter().find(|(k, _)| k == "after") {
        Some((_, after_run)) => (
            after_run.clone(),
            fields
                .iter()
                .filter(|(k, _)| !MERGE_KEYS.contains(&k.as_str()))
                .cloned()
                .collect(),
        ),
        None => (json.trim().to_string(), Vec::new()),
    }
}

fn merge_points(baseline_raw: &str, after_raw: &str) -> String {
    let (baseline, extra_b) = unwrap_point(baseline_raw);
    let (after, extra_a) = unwrap_point(after_raw);
    let bench = extract_str(&baseline, "bench").unwrap_or_else(|| "dataplane_forward".into());
    let b = extract_u64(&baseline, "events_per_sec").expect("baseline events_per_sec");
    let a = extract_u64(&after, "events_per_sec").expect("after events_per_sec");
    let speedup = a as f64 / b.max(1) as f64;
    let mut out = format!(
        "{{\"bench\":\"{bench}\",\"speedup_events_per_sec\":{speedup:.2},\n \"baseline\":{baseline},\n \"after\":{after}"
    );
    // Extra keys ride along, the newer file winning a name collision.
    let mut extras = extra_b;
    for (k, v) in extra_a {
        extras.retain(|(ek, _)| *ek != k);
        extras.push((k, v));
    }
    for (k, v) in extras {
        out.push_str(&format!(",\n \"{k}\":{v}"));
    }
    out.push_str("}\n");
    out
}

fn merge(baseline_path: &str, after_path: &str) -> String {
    let read = |p: &str| {
        std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("read {p}: {e}"))
            .trim()
            .to_string()
    };
    merge_points(&read(baseline_path), &read(after_path))
}

fn churn_json(label: &str, p: ChurnParams, m: &ChurnMeasurement) -> String {
    format!(
        concat!(
            "{{\"label\":\"{}\",\"bench\":\"control_churn\",",
            "\"prefixes\":{},\"providers\":{},\"bursts\":{},\"burst_prefixes\":{},",
            "\"cells\":{},\"scheduler\":\"{}\",\"legacy_encode\":{},",
            "\"events\":{},\"updates_processed\":{},\"fib_ops_applied\":{},",
            "\"wall_ms\":{:.3},\"events_per_sec\":{}}}"
        ),
        label,
        p.prefixes,
        p.providers,
        p.bursts,
        p.burst_prefixes,
        p.cells.max(1),
        match p.scheduler {
            SchedulerKind::TimerWheel => "wheel".into(),
            SchedulerKind::ReferenceHeap => "heap".into(),
            SchedulerKind::Sharded { shards } => format!("sharded-{shards}"),
        },
        p.legacy_encode,
        m.events,
        m.updates_processed,
        m.fib_ops_applied,
        m.wall.as_secs_f64() * 1e3,
        m.events_per_sec() as u64,
    )
}

fn run_churn_bench(args: &Args) -> (String, u64) {
    let smoke = args.flag("--smoke");
    let base = if smoke {
        ChurnParams::smoke()
    } else {
        ChurnParams::paper()
    };
    let baseline = args.flag("--baseline");
    // An explicit --sched overrides the --baseline default (heap), so
    // e.g. `--baseline --sched wheel` isolates the legacy encode path.
    // `--shards N` selects the sharded parallel kernel and likewise
    // overrides the defaults.
    let shards: Option<usize> = args.raw_value("--shards").map(|s| {
        s.parse()
            .unwrap_or_else(|e| panic!("bad --shards {s}: {e}"))
    });
    let scheduler = match (args.raw_value("--sched").as_deref(), shards) {
        (Some("heap"), _) => SchedulerKind::ReferenceHeap,
        (Some("wheel"), _) => SchedulerKind::TimerWheel,
        (Some("sharded") | None, Some(n)) => SchedulerKind::Sharded { shards: n.max(1) },
        (Some("sharded"), None) => SchedulerKind::Sharded { shards: 2 },
        (None, None) if baseline => SchedulerKind::ReferenceHeap,
        (None, None) => SchedulerKind::TimerWheel,
        (Some(other), _) => panic!("unknown --sched {other} (heap|wheel|sharded)"),
    };
    let p = ChurnParams {
        prefixes: args.value("--prefixes", base.prefixes),
        providers: args.value("--providers", base.providers),
        bursts: args.value("--bursts", base.bursts),
        burst_prefixes: args.value("--burst-prefixes", base.burst_prefixes),
        interval: SimDuration::from_micros(
            args.value("--interval-us", base.interval.as_nanos() / 1_000),
        ),
        bfd_interval: SimDuration::from_micros(
            args.value("--bfd-us", base.bfd_interval.as_nanos() / 1_000),
        ),
        seed: args.value("--seed", base.seed),
        scheduler,
        legacy_encode: baseline || args.flag("--legacy-encode"),
        cells: args.value("--cells", base.cells),
    };
    let repeat: u32 = args.value("--repeat", if smoke { 1 } else { 3 });
    let label = args.raw_value("--label").unwrap_or_else(|| {
        if baseline {
            "churn-baseline".into()
        } else if smoke {
            "churn-smoke".into()
        } else {
            "churn".into()
        }
    });
    let mut best: Option<ChurnMeasurement> = None;
    for _ in 0..repeat.max(1) {
        let mut cw = build_churn_world(p);
        let m = run_churn(&mut cw);
        if best.map(|b| m.wall < b.wall).unwrap_or(true) {
            best = Some(m);
        }
    }
    let m = best.unwrap();
    eprintln!(
        "{} events in {:.1} ms -> {:.2} M events/sec ({} updates, {} FIB ops)",
        m.events,
        m.wall.as_secs_f64() * 1e3,
        m.events_per_sec() / 1e6,
        m.updates_processed,
        m.fib_ops_applied,
    );
    (churn_json(&label, p, &m), m.events_per_sec() as u64)
}

fn main() {
    let args = Args::parse();

    if args.flag("--merge") {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let i = raw.iter().position(|a| a == "--merge").unwrap();
        let operands: Vec<&String> = raw[i + 1..]
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .collect();
        let [b, a] = operands[..] else {
            eprintln!("usage: perf --merge <baseline.json> <after.json> [--out FILE]");
            std::process::exit(2);
        };
        let out = merge(b, a);
        match args.raw_value("--out") {
            Some(path) => {
                std::fs::write(&path, &out).expect("write merged JSON");
                println!("wrote {path}");
            }
            None => print!("{out}"),
        }
        return;
    }

    let (json, events_per_sec) = if args.flag("--churn") {
        run_churn_bench(&args)
    } else {
        let smoke = args.flag("--smoke");
        let base = if smoke {
            FwdParams::smoke()
        } else {
            FwdParams::paper()
        };
        let p = FwdParams {
            prefixes: args.value("--prefixes", base.prefixes),
            flows: args.value("--flows", base.flows),
            rate_pps: args.value("--rate", base.rate_pps),
            window: SimDuration::from_millis(
                args.value("--ms", base.window.as_nanos() / 1_000_000),
            ),
            seed: args.value("--seed", base.seed),
            scheduler: match args.raw_value("--sched").as_deref() {
                Some("heap") => SchedulerKind::ReferenceHeap,
                Some("wheel") | None => SchedulerKind::TimerWheel,
                Some(other) => panic!("unknown --sched {other} (heap|wheel)"),
            },
        };
        let repeat: u32 = args.value("--repeat", if smoke { 1 } else { 3 });
        let label = args.raw_value("--label").unwrap_or_else(|| {
            if smoke {
                "smoke".into()
            } else {
                "paper".into()
            }
        });

        let mut best: Option<FwdMeasurement> = None;
        for _ in 0..repeat.max(1) {
            let mut fw = build_forwarding_world(p);
            let m = run_forwarding(&mut fw);
            if best.map(|b| m.wall < b.wall).unwrap_or(true) {
                best = Some(m);
            }
        }
        let m = best.unwrap();
        eprintln!(
            "{} events in {:.1} ms -> {:.2} M events/sec ({:.2} M fwd pkts/sec)",
            m.events,
            m.wall.as_secs_f64() * 1e3,
            m.events_per_sec() / 1e6,
            m.packets_per_sec() / 1e6,
        );
        (run_json(&label, p, &m), m.events_per_sec() as u64)
    };
    println!("{json}");
    if let Some(path) = args.raw_value("--out") {
        std::fs::write(&path, format!("{json}\n")).expect("write JSON");
        eprintln!("wrote {path}");
    }
    // Regression gate: compare against a committed trajectory point.
    if let Some(path) = args.raw_value("--check") {
        sc_bench::check_perf_gate(&path, events_per_sec, args.value("--tolerance", 20));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RUN_A: &str = r#"{"label":"base","bench":"control_churn","events_per_sec":2000000}"#;
    const RUN_B: &str = r#"{"label":"new","bench":"control_churn","events_per_sec":3000000}"#;

    #[test]
    fn merges_two_flat_runs() {
        let out = merge_points(RUN_A, RUN_B);
        assert!(out.contains("\"speedup_events_per_sec\":1.50"));
        assert!(out.contains("\"baseline\":{\"label\":\"base\""));
        assert!(out.contains("\"after\":{\"label\":\"new\""));
    }

    #[test]
    fn merged_baseline_stands_in_for_its_after_run() {
        let prior = merge_points(RUN_A, RUN_B);
        let next = r#"{"label":"pr10","bench":"control_churn","events_per_sec":2970000}"#;
        let out = merge_points(&prior, next);
        // Baseline = the prior point's after (3.0 M), not its baseline.
        assert!(out.contains("\"speedup_events_per_sec\":0.99"), "{out}");
        assert!(out.contains("\"baseline\":{\"label\":\"new\""), "{out}");
        assert!(out.contains("\"after\":{\"label\":\"pr10\""), "{out}");
    }

    #[test]
    fn extra_keys_survive_the_merge_byte_for_byte() {
        let scaling = r#"[
  {"label":"shards-1","events_per_sec":3168837},
  {"label":"shards-2","events_per_sec":2149498}]"#;
        let prior = format!(
            "{{\"bench\":\"control_churn\",\"speedup_events_per_sec\":1.27,\n \"baseline\":{RUN_A},\n \"after\":{RUN_B},\n \"scaling_note\":\"commas, {{braces}} and [brackets] in strings\",\n \"scaling\":{scaling}}}"
        );
        let out = merge_points(
            &prior,
            r#"{"label":"pr10","bench":"control_churn","events_per_sec":3100000}"#,
        );
        assert!(
            out.contains("\"scaling_note\":\"commas, {braces} and [brackets] in strings\""),
            "{out}"
        );
        assert!(out.contains(&format!("\"scaling\":{scaling}")), "{out}");
        // And a re-merge keeps them again: the cargo is durable.
        let again = merge_points(
            &out,
            r#"{"label":"pr11","bench":"control_churn","events_per_sec":3200000}"#,
        );
        assert!(again.contains("\"scaling_note\""), "{again}");
        assert!(again.contains("\"scaling\":"), "{again}");
    }

    #[test]
    fn top_level_split_respects_nesting_and_strings() {
        let fields =
            top_level_fields(r#"{"a":1,"b":{"x":[1,2],"y":"s,t\"r"},"c":[{"k":"}"},2],"d":"e"}"#);
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["a", "b", "c", "d"]);
        assert_eq!(fields[1].1, r#"{"x":[1,2],"y":"s,t\"r"}"#);
        assert_eq!(fields[2].1, r#"[{"k":"}"},2]"#);
    }
}
