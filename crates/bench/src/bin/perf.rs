//! **Data-plane perf trajectory** — wall-clock events/sec on the
//! end-to-end forwarding world (source → full-FIB router → sink).
//!
//! ```text
//! cargo run --release -p sc-bench --bin perf -- \
//!     [--smoke] [--prefixes N] [--flows N] [--rate PPS] [--ms MS] \
//!     [--repeat K] [--label NAME] [--out FILE]
//! cargo run --release -p sc-bench --bin perf -- \
//!     --merge baseline.json after.json [--out BENCH_PR3.json]
//! ```
//!
//! Emits one flat JSON object per run: the world parameters (all
//! deterministic) plus the wall-clock readings (machine-dependent).
//! `--repeat K` keeps the fastest of K runs — the usual noise guard.
//! `--merge A B` combines two run files into the committed
//! `BENCH_PR3.json` shape (`{"baseline":…,"after":…,"speedup":…}`),
//! which is how the per-PR perf trajectory is regenerated.

use sc_bench::fwd::{build_forwarding_world, run_forwarding, FwdMeasurement, FwdParams};
use sc_bench::Args;
use sc_net::SimDuration;

fn run_json(label: &str, p: FwdParams, m: &FwdMeasurement) -> String {
    format!(
        concat!(
            "{{\"label\":\"{}\",\"bench\":\"dataplane_forward\",",
            "\"prefixes\":{},\"flows\":{},\"rate_pps\":{},\"virtual_ms\":{},",
            "\"events\":{},\"packets_sent\":{},\"packets_forwarded\":{},",
            "\"wall_ms\":{:.3},\"events_per_sec\":{},\"packets_per_sec\":{}}}"
        ),
        label,
        p.prefixes,
        p.flows,
        p.rate_pps,
        p.window.as_nanos() / 1_000_000,
        m.events,
        m.packets_sent,
        m.packets_forwarded,
        m.wall.as_secs_f64() * 1e3,
        m.events_per_sec() as u64,
        m.packets_per_sec() as u64,
    )
}

/// Pull an integer field out of a flat run JSON (the merge path; the
/// workspace deliberately carries no JSON parser).
fn extract_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let digits: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn merge(baseline_path: &str, after_path: &str) -> String {
    let read = |p: &str| {
        std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("read {p}: {e}"))
            .trim()
            .to_string()
    };
    let baseline = read(baseline_path);
    let after = read(after_path);
    let b = extract_u64(&baseline, "events_per_sec").expect("baseline events_per_sec");
    let a = extract_u64(&after, "events_per_sec").expect("after events_per_sec");
    let speedup = a as f64 / b.max(1) as f64;
    format!(
        "{{\"bench\":\"dataplane_forward\",\"speedup_events_per_sec\":{speedup:.2},\n \"baseline\":{baseline},\n \"after\":{after}}}\n"
    )
}

fn main() {
    let args = Args::parse();

    if args.flag("--merge") {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let i = raw.iter().position(|a| a == "--merge").unwrap();
        let operands: Vec<&String> = raw[i + 1..]
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .collect();
        let [b, a] = operands[..] else {
            eprintln!("usage: perf --merge <baseline.json> <after.json> [--out FILE]");
            std::process::exit(2);
        };
        let out = merge(b, a);
        match args.raw_value("--out") {
            Some(path) => {
                std::fs::write(&path, &out).expect("write merged JSON");
                println!("wrote {path}");
            }
            None => print!("{out}"),
        }
        return;
    }

    let smoke = args.flag("--smoke");
    let base = if smoke {
        FwdParams::smoke()
    } else {
        FwdParams::paper()
    };
    let p = FwdParams {
        prefixes: args.value("--prefixes", base.prefixes),
        flows: args.value("--flows", base.flows),
        rate_pps: args.value("--rate", base.rate_pps),
        window: SimDuration::from_millis(args.value("--ms", base.window.as_nanos() / 1_000_000)),
        seed: args.value("--seed", base.seed),
    };
    let repeat: u32 = args.value("--repeat", if smoke { 1 } else { 3 });
    let label = args.raw_value("--label").unwrap_or_else(|| {
        if smoke {
            "smoke".into()
        } else {
            "paper".into()
        }
    });

    let mut best: Option<FwdMeasurement> = None;
    for _ in 0..repeat.max(1) {
        let mut fw = build_forwarding_world(p);
        let m = run_forwarding(&mut fw);
        if best.map(|b| m.wall < b.wall).unwrap_or(true) {
            best = Some(m);
        }
    }
    let m = best.unwrap();
    let json = run_json(&label, p, &m);
    println!("{json}");
    eprintln!(
        "{} events in {:.1} ms -> {:.2} M events/sec ({:.2} M fwd pkts/sec)",
        m.events,
        m.wall.as_secs_f64() * 1e3,
        m.events_per_sec() / 1e6,
        m.packets_per_sec() / 1e6,
    );
    if let Some(path) = args.raw_value("--out") {
        std::fs::write(&path, format!("{json}\n")).expect("write JSON");
        eprintln!("wrote {path}");
    }
}
