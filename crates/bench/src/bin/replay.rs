//! **MRT replay trajectory** — wall-clock events/sec on the recorded-
//! data control-plane world: full MRT tables on every session and a
//! timed `BGP4MP_ET` update trace replayed at recorded (warpable)
//! inter-arrival timing.
//!
//! ```text
//! cargo run --release -p sc-bench --bin replay -- \
//!     [--smoke] [--baseline] [--sched heap|wheel] [--legacy-encode] \
//!     [--fixture] [--time-scale S] [--prefixes N] [--providers K] \
//!     [--bursts B] [--repeat K] [--label NAME] [--out FILE] \
//!     [--stable-out FILE] [--check BENCH_PR5.json [--tolerance 20]]
//! ```
//!
//! Emits one flat JSON object per run in the `perf` shape, so the
//! committed `BENCH_PR5.json` is produced the usual way:
//!
//! ```text
//! replay --baseline --out base.json
//! replay --out after.json
//! perf --merge base.json after.json --out BENCH_PR5.json
//! ```
//!
//! `--baseline` reconstructs the pre-PR4 control path (reference heap +
//! legacy encode) under the replay workload; the event stream is
//! identical either way (regression-tested), so the ratio isolates
//! kernel cost on recorded dynamics. `--stable-out` writes the report
//! without the wall-clock fields: identical invocations produce
//! byte-identical files — the determinism contract CI smoke checks.
//! `--fixture` replays the committed `tests/fixtures/*.mrt` pair
//! instead of the generated paper-scale archives; `--time-scale 0.1`
//! replays any trace ten times faster.

use sc_bench::replay::{
    build_replay_world, build_replay_world_from, run_replay, ReplayMeasurement, ReplayParams,
    ReplayWorld,
};
use sc_bench::Args;
use sc_mrt::TimeScale;
use sc_net::SimDuration;
use sc_sim::SchedulerKind;

fn sched_name(s: SchedulerKind) -> &'static str {
    match s {
        SchedulerKind::TimerWheel => "wheel",
        SchedulerKind::ReferenceHeap => "heap",
        SchedulerKind::Sharded { .. } => "sharded",
    }
}

/// The run JSON. `wallclock: false` omits the machine-dependent fields
/// so identical runs serialize byte-identically.
fn replay_json(
    label: &str,
    p: &ReplayParams,
    rw: &ReplayWorld,
    m: &ReplayMeasurement,
    fixture: bool,
    wallclock: bool,
) -> String {
    let mut out = format!(
        concat!(
            "{{\"label\":\"{}\",\"bench\":\"mrt_replay\",",
            "\"prefixes\":{},\"providers\":{},\"fixture\":{},\"time_scale\":\"{}\",",
            "\"scheduler\":\"{}\",\"legacy_encode\":{},",
            "\"updates_injected\":{},\"prefix_events\":{},\"trace_span_ms\":{},",
            "\"events\":{},\"updates_processed\":{},\"fib_ops_applied\":{}"
        ),
        label,
        rw.table_prefixes,
        rw.providers.len(),
        fixture,
        p.time_scale,
        sched_name(p.scheduler),
        p.legacy_encode,
        rw.updates_injected,
        rw.prefix_events,
        rw.trace_span.as_nanos() / 1_000_000,
        m.events,
        m.updates_processed,
        m.fib_ops_applied,
    );
    if wallclock {
        out.push_str(&format!(
            ",\"wall_ms\":{:.3},\"events_per_sec\":{}",
            m.wall.as_secs_f64() * 1e3,
            m.events_per_sec() as u64
        ));
    }
    out.push('}');
    out
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("--smoke");
    let fixture = args.flag("--fixture");
    let base = if smoke {
        ReplayParams::smoke()
    } else {
        ReplayParams::paper()
    };
    let baseline = args.flag("--baseline");
    let scheduler = match args.raw_value("--sched").as_deref() {
        Some("heap") => SchedulerKind::ReferenceHeap,
        Some("wheel") => SchedulerKind::TimerWheel,
        None if baseline => SchedulerKind::ReferenceHeap,
        None => SchedulerKind::TimerWheel,
        Some(other) => panic!("unknown --sched {other} (heap|wheel)"),
    };
    let time_scale: TimeScale = args
        .raw_value("--time-scale")
        .map(|s| s.parse().unwrap_or_else(|e| panic!("{e}")))
        .unwrap_or(base.time_scale);
    let p = ReplayParams {
        prefixes: args.value("--prefixes", base.prefixes),
        providers: args.value("--providers", base.providers),
        bursts: args.value("--bursts", base.bursts),
        burst_prefixes: args.value("--burst-prefixes", base.burst_prefixes),
        burst_gap_us: args.value("--burst-gap-us", base.burst_gap_us),
        bfd_interval: SimDuration::from_micros(
            args.value("--bfd-us", base.bfd_interval.as_nanos() / 1_000),
        ),
        seed: args.value("--seed", base.seed),
        time_scale,
        scheduler,
        legacy_encode: baseline || args.flag("--legacy-encode"),
    };
    let repeat: u32 = args.value("--repeat", if smoke { 1 } else { 3 });
    let label = args.raw_value("--label").unwrap_or_else(|| {
        if baseline {
            "replay-baseline".into()
        } else if smoke {
            "replay-smoke".into()
        } else {
            "replay".into()
        }
    });

    let fixture_bytes = fixture.then(|| {
        let dir = format!("{}/../../tests/fixtures", env!("CARGO_MANIFEST_DIR"));
        let read = |name: &str| {
            let path = format!("{dir}/{name}");
            std::fs::read(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
        };
        (read("ris_rib.mrt"), read("ris_updates.mrt"))
    });
    let build = || match &fixture_bytes {
        Some((rib, trace)) => build_replay_world_from(&p, rib, trace),
        None => build_replay_world(&p),
    };

    let mut best: Option<(ReplayWorld, ReplayMeasurement)> = None;
    for _ in 0..repeat.max(1) {
        let mut rw = build();
        let m = run_replay(&mut rw);
        if best.as_ref().map(|(_, b)| m.wall < b.wall).unwrap_or(true) {
            best = Some((rw, m));
        }
    }
    let (rw, m) = best.unwrap();
    eprintln!(
        "{} events in {:.1} ms -> {:.2} M events/sec \
         ({} replayed updates over {}, {} processed, {} FIB ops)",
        m.events,
        m.wall.as_secs_f64() * 1e3,
        m.events_per_sec() / 1e6,
        rw.updates_injected,
        rw.trace_span,
        m.updates_processed,
        m.fib_ops_applied,
    );

    let json = replay_json(&label, &p, &rw, &m, fixture, true);
    println!("{json}");
    if let Some(path) = args.raw_value("--out") {
        std::fs::write(&path, format!("{json}\n")).expect("write JSON");
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.raw_value("--stable-out") {
        let stable = replay_json(&label, &p, &rw, &m, fixture, false);
        std::fs::write(&path, format!("{stable}\n")).expect("write stable JSON");
        eprintln!("wrote {path}");
    }
    // Regression gate against a committed trajectory point.
    if let Some(path) = args.raw_value("--check") {
        sc_bench::check_perf_gate(
            &path,
            m.events_per_sec() as u64,
            args.value("--tolerance", 20),
        );
    }
}
