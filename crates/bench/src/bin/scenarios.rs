//! **Scenario matrix** — the full evaluation beyond the paper's lab:
//! every topology family × a library of failure scripts × both modes,
//! at paper-scale prefix counts.
//!
//! ```text
//! cargo run --release -p sc-bench --bin scenarios [--prefixes N] \
//!     [--flows N] [--seed N] [--quick] [--csv out.csv] [--json out.json]
//! ```
//!
//! * default: 10k prefixes, the full 6-topology × 4-script matrix;
//! * `--quick`: 1k prefixes and the cut/flap scripts only (CI-sized).

use sc_bench::{fig5_label, Args, Table};
use sc_lab::Mode;
use sc_net::SimDuration;
use sc_scenarios::{run_suite, EventScript, ScenarioConfig, SuiteConfig, TopologySpec};

fn main() {
    let args = Args::parse();
    let quick = args.flag("--quick");
    let prefixes: u32 = args.value("--prefixes", if quick { 1_000 } else { 10_000 });
    let flows: usize = args.value("--flows", 50);
    let seed: u64 = args.value("--seed", 42);

    let topologies = vec![
        TopologySpec::Fig4Lab,
        TopologySpec::Chain {
            providers: 3,
            hops: 2,
        },
        TopologySpec::Ring {
            providers: 3,
            ring: 6,
        },
        TopologySpec::FatTreePod { k: 4 },
        TopologySpec::IxpHub { peers: 6 },
        TopologySpec::Random { seed },
    ];
    let mut scripts = vec![
        EventScript::primary_cut(),
        EventScript::primary_flap(SimDuration::from_millis(250), 3),
    ];
    if !quick {
        scripts.push(EventScript::primary_crash());
        scripts.push(EventScript::withdraw_burst(prefixes / 4));
    }
    let suite = SuiteConfig {
        topologies,
        scripts,
        modes: vec![Mode::Stock, Mode::Supercharged],
        base: ScenarioConfig {
            prefixes,
            flows,
            seed,
            ..ScenarioConfig::default()
        },
    };
    let trials = suite.topologies.len() * suite.scripts.len() * suite.modes.len();
    println!("scenario matrix: {trials} trials at {prefixes} prefixes, {flows} flows\n");

    let t0 = std::time::Instant::now();
    let report = run_suite(&suite);

    let mut table = Table::new(&[
        "topology", "script", "mode", "median", "p95", "max", "lost", "detect", "rewrites",
    ]);
    for row in &report.rows {
        let s = row.stats();
        table.row(vec![
            row.topology.clone(),
            row.script.clone(),
            sc_scenarios::mode_label(row.mode).to_string(),
            fig5_label(s.median),
            fig5_label(s.p95),
            fig5_label(s.max),
            row.unrecovered.to_string(),
            row.detected_at
                .map(|t| fig5_label(t - row.fail_at))
                .unwrap_or_else(|| "-".into()),
            row.flow_rewrites
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", table.render());

    for (topo, script, x) in report.speedups() {
        println!("{topo:<12} {script:<16} {x:>7.0}x median speedup");
    }
    println!("\nwall time: {:.1}s", t0.elapsed().as_secs_f64());

    if let Some(path) = args.raw_value("--csv") {
        std::fs::write(&path, report.to_csv()).expect("write CSV");
        println!("wrote {path}");
    }
    if let Some(path) = args.raw_value("--json") {
        std::fs::write(&path, report.to_json()).expect("write JSON");
        println!("wrote {path}");
    }
}
