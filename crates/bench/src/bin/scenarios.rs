//! **Scenario matrix** — the full evaluation beyond the paper's lab:
//! every topology family × a library of failure scripts × both modes,
//! at paper-scale prefix counts.
//!
//! ```text
//! cargo run --release -p sc-bench --bin scenarios [--prefixes N] \
//!     [--flows N] [--seed N] [--workers N] [--quick] [--smoke] [--jsonl] \
//!     [--csv out.csv] [--json out.json] [--invariants] \
//!     [--scheduler wheel|heap|sharded] [--shards N] [--trace] \
//!     [--stable-csv out.csv] [--stable-json out.json]
//! ```
//!
//! * default: 10k prefixes, the full 6-topology × 5-script matrix;
//! * `--quick`: 1k prefixes and the cut/flap scripts only (CI-sized);
//! * `--smoke`: one topology, 300 prefixes, cut + 2-cycle flap — the
//!   seconds-scale sanity run CI executes on every push;
//! * `--workers N`: pin the suite worker pool (default: one thread per
//!   core) — perf trajectories want a fixed, machine-independent degree
//!   of parallelism. When `--shards` > 1 each trial runs on `shards`
//!   threads of its own, so the pool is capped at
//!   `available_parallelism / shards`: `--workers × --shards` never
//!   oversubscribes the machine (an oversized `--workers` is clamped,
//!   not honored);
//! * `--shards N`: run every trial world on the sharded parallel
//!   kernel with N regions (`--scheduler sharded` alone defaults to
//!   2). Stable reports are byte-identical to the single-threaded
//!   schedulers at any shard count — the determinism contract CI
//!   enforces;
//! * `--jsonl`: stream one JSON object per trial to stdout *as each
//!   trial completes* instead of buffering the whole report — long
//!   sweeps become watchable and `tail -f`-able. Errors stream inline
//!   as `{"topology":…,"error":…}` objects.
//! * `--resume prior.jsonl`: skip every cell a previous (possibly
//!   interrupted) `--jsonl` run already completed — a truncated final
//!   line is ignored and error rows are retried. The new output holds
//!   only the remaining cells; append it to the prior file for the
//!   full matrix.
//! * `--invariants`: run the `sc-invariant` convergence-invariant
//!   engine in every trial (off by default so perf trajectories stay
//!   comparable with uninstrumented baselines), report per-class
//!   violation durations, and add a two-replica `replica-crash`
//!   divergence cell to the matrix;
//! * `--chaos`: the fail-safe soak — replace the script library with
//!   the seeded chaos schedule ([`EventScript::chaos`]: primary cut +
//!   lossy control channel + dropped flow-mods + controller
//!   crash/restart + partition) and switch on the robustness stack
//!   (controller keepalive beacons, router liveness deadline, direct
//!   fallback BGP sessions). Chaos events no-op in legacy mode, so the
//!   legacy rows stay the do-no-harm baseline. Stable reports remain
//!   byte-identical across reruns and schedulers — chaos is seeded,
//!   not random;
//! * `--trace`: run every trial with the sc-trace flight recorder on.
//!   Report rows gain the per-cycle causal phase columns
//!   (`detect_us`/`notify_us`/`program_us`/`fib_us`); use the `trace`
//!   binary to export the underlying JSONL/Chrome artifacts;
//! * `--scheduler wheel|heap|sharded`: pick the kernel event scheduler
//!   (the determinism contract says reports are byte-identical across
//!   all of them);
//! * `--stable-csv out.csv` / `--stable-json out.json`: the
//!   byte-reproducible report variants (wall-clock columns blanked) —
//!   what the CI smoke diffs across reruns and schedulers.

use sc_bench::{fig5_label, Args, Table};
use sc_lab::Mode;
use sc_net::SimDuration;
use sc_scenarios::{
    parse_completed_cells, run_suite_resume, EventScript, ScenarioConfig, SuiteConfig, SuiteReport,
    TopologySpec, TrialResult, ViolationClass,
};
use std::io::Write;

fn main() {
    let args = Args::parse();
    let quick = args.flag("--quick");
    let smoke = args.flag("--smoke");
    let jsonl = args.flag("--jsonl");
    let default_prefixes = if smoke {
        300
    } else if quick {
        1_000
    } else {
        10_000
    };
    let prefixes: u32 = args.value("--prefixes", default_prefixes);
    let flows: usize = args.value("--flows", if smoke { 10 } else { 50 });
    let seed: u64 = args.value("--seed", 42);
    let workers: Option<usize> = args.raw_value("--workers").and_then(|v| v.parse().ok());
    let invariants = args.flag("--invariants");
    let chaos = args.flag("--chaos");
    let trace = args.flag("--trace");
    let shards: Option<usize> = args.raw_value("--shards").and_then(|v| v.parse().ok());
    let scheduler = match (args.raw_value("--scheduler").as_deref(), shards) {
        (Some("heap"), _) => sc_sim::SchedulerKind::ReferenceHeap,
        (Some("wheel"), _) => sc_sim::SchedulerKind::TimerWheel,
        (Some("sharded") | None, Some(n)) => sc_sim::SchedulerKind::Sharded { shards: n.max(1) },
        (Some("sharded"), None) => sc_sim::SchedulerKind::Sharded { shards: 2 },
        (None, None) => sc_sim::SchedulerKind::TimerWheel,
        (Some(other), _) => panic!("--scheduler {other:?}: expected wheel|heap|sharded"),
    };

    let topologies = if smoke {
        vec![TopologySpec::Chain {
            providers: 2,
            hops: 1,
        }]
    } else {
        vec![
            TopologySpec::Fig4Lab,
            TopologySpec::Chain {
                providers: 3,
                hops: 2,
            },
            TopologySpec::Ring {
                providers: 3,
                ring: 6,
            },
            TopologySpec::FatTreePod { k: 4 },
            TopologySpec::IxpHub { peers: 6 },
            TopologySpec::Random { seed },
        ]
    };
    let mut scripts = vec![
        EventScript::primary_cut(),
        EventScript::primary_flap(
            if smoke {
                // Long enough for a full down→up→re-converge cycle at
                // smoke scale, so cycle 2 exercises re-advertisement.
                SimDuration::from_secs(3)
            } else {
                SimDuration::from_millis(250)
            },
            if smoke { 2 } else { 3 },
        ),
    ];
    if !quick && !smoke {
        scripts.push(EventScript::primary_crash());
        scripts.push(EventScript::primary_session_reset(SimDuration::from_secs(
            2,
        )));
        scripts.push(EventScript::withdraw_burst(prefixes / 4));
    }
    if invariants {
        // The replica-divergence probe: cut the primary and crash the
        // standby controller replica mid-failover. A no-op in legacy
        // mode (no replicas), so both sides of the cell stay comparable.
        scripts.push(EventScript::replica_crash(1, SimDuration::from_millis(2)));
    }
    if chaos {
        // The soak cell replaces the library: one seeded chaos schedule,
        // both modes. The legacy row ignores every controller-targeted
        // event and anchors the do-no-harm comparison.
        scripts = vec![EventScript::chaos(seed)];
    }
    let suite = SuiteConfig {
        topologies,
        scripts,
        modes: vec![Mode::Stock, Mode::Supercharged],
        base: ScenarioConfig {
            prefixes,
            flows,
            seed,
            scheduler,
            invariants,
            // The shell injects the one sanctioned clock so rows carry
            // the events_per_sec trajectory.
            wall_clock: Some(sc_bench::timing::wall_clock),
            // Two replicas whenever the divergence cell is in the
            // matrix, so `replica_crash(1, …)` has a standby to kill.
            controllers: if invariants { 2 } else { 1 },
            // The robustness stack rides only the chaos soak: keepalive
            // beacons every 10 ms, a 50 ms router-side liveness
            // deadline (must exceed half the BFD detection time so a
            // dead primary is already BFD-stale when degraded recompute
            // quarantines it), and direct fallback BGP sessions so
            // degraded mode has routes to fall back on.
            echo_interval: chaos.then(|| SimDuration::from_millis(10)),
            controller_deadline: chaos.then(|| SimDuration::from_millis(50)),
            fallback_sessions: chaos,
            // Flight recorder on: reports gain the per-cycle causal
            // phase columns (detect/notify/program/fib µs).
            trace,
            ..ScenarioConfig::default()
        },
        workers,
    };
    let trials = suite.topologies.len() * suite.scripts.len() * suite.modes.len();
    let completed = match args.raw_value("--resume") {
        Some(path) => {
            let prior =
                std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("--resume {path}: {e}"));
            parse_completed_cells(&prior)
        }
        None => Vec::new(),
    };
    if !jsonl {
        println!("scenario matrix: {trials} trials at {prefixes} prefixes, {flows} flows\n");
        if !completed.is_empty() {
            println!(
                "resume: skipping {} already-completed cell(s)\n",
                completed.len()
            );
        }
    }

    let (report, elapsed) = sc_bench::timing::timed(|| {
        run_suite_resume(&suite, &completed, |_, result| {
            if !jsonl {
                return;
            }
            let line = match result {
                TrialResult::Ok(row) => SuiteReport::row_json(row).to_string(),
                TrialResult::Err(e) => SuiteReport::error_json(e).to_string(),
            };
            // One locked write per row: rows from parallel workers never
            // interleave mid-line.
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            let _ = writeln!(out, "{line}");
        })
    });

    if !jsonl {
        let mut table = Table::new(&[
            "topology",
            "script",
            "mode",
            "median",
            "p95",
            "max",
            "lost",
            "detect",
            "rewrites",
            "cycles",
            "viol b/l/t",
            "Mev/s",
        ]);
        for row in &report.rows {
            let s = row.stats();
            table.row(vec![
                row.topology.clone(),
                row.script.clone(),
                sc_scenarios::mode_label(row.mode).to_string(),
                fig5_label(s.median),
                fig5_label(s.p95),
                fig5_label(s.max),
                row.unrecovered.to_string(),
                row.detected_at
                    .map(|t| fig5_label(t - row.fail_at))
                    .unwrap_or_else(|| "-".into()),
                row.flow_rewrites
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "-".into()),
                if row.cycles.len() > 1 {
                    // Per-cycle medians: repeated convergence at a glance.
                    row.cycles
                        .iter()
                        .map(|c| fig5_label(c.stats().median))
                        .collect::<Vec<_>>()
                        .join(";")
                } else {
                    "-".into()
                },
                row.invariants
                    .as_ref()
                    .map(|inv| {
                        format!(
                            "{}/{}/{}",
                            fig5_label(inv.total(ViolationClass::Blackhole)),
                            fig5_label(inv.total(ViolationClass::Loop)),
                            fig5_label(inv.total(ViolationClass::Transit)),
                        )
                    })
                    .unwrap_or_else(|| "-".into()),
                format!("{:.1}", row.events_per_sec as f64 / 1e6),
            ]);
        }
        println!("{}", table.render());

        for (topo, script, x) in report.speedups() {
            println!("{topo:<12} {script:<16} {x:>7.0}x median speedup");
        }
        for e in &report.errors {
            eprintln!(
                "TRIAL FAILED {}/{}/{}: {}",
                e.topology,
                e.script,
                sc_scenarios::mode_label(e.mode),
                e.error
            );
        }
        println!("\nwall time: {:.1}s", elapsed.as_secs_f64());
    }

    if let Some(path) = args.raw_value("--csv") {
        std::fs::write(&path, report.to_csv()).expect("write CSV");
        if !jsonl {
            println!("wrote {path}");
        }
    }
    if let Some(path) = args.raw_value("--json") {
        std::fs::write(&path, report.to_json()).expect("write JSON");
        if !jsonl {
            println!("wrote {path}");
        }
    }
    if let Some(path) = args.raw_value("--stable-csv") {
        std::fs::write(&path, report.to_csv_stable()).expect("write stable CSV");
        if !jsonl {
            println!("wrote {path}");
        }
    }
    if let Some(path) = args.raw_value("--stable-json") {
        std::fs::write(&path, report.to_json_stable()).expect("write stable JSON");
        if !jsonl {
            println!("wrote {path}");
        }
    }
    if !report.errors.is_empty() {
        std::process::exit(1);
    }
}
