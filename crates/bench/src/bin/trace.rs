//! **Trace export & metrics dump** — run one traced convergence cell
//! and emit the sc-trace observability artifacts, or diff two metrics
//! dumps.
//!
//! ```text
//! cargo run --release -p sc-bench --bin trace \
//!     [--topology chain|ixp|fig4] [--script cut|flap|chaos] \
//!     [--mode legacy|supercharged|both] [--prefixes N] [--flows N] \
//!     [--seed N] [--scheduler wheel|heap|sharded] [--shards N] \
//!     [--out DIR]
//! cargo run --release -p sc-bench --bin trace -- --diff A.json B.json
//! ```
//!
//! The run form executes the cell with the flight recorder on and
//! prints the per-cycle causal phase breakdown (detect → notify →
//! program → fib, summing exactly to each cycle's measured
//! convergence) plus the top metrics counters. With `--out DIR` it
//! writes, per mode:
//!
//! * `<mode>.trace.jsonl` — one JSON object per trace record;
//! * `<mode>.trace.json` — Chrome `trace_event` format: open in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`;
//! * `<mode>.metrics.json` — the counters/histograms registry.
//!
//! Every artifact is byte-reproducible across reruns and schedulers
//! (`kernel.*` self-metrics excepted — those describe the execution
//! engine and exist only on the kernel that has them).
//!
//! The `--diff` form compares the `counters` section of two metrics
//! dumps and prints one line per differing counter — the quickest way
//! to see what a config change did to the pipeline (e.g. legacy vs
//! supercharged flow-mod traffic, or retry counts under chaos).

use sc_bench::{fig5_label, Args, Table};
use sc_lab::Mode;
use sc_net::SimDuration;
use sc_scenarios::{
    mode_label, run_scenario_traced, EventScript, ScenarioConfig, TopologySpec, TraceArtifacts,
};

fn main() {
    let args = Args::parse();
    if args.flag("--diff") {
        let files: Vec<String> = std::env::args()
            .skip_while(|a| a != "--diff")
            .skip(1)
            .take(2)
            .collect();
        let [a, b] = files.as_slice() else {
            eprintln!("--diff needs two metrics.json paths");
            std::process::exit(2);
        };
        diff_metrics(a, b);
        return;
    }

    let prefixes: u32 = args.value("--prefixes", 1_000);
    let flows: usize = args.value("--flows", 20);
    let seed: u64 = args.value("--seed", 42);
    let chaos = args.raw_value("--script").as_deref() == Some("chaos");
    let shards: Option<usize> = args.raw_value("--shards").and_then(|v| v.parse().ok());
    let scheduler = match (args.raw_value("--scheduler").as_deref(), shards) {
        (Some("heap"), _) => sc_sim::SchedulerKind::ReferenceHeap,
        (Some("wheel"), _) => sc_sim::SchedulerKind::TimerWheel,
        (Some("sharded") | None, Some(n)) => sc_sim::SchedulerKind::Sharded { shards: n.max(1) },
        (Some("sharded"), None) => sc_sim::SchedulerKind::Sharded { shards: 2 },
        (None, None) => sc_sim::SchedulerKind::TimerWheel,
        (Some(other), _) => panic!("--scheduler {other:?}: expected wheel|heap|sharded"),
    };
    let topo = match args.raw_value("--topology").as_deref() {
        Some("ixp") => TopologySpec::IxpHub { peers: 4 },
        Some("fig4") => TopologySpec::Fig4Lab,
        Some("chain") | None => TopologySpec::Chain {
            providers: 2,
            hops: 1,
        },
        Some(other) => panic!("--topology {other:?}: expected chain|ixp|fig4"),
    };
    let script = match args.raw_value("--script").as_deref() {
        Some("flap") => EventScript::primary_flap(SimDuration::from_secs(3), 2),
        Some("chaos") => EventScript::chaos(seed),
        Some("cut") | None => EventScript::primary_cut(),
        Some(other) => panic!("--script {other:?}: expected cut|flap|chaos"),
    };
    let modes: Vec<Mode> = match args.raw_value("--mode").as_deref() {
        Some("legacy") => vec![Mode::Stock],
        Some("supercharged") => vec![Mode::Supercharged],
        Some("both") | None => vec![Mode::Stock, Mode::Supercharged],
        Some(other) => panic!("--mode {other:?}: expected legacy|supercharged|both"),
    };
    let cfg = ScenarioConfig {
        prefixes,
        flows,
        seed,
        scheduler,
        trace: true,
        // The chaos preset switches on the full robustness stack, like
        // the scenarios binary's --chaos soak.
        echo_interval: chaos.then(|| SimDuration::from_millis(10)),
        controller_deadline: chaos.then(|| SimDuration::from_millis(50)),
        fallback_sessions: chaos,
        ..ScenarioConfig::default()
    };
    let out_dir = args.raw_value("--out");
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("--out dir");
    }

    let mut table = Table::new(&[
        "mode", "cycle", "conv", "detect", "notify", "program", "fib", "records",
    ]);
    for mode in modes {
        let (out, art) = run_scenario_traced(&topo, &script, mode, &cfg);
        let art = art.expect("trace enabled");
        let records = art.jsonl.lines().count().saturating_sub(1); // header line
        for (i, c) in out.cycles.iter().enumerate() {
            let conv = c
                .per_flow
                .iter()
                .copied()
                .max()
                .unwrap_or(SimDuration::ZERO);
            let ph = |d: Option<SimDuration>| d.map(fig5_label).unwrap_or_else(|| "-".into());
            table.row(vec![
                mode_label(mode).to_string(),
                i.to_string(),
                fig5_label(conv),
                ph(c.phases.as_ref().map(|p| p.detect)),
                ph(c.phases.as_ref().map(|p| p.notify)),
                ph(c.phases.as_ref().map(|p| p.program)),
                ph(c.phases.as_ref().map(|p| p.fib)),
                if i == 0 {
                    records.to_string()
                } else {
                    String::new()
                },
            ]);
        }
        if let Some(dir) = &out_dir {
            write_artifacts(dir, mode_label(mode), &art);
        } else {
            println!("-- {} counters --", mode_label(mode));
            for (k, v) in parse_counters(&art.metrics_json) {
                println!("{k:<28} {v}");
            }
        }
    }
    println!("{}", table.render());
    if let Some(dir) = &out_dir {
        println!("artifacts in {dir}/ — open the .trace.json in Perfetto");
    }
}

fn write_artifacts(dir: &str, mode: &str, art: &TraceArtifacts) {
    for (suffix, body) in [
        ("trace.jsonl", &art.jsonl),
        ("trace.json", &art.chrome),
        ("metrics.json", &art.metrics_json),
    ] {
        let path = format!("{dir}/{mode}.{suffix}");
        std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}

/// Pull the flat `"counters":{"name":value,…}` section out of a
/// registry dump. The format is ours and stable (sorted, integers
/// only), so a hand parser beats a serde dependency.
fn parse_counters(metrics_json: &str) -> Vec<(String, u64)> {
    let Some(start) = metrics_json.find("\"counters\":{") else {
        return Vec::new();
    };
    let body = &metrics_json[start + "\"counters\":{".len()..];
    let Some(end) = body.find('}') else {
        return Vec::new();
    };
    body[..end]
        .split(',')
        .filter_map(|pair| {
            let (k, v) = pair.split_once(':')?;
            Some((k.trim_matches('"').to_string(), v.parse().ok()?))
        })
        .collect()
}

fn diff_metrics(a_path: &str, b_path: &str) {
    let read = |p: &str| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("{p}: {e}"));
    let a: std::collections::BTreeMap<String, u64> =
        parse_counters(&read(a_path)).into_iter().collect();
    let b: std::collections::BTreeMap<String, u64> =
        parse_counters(&read(b_path)).into_iter().collect();
    let mut any = false;
    for k in a
        .keys()
        .chain(b.keys())
        .collect::<std::collections::BTreeSet<_>>()
    {
        let (va, vb) = (
            a.get(k).copied().unwrap_or(0),
            b.get(k).copied().unwrap_or(0),
        );
        if va != vb {
            any = true;
            let delta = vb as i128 - va as i128;
            println!("{k:<28} {va:>10} -> {vb:<10} ({delta:+})");
        }
    }
    if !any {
        println!("counters identical");
    }
}
