//! The control-plane churn bench world used by `sc-bench perf --churn`.
//!
//! Topology: R1 ← K provider routers, one point-to-point link each.
//! Every provider originates a full feed over the shared prefix
//! universe; the primary (highest LOCAL_PREF) provider then runs a long
//! pre-scheduled script of withdraw/re-announce micro-bursts. The world
//! therefore exercises exactly the control-plane fast path this
//! workspace optimizes:
//!
//! * **timer-dense kernel** — per-session BFD at millisecond intervals,
//!   channel retransmission timers, and thousands of pre-scheduled
//!   control events keep the event queue deep, which is where the
//!   timer wheel earns its keep over the reference heap;
//! * **BGP encode under load** — every burst re-encodes UPDATEs over
//!   live sessions (the zero-alloc `encode_into` path, or the legacy
//!   fresh-`Vec` path when `legacy_encode` reconstructs the
//!   pre-refactor baseline);
//! * **bulk RIB/FIB application** — each withdraw/re-announce flips the
//!   best route for a slice of the table, driving `LocRib` batch
//!   updates and zero-cost `FibWalker` batch drains.
//!
//! Every quantity is a pure function of the parameters; the event
//! stream is identical across schedulers and encode modes (regression-
//! tested), so `events/s` comparisons measure kernel cost alone.

use sc_bfd::BfdConfig;
use sc_bgp::msg::UpdateMsg;
use sc_net::{Ipv4Addr, Ipv4Prefix, MacAddr, SimDuration, SimTime};
use sc_routegen::{generate_feed_for, prefix_universe, FeedConfig};
use sc_router::{Calibration, Interface, LegacyRouter, PeerConfig, RouterConfig};
use sc_sim::{LinkParams, NodeId, SchedulerKind, World};

fn r1_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, i as u8, 0, 1)
}

fn provider_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, i as u8, 0, 2)
}

fn r1_mac(i: usize) -> MacAddr {
    MacAddr([0x02, 0x10, 0, 0, i as u8, 1])
}

fn provider_mac(i: usize) -> MacAddr {
    MacAddr([0x02, 0x40, 0, 0, i as u8, 2])
}

fn subnet(i: usize) -> Ipv4Prefix {
    Ipv4Prefix::new(Ipv4Addr::new(10, i as u8, 0, 0), 24)
}

/// Parameters of the churn bench world.
#[derive(Clone, Copy, Debug)]
pub struct ChurnParams {
    /// Prefixes in the shared universe (every provider's feed size).
    pub prefixes: u32,
    /// Provider sessions (each with BFD).
    pub providers: usize,
    /// Withdraw/re-announce micro-bursts on the primary provider.
    pub bursts: u32,
    /// Prefixes withdrawn (then re-announced) per burst.
    pub burst_prefixes: u32,
    /// Burst period; the re-announcement lands half a period in.
    pub interval: SimDuration,
    /// BFD transmit interval on every session.
    pub bfd_interval: SimDuration,
    pub seed: u64,
    /// Event scheduler for the world (the comparison axis).
    pub scheduler: SchedulerKind,
    /// Route outgoing BGP messages through the original fresh-`Vec`
    /// encode path instead of the zero-alloc one (baseline runs).
    pub legacy_encode: bool,
    /// Replicated churn cells (see [`build_churn_world`]). Cell `c`
    /// lands on shard `c % shards` under a sharded scheduler; 1 = the
    /// classic single-star world.
    pub cells: usize,
}

impl ChurnParams {
    /// Full-feed scale: every provider loads a full table, then a long
    /// timer-dense churn regime (12 BFD'd sessions at 500 µs, 3000
    /// pre-scheduled micro-bursts) — the BFD-storm/churn-script shape
    /// the timer wheel exists for.
    pub fn paper() -> ChurnParams {
        ChurnParams {
            prefixes: 2_000,
            providers: 12,
            bursts: 3_000,
            burst_prefixes: 10,
            interval: SimDuration::from_millis(2),
            bfd_interval: SimDuration::from_micros(500),
            seed: 42,
            scheduler: SchedulerKind::default(),
            legacy_encode: false,
            cells: 1,
        }
    }

    /// Seconds-scale CI variant.
    pub fn smoke() -> ChurnParams {
        ChurnParams {
            prefixes: 1_000,
            providers: 8,
            bursts: 500,
            burst_prefixes: 20,
            interval: SimDuration::from_millis(2),
            bfd_interval: SimDuration::from_millis(1),
            seed: 42,
            scheduler: SchedulerKind::default(),
            legacy_encode: false,
            cells: 1,
        }
    }
}

/// A wired churn world plus the ids and horizon a driver needs.
pub struct ChurnWorld {
    pub world: World,
    pub r1: NodeId,
    pub providers: Vec<NodeId>,
    /// When the last scheduled burst (plus settle tail) has drained.
    pub end: SimTime,
}

/// Build the churn world with every burst pre-scheduled.
///
/// With `cells > 1` the star is replicated: each cell is an
/// independent R1-plus-providers island running the same full-feed and
/// churn script, and neighbouring cells' R1s are joined by idle 200 µs
/// links. The idle links carry no traffic but bound the sharded
/// kernel's conservative lookahead, so a multi-cell run exercises the
/// real windowed executor while staying embarrassingly balanced —
/// cell `c` lands on shard `c % shards`. A single-cell sharded run
/// instead spreads the providers round-robin across shards (R1 stays
/// on shard 0), which pushes every UPDATE and BFD frame across a
/// shard boundary.
pub fn build_churn_world(p: ChurnParams) -> ChurnWorld {
    assert!(p.providers >= 1 && p.providers < 200);
    let cells = p.cells.max(1);
    let universe = prefix_universe(p.prefixes, p.seed);
    let mut world = World::with_scheduler(p.seed, p.scheduler);
    let link = LinkParams::gigabit(SimDuration::from_micros(50));

    let feeds: Vec<Vec<UpdateMsg>> = (0..p.providers)
        .map(|i| {
            generate_feed_for(
                &FeedConfig::new(p.prefixes, p.seed, provider_ip(i), 65100 + i as u16),
                &universe,
            )
        })
        .collect();

    // Churn script: rotating slices of the primary's table are
    // withdrawn and re-announced half a period later. Pre-scheduling
    // every burst keeps thousands of control events pending — the deep
    // queue a scripted scenario sweep really produces.
    let start = SimTime::from_secs(2); // comfortably past full-feed convergence
    let slice = (p.burst_prefixes as usize).min(universe.len());
    let slices = (universe.len() / slice.max(1)).max(1);
    let reannounce_for = |s: usize| -> Vec<UpdateMsg> {
        let lo = s * slice;
        let targets = &universe[lo..(lo + slice).min(universe.len())];
        feeds[0]
            .iter()
            .filter_map(|u| {
                let nlri: Vec<Ipv4Prefix> = u
                    .nlri
                    .iter()
                    .copied()
                    .filter(|p| targets.contains(p))
                    .collect();
                (!nlri.is_empty()).then(|| UpdateMsg {
                    withdrawn: Vec::new(),
                    attrs: u.attrs.clone(),
                    nlri,
                })
            })
            .collect()
    };
    let withdraw_for = |s: usize| -> Vec<UpdateMsg> {
        let lo = s * slice;
        vec![UpdateMsg::withdraw(
            universe[lo..(lo + slice).min(universe.len())].to_vec(),
        )]
    };
    let per_slice: Vec<(Vec<UpdateMsg>, Vec<UpdateMsg>)> = (0..slices)
        .map(|s| (withdraw_for(s), reannounce_for(s)))
        .collect();

    let mut cell_r1s = Vec::with_capacity(cells);
    let mut first_providers = Vec::new();
    for c in 0..cells {
        let cell_name = |base: String| {
            if c == 0 {
                base
            } else {
                format!("c{c}-{base}")
            }
        };
        let r1 = world.add_node(LegacyRouter::new(RouterConfig {
            name: cell_name("r1".into()),
            asn: 65001,
            router_id: Ipv4Addr::new(1, 1, 1, 1),
            cal: Calibration::instant(),
        }));
        let providers: Vec<NodeId> = (0..p.providers)
            .map(|i| {
                world.add_node(LegacyRouter::new(RouterConfig {
                    name: cell_name(format!("provider-{i}")),
                    asn: 65100 + i as u16,
                    router_id: provider_ip(i),
                    cal: Calibration::instant(),
                }))
            })
            .collect();

        for i in 0..p.providers {
            let (_, r1_port, prov_port) = world.connect(r1, providers[i], link);
            let bfd = BfdConfig {
                local_discr: (10 + i) as u32,
                desired_min_tx: p.bfd_interval,
                required_min_rx: p.bfd_interval,
                detect_mult: 3,
            };
            {
                let r1n = world.node_mut::<LegacyRouter>(r1);
                let iface = r1n.add_interface(Interface {
                    port: r1_port,
                    ip: r1_ip(i),
                    mac: r1_mac(i),
                    subnet: subnet(i),
                });
                r1n.add_peer(PeerConfig {
                    // Provider 0 is the primary: its churn flips best routes.
                    local_pref: if i == 0 { 200 } else { 100 },
                    local_port: (40000 + i) as u16,
                    remote_port: 179,
                    bfd: Some(BfdConfig {
                        local_discr: (100 + i) as u32,
                        ..bfd
                    }),
                    iface,
                    ..PeerConfig::ebgp(provider_ip(i), provider_mac(i), true)
                });
                r1n.set_zero_alloc_encode(!p.legacy_encode);
            }
            {
                let pn = world.node_mut::<LegacyRouter>(providers[i]);
                pn.add_interface(Interface {
                    port: prov_port,
                    ip: provider_ip(i),
                    mac: provider_mac(i),
                    subnet: subnet(i),
                });
                pn.add_peer(PeerConfig {
                    local_port: 179,
                    remote_port: (40000 + i) as u16,
                    bfd: Some(bfd),
                    originate: feeds[i].clone(),
                    ..PeerConfig::ebgp(r1_ip(i), r1_mac(i), false)
                });
                pn.set_zero_alloc_encode(!p.legacy_encode);
            }
        }

        let primary = providers[0];
        for b in 0..p.bursts {
            let at = start + p.interval * b as u64;
            let (w, r) = &per_slice[b as usize % slices];
            schedule_injection(&mut world, primary, at, w.clone());
            schedule_injection(&mut world, primary, at + p.interval / 2, r.clone());
        }

        cell_r1s.push(r1);
        if c == 0 {
            first_providers = providers;
        }
    }

    // Idle inter-cell ring: no frames ever traverse these links (the
    // ports have no interfaces), but under a sharded scheduler they
    // bound the conservative lookahead to a genuine 200 µs horizon.
    if cells > 1 {
        let ring = LinkParams::with_latency(SimDuration::from_micros(200));
        for c in 0..cells {
            world.connect(cell_r1s[c], cell_r1s[(c + 1) % cells], ring);
            if cells == 2 {
                break; // two cells need one link, not a doubled pair
            }
        }
    }

    if let SchedulerKind::Sharded { shards } = p.scheduler {
        let shards = shards.max(1);
        let per_cell = 1 + p.providers;
        let n = cells * per_cell;
        let map: Vec<u32> = if cells > 1 {
            (0..n).map(|i| ((i / per_cell) % shards) as u32).collect()
        } else {
            (0..n)
                .map(|i| if i == 0 { 0 } else { ((i - 1) % shards) as u32 })
                .collect()
        };
        world.set_shard_map(map);
    }

    let end = start + p.interval * p.bursts as u64 + SimDuration::from_millis(200);

    ChurnWorld {
        world,
        r1: cell_r1s[0],
        providers: first_providers,
        end,
    }
}

fn schedule_injection(world: &mut World, node: NodeId, at: SimTime, updates: Vec<UpdateMsg>) {
    world.schedule(at, move |w| {
        let tokens = w.node_mut::<LegacyRouter>(node).inject_updates(&updates);
        let now = w.now();
        for tok in tokens {
            w.wake_node(now, node, tok);
        }
    });
}

/// The measured outcome of one churn run.
#[derive(Clone, Copy, Debug)]
pub struct ChurnMeasurement {
    pub events: u64,
    pub wall: std::time::Duration,
    pub updates_processed: u64,
    pub fib_ops_applied: u64,
}

impl ChurnMeasurement {
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Drive a churn world to its horizon, timing the run.
pub fn run_churn(cw: &mut ChurnWorld) -> ChurnMeasurement {
    let ((), wall) = crate::timing::timed(|| cw.world.run_until(cw.end));
    let r1 = cw.world.node::<LegacyRouter>(cw.r1);
    ChurnMeasurement {
        events: cw.world.stats().events_processed,
        wall,
        updates_processed: r1.stats.updates_processed,
        fib_ops_applied: r1.walker().ops_applied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_router::LegacyRouter;

    fn tiny() -> ChurnParams {
        ChurnParams {
            prefixes: 300,
            providers: 2,
            bursts: 20,
            burst_prefixes: 50,
            interval: SimDuration::from_millis(2),
            bfd_interval: SimDuration::from_millis(5),
            seed: 7,
            scheduler: SchedulerKind::default(),
            legacy_encode: false,
            cells: 1,
        }
    }

    #[test]
    fn churn_world_converges_and_churns() {
        let mut cw = build_churn_world(tiny());
        let m = run_churn(&mut cw);
        let r1 = cw.world.node::<LegacyRouter>(cw.r1);
        // Full feed installed from both providers (plus one connected
        // subnet per interface), churn processed.
        assert_eq!(r1.fib().len(), 300 + 2);
        assert_eq!(r1.rib().route_count(), 2 * 300);
        assert!(r1.stats.updates_processed > 40, "churn UPDATEs flowed");
        assert!(
            m.fib_ops_applied >= 300 + 2 * 20 * 50,
            "churn rewrote the FIB"
        );
        assert!(m.events > 1_000);
    }

    /// Scheduler choice and encode path are pure kernel-cost knobs: the
    /// event stream and every router-visible outcome must be identical.
    #[test]
    fn churn_world_is_invariant_under_scheduler_and_encode() {
        let base = {
            let mut cw = build_churn_world(tiny());
            run_churn(&mut cw)
        };
        for (sched, legacy) in [
            (SchedulerKind::ReferenceHeap, false),
            (SchedulerKind::TimerWheel, true),
            (SchedulerKind::ReferenceHeap, true),
            (SchedulerKind::Sharded { shards: 1 }, false),
            (SchedulerKind::Sharded { shards: 2 }, false),
            (SchedulerKind::Sharded { shards: 3 }, true),
        ] {
            let mut cw = build_churn_world(ChurnParams {
                scheduler: sched,
                legacy_encode: legacy,
                ..tiny()
            });
            let m = run_churn(&mut cw);
            assert_eq!(m.events, base.events, "{sched:?} legacy={legacy}");
            assert_eq!(m.updates_processed, base.updates_processed);
            assert_eq!(m.fib_ops_applied, base.fib_ops_applied);
        }
    }

    /// Multi-cell worlds replicate the workload per cell and stay
    /// executor-invariant: any shard count reproduces the serial
    /// reference run event for event.
    #[test]
    fn multi_cell_churn_is_shard_invariant() {
        let p = ChurnParams { cells: 3, ..tiny() };
        let base = {
            let mut cw = build_churn_world(p);
            run_churn(&mut cw)
        };
        let single = {
            let mut cw = build_churn_world(tiny());
            run_churn(&mut cw)
        };
        // Cells are independent islands running identical scripts.
        assert!(base.events > 2 * single.events, "3 cells ≈ 3× the work");
        assert_eq!(base.updates_processed, single.updates_processed);
        for shards in [2, 3, 8] {
            let mut cw = build_churn_world(ChurnParams {
                scheduler: SchedulerKind::Sharded { shards },
                ..p
            });
            let m = run_churn(&mut cw);
            assert_eq!(m.events, base.events, "shards={shards}");
            assert_eq!(m.updates_processed, base.updates_processed);
            assert_eq!(m.fib_ops_applied, base.fib_ops_applied);
        }
    }
}
