//! The end-to-end data-plane forwarding world used by `sc-bench perf`
//! and the `dataplane` Criterion benchmark.
//!
//! Topology: traffic source → R1 (full FIB, static routes) → sink. The
//! router exercises exactly the per-packet pipeline the scenario suite
//! pays for every probe — Ethernet/IPv4 parse, LPM (or flow-cache hit),
//! ARP resolution, MAC rewrite, TTL decrement — without any
//! control-plane activity, so wall-clock events/sec measures the frame
//! path itself. Every quantity is a pure function of the arguments;
//! only the wall-clock readings differ between runs.

use sc_net::{Ipv4Addr, MacAddr, SimDuration, SimTime};
use sc_routegen::{prefix_universe, sample_flow_ips};
use sc_router::{Calibration, Interface, LegacyRouter, RouterConfig, StaticRoute};
use sc_sim::{LinkParams, NodeId, PortId, World};
use sc_traffic::{SinkConfig, SourceConfig, TrafficSink, TrafficSource};

const MAC_SOURCE: MacAddr = MacAddr([0x02, 0xaa, 0, 0, 0, 1]);
const MAC_R1_LAN: MacAddr = MacAddr([0x02, 0x10, 0, 0, 0, 1]);
const MAC_R1_SINK: MacAddr = MacAddr([0x02, 0x10, 0, 0, 0, 2]);
const MAC_SINK: MacAddr = MacAddr([0x02, 0xbb, 0, 0, 0, 1]);
const IP_SOURCE: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);
const IP_R1_LAN: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const IP_R1_SINK: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);
const IP_SINK: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 100);

/// A wired source → router → sink world plus the ids a driver needs.
pub struct ForwardingWorld {
    pub world: World,
    pub source: NodeId,
    pub router: NodeId,
    pub sink: NodeId,
    /// When the source stops transmitting.
    pub stop: SimTime,
}

/// Parameters of the forwarding benchmark world.
#[derive(Clone, Copy, Debug)]
pub struct FwdParams {
    /// FIB size (static routes over the synthetic prefix universe).
    pub prefixes: u32,
    /// Monitored flows (one destination IP each).
    pub flows: usize,
    /// Probe rate per flow.
    pub rate_pps: u64,
    /// Transmission window length (virtual time).
    pub window: SimDuration,
    pub seed: u64,
    /// Event scheduler for the world (kernel-cost comparison axis; the
    /// event stream is identical either way).
    pub scheduler: sc_sim::SchedulerKind,
}

impl FwdParams {
    /// Paper-scale load: 10k-prefix FIB, 100 flows × 14 kpps.
    pub fn paper() -> FwdParams {
        FwdParams {
            prefixes: 10_000,
            flows: 100,
            rate_pps: 14_000,
            window: SimDuration::from_secs(1),
            seed: 42,
            scheduler: sc_sim::SchedulerKind::default(),
        }
    }

    /// Seconds-scale CI variant.
    pub fn smoke() -> FwdParams {
        FwdParams {
            prefixes: 1_000,
            flows: 20,
            rate_pps: 14_000,
            window: SimDuration::from_millis(250),
            seed: 42,
            scheduler: sc_sim::SchedulerKind::default(),
        }
    }
}

/// Build the forwarding world. The router's FIB is pre-populated with
/// one static route per universe prefix (all toward the sink), so every
/// probe traverses a full-size LPM table.
pub fn build_forwarding_world(p: FwdParams) -> ForwardingWorld {
    let universe = prefix_universe(p.prefixes, p.seed);
    let flow_ips = sample_flow_ips(&universe, p.flows, p.seed);
    let start = SimTime::from_millis(10);
    let stop = start + p.window;

    let mut world = World::with_scheduler(p.seed, p.scheduler);
    let source = world.add_node(TrafficSource::new(
        SourceConfig {
            name: "src".into(),
            mac: MAC_SOURCE,
            ip: IP_SOURCE,
            gateway_mac: MAC_R1_LAN,
            flows: flow_ips.clone(),
            rate_pps: p.rate_pps,
            start,
            stop,
            payload_len: 22,
        },
        PortId(0),
    ));
    let router = world.add_node(LegacyRouter::new(RouterConfig {
        name: "r1".into(),
        asn: 65000,
        router_id: IP_R1_LAN,
        cal: Calibration::instant(),
    }));
    let sink = world.add_node(TrafficSink::new(SinkConfig::paper("sink", flow_ips)));

    // Connection order fixes the port numbering: source:0 ↔ r1:0,
    // r1:1 ↔ sink:0.
    let latency = LinkParams::with_latency(SimDuration::from_micros(10));
    world.connect(source, router, latency);
    world.connect(router, sink, latency);

    {
        let r1 = world.node_mut::<LegacyRouter>(router);
        r1.add_interface(Interface {
            port: PortId(0),
            ip: IP_R1_LAN,
            mac: MAC_R1_LAN,
            subnet: "10.0.0.0/24".parse().unwrap(),
        });
        r1.add_interface(Interface {
            port: PortId(1),
            ip: IP_R1_SINK,
            mac: MAC_R1_SINK,
            subnet: "10.1.0.0/24".parse().unwrap(),
        });
        for prefix in universe {
            r1.add_static_route(StaticRoute {
                prefix,
                next_hop: IP_SINK,
            });
        }
        r1.add_static_arp(IP_SINK, MAC_SINK);
        r1.add_static_arp(IP_SOURCE, MAC_SOURCE);
    }

    ForwardingWorld {
        world,
        source,
        router,
        sink,
        stop,
    }
}

/// The measured outcome of one forwarding run.
#[derive(Clone, Copy, Debug)]
pub struct FwdMeasurement {
    pub events: u64,
    pub wall: std::time::Duration,
    pub packets_sent: u64,
    pub packets_forwarded: u64,
}

impl FwdMeasurement {
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    pub fn packets_per_sec(&self) -> f64 {
        self.packets_forwarded as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Drive a forwarding world to the end of its window, timing the run.
pub fn run_forwarding(fw: &mut ForwardingWorld) -> FwdMeasurement {
    let end = fw.stop + SimDuration::from_millis(50);
    let ((), wall) = crate::timing::timed(|| fw.world.run_until(end));
    let sent = fw.world.node::<TrafficSource>(fw.source).packets_sent;
    let forwarded = fw.world.node::<LegacyRouter>(fw.router).stats.forwarded;
    FwdMeasurement {
        events: fw.world.stats().events_processed,
        wall,
        packets_sent: sent,
        packets_forwarded: forwarded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_probe_is_forwarded_and_counted() {
        let mut fw = build_forwarding_world(FwdParams {
            prefixes: 200,
            flows: 5,
            rate_pps: 1_000,
            window: SimDuration::from_millis(100),
            seed: 7,
            scheduler: sc_sim::SchedulerKind::default(),
        });
        let m = run_forwarding(&mut fw);
        assert_eq!(m.packets_sent, 5 * 100, "1 kpps × 5 flows × 100 ms");
        assert_eq!(m.packets_forwarded, m.packets_sent, "no drops");
        let sink = fw.world.node::<TrafficSink>(fw.sink);
        assert_eq!(sink.active_flows(), 5);
        assert_eq!(sink.unexpected_packets, 0);
        assert!(m.events > m.packets_sent, "≥1 event per packet hop");
    }
}
