//! Shared helpers for the benchmark binaries (table rendering, argument
//! parsing). The binaries themselves live in `src/bin/` — one per
//! table/figure of the paper — and the Criterion micro-benchmarks in
//! `benches/`.

pub mod churn;
pub mod fwd;
pub mod replay;
pub mod timing;

use sc_net::SimDuration;

/// Render a duration the way the paper's Fig. 5 labels do: seconds with
/// one decimal above 1 s, milliseconds below.
pub fn fig5_label(d: SimDuration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.0}ms", s * 1e3)
    }
}

/// A fixed-width text table writer for terminal output.
pub struct Table {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        let header: Vec<String> = header.iter().map(|s| s.to_string()).collect();
        Table {
            widths: header.iter().map(|h| h.len()).collect(),
            rows: vec![header],
        }
    }

    pub fn row(&mut self, fields: Vec<String>) {
        assert_eq!(fields.len(), self.widths.len(), "ragged table row");
        for (w, f) in self.widths.iter_mut().zip(&fields) {
            *w = (*w).max(f.len());
        }
        self.rows.push(fields);
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, row) in self.rows.iter().enumerate() {
            let cells: Vec<String> = row
                .iter()
                .zip(&self.widths)
                .map(|(f, w)| format!("{f:>w$}"))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
            if i == 0 {
                let total: usize = self.widths.iter().sum::<usize>() + 2 * (self.widths.len() - 1);
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }
}

/// The `events_per_sec` of the `after` entry in a merged
/// `BENCH_PR*.json` trajectory file (or the only entry of a flat run
/// file). Shared by every bench binary's `--check` gate.
pub fn committed_events_per_sec(json: &str) -> Option<u64> {
    let tail = match json.find("\"after\":") {
        Some(at) => &json[at..],
        None => json,
    };
    let needle = "\"events_per_sec\":";
    let at = tail.find(needle)? + needle.len();
    let digits: String = tail[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// The `--check FILE [--tolerance PCT]` regression gate shared by the
/// bench binaries: compare a measured events/s against the committed
/// trajectory point in `path` and exit 1 on a regression beyond the
/// tolerance (percent). Tolerance-gated, not exact-match, so
/// run-to-run jitter does not flake the build.
pub fn check_perf_gate(path: &str, events_per_sec: u64, tolerance_pct: u64) {
    let committed = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let reference = committed_events_per_sec(&committed).expect("no events_per_sec in check file");
    let floor = reference * (100 - tolerance_pct.min(99)) / 100;
    if events_per_sec < floor {
        eprintln!(
            "PERF REGRESSION: {events_per_sec} events/s < {floor} \
             ({tolerance_pct}% below committed {reference} in {path})"
        );
        std::process::exit(1);
    }
    eprintln!(
        "perf check ok: {events_per_sec} events/s >= {floor} \
         (committed {reference} in {path}, tolerance {tolerance_pct}%)"
    );
}

/// Tiny argument helper: `--key value` and `--flag`.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn parse() -> Args {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    pub fn value<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.raw_value(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// The raw value following `--key`, if present.
    pub fn raw_value(&self, name: &str) -> Option<String> {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(fig5_label(SimDuration::from_millis(150)), "150ms");
        assert_eq!(fig5_label(SimDuration::from_millis(140_900)), "140.9s");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["12345".into(), "x".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("bbbb"));
        assert!(lines[2].ends_with("   x"));
    }
}
