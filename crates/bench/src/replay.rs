//! The MRT replay bench world used by `sc-bench replay`.
//!
//! Topology: R1 ← K provider routers, one point-to-point link each,
//! BFD on every session — the same control-plane shape as the churn
//! bench (`sc-bench perf --churn`), but driven by *recorded* data end
//! to end:
//!
//! * the provider tables come from an MRT `TABLE_DUMP_V2` snapshot
//!   parsed through `sc_mrt::RibSnapshot` (next-hops rewritten to the
//!   owning provider, attribute runs re-shared);
//! * the churn comes from a `BGP4MP_ET` update trace compiled through
//!   `sc_mrt::ReplaySchedule` — every injection lands at its recorded
//!   (optionally time-warped) instant, entering the world through the
//!   kernel `Scheduler` like any other event.
//!
//! By default both archives are *generated* at paper scale by
//! `sc_routegen::mrt` (in memory — the parser and replay compiler are
//! part of what's measured); `--fixture` runs the small committed
//! fixtures instead. Every quantity is a pure function of the
//! parameters, and the event stream is invariant across schedulers and
//! encode modes (regression-tested), so events/s ratios isolate kernel
//! cost exactly as the other trajectory points do.

use sc_bfd::BfdConfig;
use sc_bgp::msg::UpdateMsg;
use sc_mrt::{NextHopRewriter, ReplaySchedule, RibSnapshot, TimeScale};
use sc_net::{Ipv4Addr, Ipv4Prefix, MacAddr, SimDuration, SimTime};
use sc_routegen::mrt::MrtExportConfig;
use sc_router::{Calibration, Interface, LegacyRouter, PeerConfig, RouterConfig};
use sc_sim::{LinkParams, NodeId, SchedulerKind, World};

fn r1_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, i as u8, 0, 1)
}

fn provider_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, i as u8, 0, 2)
}

fn r1_mac(i: usize) -> MacAddr {
    MacAddr([0x02, 0x10, 0, 0, i as u8, 1])
}

fn provider_mac(i: usize) -> MacAddr {
    MacAddr([0x02, 0x40, 0, 0, i as u8, 2])
}

fn subnet(i: usize) -> Ipv4Prefix {
    Ipv4Prefix::new(Ipv4Addr::new(10, i as u8, 0, 0), 24)
}

/// Parameters of the replay bench world.
#[derive(Clone, Copy, Debug)]
pub struct ReplayParams {
    /// Prefixes in the generated snapshot (ignored with fixtures).
    pub prefixes: u32,
    /// Provider sessions; also the generated snapshot's peer count.
    pub providers: usize,
    /// Bursts in the generated update trace.
    pub bursts: u32,
    /// Prefixes withdrawn/re-announced per burst.
    pub burst_prefixes: u32,
    /// Mean recorded quiet gap between bursts (µs, jittered ±50%).
    pub burst_gap_us: u64,
    /// BFD transmit interval on every session.
    pub bfd_interval: SimDuration,
    /// Warp on recorded inter-arrival gaps.
    pub time_scale: TimeScale,
    pub seed: u64,
    /// Event scheduler for the world (the comparison axis).
    pub scheduler: SchedulerKind,
    /// Route outgoing BGP messages through the legacy fresh-`Vec`
    /// encode path (baseline runs).
    pub legacy_encode: bool,
}

impl ReplayParams {
    /// Paper-scale: full recorded tables on 12 BFD'd sessions, a 3000-
    /// burst recorded trace at millisecond inter-arrivals — the same
    /// timer-dense regime as the churn trajectory point, but sourced
    /// from MRT end to end.
    pub fn paper() -> ReplayParams {
        ReplayParams {
            prefixes: 2_000,
            providers: 12,
            bursts: 3_000,
            burst_prefixes: 10,
            burst_gap_us: 2_000,
            bfd_interval: SimDuration::from_micros(500),
            time_scale: TimeScale::REAL,
            seed: 42,
            scheduler: SchedulerKind::default(),
            legacy_encode: false,
        }
    }

    /// Seconds-scale CI variant.
    pub fn smoke() -> ReplayParams {
        ReplayParams {
            prefixes: 1_000,
            providers: 8,
            bursts: 500,
            burst_prefixes: 20,
            burst_gap_us: 2_000,
            bfd_interval: SimDuration::from_millis(1),
            time_scale: TimeScale::REAL,
            seed: 42,
            scheduler: SchedulerKind::default(),
            legacy_encode: false,
        }
    }

    /// The generator config matching these parameters.
    pub fn export_config(&self) -> MrtExportConfig {
        MrtExportConfig {
            prefixes: self.prefixes,
            seed: self.seed,
            peers: self.providers as u16,
            epoch: 1_431_907_200,
            bursts: self.bursts,
            burst_prefixes: self.burst_prefixes,
            burst_gap_us: self.burst_gap_us,
        }
    }
}

/// A wired replay world plus everything a driver reports on.
pub struct ReplayWorld {
    pub world: World,
    pub r1: NodeId,
    pub providers: Vec<NodeId>,
    /// When the last replayed event (plus settle tail) has drained.
    pub end: SimTime,
    /// UPDATE messages scheduled from the trace.
    pub updates_injected: usize,
    /// Announced + withdrawn prefixes across the trace.
    pub prefix_events: usize,
    /// Recorded trace span after time-warping.
    pub trace_span: SimDuration,
    /// Table size actually loaded (the snapshot's, with fixtures).
    pub table_prefixes: usize,
}

/// Build the replay world from generated paper/smoke-scale archives.
pub fn build_replay_world(p: &ReplayParams) -> ReplayWorld {
    let cfg = p.export_config();
    let rib = sc_routegen::mrt::rib_snapshot_mrt(&cfg);
    let trace = sc_routegen::mrt::update_trace_mrt(&cfg);
    build_replay_world_from(p, &rib, &trace)
}

/// Build the replay world from explicit MRT bytes (e.g. the committed
/// fixtures, or a real `bview` + `updates` pair).
pub fn build_replay_world_from(p: &ReplayParams, rib: &[u8], trace: &[u8]) -> ReplayWorld {
    let snap = RibSnapshot::load(rib).unwrap_or_else(|e| panic!("MRT RIB snapshot: {e}"));
    let sched = ReplaySchedule::compile(trace, p.time_scale)
        .unwrap_or_else(|e| panic!("MRT update trace: {e}"));
    let k = p.providers.min(snap.peers.len()).max(1);
    assert!(k < 200, "addressing plan supports < 200 providers");
    let mut world = World::with_scheduler(p.seed, p.scheduler);

    let r1 = world.add_node(LegacyRouter::new(RouterConfig {
        name: "r1".into(),
        asn: 65001,
        router_id: Ipv4Addr::new(1, 1, 1, 1),
        cal: Calibration::instant(),
    }));
    let providers: Vec<NodeId> = (0..k)
        .map(|i| {
            world.add_node(LegacyRouter::new(RouterConfig {
                name: format!("provider-{i}"),
                asn: snap.peers[i].asn,
                router_id: provider_ip(i),
                cal: Calibration::instant(),
            }))
        })
        .collect();

    let link = LinkParams::gigabit(SimDuration::from_micros(50));
    for (i, &provider) in providers.iter().enumerate() {
        let feed = {
            let routes = snap.routes_for_peer(i as u16);
            let rewritten = NextHopRewriter::new(provider_ip(i)).rewrite_routes(&routes);
            sc_mrt::pack_feed(&rewritten, 300)
        };
        let (_, r1_port, prov_port) = world.connect(r1, provider, link);
        let bfd = BfdConfig {
            local_discr: (10 + i) as u32,
            desired_min_tx: p.bfd_interval,
            required_min_rx: p.bfd_interval,
            detect_mult: 3,
        };
        {
            let r1n = world.node_mut::<LegacyRouter>(r1);
            let iface = r1n.add_interface(Interface {
                port: r1_port,
                ip: r1_ip(i),
                mac: r1_mac(i),
                subnet: subnet(i),
            });
            r1n.add_peer(PeerConfig {
                // The trace's churning peer (index 0) is the primary:
                // its withdrawals flip best routes.
                local_pref: if i == 0 { 200 } else { 100 },
                local_port: (40000 + i) as u16,
                remote_port: 179,
                bfd: Some(BfdConfig {
                    local_discr: (100 + i) as u32,
                    ..bfd
                }),
                iface,
                ..PeerConfig::ebgp(provider_ip(i), provider_mac(i), true)
            });
            r1n.set_zero_alloc_encode(!p.legacy_encode);
        }
        {
            let pn = world.node_mut::<LegacyRouter>(provider);
            pn.add_interface(Interface {
                port: prov_port,
                ip: provider_ip(i),
                mac: provider_mac(i),
                subnet: subnet(i),
            });
            pn.add_peer(PeerConfig {
                local_port: 179,
                remote_port: (40000 + i) as u16,
                bfd: Some(bfd),
                originate: feed,
                ..PeerConfig::ebgp(r1_ip(i), r1_mac(i), false)
            });
            pn.set_zero_alloc_encode(!p.legacy_encode);
        }
    }

    // Replay: every recorded event pre-scheduled at its warped offset,
    // past full-feed convergence, under the shared mapping policy
    // (`ReplaySchedule::map_to_providers` — the scenario runner's too).
    let start = SimTime::from_secs(2);
    let recorded_peers: Vec<Ipv4Addr> = snap.peers.iter().map(|pe| pe.addr).collect();
    let provider_ips: Vec<Ipv4Addr> = (0..k).map(provider_ip).collect();
    let mapped = sched.map_to_providers(&recorded_peers, &provider_ips, 0);
    let updates_injected = mapped.len();
    for (i, at, update) in mapped {
        schedule_injection(&mut world, providers[i], start + at, update);
    }
    let end = start + sched.end + SimDuration::from_millis(200);

    ReplayWorld {
        world,
        r1,
        providers,
        end,
        updates_injected,
        prefix_events: sched.prefix_events(),
        trace_span: sched.end,
        table_prefixes: snap.routes.len(),
    }
}

fn schedule_injection(world: &mut World, node: NodeId, at: SimTime, update: UpdateMsg) {
    world.schedule(at, move |w| {
        let tokens = w.node_mut::<LegacyRouter>(node).inject_updates(&[update]);
        let now = w.now();
        for tok in tokens {
            w.wake_node(now, node, tok);
        }
    });
}

/// The measured outcome of one replay run.
#[derive(Clone, Copy, Debug)]
pub struct ReplayMeasurement {
    pub events: u64,
    pub wall: std::time::Duration,
    pub updates_processed: u64,
    pub fib_ops_applied: u64,
}

impl ReplayMeasurement {
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Drive a replay world to its horizon, timing the run.
pub fn run_replay(rw: &mut ReplayWorld) -> ReplayMeasurement {
    let ((), wall) = crate::timing::timed(|| rw.world.run_until(rw.end));
    let r1 = rw.world.node::<LegacyRouter>(rw.r1);
    ReplayMeasurement {
        events: rw.world.stats().events_processed,
        wall,
        updates_processed: r1.stats.updates_processed,
        fib_ops_applied: r1.walker().ops_applied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ReplayParams {
        ReplayParams {
            prefixes: 300,
            providers: 2,
            bursts: 20,
            burst_prefixes: 25,
            burst_gap_us: 5_000,
            bfd_interval: SimDuration::from_millis(5),
            time_scale: TimeScale::REAL,
            seed: 7,
            scheduler: SchedulerKind::default(),
            legacy_encode: false,
        }
    }

    #[test]
    fn replay_world_loads_tables_and_churns() {
        let mut rw = build_replay_world(&tiny());
        assert_eq!(rw.table_prefixes, 300);
        assert_eq!(rw.prefix_events, 2 * 20 * 25);
        let m = run_replay(&mut rw);
        let r1 = rw.world.node::<LegacyRouter>(rw.r1);
        // Full feed installed from both providers (plus one connected
        // subnet per interface), replay churn processed.
        assert_eq!(r1.fib().len(), 300 + 2);
        assert_eq!(r1.rib().route_count(), 2 * 300);
        assert!(m.updates_processed as usize > rw.updates_injected / 2);
        assert!(m.fib_ops_applied >= 300, "replay rewrote the FIB");
        assert!(m.events > 1_000);
    }

    /// Scheduler choice, encode path, and a fixture detour are pure
    /// kernel-cost knobs: the event stream and every router-visible
    /// outcome must be identical (and two identical runs trivially so).
    #[test]
    fn replay_world_is_invariant_under_scheduler_and_encode() {
        let base = {
            let mut rw = build_replay_world(&tiny());
            run_replay(&mut rw)
        };
        for (sched, legacy) in [
            (SchedulerKind::TimerWheel, false), // identical rerun
            (SchedulerKind::ReferenceHeap, false),
            (SchedulerKind::TimerWheel, true),
            (SchedulerKind::ReferenceHeap, true),
        ] {
            let mut rw = build_replay_world(&ReplayParams {
                scheduler: sched,
                legacy_encode: legacy,
                ..tiny()
            });
            let m = run_replay(&mut rw);
            assert_eq!(m.events, base.events, "{sched:?} legacy={legacy}");
            assert_eq!(m.updates_processed, base.updates_processed);
            assert_eq!(m.fib_ops_applied, base.fib_ops_applied);
        }
    }

    /// Warping the trace compresses virtual time without changing the
    /// logical work: the same updates arrive, just denser.
    #[test]
    fn time_scale_compresses_without_losing_work() {
        let real = build_replay_world(&tiny());
        let fast = build_replay_world(&ReplayParams {
            time_scale: "0.25".parse().unwrap(),
            ..tiny()
        });
        assert_eq!(fast.updates_injected, real.updates_injected);
        assert_eq!(fast.prefix_events, real.prefix_events);
        assert!(fast.trace_span <= real.trace_span / 4 + SimDuration::from_nanos(1));
    }

    /// The committed fixtures drive the same world.
    #[test]
    fn fixtures_build_a_replay_world() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures");
        let rib = std::fs::read(format!("{dir}/ris_rib.mrt")).unwrap();
        let trace = std::fs::read(format!("{dir}/ris_updates.mrt")).unwrap();
        let mut rw = build_replay_world_from(&tiny(), &rib, &trace);
        assert_eq!(rw.table_prefixes, 256);
        let m = run_replay(&mut rw);
        let r1 = rw.world.node::<LegacyRouter>(rw.r1);
        assert_eq!(r1.fib().len(), 256 + 2);
        assert!(m.updates_processed > 0);
    }
}
