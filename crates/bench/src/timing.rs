//! The workspace's single wall-clock shell.
//!
//! Every real-time reading in the workspace funnels through this
//! module: the six bench harnesses time their runs with [`timed`], and
//! simulation worlds that should report an `events_per_sec` trajectory
//! get [`wall_clock`] injected via `sc_sim::World::set_wall_clock`.
//! Nothing below the bench shell may read the clock — the sc-check
//! `no-wall-clock` rule denies `Instant`/`SystemTime` everywhere else,
//! which is what keeps simulation outcomes pure functions of the seed
//! (wall time can only ever be *observed*, never branched on).

// This file is the sc-check `no-wall-clock` allowlist: the ONLY place
// in crates/*/src allowed to touch std::time::Instant/SystemTime.
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Run `f`, returning its result and the wall-clock time it took.
///
/// The one timing harness shared by `run_forwarding`/`run_churn`/
/// `run_replay` and the bench binaries (previously six copy-pasted
/// `let t0 = Instant::now()` blocks).
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Monotonic elapsed time since an arbitrary process-local epoch —
/// the `sc_sim::WallClock` the bench shell injects into worlds whose
/// `events_per_sec` trajectory should be recorded.
pub fn wall_clock() -> Duration {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result_and_nonnegative_duration() {
        let (v, d) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let a = wall_clock();
        let b = wall_clock();
        assert!(b >= a);
    }

    #[test]
    fn wall_clock_feeds_world_perf_accounting() {
        let mut w = sc_sim::World::new(1);
        w.set_wall_clock(wall_clock);
        // An un-clocked world reports no trajectory at all.
        let silent = sc_sim::World::new(1);
        assert_eq!(silent.events_per_sec(), 0.0);
        w.run_until_idle(1_000);
        assert!(w.wall_time() >= Duration::ZERO);
    }
}
