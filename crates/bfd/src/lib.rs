//! Bidirectional Forwarding Detection (RFC 5880), asynchronous mode.
//!
//! BFD is the failure detector of the paper: FreeBFD announces peer
//! failure to the controller, which then performs the constant-time
//! data-plane failover. The detection time — `detect_mult ×` the
//! negotiated interval — is the first term of the supercharged router's
//! ~150 ms convergence budget, so this substrate is implemented for real:
//! the RFC 5880 control-packet wire format, the Down/Init/Up three-way
//! handshake, timer negotiation, mandated transmit jitter, and the
//! detection timeout.
//!
//! Like every protocol here it is a poll-based state machine
//! ([`BfdSession`]): the owner feeds received control packets in, drains
//! packets to transmit, and asks when to wake up next.

pub mod packet;
pub mod session;

pub use packet::{BfdDiag, BfdPacket, BfdState};
pub use session::{BfdConfig, BfdEvent, BfdSession};
