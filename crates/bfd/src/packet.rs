//! The BFD control packet (RFC 5880 §4.1), mandatory section only.
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |Vers |  Diag   |Sta|P|F|C|A|D|M|  Detect Mult  |    Length     |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                       My Discriminator                        |
//! |                      Your Discriminator                       |
//! |                    Desired Min TX Interval                    |
//! |                   Required Min RX Interval                    |
//! |                 Required Min Echo RX Interval                 |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```
//!
//! Intervals are in microseconds on the wire. The authentication section
//! (A bit) is not supported and rejected.

use sc_net::wire::{be32, need, put32, WireError};
use std::fmt;

/// Packet length without authentication.
pub const PACKET_LEN: usize = 24;

/// Session states (also carried in each packet's `Sta` field).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BfdState {
    AdminDown = 0,
    Down = 1,
    Init = 2,
    Up = 3,
}

impl BfdState {
    pub fn from_u8(v: u8) -> BfdState {
        match v & 0b11 {
            0 => BfdState::AdminDown,
            1 => BfdState::Down,
            2 => BfdState::Init,
            _ => BfdState::Up,
        }
    }
}

impl fmt::Display for BfdState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BfdState::AdminDown => "AdminDown",
            BfdState::Down => "Down",
            BfdState::Init => "Init",
            BfdState::Up => "Up",
        };
        write!(f, "{s}")
    }
}

/// Diagnostic codes (RFC 5880 §4.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BfdDiag {
    None = 0,
    DetectionTimeExpired = 1,
    NeighborSignaledDown = 3,
    AdministrativelyDown = 7,
}

impl BfdDiag {
    pub fn from_u8(v: u8) -> BfdDiag {
        match v & 0x1f {
            1 => BfdDiag::DetectionTimeExpired,
            3 => BfdDiag::NeighborSignaledDown,
            7 => BfdDiag::AdministrativelyDown,
            _ => BfdDiag::None,
        }
    }
}

/// A parsed BFD control packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BfdPacket {
    pub diag: BfdDiag,
    pub state: BfdState,
    pub poll: bool,
    pub final_bit: bool,
    pub detect_mult: u8,
    pub my_discr: u32,
    pub your_discr: u32,
    /// Desired Min TX Interval, microseconds.
    pub desired_min_tx_us: u32,
    /// Required Min RX Interval, microseconds.
    pub required_min_rx_us: u32,
}

impl BfdPacket {
    /// Serialize to the 24-byte wire form (version 1, no auth, echo
    /// disabled).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = vec![0u8; PACKET_LEN];
        buf[0] = (1 << 5) | (self.diag as u8);
        buf[1] =
            ((self.state as u8) << 6) | ((self.poll as u8) << 5) | ((self.final_bit as u8) << 4);
        buf[2] = self.detect_mult;
        buf[3] = PACKET_LEN as u8;
        put32(&mut buf, 4, self.my_discr);
        put32(&mut buf, 8, self.your_discr);
        put32(&mut buf, 12, self.desired_min_tx_us);
        put32(&mut buf, 16, self.required_min_rx_us);
        put32(&mut buf, 20, 0); // echo disabled
        buf
    }

    /// Parse and validate (RFC 5880 §6.8.6 reception rules that concern
    /// the packet itself).
    pub fn parse(buf: &[u8]) -> Result<BfdPacket, WireError> {
        need(buf, PACKET_LEN)?;
        let version = buf[0] >> 5;
        if version != 1 {
            return Err(WireError::Unsupported("bfd version"));
        }
        let length = buf[3] as usize;
        if length < PACKET_LEN || length > buf.len() {
            return Err(WireError::BadLength);
        }
        let detect_mult = buf[2];
        if detect_mult == 0 {
            return Err(WireError::BadField("detect mult zero"));
        }
        if buf[1] & 0b0000_0100 != 0 {
            return Err(WireError::Unsupported("bfd authentication"));
        }
        let multipoint = buf[1] & 0b0000_0001 != 0;
        if multipoint {
            return Err(WireError::BadField("multipoint bit set"));
        }
        let my_discr = be32(buf, 4);
        if my_discr == 0 {
            return Err(WireError::BadField("my discriminator zero"));
        }
        Ok(BfdPacket {
            diag: BfdDiag::from_u8(buf[0]),
            state: BfdState::from_u8(buf[1] >> 6),
            poll: buf[1] & 0b0010_0000 != 0,
            final_bit: buf[1] & 0b0001_0000 != 0,
            detect_mult,
            my_discr,
            your_discr: be32(buf, 8),
            desired_min_tx_us: be32(buf, 12),
            required_min_rx_us: be32(buf, 16),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BfdPacket {
        BfdPacket {
            diag: BfdDiag::None,
            state: BfdState::Up,
            poll: false,
            final_bit: false,
            detect_mult: 3,
            my_discr: 0x1111_2222,
            your_discr: 0x3333_4444,
            desired_min_tx_us: 30_000,
            required_min_rx_us: 30_000,
        }
    }

    #[test]
    fn roundtrip_all_states() {
        for state in [
            BfdState::AdminDown,
            BfdState::Down,
            BfdState::Init,
            BfdState::Up,
        ] {
            for diag in [
                BfdDiag::None,
                BfdDiag::DetectionTimeExpired,
                BfdDiag::NeighborSignaledDown,
                BfdDiag::AdministrativelyDown,
            ] {
                let p = BfdPacket {
                    state,
                    diag,
                    ..sample()
                };
                let parsed = BfdPacket::parse(&p.to_bytes()).unwrap();
                assert_eq!(parsed, p);
            }
        }
    }

    #[test]
    fn poll_final_flags_roundtrip() {
        let p = BfdPacket {
            poll: true,
            final_bit: true,
            ..sample()
        };
        let parsed = BfdPacket::parse(&p.to_bytes()).unwrap();
        assert!(parsed.poll && parsed.final_bit);
    }

    #[test]
    fn rejects_bad_version_and_fields() {
        let mut b = sample().to_bytes();
        b[0] = (2 << 5) | (b[0] & 0x1f); // version 2
        assert_eq!(
            BfdPacket::parse(&b),
            Err(WireError::Unsupported("bfd version"))
        );

        let mut b = sample().to_bytes();
        b[2] = 0; // detect mult zero
        assert!(BfdPacket::parse(&b).is_err());

        let mut b = sample().to_bytes();
        b[4..8].copy_from_slice(&[0; 4]); // my discr zero
        assert!(BfdPacket::parse(&b).is_err());

        let mut b = sample().to_bytes();
        b[1] |= 0b0000_0100; // auth present
        assert_eq!(
            BfdPacket::parse(&b),
            Err(WireError::Unsupported("bfd authentication"))
        );

        let b = sample().to_bytes();
        assert!(BfdPacket::parse(&b[..20]).is_err());
    }

    #[test]
    fn length_field_checked() {
        let mut b = sample().to_bytes();
        b[3] = 23; // below minimum
        assert_eq!(BfdPacket::parse(&b), Err(WireError::BadLength));
        let mut b = sample().to_bytes();
        b[3] = 30; // longer than buffer
        assert_eq!(BfdPacket::parse(&b), Err(WireError::BadLength));
    }
}
