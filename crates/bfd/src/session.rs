//! The BFD session state machine (RFC 5880 §6.8), asynchronous mode.
//!
//! Calibration note: the paper's lab detects R2's failure via BFD before
//! anything else happens, in both the stock and the supercharged setup.
//! With the workspace defaults (30 ms interval, multiplier 3 — see
//! `sc-router::calibration`) detection takes at most ~90 ms, which is the
//! first term of the supercharged router's ~150 ms convergence budget.

use crate::packet::{BfdDiag, BfdPacket, BfdState};
use sc_net::{SimDuration, SimTime};

/// Static session configuration.
#[derive(Clone, Copy, Debug)]
pub struct BfdConfig {
    /// Our discriminator (non-zero, unique per session on this system).
    pub local_discr: u32,
    /// Desired Min TX Interval.
    pub desired_min_tx: SimDuration,
    /// Required Min RX Interval.
    pub required_min_rx: SimDuration,
    /// Detection multiplier.
    pub detect_mult: u8,
}

impl BfdConfig {
    /// The paper's calibration: 30 ms × 3 ⇒ ≤ 90 ms detection.
    pub fn paper_defaults(local_discr: u32) -> BfdConfig {
        BfdConfig {
            local_discr,
            desired_min_tx: SimDuration::from_millis(30),
            required_min_rx: SimDuration::from_millis(30),
            detect_mult: 3,
        }
    }
}

/// State-change events surfaced to the owner.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BfdEvent {
    /// The session reached Up.
    Up,
    /// The session left Up (diag explains why).
    Down(BfdDiag),
}

/// One asynchronous-mode BFD session.
#[derive(Debug)]
pub struct BfdSession {
    cfg: BfdConfig,
    state: BfdState,
    diag: BfdDiag,
    remote_discr: u32,
    remote_state: BfdState,
    remote_min_rx_us: u32,
    remote_desired_tx_us: u32,
    remote_detect_mult: u8,
    /// When the detection timer fires (armed after the first received
    /// packet).
    detect_deadline: Option<SimTime>,
    /// Next control-packet transmission.
    next_tx: Option<SimTime>,
    /// Deterministic jitter source (RFC mandates 75–100% jitter).
    jitter_state: u64,
    /// Diagnostics.
    pub packets_sent: u64,
    pub packets_received: u64,
    /// FSM state changes (any direction), for the metrics registry.
    pub transitions: u64,
}

impl BfdSession {
    pub fn new(cfg: BfdConfig) -> BfdSession {
        assert!(cfg.local_discr != 0, "discriminator must be non-zero");
        assert!(cfg.detect_mult != 0, "detect mult must be non-zero");
        BfdSession {
            cfg,
            state: BfdState::Down,
            diag: BfdDiag::None,
            remote_discr: 0,
            remote_state: BfdState::Down,
            remote_min_rx_us: 1,
            remote_desired_tx_us: 1_000_000,
            remote_detect_mult: cfg.detect_mult,
            detect_deadline: None,
            next_tx: None,
            jitter_state: cfg.local_discr as u64 ^ 0x9e37_79b9_7f4a_7c15,
            packets_sent: 0,
            packets_received: 0,
            transitions: 0,
        }
    }

    /// Fold this session's counters into a metrics registry (the
    /// embedding node calls this; the sans-io session never sees one).
    pub fn fold_metrics(&self, reg: &mut sc_net::metrics::Registry) {
        reg.add("bfd.packets_sent", self.packets_sent);
        reg.add("bfd.packets_received", self.packets_received);
        reg.add("bfd.transitions", self.transitions);
    }

    /// Begin transmitting (the session starts in Down and bootstraps via
    /// the three-way handshake).
    pub fn start(&mut self, now: SimTime) {
        if self.next_tx.is_none() {
            self.next_tx = Some(now);
        }
    }

    pub fn state(&self) -> BfdState {
        self.state
    }

    pub fn diag(&self) -> BfdDiag {
        self.diag
    }

    /// Administratively disable the session. The peer will observe
    /// `AdminDown` and hold its own session Down without flapping.
    pub fn admin_down(&mut self) -> Option<BfdEvent> {
        let was_up = self.state == BfdState::Up;
        if self.state != BfdState::AdminDown {
            self.transitions += 1;
        }
        self.state = BfdState::AdminDown;
        self.diag = BfdDiag::AdministrativelyDown;
        self.detect_deadline = None;
        was_up.then_some(BfdEvent::Down(BfdDiag::AdministrativelyDown))
    }

    /// The transmit interval currently in force (RFC 5880 §6.8.3: the
    /// negotiated interval, floored at 1 s while the session is not Up).
    pub fn tx_interval(&self) -> SimDuration {
        let negotiated = self
            .cfg
            .desired_min_tx
            .max(SimDuration::from_micros(self.remote_min_rx_us as u64));
        if self.state == BfdState::Up {
            negotiated
        } else {
            negotiated.max(SimDuration::from_secs(1))
        }
    }

    /// The detection time currently in force: remote detect-mult × the
    /// slower of (our required-min-rx, remote desired-min-tx).
    pub fn detection_time(&self) -> SimDuration {
        let base = self
            .cfg
            .required_min_rx
            .max(SimDuration::from_micros(self.remote_desired_tx_us as u64));
        base.saturating_mul(self.remote_detect_mult as u64)
    }

    /// True when liveness evidence is stale: the session is not Up, or
    /// more than half the detection time has passed since the last
    /// received control packet. A live peer transmits at 75–100 % of
    /// the negotiated interval, so with the standard detect-mult of 3
    /// its silence never exceeds ~⅓ of the detection time — half is a
    /// comfortable margin. Degraded-mode route selection in `sc-router`
    /// uses this to quarantine next-hops whose BFD is formally Up but
    /// has gone quiet (the cable was very likely pulled; the detection
    /// timer just hasn't expired yet).
    pub fn is_stale(&self, now: SimTime) -> bool {
        match (self.state, self.detect_deadline) {
            (BfdState::Up, Some(deadline)) => now + self.detection_time() / 2 >= deadline,
            // Up without a deadline cannot happen (the deadline arms on
            // the packet that brought the session Up); treat as fresh.
            (BfdState::Up, None) => false,
            _ => true,
        }
    }

    /// Feed a received control packet (UDP payload, already demuxed to
    /// this session). Returns state-change events.
    pub fn on_packet(&mut self, pkt: &BfdPacket, now: SimTime) -> Vec<BfdEvent> {
        // Demultiplexing check: if the packet names a session, it must be
        // ours.
        if pkt.your_discr != 0 && pkt.your_discr != self.cfg.local_discr {
            return Vec::new();
        }
        if self.state == BfdState::AdminDown {
            return Vec::new();
        }
        self.packets_received += 1;
        self.remote_discr = pkt.my_discr;
        self.remote_state = pkt.state;
        self.remote_min_rx_us = pkt.required_min_rx_us.max(1);
        self.remote_desired_tx_us = pkt.desired_min_tx_us;
        self.remote_detect_mult = pkt.detect_mult;

        let mut events = Vec::new();
        let was_up = self.state == BfdState::Up;

        if pkt.state == BfdState::AdminDown {
            if self.state != BfdState::Down {
                self.state = BfdState::Down;
                self.transitions += 1;
                self.diag = BfdDiag::NeighborSignaledDown;
                self.detect_deadline = None;
                if was_up {
                    events.push(BfdEvent::Down(BfdDiag::NeighborSignaledDown));
                }
            }
            return events;
        }

        match self.state {
            BfdState::Down => match pkt.state {
                BfdState::Down => {
                    self.state = BfdState::Init;
                    self.transitions += 1;
                }
                BfdState::Init => {
                    self.state = BfdState::Up;
                    self.transitions += 1;
                    self.diag = BfdDiag::None;
                    self.adopt_fast_cadence(now);
                    events.push(BfdEvent::Up);
                }
                _ => {}
            },
            BfdState::Init => match pkt.state {
                BfdState::Init | BfdState::Up => {
                    self.state = BfdState::Up;
                    self.transitions += 1;
                    self.diag = BfdDiag::None;
                    self.adopt_fast_cadence(now);
                    events.push(BfdEvent::Up);
                }
                _ => {}
            },
            BfdState::Up => {
                if pkt.state == BfdState::Down {
                    self.state = BfdState::Down;
                    self.transitions += 1;
                    self.diag = BfdDiag::NeighborSignaledDown;
                    events.push(BfdEvent::Down(BfdDiag::NeighborSignaledDown));
                }
            }
            BfdState::AdminDown => unreachable!("handled above"),
        }

        // Receipt of any valid packet re-arms the detection timer — but
        // the timer only runs in Init/Up (RFC 5880 §6.8.4). A deadline
        // left armed across a Down transition would pin `next_wakeup`
        // in the past once it expired (poll's detection branch ignores
        // Down), and the owner would spin re-arming an already-due
        // timer until the next handshake packet.
        if matches!(self.state, BfdState::Init | BfdState::Up) {
            self.detect_deadline = Some(now + self.detection_time());
        } else {
            self.detect_deadline = None;
        }
        events
    }

    /// Pump timers: returns `(events, packets-to-send)`.
    pub fn poll(&mut self, now: SimTime) -> (Vec<BfdEvent>, Vec<BfdPacket>) {
        let mut events = Vec::new();
        let mut out = Vec::new();

        // 1. Detection timeout.
        if let Some(deadline) = self.detect_deadline {
            if now >= deadline && matches!(self.state, BfdState::Init | BfdState::Up) {
                let was_up = self.state == BfdState::Up;
                self.state = BfdState::Down;
                self.transitions += 1;
                self.diag = BfdDiag::DetectionTimeExpired;
                self.detect_deadline = None;
                // Forget the remote's identity and timing (it is gone).
                self.remote_discr = 0;
                self.remote_min_rx_us = 1;
                self.remote_desired_tx_us = 1_000_000;
                if was_up {
                    events.push(BfdEvent::Down(BfdDiag::DetectionTimeExpired));
                }
            }
        }

        // 2. Periodic transmission.
        if let Some(at) = self.next_tx {
            if now >= at {
                out.push(self.make_packet());
                let interval = self.tx_interval();
                self.next_tx = Some(now + self.apply_jitter(interval));
                self.packets_sent += 1;
            }
        }

        (events, out)
    }

    /// When [`BfdSession::poll`] next has work.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        match (self.next_tx, self.detect_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    fn make_packet(&self) -> BfdPacket {
        // RFC 5880 §6.8.3: while the session is not Up we must *advertise*
        // a Desired Min TX of at least one second, so the peer's detection
        // timer stays wide during the (slow) bootstrap handshake.
        let advertised_tx = if self.state == BfdState::Up {
            self.cfg.desired_min_tx
        } else {
            self.cfg.desired_min_tx.max(SimDuration::from_secs(1))
        };
        BfdPacket {
            diag: self.diag,
            state: self.state,
            poll: false,
            final_bit: false,
            detect_mult: self.cfg.detect_mult,
            my_discr: self.cfg.local_discr,
            your_discr: self.remote_discr,
            desired_min_tx_us: advertised_tx.as_micros() as u32,
            required_min_rx_us: self.cfg.required_min_rx.as_micros() as u32,
        }
    }

    /// On entering Up the transmit cadence drops from the ≥1 s bootstrap
    /// interval to the negotiated one. The already-armed (slow) timer
    /// must be pulled forward, otherwise the peer — which may switch to
    /// the fast detection time as soon as it sees our Up — would expire
    /// waiting out our stale slow schedule. (Full BFD serializes timing
    /// changes with the Poll sequence; adopting the fast cadence
    /// immediately on the Up transition is the conservative equivalent.)
    fn adopt_fast_cadence(&mut self, now: SimTime) {
        let fast = now + self.apply_jitter(self.tx_interval());
        self.next_tx = Some(match self.next_tx {
            Some(t) => t.min(fast),
            None => fast,
        });
    }

    /// RFC 5880 §6.8.7: jitter the interval to 75–100% (≤90% when
    /// detect-mult is 1). Deterministic per-session.
    fn apply_jitter(&mut self, interval: SimDuration) -> SimDuration {
        self.jitter_state = self
            .jitter_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let span: u64 = if self.cfg.detect_mult == 1 { 15 } else { 25 };
        let pct = 100 - (self.jitter_state >> 33) % (span + 1); // 75..=100 (or 85..=100)
        SimDuration::from_nanos(interval.as_nanos() * pct / 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (BfdSession, BfdSession) {
        (
            BfdSession::new(BfdConfig::paper_defaults(1)),
            BfdSession::new(BfdConfig::paper_defaults(2)),
        )
    }

    type EventLog = Vec<(SimTime, BfdEvent)>;

    /// Event-driven co-simulation of two sessions with symmetric one-way
    /// `latency`; runs until `until`, delivering packets instantly at
    /// their arrival instant. Returns events of each side, timestamped.
    fn cosim(
        a: &mut BfdSession,
        b: &mut BfdSession,
        start: SimTime,
        until: SimTime,
        latency: SimDuration,
        mut deliver_to_b: impl FnMut(SimTime) -> bool,
    ) -> (EventLog, EventLog) {
        a.start(start);
        b.start(start);
        // In-flight packets: (arrival, to_b?, packet)
        let mut wire: Vec<(SimTime, bool, BfdPacket)> = Vec::new();
        let (mut ev_a, mut ev_b) = (Vec::new(), Vec::new());
        let mut now = start;
        loop {
            // Next interesting instant.
            let mut next = SimTime::MAX;
            for t in [a.next_wakeup(), b.next_wakeup()].into_iter().flatten() {
                next = next.min(t);
            }
            for (t, _, _) in &wire {
                next = next.min(*t);
            }
            if next == SimTime::MAX || next > until {
                return (ev_a, ev_b);
            }
            now = now.max(next);
            // Deliver arrivals due now.
            let (due, rest): (Vec<_>, Vec<_>) = wire.into_iter().partition(|(t, _, _)| *t <= now);
            wire = rest;
            for (t, to_b, pkt) in due {
                if to_b {
                    for e in b.on_packet(&pkt, t) {
                        ev_b.push((t, e));
                    }
                } else {
                    for e in a.on_packet(&pkt, t) {
                        ev_a.push((t, e));
                    }
                }
            }
            // Pump both sides.
            let (ea, out_a) = a.poll(now);
            for e in ea {
                ev_a.push((now, e));
            }
            for p in out_a {
                if deliver_to_b(now) {
                    wire.push((now + latency, true, p));
                }
            }
            let (eb, out_b) = b.poll(now);
            for e in eb {
                ev_b.push((now, e));
            }
            for p in out_b {
                wire.push((now + latency, false, p));
            }
        }
    }

    #[test]
    fn three_way_handshake_reaches_up() {
        let (mut a, mut b) = pair();
        let (ev_a, ev_b) = cosim(
            &mut a,
            &mut b,
            SimTime::ZERO,
            SimTime::from_secs(5),
            SimDuration::from_micros(10),
            |_| true,
        );
        assert_eq!(a.state(), BfdState::Up);
        assert_eq!(b.state(), BfdState::Up);
        assert!(matches!(ev_a.first(), Some((_, BfdEvent::Up))));
        assert!(matches!(ev_b.first(), Some((_, BfdEvent::Up))));
        // Discriminators learned.
        assert!(a.packets_received > 0 && b.packets_received > 0);
    }

    #[test]
    fn detection_fires_within_mult_times_interval() {
        let (mut a, mut b) = pair();
        let cut = SimTime::from_secs(10);
        // Deliver a→b always; b→a packets stop at `cut` (peer dies).
        let (ev_a, _) = cosim(
            &mut a,
            &mut b,
            SimTime::ZERO,
            SimTime::from_secs(15),
            SimDuration::from_micros(10),
            |_| true,
        );
        assert!(ev_a.iter().any(|(_, e)| *e == BfdEvent::Up));
        // Now silence b by not delivering anything further: simulate by
        // polling only a beyond its detection deadline.
        let down_deadline = a.next_wakeup().unwrap();
        let (events, _) = a.poll(down_deadline);
        let _ = cut;
        // Depending on which timer fires first we may need to advance to
        // the detection deadline specifically.
        let mut all = events;
        while all.is_empty() {
            let now = a.next_wakeup().expect("session must keep timers while Up");
            let (e, _) = a.poll(now);
            all = e;
            assert!(
                now <= SimTime::from_secs(15) + SimDuration::from_millis(91),
                "detection must fire within detect_mult x interval"
            );
        }
        assert_eq!(all, vec![BfdEvent::Down(BfdDiag::DetectionTimeExpired)]);
        assert_eq!(a.state(), BfdState::Down);
    }

    #[test]
    fn paper_calibration_detects_within_90ms() {
        // Bring the pair Up, then kill b and measure the gap between the
        // last packet a received and a's Down event.
        let (mut a, mut b) = pair();
        cosim(
            &mut a,
            &mut b,
            SimTime::ZERO,
            SimTime::from_secs(5),
            SimDuration::from_micros(10),
            |_| true,
        );
        assert_eq!(a.state(), BfdState::Up);
        let t_fail = SimTime::from_secs(5);
        // a hears nothing after t_fail; walk its timers.
        let mut now;
        loop {
            now = a.next_wakeup().unwrap();
            let (events, _) = a.poll(now);
            if events.contains(&BfdEvent::Down(BfdDiag::DetectionTimeExpired)) {
                break;
            }
            assert!(now < t_fail + SimDuration::from_millis(200), "runaway");
        }
        let detection_delay = now - t_fail;
        assert!(
            detection_delay <= SimDuration::from_millis(91),
            "detected after {detection_delay}, budget is 90ms"
        );
    }

    #[test]
    fn admin_down_signals_neighbor_without_flap() {
        let (mut a, mut b) = pair();
        cosim(
            &mut a,
            &mut b,
            SimTime::ZERO,
            SimTime::from_secs(5),
            SimDuration::from_micros(10),
            |_| true,
        );
        let ev = b.admin_down();
        assert_eq!(ev, Some(BfdEvent::Down(BfdDiag::AdministrativelyDown)));
        // b transmits AdminDown; a must go Down with NeighborSignaledDown
        // and *not* bounce through Init back to Up.
        let (_, pkts) = b.poll(SimTime::from_secs(5) + SimDuration::from_millis(40));
        let mut a_events = Vec::new();
        for p in &pkts {
            a_events.extend(a.on_packet(p, SimTime::from_secs(5) + SimDuration::from_millis(41)));
        }
        assert_eq!(
            a_events,
            vec![BfdEvent::Down(BfdDiag::NeighborSignaledDown)]
        );
        assert_eq!(a.state(), BfdState::Down);
    }

    #[test]
    fn tx_interval_slow_while_down_fast_while_up() {
        let mut s = BfdSession::new(BfdConfig::paper_defaults(7));
        assert_eq!(s.state(), BfdState::Down);
        assert_eq!(
            s.tx_interval(),
            SimDuration::from_secs(1),
            "floored at 1s while Down"
        );
        // Fake reaching Up via handshake packets.
        let peer = BfdPacket {
            diag: BfdDiag::None,
            state: BfdState::Down,
            poll: false,
            final_bit: false,
            detect_mult: 3,
            my_discr: 9,
            your_discr: 0,
            desired_min_tx_us: 30_000,
            required_min_rx_us: 30_000,
        };
        s.on_packet(&peer, SimTime::ZERO);
        assert_eq!(s.state(), BfdState::Init);
        let peer_init = BfdPacket {
            state: BfdState::Init,
            your_discr: 7,
            ..peer
        };
        let ev = s.on_packet(&peer_init, SimTime::from_millis(10));
        assert_eq!(ev, vec![BfdEvent::Up]);
        assert_eq!(s.tx_interval(), SimDuration::from_millis(30));
        assert_eq!(s.detection_time(), SimDuration::from_millis(90));
    }

    #[test]
    fn jitter_stays_in_rfc_band() {
        let mut s = BfdSession::new(BfdConfig::paper_defaults(3));
        let base = SimDuration::from_millis(30);
        for _ in 0..1000 {
            let j = s.apply_jitter(base);
            assert!(j >= SimDuration::from_nanos(base.as_nanos() * 75 / 100));
            assert!(j <= base);
        }
    }

    #[test]
    fn foreign_discriminator_ignored() {
        let mut s = BfdSession::new(BfdConfig::paper_defaults(5));
        let pkt = BfdPacket {
            diag: BfdDiag::None,
            state: BfdState::Up,
            poll: false,
            final_bit: false,
            detect_mult: 3,
            my_discr: 77,
            your_discr: 999, // not us
            desired_min_tx_us: 30_000,
            required_min_rx_us: 30_000,
        };
        assert!(s.on_packet(&pkt, SimTime::ZERO).is_empty());
        assert_eq!(s.packets_received, 0);
        assert_eq!(s.state(), BfdState::Down);
    }
}
