//! The Adj-RIB-Out: what a speaker has told (or must tell) one peer.
//!
//! RFC 4271 §3.2 keeps one Adj-RIB-Out per peer; §9.4 replays it when a
//! session re-establishes — a router does not "remember" that it already
//! sent its routes across a session restart, it advertises the current
//! contents again. The seed model latched a `feed_sent` flag instead, so
//! a flapped session came back *empty* and every flap script measured
//! first-failover only.
//!
//! [`AdjRibOut`] is that bookkeeping: a prefix → attribute map mutated by
//! the same [`UpdateMsg`]s that go on the wire (withdrawals remove,
//! announcements insert) and exported back as packed UPDATEs — prefixes
//! sharing an attribute set ride one message, split to the RFC 4271 size
//! cap — on every establishment.

use crate::attrs::RouteAttrs;
use crate::msg::UpdateMsg;
use sc_net::Ipv4Prefix;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-peer outbound routing state, replayed on session (re-)establish.
#[derive(Clone, Debug, Default)]
pub struct AdjRibOut {
    routes: BTreeMap<Ipv4Prefix, Arc<RouteAttrs>>,
}

impl AdjRibOut {
    pub fn new() -> AdjRibOut {
        AdjRibOut::default()
    }

    /// Seed from a static originate feed (the configured announcements a
    /// provider router offers on every establishment).
    pub fn from_updates(updates: &[UpdateMsg]) -> AdjRibOut {
        let mut out = AdjRibOut::new();
        for upd in updates {
            out.apply(upd);
        }
        out
    }

    /// Number of prefixes currently advertised.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Is `prefix` currently advertised?
    pub fn contains(&self, prefix: Ipv4Prefix) -> bool {
        self.routes.contains_key(&prefix)
    }

    /// Track one UPDATE sent to the peer: withdrawals leave the table,
    /// announcements enter (or replace) it.
    pub fn apply(&mut self, upd: &UpdateMsg) {
        for prefix in &upd.withdrawn {
            self.routes.remove(prefix);
        }
        if let Some(attrs) = &upd.attrs {
            for prefix in &upd.nlri {
                self.routes.insert(*prefix, attrs.clone());
            }
        }
    }

    /// The full current state as packed UPDATE messages: prefix-ordered,
    /// consecutive prefixes sharing an attribute set (Arc identity —
    /// attribute sets are immutable) packed into one message, each split
    /// to the RFC 4271 size cap. Deterministic for identical state.
    pub fn export(&self) -> Vec<UpdateMsg> {
        let mut out = Vec::new();
        let mut current: Option<(Arc<RouteAttrs>, Vec<Ipv4Prefix>)> = None;
        let flush = |current: &mut Option<(Arc<RouteAttrs>, Vec<Ipv4Prefix>)>,
                     out: &mut Vec<UpdateMsg>| {
            if let Some((attrs, nlri)) = current.take() {
                for part in UpdateMsg::announce(attrs, nlri).split_to_fit() {
                    out.push(part);
                }
            }
        };
        for (prefix, attrs) in &self.routes {
            match &mut current {
                Some((a, nlri)) if Arc::ptr_eq(a, attrs) => nlri.push(*prefix),
                _ => {
                    flush(&mut current, &mut out);
                    current = Some((attrs.clone(), vec![*prefix]));
                }
            }
        }
        flush(&mut current, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsPath;
    use std::net::Ipv4Addr;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn attrs(first_as: u16) -> Arc<RouteAttrs> {
        RouteAttrs::ebgp(
            AsPath::sequence(vec![first_as, 174]),
            Ipv4Addr::new(10, 0, 0, 2),
        )
        .shared()
    }

    #[test]
    fn announce_withdraw_roundtrip() {
        let a = attrs(65002);
        let mut rib = AdjRibOut::new();
        rib.apply(&UpdateMsg::announce(
            a.clone(),
            vec![p("1.0.0.0/24"), p("2.0.0.0/24")],
        ));
        assert_eq!(rib.len(), 2);
        assert!(rib.contains(p("1.0.0.0/24")));
        rib.apply(&UpdateMsg::withdraw(vec![p("1.0.0.0/24")]));
        assert_eq!(rib.len(), 1);
        assert!(!rib.contains(p("1.0.0.0/24")));

        let export = rib.export();
        assert_eq!(export.len(), 1);
        assert_eq!(export[0].nlri, vec![p("2.0.0.0/24")]);
        assert!(export[0].withdrawn.is_empty());
    }

    #[test]
    fn export_packs_shared_attrs_and_splits_to_fit() {
        let shared = attrs(65002);
        let mut rib = AdjRibOut::new();
        let prefixes: Vec<Ipv4Prefix> = (0..1500u32)
            .map(|i| Ipv4Prefix::new(Ipv4Addr::from(0x0100_0000u32 + (i << 8)), 24))
            .collect();
        rib.apply(&UpdateMsg::announce(shared.clone(), prefixes.clone()));
        let export = rib.export();
        let total: usize = export.iter().map(|m| m.nlri.len()).sum();
        assert_eq!(total, 1500);
        for m in &export {
            assert!(
                crate::BgpMessage::Update(m.clone()).encode().len() <= crate::msg::MAX_MESSAGE_LEN
            );
            assert!(Arc::ptr_eq(m.attrs.as_ref().unwrap(), &shared));
        }
        // Distinct attribute sets stay in distinct messages.
        let other = attrs(65009);
        rib.apply(&UpdateMsg::announce(other.clone(), vec![p("9.0.0.0/24")]));
        let export = rib.export();
        assert!(export
            .iter()
            .any(|m| m.nlri == vec![p("9.0.0.0/24")]
                && Arc::ptr_eq(m.attrs.as_ref().unwrap(), &other)));
    }

    #[test]
    fn reannouncement_replaces_attrs() {
        let first = attrs(65002);
        let second = attrs(65003);
        let mut rib = AdjRibOut::new();
        rib.apply(&UpdateMsg::announce(first, vec![p("1.0.0.0/24")]));
        rib.apply(&UpdateMsg::announce(second.clone(), vec![p("1.0.0.0/24")]));
        assert_eq!(rib.len(), 1);
        let export = rib.export();
        assert!(Arc::ptr_eq(export[0].attrs.as_ref().unwrap(), &second));
    }

    #[test]
    fn from_updates_seeds_the_table() {
        let a = attrs(65002);
        let feed = vec![
            UpdateMsg::announce(a.clone(), vec![p("1.0.0.0/24")]),
            UpdateMsg::announce(a, vec![p("2.0.0.0/24")]),
        ];
        let rib = AdjRibOut::from_updates(&feed);
        assert_eq!(rib.len(), 2);
        // Export packs both prefixes (same attrs Arc) into one message.
        assert_eq!(rib.export().len(), 1);
    }
}
