//! BGP path attributes: typed representation and wire encode/decode.
//!
//! Attribute sets are immutable once built and shared across prefixes via
//! `Arc` — a RIPE RIS full table reuses the same attribute set for long
//! runs of prefixes, and both the router model and the controller exploit
//! that (exactly like real BGP implementations pack NLRI sharing one
//! attribute set into one UPDATE).

use sc_net::wire::{be32, need, WireError};
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// ORIGIN attribute (RFC 4271 §5.1.1). Lower is preferred.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Origin {
    Igp = 0,
    Egp = 1,
    Incomplete = 2,
}

impl Origin {
    pub fn from_u8(v: u8) -> Result<Origin, WireError> {
        match v {
            0 => Ok(Origin::Igp),
            1 => Ok(Origin::Egp),
            2 => Ok(Origin::Incomplete),
            _ => Err(WireError::BadField("origin")),
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Igp => write!(f, "IGP"),
            Origin::Egp => write!(f, "EGP"),
            Origin::Incomplete => write!(f, "?"),
        }
    }
}

/// AS_PATH segment types.
const SEG_SET: u8 = 1;
const SEG_SEQUENCE: u8 = 2;

/// One AS_PATH segment.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum AsSegment {
    /// Ordered sequence of ASes.
    Sequence(Vec<u16>),
    /// Unordered set (from aggregation); counts as length 1.
    Set(Vec<u16>),
}

/// An AS_PATH: a list of segments (RFC 4271 §5.1.2).
#[derive(Clone, PartialEq, Eq, Default, Debug, Hash)]
pub struct AsPath {
    pub segments: Vec<AsSegment>,
}

impl AsPath {
    /// A path consisting of one plain sequence.
    pub fn sequence(ases: impl Into<Vec<u16>>) -> AsPath {
        AsPath {
            segments: vec![AsSegment::Sequence(ases.into())],
        }
    }

    /// The empty path (locally originated).
    pub fn empty() -> AsPath {
        AsPath {
            segments: Vec::new(),
        }
    }

    /// Path length for the decision process: each AS in a SEQUENCE counts
    /// 1, each SET counts 1 in total (RFC 4271 §9.1.2.2.a).
    pub fn path_len(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                AsSegment::Sequence(v) => v.len(),
                AsSegment::Set(_) => 1,
            })
            .sum()
    }

    /// The first (neighbor) AS of the path, if any.
    pub fn first_as(&self) -> Option<u16> {
        match self.segments.first()? {
            AsSegment::Sequence(v) => v.first().copied(),
            AsSegment::Set(v) => v.first().copied(),
        }
    }

    /// True if `asn` appears anywhere (loop detection).
    pub fn contains(&self, asn: u16) -> bool {
        self.segments.iter().any(|s| match s {
            AsSegment::Sequence(v) | AsSegment::Set(v) => v.contains(&asn),
        })
    }

    /// A new path with `asn` prepended (what an eBGP speaker does when
    /// propagating).
    pub fn prepended(&self, asn: u16) -> AsPath {
        let mut segments = self.segments.clone();
        match segments.first_mut() {
            Some(AsSegment::Sequence(v)) if v.len() < 255 => v.insert(0, asn),
            _ => segments.insert(0, AsSegment::Sequence(vec![asn])),
        }
        AsPath { segments }
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg {
                AsSegment::Sequence(v) => {
                    let parts: Vec<String> = v.iter().map(|a| a.to_string()).collect();
                    write!(f, "{}", parts.join(" "))?;
                }
                AsSegment::Set(v) => {
                    let parts: Vec<String> = v.iter().map(|a| a.to_string()).collect();
                    write!(f, "{{{}}}", parts.join(","))?;
                }
            }
        }
        Ok(())
    }
}

/// The complete attribute set carried by an UPDATE.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RouteAttrs {
    pub origin: Origin,
    pub as_path: AsPath,
    /// NEXT_HOP — the field the supercharger rewrites to a virtual
    /// next-hop (VNH).
    pub next_hop: Ipv4Addr,
    pub med: Option<u32>,
    pub local_pref: Option<u32>,
    pub communities: Vec<u32>,
}

impl RouteAttrs {
    /// Minimal eBGP attribute set.
    pub fn ebgp(as_path: AsPath, next_hop: Ipv4Addr) -> RouteAttrs {
        RouteAttrs {
            origin: Origin::Igp,
            as_path,
            next_hop,
            med: None,
            local_pref: None,
            communities: Vec::new(),
        }
    }

    /// The same attributes with a different NEXT_HOP — *the* operation of
    /// the supercharged controller (it rewrites NH to a VNH and forwards
    /// the announcement otherwise untouched).
    pub fn with_next_hop(&self, next_hop: Ipv4Addr) -> RouteAttrs {
        RouteAttrs {
            next_hop,
            ..self.clone()
        }
    }

    /// Share behind an `Arc`.
    pub fn shared(self) -> Arc<RouteAttrs> {
        Arc::new(self)
    }
}

// Attribute type codes.
const ATTR_ORIGIN: u8 = 1;
const ATTR_AS_PATH: u8 = 2;
const ATTR_NEXT_HOP: u8 = 3;
const ATTR_MED: u8 = 4;
const ATTR_LOCAL_PREF: u8 = 5;
const ATTR_COMMUNITIES: u8 = 8;

// Attribute flags.
const FLAG_OPTIONAL: u8 = 0x80;
const FLAG_TRANSITIVE: u8 = 0x40;
const FLAG_EXTENDED: u8 = 0x10;

/// Wire size of one attribute's header + value.
fn attr_wire_len(value_len: usize) -> usize {
    if value_len > 255 {
        4 + value_len // flags, code, 2-byte extended length
    } else {
        3 + value_len
    }
}

/// Wire size of the AS_PATH attribute *value* (segments only).
fn as_path_value_len(path: &AsPath) -> usize {
    path.segments
        .iter()
        .map(|s| match s {
            AsSegment::Sequence(v) | AsSegment::Set(v) => 2 + v.len() * 2,
        })
        .sum()
}

/// Exact encoded size of the path-attributes block, without encoding.
/// Pinned to [`encode_attrs`] by unit and property tests; UPDATE packing
/// sizes messages through this instead of a trial encode.
pub fn encoded_attrs_len(attrs: &RouteAttrs) -> usize {
    let mut n = attr_wire_len(1); // ORIGIN
    n += attr_wire_len(as_path_value_len(&attrs.as_path));
    n += attr_wire_len(4); // NEXT_HOP
    if attrs.med.is_some() {
        n += attr_wire_len(4);
    }
    if attrs.local_pref.is_some() {
        n += attr_wire_len(4);
    }
    if !attrs.communities.is_empty() {
        n += attr_wire_len(attrs.communities.len() * 4);
    }
    n
}

/// Write one attribute header (choosing the extended-length form when
/// the value exceeds 255 bytes); the caller appends the value bytes.
fn push_attr_header(out: &mut Vec<u8>, flags: u8, code: u8, value_len: usize) {
    if value_len > 255 {
        out.push(flags | FLAG_EXTENDED);
        out.push(code);
        out.extend_from_slice(&(value_len as u16).to_be_bytes());
    } else {
        out.push(flags);
        out.push(code);
        out.push(value_len as u8);
    }
}

/// Encode the attribute set into the UPDATE's path-attributes block.
/// Appends to `out` without any intermediate allocation (the hot
/// control-plane path reuses one buffer per session).
pub fn encode_attrs(attrs: &RouteAttrs, out: &mut Vec<u8>) {
    push_attr_header(out, FLAG_TRANSITIVE, ATTR_ORIGIN, 1);
    out.push(attrs.origin as u8);

    // AS_PATH: the value length is computable up front, so the segments
    // stream straight into `out` — no temporary path buffer.
    push_attr_header(
        out,
        FLAG_TRANSITIVE,
        ATTR_AS_PATH,
        as_path_value_len(&attrs.as_path),
    );
    for seg in &attrs.as_path.segments {
        let (ty, ases) = match seg {
            AsSegment::Sequence(v) => (SEG_SEQUENCE, v),
            AsSegment::Set(v) => (SEG_SET, v),
        };
        assert!(ases.len() <= 255, "AS segment too long");
        out.push(ty);
        out.push(ases.len() as u8);
        for a in ases {
            out.extend_from_slice(&a.to_be_bytes());
        }
    }

    push_attr_header(out, FLAG_TRANSITIVE, ATTR_NEXT_HOP, 4);
    out.extend_from_slice(&attrs.next_hop.octets());

    if let Some(med) = attrs.med {
        push_attr_header(out, FLAG_OPTIONAL, ATTR_MED, 4);
        out.extend_from_slice(&med.to_be_bytes());
    }
    if let Some(lp) = attrs.local_pref {
        push_attr_header(out, FLAG_TRANSITIVE, ATTR_LOCAL_PREF, 4);
        out.extend_from_slice(&lp.to_be_bytes());
    }
    if !attrs.communities.is_empty() {
        push_attr_header(
            out,
            FLAG_OPTIONAL | FLAG_TRANSITIVE,
            ATTR_COMMUNITIES,
            attrs.communities.len() * 4,
        );
        for comm in &attrs.communities {
            out.extend_from_slice(&comm.to_be_bytes());
        }
    }
}

/// Decode a path-attributes block. Mandatory attributes (ORIGIN, AS_PATH,
/// NEXT_HOP) must be present; unknown optional attributes are skipped.
pub fn decode_attrs(mut buf: &[u8]) -> Result<RouteAttrs, WireError> {
    let mut origin = None;
    let mut as_path = None;
    let mut next_hop = None;
    let mut med = None;
    let mut local_pref = None;
    let mut communities = Vec::new();

    while !buf.is_empty() {
        need(buf, 3)?;
        let flags = buf[0];
        let code = buf[1];
        let (len, header) = if flags & FLAG_EXTENDED != 0 {
            need(buf, 4)?;
            (u16::from_be_bytes([buf[2], buf[3]]) as usize, 4)
        } else {
            (buf[2] as usize, 3)
        };
        need(buf, header + len)?;
        let value = &buf[header..header + len];
        buf = &buf[header + len..];

        match code {
            ATTR_ORIGIN => {
                if len != 1 {
                    return Err(WireError::BadLength);
                }
                origin = Some(Origin::from_u8(value[0])?);
            }
            ATTR_AS_PATH => {
                let mut segments = Vec::new();
                let mut v = value;
                while !v.is_empty() {
                    need(v, 2)?;
                    let ty = v[0];
                    let count = v[1] as usize;
                    need(v, 2 + count * 2)?;
                    let mut ases = Vec::with_capacity(count);
                    for i in 0..count {
                        ases.push(u16::from_be_bytes([v[2 + i * 2], v[3 + i * 2]]));
                    }
                    segments.push(match ty {
                        SEG_SEQUENCE => AsSegment::Sequence(ases),
                        SEG_SET => AsSegment::Set(ases),
                        _ => return Err(WireError::BadField("as_path segment type")),
                    });
                    v = &v[2 + count * 2..];
                }
                as_path = Some(AsPath { segments });
            }
            ATTR_NEXT_HOP => {
                if len != 4 {
                    return Err(WireError::BadLength);
                }
                next_hop = Some(Ipv4Addr::new(value[0], value[1], value[2], value[3]));
            }
            ATTR_MED => {
                if len != 4 {
                    return Err(WireError::BadLength);
                }
                med = Some(be32(value, 0));
            }
            ATTR_LOCAL_PREF => {
                if len != 4 {
                    return Err(WireError::BadLength);
                }
                local_pref = Some(be32(value, 0));
            }
            ATTR_COMMUNITIES => {
                if len % 4 != 0 {
                    return Err(WireError::BadLength);
                }
                for chunk in value.chunks_exact(4) {
                    communities.push(be32(chunk, 0));
                }
            }
            _ => {
                // Unknown attribute: acceptable only if optional.
                if flags & FLAG_OPTIONAL == 0 {
                    return Err(WireError::Unsupported("well-known attribute"));
                }
            }
        }
    }

    Ok(RouteAttrs {
        origin: origin.ok_or(WireError::BadField("missing ORIGIN"))?,
        as_path: as_path.ok_or(WireError::BadField("missing AS_PATH"))?,
        next_hop: next_hop.ok_or(WireError::BadField("missing NEXT_HOP"))?,
        med,
        local_pref,
        communities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RouteAttrs {
        RouteAttrs {
            origin: Origin::Igp,
            as_path: AsPath::sequence(vec![65001, 3356, 15169]),
            next_hop: Ipv4Addr::new(203, 0, 113, 1),
            med: Some(50),
            local_pref: Some(200),
            communities: vec![(65001u32 << 16) | 666, 0xFFFF_FF01],
        }
    }

    #[test]
    fn roundtrip_full() {
        let a = sample();
        let mut buf = Vec::new();
        encode_attrs(&a, &mut buf);
        let b = decode_attrs(&buf).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_minimal() {
        let a = RouteAttrs::ebgp(AsPath::sequence(vec![65001]), Ipv4Addr::new(10, 0, 0, 1));
        let mut buf = Vec::new();
        encode_attrs(&a, &mut buf);
        assert_eq!(decode_attrs(&buf).unwrap(), a);
    }

    #[test]
    fn roundtrip_with_set_segment() {
        let a = RouteAttrs {
            as_path: AsPath {
                segments: vec![
                    AsSegment::Sequence(vec![65001, 65002]),
                    AsSegment::Set(vec![100, 200, 300]),
                ],
            },
            ..sample()
        };
        let mut buf = Vec::new();
        encode_attrs(&a, &mut buf);
        assert_eq!(decode_attrs(&buf).unwrap(), a);
    }

    #[test]
    fn missing_mandatory_rejected() {
        // Encode then strip the NEXT_HOP attribute (flags 0x40, code 3, len 4, value).
        let a = RouteAttrs::ebgp(AsPath::sequence(vec![1]), Ipv4Addr::new(1, 1, 1, 1));
        let mut buf = Vec::new();
        encode_attrs(&a, &mut buf);
        let nh_pos = buf
            .windows(2)
            .position(|w| w == [FLAG_TRANSITIVE, ATTR_NEXT_HOP])
            .unwrap();
        let mut stripped = buf[..nh_pos].to_vec();
        stripped.extend_from_slice(&buf[nh_pos + 3 + 4..]);
        assert_eq!(
            decode_attrs(&stripped),
            Err(WireError::BadField("missing NEXT_HOP"))
        );
    }

    #[test]
    fn unknown_optional_skipped_unknown_wellknown_rejected() {
        let a = RouteAttrs::ebgp(AsPath::sequence(vec![1]), Ipv4Addr::new(1, 1, 1, 1));
        let mut buf = Vec::new();
        encode_attrs(&a, &mut buf);
        // Append unknown optional attr (code 99).
        let mut with_opt = buf.clone();
        with_opt.extend_from_slice(&[FLAG_OPTIONAL, 99, 2, 0xde, 0xad]);
        assert!(decode_attrs(&with_opt).is_ok());
        // Append unknown well-known attr: reject.
        let mut with_wk = buf.clone();
        with_wk.extend_from_slice(&[0x40, 99, 1, 0x00]);
        assert_eq!(
            decode_attrs(&with_wk),
            Err(WireError::Unsupported("well-known attribute"))
        );
    }

    #[test]
    fn truncated_attr_rejected() {
        let a = sample();
        let mut buf = Vec::new();
        encode_attrs(&a, &mut buf);
        for cut in [1, 2, buf.len() - 1] {
            assert!(decode_attrs(&buf[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn path_len_counts_sets_once() {
        let p = AsPath {
            segments: vec![
                AsSegment::Sequence(vec![1, 2, 3]),
                AsSegment::Set(vec![4, 5, 6, 7]),
            ],
        };
        assert_eq!(p.path_len(), 4);
        assert_eq!(AsPath::empty().path_len(), 0);
    }

    #[test]
    fn prepend_and_loop_detection() {
        let p = AsPath::sequence(vec![2, 3]);
        let q = p.prepended(1);
        assert_eq!(q, AsPath::sequence(vec![1, 2, 3]));
        assert!(q.contains(3));
        assert!(!q.contains(9));
        assert_eq!(q.first_as(), Some(1));
        // Prepending to an empty path creates a segment.
        assert_eq!(AsPath::empty().prepended(7), AsPath::sequence(vec![7]));
    }

    #[test]
    fn with_next_hop_only_changes_nh() {
        let a = sample();
        let vnh = Ipv4Addr::new(10, 200, 0, 1);
        let b = a.with_next_hop(vnh);
        assert_eq!(b.next_hop, vnh);
        assert_eq!(b.as_path, a.as_path);
        assert_eq!(b.med, a.med);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Origin::Igp.to_string(), "IGP");
        let p = AsPath {
            segments: vec![AsSegment::Sequence(vec![1, 2]), AsSegment::Set(vec![3, 4])],
        };
        assert_eq!(p.to_string(), "1 2 {3,4}");
    }

    #[test]
    fn encoded_len_is_exact() {
        let cases = [
            sample(),
            RouteAttrs::ebgp(AsPath::empty(), Ipv4Addr::new(1, 1, 1, 1)),
            RouteAttrs {
                as_path: AsPath {
                    segments: vec![AsSegment::Sequence((0..200).collect()); 2],
                },
                ..sample()
            },
        ];
        for a in cases {
            let mut buf = Vec::new();
            encode_attrs(&a, &mut buf);
            assert_eq!(encoded_attrs_len(&a), buf.len(), "{a:?}");
        }
    }

    #[test]
    fn extended_length_attribute_roundtrip() {
        // An AS_PATH long enough to need the extended-length flag (>255 bytes).
        let long: Vec<u16> = (0..200).collect();
        let a = RouteAttrs {
            as_path: AsPath {
                segments: vec![AsSegment::Sequence(long.clone()), AsSegment::Sequence(long)],
            },
            ..RouteAttrs::ebgp(AsPath::empty(), Ipv4Addr::new(1, 1, 1, 1))
        };
        let mut buf = Vec::new();
        encode_attrs(&a, &mut buf);
        assert_eq!(decode_attrs(&buf).unwrap(), a);
    }
}
