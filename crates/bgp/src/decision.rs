//! The BGP decision process (RFC 4271 §9.1) as a total order.
//!
//! The supercharged controller must rank routes **exactly** like the
//! router it fronts, because the first two entries of the ranking define
//! the backup-group (Listing 1 of the paper). The comparison below is the
//! classic sequence:
//!
//! 1. highest LOCAL_PREF (assigned at import),
//! 2. shortest AS_PATH,
//! 3. lowest ORIGIN (IGP < EGP < INCOMPLETE),
//! 4. lowest MED (compared across all neighbors — the common
//!    `always-compare-med` configuration; missing MED = 0),
//! 5. eBGP-learned over iBGP-learned,
//! 6. lowest IGP cost to the NEXT_HOP,
//! 7. lowest router ID,
//! 8. lowest peer address (final deterministic tie-break).
//!
//! Step 8 guarantees *totality*: two distinct routes never compare equal,
//! which property tests assert — a ranking with ties would make the
//! controller's backup-groups nondeterministic across replicas.

use crate::attrs::RouteAttrs;
use crate::PeerId;
use sc_net::Ipv4Prefix;
use std::cmp::Ordering;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Session-level facts about the peer a route was learned from.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct PeerInfo {
    /// Session address — the route's identity for replace/withdraw.
    pub peer: PeerId,
    /// Peer's BGP identifier (step 7).
    pub router_id: Ipv4Addr,
    /// True if learned over eBGP (step 5).
    pub ebgp: bool,
    /// IGP metric to reach the peer/next-hop (step 6); 0 for directly
    /// connected eBGP peers, which is the paper's topology.
    pub igp_cost: u32,
}

/// A candidate route for one prefix.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Route {
    pub prefix: Ipv4Prefix,
    pub attrs: Arc<RouteAttrs>,
    pub from: PeerInfo,
    /// Effective LOCAL_PREF after import policy (eBGP routes carry none
    /// on the wire; import policy assigns it — e.g. the paper prefers R2
    /// by giving its session a higher value).
    pub local_pref: u32,
}

impl Route {
    /// The protocol next-hop of this route.
    pub fn next_hop(&self) -> Ipv4Addr {
        self.attrs.next_hop
    }
}

/// Default LOCAL_PREF when policy assigns none (industry convention).
pub const DEFAULT_LOCAL_PREF: u32 = 100;

/// Compare two candidate routes for the same prefix.
/// `Ordering::Less` means `a` is **preferred** over `b`, so sorting a
/// candidate list ascending puts the best route first.
pub fn compare_routes(a: &Route, b: &Route) -> Ordering {
    // 1. Highest local-pref wins => reverse numeric order.
    b.local_pref
        .cmp(&a.local_pref)
        // 2. Shortest AS path.
        .then_with(|| a.attrs.as_path.path_len().cmp(&b.attrs.as_path.path_len()))
        // 3. Lowest origin.
        .then_with(|| a.attrs.origin.cmp(&b.attrs.origin))
        // 4. Lowest MED (missing treated as 0 — RFC 4271 §9.1.2.2.c
        //    default; we compare across neighbors, i.e.
        //    always-compare-med, a documented simplification).
        .then_with(|| a.attrs.med.unwrap_or(0).cmp(&b.attrs.med.unwrap_or(0)))
        // 5. eBGP over iBGP.
        .then_with(|| b.from.ebgp.cmp(&a.from.ebgp))
        // 6. Lowest IGP cost.
        .then_with(|| a.from.igp_cost.cmp(&b.from.igp_cost))
        // 7. Lowest router id.
        .then_with(|| a.from.router_id.cmp(&b.from.router_id))
        // 8. Lowest peer address.
        .then_with(|| a.from.peer.cmp(&b.from.peer))
}

/// A human-readable explanation of why `a` beats `b` (for traces,
/// debugging and the examples). Returns `None` if they compare equal,
/// which only happens when comparing a route with itself.
pub fn explain_preference(a: &Route, b: &Route) -> Option<&'static str> {
    if a.local_pref != b.local_pref {
        return Some("local-pref");
    }
    if a.attrs.as_path.path_len() != b.attrs.as_path.path_len() {
        return Some("as-path length");
    }
    if a.attrs.origin != b.attrs.origin {
        return Some("origin");
    }
    if a.attrs.med.unwrap_or(0) != b.attrs.med.unwrap_or(0) {
        return Some("med");
    }
    if a.from.ebgp != b.from.ebgp {
        return Some("ebgp-over-ibgp");
    }
    if a.from.igp_cost != b.from.igp_cost {
        return Some("igp cost");
    }
    if a.from.router_id != b.from.router_id {
        return Some("router-id");
    }
    if a.from.peer != b.from.peer {
        return Some("peer address");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AsPath, Origin};

    fn peer(n: u8) -> PeerInfo {
        PeerInfo {
            peer: Ipv4Addr::new(10, 0, n, 1),
            router_id: Ipv4Addr::new(n, n, n, n),
            ebgp: true,
            igp_cost: 0,
        }
    }

    fn route(n: u8, f: impl FnOnce(&mut Route)) -> Route {
        let mut r = Route {
            prefix: "1.0.0.0/24".parse().unwrap(),
            attrs: RouteAttrs::ebgp(AsPath::sequence(vec![100, 200]), Ipv4Addr::new(10, 0, n, 1))
                .shared(),
            from: peer(n),
            local_pref: DEFAULT_LOCAL_PREF,
        };
        f(&mut r);
        r
    }

    fn attrs_mut(r: &mut Route) -> &mut RouteAttrs {
        Arc::make_mut(&mut r.attrs)
    }

    #[test]
    fn local_pref_dominates_everything() {
        let strong = route(2, |r| {
            r.local_pref = 200;
            attrs_mut(r).as_path = AsPath::sequence(vec![1, 2, 3, 4, 5]);
            attrs_mut(r).med = Some(999);
        });
        let weak = route(1, |r| {
            r.local_pref = 100;
            attrs_mut(r).as_path = AsPath::sequence(vec![1]);
        });
        assert_eq!(compare_routes(&strong, &weak), Ordering::Less);
        assert_eq!(explain_preference(&strong, &weak), Some("local-pref"));
    }

    #[test]
    fn as_path_length_then_origin_then_med() {
        let short = route(1, |r| {
            attrs_mut(r).as_path = AsPath::sequence(vec![100]);
        });
        let long = route(2, |r| {
            attrs_mut(r).as_path = AsPath::sequence(vec![100, 200]);
        });
        assert_eq!(compare_routes(&short, &long), Ordering::Less);

        let igp = route(1, |r| {
            attrs_mut(r).origin = Origin::Igp;
        });
        let incomplete = route(2, |r| {
            attrs_mut(r).origin = Origin::Incomplete;
        });
        assert_eq!(compare_routes(&igp, &incomplete), Ordering::Less);
        assert_eq!(explain_preference(&igp, &incomplete), Some("origin"));

        let low_med = route(1, |r| {
            attrs_mut(r).med = Some(10);
        });
        let high_med = route(2, |r| {
            attrs_mut(r).med = Some(20);
        });
        assert_eq!(compare_routes(&low_med, &high_med), Ordering::Less);
        // Missing MED counts as zero: beats MED 10.
        let no_med = route(3, |r| {
            attrs_mut(r).med = None;
        });
        assert_eq!(compare_routes(&no_med, &low_med), Ordering::Less);
    }

    #[test]
    fn ebgp_beats_ibgp_and_igp_cost_breaks() {
        let ebgp = route(1, |r| r.from.ebgp = true);
        let ibgp = route(2, |r| r.from.ebgp = false);
        assert_eq!(compare_routes(&ebgp, &ibgp), Ordering::Less);
        assert_eq!(explain_preference(&ebgp, &ibgp), Some("ebgp-over-ibgp"));

        let near = route(1, |r| r.from.igp_cost = 5);
        let far = route(2, |r| r.from.igp_cost = 50);
        assert_eq!(compare_routes(&near, &far), Ordering::Less);
    }

    #[test]
    fn router_id_then_peer_address_finalize() {
        let low_id = route(1, |_| {});
        let high_id = route(2, |_| {});
        assert_eq!(compare_routes(&low_id, &high_id), Ordering::Less);

        // Same router id, different peer address.
        let a = route(1, |_| {});
        let b = route(1, |r| r.from.peer = Ipv4Addr::new(10, 0, 99, 1));
        assert_eq!(compare_routes(&a, &b), Ordering::Less);
        assert_eq!(explain_preference(&a, &b), Some("peer address"));
    }

    #[test]
    fn total_order_no_ties_between_distinct_peers() {
        // Identical attributes from different peers must still order.
        let a = route(1, |_| {});
        let b = route(2, |_| {});
        assert_ne!(compare_routes(&a, &b), Ordering::Equal);
        assert_eq!(compare_routes(&a, &a.clone()), Ordering::Equal);
        assert_eq!(explain_preference(&a, &a.clone()), None);
    }

    #[test]
    fn sorting_yields_paper_scenario_ranking() {
        // The paper: R1 prefers R2 ($ provider) over R3 ($$) for all
        // prefixes, via import local-pref. Sorting must put R2 first.
        let r2 = route(2, |r| r.local_pref = 200);
        let r3 = route(3, |r| r.local_pref = 100);
        let mut v = [r3.clone(), r2.clone()];
        v.sort_by(compare_routes);
        assert_eq!(v[0].from.peer, r2.from.peer);
        assert_eq!(v[1].from.peer, r3.from.peer);
    }
}
