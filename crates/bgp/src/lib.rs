//! BGP-4 substrate (RFC 4271).
//!
//! The paper's controller interposes on real BGP sessions (ExaBGP in the
//! prototype), so this crate implements the protocol for real rather than
//! abstracting it away:
//!
//! * [`msg`] — OPEN / UPDATE / KEEPALIVE / NOTIFICATION wire formats with
//!   the 19-byte marker header, prefix encoding, and strict validation;
//! * [`attrs`] — path attributes (ORIGIN, AS_PATH, NEXT_HOP, MED,
//!   LOCAL_PREF, COMMUNITIES) with flag checking;
//! * [`decision`] — the full BGP decision process as a total order over
//!   candidate routes (the controller *must* rank routes exactly like the
//!   router would, otherwise its backup-groups are wrong);
//! * [`rib`] — per-prefix ranked candidate lists ([`rib::LocRib`]) with
//!   change tracking: every update yields the old and new top-two
//!   candidates, which is precisely the input of the paper's Listing 1;
//! * [`session`] — a poll-based session state machine (Idle → OpenSent →
//!   OpenConfirm → Established) with hold/keepalive timers;
//! * [`adj_out`] — the per-peer Adj-RIB-Out (RFC 4271 §3.2), replayed on
//!   every session (re-)establishment so flapped sessions come back with
//!   their routes.
//!
//! Known simplifications (documented in `DESIGN.md`): 2-byte AS numbers
//! (no AS4 capability), no route reflection, MED compared across
//! neighboring ASes, and sessions run over the workspace's reliable
//! channel instead of TCP.

pub mod adj_out;
pub mod attrs;
pub mod decision;
pub mod msg;
pub mod rib;
pub mod session;

pub use adj_out::AdjRibOut;
pub use attrs::{AsPath, Origin, RouteAttrs};
pub use decision::{compare_routes, PeerInfo, Route};
pub use msg::{BgpMessage, NotificationMsg, OpenMsg, UpdateMsg};
pub use rib::{Change, LocRib, TopTwo};
pub use session::{Session, SessionConfig, SessionEvent, SessionState};

/// A BGP peer is identified by its session IP address.
pub type PeerId = std::net::Ipv4Addr;
