//! BGP message wire formats (RFC 4271 §4).
//!
//! Every message starts with the 19-byte header: a 16-byte all-ones
//! marker, a 2-byte length and a 1-byte type. UPDATE carries withdrawn
//! prefixes, one shared attribute block and the NLRI; like real BGP
//! speakers (and the RIS feeds the paper replays) we pack as many
//! prefixes sharing an attribute set as fit into one message.

use crate::attrs::{decode_attrs, encode_attrs, encoded_attrs_len, RouteAttrs};
use sc_net::wire::{be16, need, WireError};
use sc_net::Ipv4Prefix;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Header length (marker + length + type).
pub const HEADER_LEN: usize = 19;
/// Maximum BGP message size (RFC 4271).
pub const MAX_MESSAGE_LEN: usize = 4096;

const TYPE_OPEN: u8 = 1;
const TYPE_UPDATE: u8 = 2;
const TYPE_NOTIFICATION: u8 = 3;
const TYPE_KEEPALIVE: u8 = 4;

/// OPEN message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpenMsg {
    /// Always 4.
    pub version: u8,
    pub my_as: u16,
    /// Hold time in seconds (0 = disabled, else >= 3 per RFC).
    pub hold_time: u16,
    pub router_id: Ipv4Addr,
}

impl OpenMsg {
    pub fn new(my_as: u16, hold_time: u16, router_id: Ipv4Addr) -> OpenMsg {
        OpenMsg {
            version: 4,
            my_as,
            hold_time,
            router_id,
        }
    }
}

/// NOTIFICATION message (error report; closes the session).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NotificationMsg {
    pub code: u8,
    pub subcode: u8,
    pub data: Vec<u8>,
}

impl NotificationMsg {
    /// Cease / administrative shutdown — what a controller sends when it
    /// tears a session down deliberately.
    pub fn cease() -> NotificationMsg {
        NotificationMsg {
            code: 6,
            subcode: 2,
            data: Vec::new(),
        }
    }

    /// Hold timer expired (code 4).
    pub fn hold_timer_expired() -> NotificationMsg {
        NotificationMsg {
            code: 4,
            subcode: 0,
            data: Vec::new(),
        }
    }
}

/// UPDATE message: withdrawals plus announcements sharing one attribute
/// set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UpdateMsg {
    pub withdrawn: Vec<Ipv4Prefix>,
    /// Present iff `nlri` is non-empty.
    pub attrs: Option<Arc<RouteAttrs>>,
    pub nlri: Vec<Ipv4Prefix>,
}

impl UpdateMsg {
    /// An announcement of `nlri` with shared `attrs`.
    pub fn announce(attrs: Arc<RouteAttrs>, nlri: Vec<Ipv4Prefix>) -> UpdateMsg {
        assert!(!nlri.is_empty());
        UpdateMsg {
            withdrawn: Vec::new(),
            attrs: Some(attrs),
            nlri,
        }
    }

    /// A pure withdrawal.
    pub fn withdraw(prefixes: Vec<Ipv4Prefix>) -> UpdateMsg {
        UpdateMsg {
            withdrawn: prefixes,
            attrs: None,
            nlri: Vec::new(),
        }
    }

    /// Exact encoded size of `BgpMessage::Update(self)`, without
    /// encoding. Pinned to [`BgpMessage::encode`] by property tests;
    /// [`UpdateMsg::split_to_fit`] sizes fragments through this instead
    /// of trial-encoding every candidate split.
    pub fn encoded_len(&self) -> usize {
        let withdrawn: usize = self.withdrawn.iter().map(|p| prefix_wire_len(*p)).sum();
        let attrs = self
            .attrs
            .as_ref()
            .map(|a| encoded_attrs_len(a))
            .unwrap_or(0);
        let nlri: usize = self.nlri.iter().map(|p| prefix_wire_len(*p)).sum();
        HEADER_LEN + 2 + withdrawn + 2 + attrs + nlri
    }

    /// Split the NLRI so every emitted message fits in
    /// [`MAX_MESSAGE_LEN`]. Returns `self` unchanged when it already fits.
    pub fn split_to_fit(self) -> Vec<UpdateMsg> {
        if self.encoded_len() <= MAX_MESSAGE_LEN {
            return vec![self];
        }
        // Conservative split: halve the larger list recursively.
        let UpdateMsg {
            withdrawn,
            attrs,
            nlri,
        } = self;
        let mut out = Vec::new();
        if withdrawn.len() > 1 || nlri.len() > 1 {
            if nlri.len() >= withdrawn.len() {
                let mid = nlri.len() / 2;
                let (a, b) = nlri.split_at(mid);
                if !withdrawn.is_empty() || !a.is_empty() {
                    out.extend(
                        UpdateMsg {
                            withdrawn,
                            attrs: attrs.clone(),
                            nlri: a.to_vec(),
                        }
                        .split_to_fit(),
                    );
                }
                out.extend(
                    UpdateMsg {
                        withdrawn: Vec::new(),
                        attrs,
                        nlri: b.to_vec(),
                    }
                    .split_to_fit(),
                );
            } else {
                let mid = withdrawn.len() / 2;
                let (a, b) = withdrawn.split_at(mid);
                out.extend(
                    UpdateMsg {
                        withdrawn: a.to_vec(),
                        attrs: None,
                        nlri: Vec::new(),
                    }
                    .split_to_fit(),
                );
                out.extend(
                    UpdateMsg {
                        withdrawn: b.to_vec(),
                        attrs,
                        nlri,
                    }
                    .split_to_fit(),
                );
            }
        } else {
            panic!("single-prefix UPDATE exceeds MAX_MESSAGE_LEN");
        }
        out
    }
}

/// Any BGP message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BgpMessage {
    Open(OpenMsg),
    Update(UpdateMsg),
    Notification(NotificationMsg),
    Keepalive,
}

/// Encode a prefix in BGP NLRI form: length byte + minimal octets.
/// Public because the same encoding appears outside UPDATE bodies —
/// MRT `TABLE_DUMP_V2` RIB records carry it too (`sc-mrt`).
pub fn encode_prefix(p: Ipv4Prefix, out: &mut Vec<u8>) {
    out.push(p.len());
    let octets = p.network().octets();
    let n = (p.len() as usize).div_ceil(8);
    out.extend_from_slice(&octets[..n]);
}

/// NLRI wire size of one prefix: length byte + minimal octets.
pub fn prefix_wire_len(p: Ipv4Prefix) -> usize {
    1 + (p.len() as usize).div_ceil(8)
}

/// Decode a run of NLRI-encoded prefixes filling `buf` entirely.
pub fn decode_prefixes(mut buf: &[u8]) -> Result<Vec<Ipv4Prefix>, WireError> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        let len = buf[0];
        if len > 32 {
            return Err(WireError::BadField("prefix length"));
        }
        let n = (len as usize).div_ceil(8);
        need(buf, 1 + n)?;
        let mut octets = [0u8; 4];
        octets[..n].copy_from_slice(&buf[1..1 + n]);
        out.push(Ipv4Prefix::new(Ipv4Addr::from(octets), len));
        buf = &buf[1 + n..];
    }
    Ok(out)
}

impl BgpMessage {
    /// The message type byte (for diagnostics).
    pub fn type_code(&self) -> u8 {
        match self {
            BgpMessage::Open(_) => TYPE_OPEN,
            BgpMessage::Update(_) => TYPE_UPDATE,
            BgpMessage::Notification(_) => TYPE_NOTIFICATION,
            BgpMessage::Keepalive => TYPE_KEEPALIVE,
        }
    }

    /// Serialize with header and marker into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Serialize with header and marker, reusing `out` (cleared first).
    /// This is the hot-path form: one pass over the message, length
    /// fields backpatched in place, zero intermediate allocations — a
    /// session replaying a full feed reuses one buffer for every
    /// message instead of building four fresh `Vec<u8>`s per message.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&[0xff; 16]);
        out.extend_from_slice(&[0, 0]); // total length, backpatched
        out.push(self.type_code());
        match self {
            BgpMessage::Open(o) => {
                out.push(o.version);
                out.extend_from_slice(&o.my_as.to_be_bytes());
                out.extend_from_slice(&o.hold_time.to_be_bytes());
                out.extend_from_slice(&o.router_id.octets());
                out.push(0); // no optional parameters
            }
            BgpMessage::Update(u) => {
                let withdrawn_at = out.len();
                out.extend_from_slice(&[0, 0]); // withdrawn length
                for p in &u.withdrawn {
                    encode_prefix(*p, out);
                }
                let wlen = out.len() - withdrawn_at - 2;
                out[withdrawn_at..withdrawn_at + 2].copy_from_slice(&(wlen as u16).to_be_bytes());
                let attrs_at = out.len();
                out.extend_from_slice(&[0, 0]); // attrs length
                if let Some(a) = &u.attrs {
                    encode_attrs(a, out);
                } else {
                    assert!(u.nlri.is_empty(), "NLRI requires attributes");
                }
                let alen = out.len() - attrs_at - 2;
                out[attrs_at..attrs_at + 2].copy_from_slice(&(alen as u16).to_be_bytes());
                for p in &u.nlri {
                    encode_prefix(*p, out);
                }
            }
            BgpMessage::Notification(n) => {
                out.push(n.code);
                out.push(n.subcode);
                out.extend_from_slice(&n.data);
            }
            BgpMessage::Keepalive => {}
        }
        let total = out.len();
        assert!(total <= u16::MAX as usize, "bgp message too large to frame");
        out[16..18].copy_from_slice(&(total as u16).to_be_bytes());
    }

    /// Parse one message from `buf` (which must contain exactly one
    /// message — the reliable channel preserves message boundaries).
    pub fn decode(buf: &[u8]) -> Result<BgpMessage, WireError> {
        need(buf, HEADER_LEN)?;
        if buf[..16] != [0xff; 16] {
            return Err(WireError::BadField("bgp marker"));
        }
        let len = be16(buf, 16) as usize;
        if len < HEADER_LEN || len != buf.len() {
            return Err(WireError::BadLength);
        }
        let ty = buf[18];
        let body = &buf[HEADER_LEN..];
        match ty {
            TYPE_OPEN => {
                need(body, 10)?;
                if body[0] != 4 {
                    return Err(WireError::Unsupported("bgp version"));
                }
                let hold_time = be16(body, 3);
                if hold_time != 0 && hold_time < 3 {
                    return Err(WireError::BadField("hold time"));
                }
                Ok(BgpMessage::Open(OpenMsg {
                    version: body[0],
                    my_as: be16(body, 1),
                    hold_time,
                    router_id: Ipv4Addr::new(body[5], body[6], body[7], body[8]),
                }))
            }
            TYPE_UPDATE => {
                need(body, 2)?;
                let wlen = be16(body, 0) as usize;
                need(body, 2 + wlen + 2)?;
                let withdrawn = decode_prefixes(&body[2..2 + wlen])?;
                let alen = be16(body, 2 + wlen) as usize;
                need(body, 2 + wlen + 2 + alen)?;
                let attr_bytes = &body[2 + wlen + 2..2 + wlen + 2 + alen];
                let nlri = decode_prefixes(&body[2 + wlen + 2 + alen..])?;
                let attrs = if alen > 0 {
                    Some(Arc::new(decode_attrs(attr_bytes)?))
                } else {
                    None
                };
                if attrs.is_none() && !nlri.is_empty() {
                    return Err(WireError::BadField("NLRI without attributes"));
                }
                Ok(BgpMessage::Update(UpdateMsg {
                    withdrawn,
                    attrs,
                    nlri,
                }))
            }
            TYPE_NOTIFICATION => {
                need(body, 2)?;
                Ok(BgpMessage::Notification(NotificationMsg {
                    code: body[0],
                    subcode: body[1],
                    data: body[2..].to_vec(),
                }))
            }
            TYPE_KEEPALIVE => {
                if !body.is_empty() {
                    return Err(WireError::BadLength);
                }
                Ok(BgpMessage::Keepalive)
            }
            _ => Err(WireError::BadField("bgp message type")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsPath;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn attrs() -> Arc<RouteAttrs> {
        RouteAttrs::ebgp(
            AsPath::sequence(vec![65001, 174]),
            Ipv4Addr::new(203, 0, 113, 1),
        )
        .shared()
    }

    #[test]
    fn open_roundtrip() {
        let m = BgpMessage::Open(OpenMsg::new(65001, 90, Ipv4Addr::new(1, 1, 1, 1)));
        let enc = m.encode();
        assert_eq!(BgpMessage::decode(&enc).unwrap(), m);
        assert_eq!(enc.len(), HEADER_LEN + 10);
    }

    #[test]
    fn keepalive_roundtrip() {
        let enc = BgpMessage::Keepalive.encode();
        assert_eq!(enc.len(), HEADER_LEN);
        assert_eq!(BgpMessage::decode(&enc).unwrap(), BgpMessage::Keepalive);
    }

    #[test]
    fn notification_roundtrip() {
        let m = BgpMessage::Notification(NotificationMsg {
            code: 6,
            subcode: 2,
            data: vec![1, 2, 3],
        });
        assert_eq!(BgpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn update_roundtrip_mixed() {
        let m = BgpMessage::Update(UpdateMsg {
            withdrawn: vec![p("9.9.0.0/16"), p("8.0.0.0/8")],
            attrs: Some(attrs()),
            nlri: vec![p("1.0.0.0/24"), p("1.0.1.0/24"), p("100.64.0.0/10")],
        });
        assert_eq!(BgpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn update_pure_withdrawal() {
        let m = BgpMessage::Update(UpdateMsg::withdraw(vec![p("1.0.0.0/24")]));
        assert_eq!(BgpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn prefix_encoding_is_minimal() {
        // A /8 must use 1 octet, /24 three, /32 four, /0 zero.
        let m = BgpMessage::Update(UpdateMsg::announce(
            attrs(),
            vec![
                p("10.0.0.0/8"),
                p("1.2.3.0/24"),
                p("5.6.7.8/32"),
                p("0.0.0.0/0"),
            ],
        ));
        let enc = m.encode();
        let dec = BgpMessage::decode(&enc).unwrap();
        assert_eq!(dec, m);
        // NLRI bytes: (1+1)+(1+3)+(1+4)+(1+0) = 12.
        let attrs_len = {
            let mut v = Vec::new();
            encode_attrs(&attrs(), &mut v);
            v.len()
        };
        assert_eq!(enc.len(), HEADER_LEN + 2 + 2 + attrs_len + 12);
    }

    #[test]
    fn marker_and_length_validated() {
        let m = BgpMessage::Keepalive.encode();
        let mut bad_marker = m.clone();
        bad_marker[3] = 0;
        assert_eq!(
            BgpMessage::decode(&bad_marker),
            Err(WireError::BadField("bgp marker"))
        );
        let mut bad_len = m.clone();
        bad_len[17] = 99;
        assert!(BgpMessage::decode(&bad_len).is_err());
        assert!(BgpMessage::decode(&m[..10]).is_err());
    }

    #[test]
    fn nlri_without_attrs_rejected() {
        // Hand-craft an UPDATE with NLRI but empty attribute block.
        let mut body = Vec::new();
        body.extend_from_slice(&0u16.to_be_bytes()); // no withdrawals
        body.extend_from_slice(&0u16.to_be_bytes()); // no attrs
        body.push(24);
        body.extend_from_slice(&[1, 0, 0]);
        let total = HEADER_LEN + body.len();
        let mut msg = vec![0xff; 16];
        msg.extend_from_slice(&(total as u16).to_be_bytes());
        msg.push(TYPE_UPDATE);
        msg.extend_from_slice(&body);
        assert_eq!(
            BgpMessage::decode(&msg),
            Err(WireError::BadField("NLRI without attributes"))
        );
    }

    #[test]
    fn bad_prefix_len_rejected() {
        let mut body = Vec::new();
        body.extend_from_slice(&0u16.to_be_bytes());
        body.extend_from_slice(&0u16.to_be_bytes());
        let mut msg = vec![0xff; 16];
        // wait to compute total; craft NLRI with len 33
        let mut b2 = body.clone();
        b2.push(33);
        b2.extend_from_slice(&[1, 0, 0, 0, 1]);
        let total = HEADER_LEN + b2.len();
        msg.extend_from_slice(&(total as u16).to_be_bytes());
        msg.push(TYPE_UPDATE);
        msg.extend_from_slice(&b2);
        // NLRI-without-attrs check happens after prefix decode, so the
        // length error must surface first.
        assert_eq!(
            BgpMessage::decode(&msg),
            Err(WireError::BadField("prefix length"))
        );
    }

    #[test]
    fn split_to_fit_respects_max_len() {
        // 2000 prefixes in one UPDATE exceeds 4096 bytes; splitting must
        // produce messages that each fit and that jointly carry all NLRI.
        let nlri: Vec<Ipv4Prefix> = (0..2000u32)
            .map(|i| Ipv4Prefix::new(Ipv4Addr::from(0x0a00_0000 + (i << 8)), 24))
            .collect();
        let msgs = UpdateMsg::announce(attrs(), nlri.clone()).split_to_fit();
        assert!(msgs.len() > 1);
        let mut collected = Vec::new();
        for m in &msgs {
            let enc = BgpMessage::Update(m.clone()).encode();
            assert!(
                enc.len() <= MAX_MESSAGE_LEN,
                "fragment too large: {}",
                enc.len()
            );
            collected.extend(m.nlri.iter().copied());
        }
        assert_eq!(collected, nlri);
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_buffer() {
        let msgs = vec![
            BgpMessage::Open(OpenMsg::new(65001, 90, Ipv4Addr::new(1, 1, 1, 1))),
            BgpMessage::Keepalive,
            BgpMessage::Notification(NotificationMsg::cease()),
            BgpMessage::Update(UpdateMsg {
                withdrawn: vec![p("9.9.0.0/16")],
                attrs: Some(attrs()),
                nlri: vec![p("1.0.0.0/24"), p("100.64.0.0/10")],
            }),
            BgpMessage::Update(UpdateMsg::withdraw(vec![p("1.0.0.0/24")])),
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            m.encode_into(&mut buf);
            assert_eq!(buf, m.encode(), "{m:?}");
            if let BgpMessage::Update(u) = m {
                assert_eq!(u.encoded_len(), buf.len(), "{u:?}");
            }
        }
    }

    #[test]
    fn hold_time_below_three_rejected() {
        let m = BgpMessage::Open(OpenMsg::new(1, 2, Ipv4Addr::new(1, 1, 1, 1)));
        let enc = m.encode();
        assert_eq!(
            BgpMessage::decode(&enc),
            Err(WireError::BadField("hold time"))
        );
    }
}
