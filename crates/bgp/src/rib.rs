//! The Loc-RIB: per-prefix ranked candidate lists with change tracking.
//!
//! This is the shared engine under both sides of the paper:
//! * the **router model** feeds updates in and reacts to best-route
//!   changes (FIB updates);
//! * the **supercharged controller** feeds the same updates in and reacts
//!   to changes of the *top-two* candidates (backup-group changes —
//!   Listing 1's `routing_table`).
//!
//! Every mutation returns a [`Change`] carrying the old and new top-two
//! snapshot, so callers never re-scan the table.

use crate::attrs::RouteAttrs;
use crate::decision::{compare_routes, PeerInfo, Route};
use crate::PeerId;
use sc_net::{Ipv4Prefix, PrefixTrie};
use std::sync::Arc;

/// Snapshot of the two best candidates for a prefix.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct TopTwo {
    pub best: Option<Route>,
    pub second: Option<Route>,
}

impl TopTwo {
    fn of(ranked: &[Route]) -> TopTwo {
        TopTwo {
            best: ranked.first().cloned(),
            second: ranked.get(1).cloned(),
        }
    }

    /// The (primary NH peer, backup NH peer) pair — the backup-group key
    /// of the paper, when both exist.
    pub fn nh_pair(&self) -> (Option<PeerId>, Option<PeerId>) {
        (
            self.best.as_ref().map(|r| r.from.peer),
            self.second.as_ref().map(|r| r.from.peer),
        )
    }
}

/// The outcome of one RIB mutation.
#[derive(Clone, PartialEq, Debug)]
pub struct Change {
    pub prefix: Ipv4Prefix,
    pub old: TopTwo,
    pub new: TopTwo,
}

impl Change {
    /// Did the best route change (what a classic router reacts to)?
    pub fn best_changed(&self) -> bool {
        !route_eq(&self.old.best, &self.new.best)
    }

    /// Did the (best, second) pair change (what Listing 1 reacts to)?
    pub fn top_two_changed(&self) -> bool {
        self.best_changed() || !route_eq(&self.old.second, &self.new.second)
    }

    /// Did the top-two *next-hop peers* change? (VNH reassignment is only
    /// needed when the peers change, not when e.g. the AS path mutates.)
    pub fn nh_pair_changed(&self) -> bool {
        self.old.nh_pair() != self.new.nh_pair()
    }
}

fn route_eq(a: &Option<Route>, b: &Option<Route>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

/// Per-prefix ranked candidate lists over all peers.
#[derive(Default)]
pub struct LocRib {
    entries: PrefixTrie<Vec<Route>>,
    routes: usize,
}

impl LocRib {
    pub fn new() -> LocRib {
        LocRib {
            entries: PrefixTrie::new(),
            routes: 0,
        }
    }

    /// Number of prefixes with at least one candidate.
    pub fn prefix_count(&self) -> usize {
        self.entries.len()
    }

    /// Total candidate routes across all prefixes.
    pub fn route_count(&self) -> usize {
        self.routes
    }

    /// Insert or replace the candidate from `route.from.peer` for
    /// `route.prefix`, keeping the list ranked by the decision process.
    pub fn update(&mut self, route: Route) -> Change {
        let prefix = route.prefix;
        let list = self.entries.get_mut_or_insert_with(prefix, Vec::new);
        let old = TopTwo::of(list);
        if let Some(pos) = list.iter().position(|r| r.from.peer == route.from.peer) {
            list.remove(pos);
            self.routes -= 1;
        }
        let pos = list
            .binary_search_by(|probe| compare_routes(probe, &route))
            .unwrap_or_else(|e| e);
        list.insert(pos, route);
        self.routes += 1;
        let new = TopTwo::of(list);
        Change { prefix, old, new }
    }

    /// Bulk insert one UPDATE's NLRI: every prefix gets the shared
    /// `attrs` (one `Arc` clone per prefix, no per-route struct churn
    /// at the call site) and exactly one ranked decision-process pass;
    /// `on_change` observes the per-prefix [`Change`] in NLRI order.
    ///
    /// Semantically identical to calling [`LocRib::update`] per prefix —
    /// the property tests pin the equivalence — but a full-feed load
    /// stays inside the trie/decision machinery without rebuilding the
    /// route skeleton per call.
    pub fn apply_update_batch(
        &mut self,
        attrs: &Arc<RouteAttrs>,
        nlri: &[Ipv4Prefix],
        from: PeerInfo,
        local_pref: u32,
        mut on_change: impl FnMut(Change),
    ) {
        for &prefix in nlri {
            let route = Route {
                prefix,
                attrs: attrs.clone(),
                from,
                local_pref,
            };
            on_change(self.update(route));
        }
    }

    /// Remove the candidate learned from `peer` for `prefix`, if any.
    pub fn withdraw(&mut self, prefix: Ipv4Prefix, peer: PeerId) -> Option<Change> {
        let list = self.entries.get_mut(prefix)?;
        let pos = list.iter().position(|r| r.from.peer == peer)?;
        let old = TopTwo::of(list);
        list.remove(pos);
        self.routes -= 1;
        let new = TopTwo::of(list);
        if list.is_empty() {
            self.entries.remove(prefix);
        }
        Some(Change { prefix, old, new })
    }

    /// Purge every candidate learned from `peer` (session down). Returns
    /// the changes for every affected prefix, in FIB walk order.
    pub fn withdraw_peer(&mut self, peer: PeerId) -> Vec<Change> {
        let mut changes = Vec::new();
        let mut emptied = Vec::new();
        self.entries.for_each_mut(|prefix, list| {
            if let Some(pos) = list.iter().position(|r| r.from.peer == peer) {
                let old = TopTwo::of(list);
                list.remove(pos);
                let new = TopTwo::of(list);
                changes.push(Change { prefix, old, new });
                if list.is_empty() {
                    emptied.push(prefix);
                }
            }
        });
        self.routes -= changes.len();
        for p in emptied {
            self.entries.remove(p);
        }
        changes
    }

    /// The ranked candidates for `prefix` (best first).
    pub fn candidates(&self, prefix: Ipv4Prefix) -> &[Route] {
        self.entries.get(prefix).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The best route for `prefix`.
    pub fn best(&self, prefix: Ipv4Prefix) -> Option<&Route> {
        self.candidates(prefix).first()
    }

    /// The current top-two snapshot for `prefix`.
    pub fn top_two(&self, prefix: Ipv4Prefix) -> TopTwo {
        TopTwo::of(self.candidates(prefix))
    }

    /// Iterate `(prefix, ranked candidates)` in FIB walk order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Prefix, &[Route])> {
        self.entries.iter().map(|(p, v)| (p, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AsPath, RouteAttrs};
    use crate::decision::{PeerInfo, DEFAULT_LOCAL_PREF};
    use std::net::Ipv4Addr;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn route(prefix: &str, peer_octet: u8, local_pref: u32) -> Route {
        Route {
            prefix: p(prefix),
            attrs: RouteAttrs::ebgp(
                AsPath::sequence(vec![100 + peer_octet as u16, 200]),
                Ipv4Addr::new(10, 0, peer_octet, 1),
            )
            .shared(),
            from: PeerInfo {
                peer: Ipv4Addr::new(10, 0, peer_octet, 1),
                router_id: Ipv4Addr::new(peer_octet, 0, 0, 1),
                ebgp: true,
                igp_cost: 0,
            },
            local_pref,
        }
    }

    #[test]
    fn first_route_becomes_best() {
        let mut rib = LocRib::new();
        let c = rib.update(route("1.0.0.0/24", 2, 200));
        assert!(c.best_changed());
        assert_eq!(c.old.best, None);
        assert_eq!(
            c.new.best.as_ref().unwrap().from.peer,
            Ipv4Addr::new(10, 0, 2, 1)
        );
        assert_eq!(rib.prefix_count(), 1);
        assert_eq!(rib.route_count(), 1);
    }

    #[test]
    fn second_route_ranks_below_preferred() {
        let mut rib = LocRib::new();
        rib.update(route("1.0.0.0/24", 2, 200)); // R2 preferred
        let c = rib.update(route("1.0.0.0/24", 3, 100)); // R3 backup
        assert!(!c.best_changed(), "best stays R2");
        assert!(c.top_two_changed(), "second appeared");
        let (best, second) = c.new.nh_pair();
        assert_eq!(best, Some(Ipv4Addr::new(10, 0, 2, 1)));
        assert_eq!(second, Some(Ipv4Addr::new(10, 0, 3, 1)));
    }

    #[test]
    fn better_route_takes_over() {
        let mut rib = LocRib::new();
        rib.update(route("1.0.0.0/24", 3, 100));
        let c = rib.update(route("1.0.0.0/24", 2, 200));
        assert!(c.best_changed());
        assert_eq!(
            c.new.best.as_ref().unwrap().from.peer,
            Ipv4Addr::new(10, 0, 2, 1)
        );
        assert_eq!(
            c.new.second.as_ref().unwrap().from.peer,
            Ipv4Addr::new(10, 0, 3, 1)
        );
    }

    #[test]
    fn implicit_replace_from_same_peer() {
        let mut rib = LocRib::new();
        rib.update(route("1.0.0.0/24", 2, 200));
        // Same peer re-announces with a worse preference: implicit
        // withdraw of its previous route.
        let c = rib.update(route("1.0.0.0/24", 2, 50));
        assert_eq!(rib.route_count(), 1);
        assert!(c.best_changed());
        assert_eq!(c.new.best.as_ref().unwrap().local_pref, 50);
    }

    #[test]
    fn withdraw_promotes_backup() {
        let mut rib = LocRib::new();
        rib.update(route("1.0.0.0/24", 2, 200));
        rib.update(route("1.0.0.0/24", 3, 100));
        let c = rib
            .withdraw(p("1.0.0.0/24"), Ipv4Addr::new(10, 0, 2, 1))
            .unwrap();
        assert!(c.best_changed());
        assert_eq!(
            c.new.best.as_ref().unwrap().from.peer,
            Ipv4Addr::new(10, 0, 3, 1)
        );
        assert_eq!(c.new.second, None);
        // Withdrawing a non-existent candidate is a no-op.
        assert!(rib
            .withdraw(p("1.0.0.0/24"), Ipv4Addr::new(9, 9, 9, 9))
            .is_none());
        // Withdraw the last: prefix disappears.
        rib.withdraw(p("1.0.0.0/24"), Ipv4Addr::new(10, 0, 3, 1))
            .unwrap();
        assert_eq!(rib.prefix_count(), 0);
        assert_eq!(rib.route_count(), 0);
    }

    #[test]
    fn withdraw_peer_purges_everything_in_order() {
        let mut rib = LocRib::new();
        for (i, pfx) in ["1.0.0.0/24", "2.0.0.0/16", "3.0.0.0/8"].iter().enumerate() {
            rib.update(route(pfx, 2, 200));
            if i != 1 {
                rib.update(route(pfx, 3, 100));
            }
        }
        let changes = rib.withdraw_peer(Ipv4Addr::new(10, 0, 2, 1));
        assert_eq!(changes.len(), 3);
        // FIB walk order = sorted prefix order.
        let order: Vec<Ipv4Prefix> = changes.iter().map(|c| c.prefix).collect();
        assert_eq!(
            order,
            vec![p("1.0.0.0/24"), p("2.0.0.0/16"), p("3.0.0.0/8")]
        );
        // 2.0.0.0/16 had only R2: gone entirely.
        assert_eq!(rib.prefix_count(), 2);
        assert!(rib.best(p("2.0.0.0/16")).is_none());
        assert_eq!(
            rib.best(p("1.0.0.0/24")).unwrap().from.peer,
            Ipv4Addr::new(10, 0, 3, 1)
        );
        assert_eq!(rib.route_count(), 2);
    }

    #[test]
    fn nh_pair_changed_distinguishes_attr_churn() {
        let mut rib = LocRib::new();
        rib.update(route("1.0.0.0/24", 2, 200));
        rib.update(route("1.0.0.0/24", 3, 100));
        // Same peers, new attrs (longer path, still ranked the same):
        let mut r = route("1.0.0.0/24", 2, 200);
        r.attrs = RouteAttrs::ebgp(
            AsPath::sequence(vec![102, 200, 300]),
            Ipv4Addr::new(10, 0, 2, 1),
        )
        .shared();
        let c = rib.update(r);
        assert!(c.top_two_changed(), "attrs changed");
        assert!(!c.nh_pair_changed(), "but the NH peers did not");
    }

    #[test]
    fn three_peers_rank_fully() {
        let mut rib = LocRib::new();
        rib.update(route("1.0.0.0/24", 3, 100));
        rib.update(route("1.0.0.0/24", 1, DEFAULT_LOCAL_PREF));
        rib.update(route("1.0.0.0/24", 2, 200));
        let ranked: Vec<u8> = rib
            .candidates(p("1.0.0.0/24"))
            .iter()
            .map(|r| r.from.peer.octets()[2])
            .collect();
        // 200 > 100 == 100; tie between peer1 (lp 100) and peer3 (lp 100)
        // broken by router-id (1 < 3).
        assert_eq!(ranked, vec![2, 1, 3]);
    }

    #[test]
    fn iter_is_in_fib_walk_order() {
        let mut rib = LocRib::new();
        for pfx in ["9.0.0.0/8", "1.0.0.0/24", "5.5.0.0/16"] {
            rib.update(route(pfx, 2, 200));
        }
        let order: Vec<Ipv4Prefix> = rib.iter().map(|(p, _)| p).collect();
        assert_eq!(
            order,
            vec![p("1.0.0.0/24"), p("5.5.0.0/16"), p("9.0.0.0/8")]
        );
    }
}
