//! The BGP session finite-state machine (RFC 4271 §8, simplified to the
//! states a point-to-point session over a reliable transport traverses:
//! Idle → OpenSent → OpenConfirm → Established).
//!
//! Poll-based, like every protocol state machine in this workspace: the
//! owner feeds decoded messages in with [`Session::on_message`], pumps
//! timers with [`Session::poll`], and drains outgoing messages with
//! [`Session::poll_transmit`]. `next_wakeup` tells the owner when to call
//! back — the discrete-event node arms exactly one timer from it.
//!
//! The transport (connection establishment, retransmission) is the
//! workspace's reliable channel; `Connect`/`Active` states therefore
//! collapse into the channel's own handshake.

use crate::msg::{BgpMessage, NotificationMsg, OpenMsg, UpdateMsg};
use sc_net::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// FSM states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionState {
    Idle,
    OpenSent,
    OpenConfirm,
    Established,
}

/// Why a session went down.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DownReason {
    /// The hold timer expired (no message from the peer in time).
    HoldTimerExpired,
    /// The peer sent a NOTIFICATION.
    NotificationReceived(NotificationMsg),
    /// We sent a NOTIFICATION because of an FSM/message error.
    FsmError(&'static str),
    /// The owner tore the session down (transport lost, admin down).
    AdminDown,
    /// BFD declared the peer's forwarding plane dead (RFC 5882 §4.3):
    /// the owner tore the session down without waiting for the hold
    /// timer. Distinct from [`DownReason::AdminDown`] so event logs can
    /// tell dataplane failure from operator shutdown.
    BfdDown,
    /// The owner's liveness watchdog expired: the peer (a supercharger
    /// controller beaconing sub-second keepalives) went silent for
    /// longer than its configured deadline, far inside the negotiated
    /// hold time. The session is torn down so graceful degradation can
    /// start without waiting out the RFC 4271 3-second hold floor.
    LivenessExpired,
}

/// Events surfaced to the session owner.
#[derive(Clone, PartialEq, Debug)]
pub enum SessionEvent {
    /// The session reached Established; carries the peer's OPEN.
    Established(OpenMsg),
    /// The session left Established (or failed to get there).
    Down(DownReason),
    /// An UPDATE arrived (only in Established).
    Update(UpdateMsg),
}

/// Static session configuration.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    pub local_as: u16,
    pub router_id: Ipv4Addr,
    /// Proposed hold time; the negotiated value is the minimum of both
    /// sides. Keepalives go out every third of it.
    pub hold_time: SimDuration,
}

impl SessionConfig {
    pub fn new(local_as: u16, router_id: Ipv4Addr) -> SessionConfig {
        SessionConfig {
            local_as,
            router_id,
            hold_time: SimDuration::from_secs(90),
        }
    }
}

/// One BGP session endpoint.
#[derive(Debug)]
pub struct Session {
    cfg: SessionConfig,
    state: SessionState,
    out: VecDeque<BgpMessage>,
    peer_open: Option<OpenMsg>,
    negotiated_hold: SimDuration,
    hold_deadline: Option<SimTime>,
    keepalive_at: Option<SimTime>,
    /// Count of UPDATEs received (diagnostics).
    pub updates_in: u64,
    /// Count of UPDATEs queued for sending (diagnostics).
    pub updates_out: u64,
    /// FSM state changes (any direction), for the metrics registry.
    pub transitions: u64,
}

impl Session {
    pub fn new(cfg: SessionConfig) -> Session {
        Session {
            cfg,
            state: SessionState::Idle,
            out: VecDeque::new(),
            peer_open: None,
            negotiated_hold: cfg.hold_time,
            hold_deadline: None,
            keepalive_at: None,
            updates_in: 0,
            updates_out: 0,
            transitions: 0,
        }
    }

    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Move the FSM to `next`, counting actual changes.
    fn enter(&mut self, next: SessionState) {
        if self.state != next {
            self.transitions += 1;
        }
        self.state = next;
    }

    /// Fold this session's counters into a metrics registry (the
    /// embedding node calls this; the sans-io session never sees one).
    pub fn fold_metrics(&self, reg: &mut sc_net::metrics::Registry) {
        reg.add("bgp.updates_in", self.updates_in);
        reg.add("bgp.updates_out", self.updates_out);
        reg.add("bgp.transitions", self.transitions);
    }

    /// The peer's OPEN message, once received.
    pub fn peer_open(&self) -> Option<&OpenMsg> {
        self.peer_open.as_ref()
    }

    /// The negotiated hold time (min of both proposals).
    pub fn negotiated_hold(&self) -> SimDuration {
        self.negotiated_hold
    }

    /// Transport is up: send our OPEN. Idempotent while not Idle.
    pub fn start(&mut self, now: SimTime) {
        if self.state != SessionState::Idle {
            return;
        }
        let hold_secs = (self.cfg.hold_time.as_nanos() / 1_000_000_000).min(u16::MAX as u64) as u16;
        self.out.push_back(BgpMessage::Open(OpenMsg::new(
            self.cfg.local_as,
            hold_secs,
            self.cfg.router_id,
        )));
        self.enter(SessionState::OpenSent);
        // Use a generous "open hold" until negotiation completes.
        self.hold_deadline = Some(now + self.cfg.hold_time);
    }

    /// Tear the session down locally (transport lost, admin shutdown).
    pub fn stop(&mut self, reason: DownReason) -> Option<SessionEvent> {
        if self.state == SessionState::Idle {
            return None;
        }
        self.reset();
        Some(SessionEvent::Down(reason))
    }

    fn reset(&mut self) {
        self.enter(SessionState::Idle);
        self.out.clear();
        self.peer_open = None;
        self.hold_deadline = None;
        self.keepalive_at = None;
    }

    fn refresh_hold(&mut self, now: SimTime) {
        if !self.negotiated_hold.is_zero() {
            self.hold_deadline = Some(now + self.negotiated_hold);
        } else {
            self.hold_deadline = None;
        }
    }

    fn schedule_keepalive(&mut self, now: SimTime) {
        if !self.negotiated_hold.is_zero() {
            self.keepalive_at = Some(now + self.negotiated_hold / 3);
        }
    }

    fn fsm_error(&mut self, what: &'static str) -> Vec<SessionEvent> {
        self.out.clear();
        self.out
            .push_back(BgpMessage::Notification(NotificationMsg {
                code: 5, // FSM error
                subcode: 0,
                data: Vec::new(),
            }));
        let ev = SessionEvent::Down(DownReason::FsmError(what));
        // Keep the NOTIFICATION queued for transmission, then idle.
        self.enter(SessionState::Idle);
        self.peer_open = None;
        self.hold_deadline = None;
        self.keepalive_at = None;
        vec![ev]
    }

    /// Feed a decoded message from the peer.
    pub fn on_message(&mut self, msg: BgpMessage, now: SimTime) -> Vec<SessionEvent> {
        match (self.state, msg) {
            (SessionState::OpenSent, BgpMessage::Open(open)) => {
                self.negotiated_hold = self
                    .cfg
                    .hold_time
                    .min(SimDuration::from_secs(open.hold_time as u64));
                self.peer_open = Some(open);
                self.out.push_back(BgpMessage::Keepalive);
                self.enter(SessionState::OpenConfirm);
                self.refresh_hold(now);
                Vec::new()
            }
            (SessionState::OpenConfirm, BgpMessage::Keepalive) => {
                self.enter(SessionState::Established);
                self.refresh_hold(now);
                self.schedule_keepalive(now);
                vec![SessionEvent::Established(self.peer_open.unwrap())]
            }
            (SessionState::Established, BgpMessage::Keepalive) => {
                self.refresh_hold(now);
                Vec::new()
            }
            (SessionState::Established, BgpMessage::Update(u)) => {
                self.refresh_hold(now);
                self.updates_in += 1;
                vec![SessionEvent::Update(u)]
            }
            (_, BgpMessage::Notification(n)) => {
                self.reset();
                vec![SessionEvent::Down(DownReason::NotificationReceived(n))]
            }
            (SessionState::Idle, _) => Vec::new(), // stale transport traffic
            (_, BgpMessage::Open(_)) => self.fsm_error("unexpected OPEN"),
            (_, BgpMessage::Update(_)) => self.fsm_error("UPDATE before Established"),
            (SessionState::OpenSent, BgpMessage::Keepalive) => {
                self.fsm_error("KEEPALIVE before OPEN")
            }
        }
    }

    /// Queue an immediate KEEPALIVE, out of schedule. BGP only bounds
    /// the keepalive rate from below (one per hold interval); a speaker
    /// acting as a liveness beacon may send them as often as it likes.
    /// No-op outside Established.
    pub fn send_keepalive(&mut self) {
        if self.state == SessionState::Established {
            self.out.push_back(BgpMessage::Keepalive);
        }
    }

    /// Queue an UPDATE for the peer (meaningful only when Established;
    /// earlier queueing is a logic error in the caller).
    pub fn queue_update(&mut self, update: UpdateMsg) {
        debug_assert_eq!(
            self.state,
            SessionState::Established,
            "UPDATE queued outside Established"
        );
        self.updates_out += 1;
        self.out.push_back(BgpMessage::Update(update));
    }

    /// Pump timers: hold expiry and keepalive generation.
    pub fn poll(&mut self, now: SimTime) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        if let Some(deadline) = self.hold_deadline {
            if now >= deadline {
                self.out.clear();
                self.out.push_back(BgpMessage::Notification(
                    NotificationMsg::hold_timer_expired(),
                ));
                self.enter(SessionState::Idle);
                self.peer_open = None;
                self.hold_deadline = None;
                self.keepalive_at = None;
                events.push(SessionEvent::Down(DownReason::HoldTimerExpired));
                return events;
            }
        }
        if self.state == SessionState::Established {
            if let Some(at) = self.keepalive_at {
                if now >= at {
                    self.out.push_back(BgpMessage::Keepalive);
                    self.schedule_keepalive(now);
                }
            }
        }
        events
    }

    /// Drain the next outgoing message.
    pub fn poll_transmit(&mut self) -> Option<BgpMessage> {
        self.out.pop_front()
    }

    /// When the owner must call [`Session::poll`] again.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        match (self.hold_deadline, self.keepalive_at) {
            (Some(h), Some(k)) => Some(h.min(k)),
            (Some(h), None) => Some(h),
            (None, Some(k)) => Some(k),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AsPath, RouteAttrs};
    use sc_net::Ipv4Prefix;

    fn cfg(asn: u16, id: u8) -> SessionConfig {
        SessionConfig {
            local_as: asn,
            router_id: Ipv4Addr::new(id, id, id, id),
            hold_time: SimDuration::from_secs(90),
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Shuttle messages between two sessions until quiescent.
    fn pump(
        a: &mut Session,
        b: &mut Session,
        now: SimTime,
    ) -> (Vec<SessionEvent>, Vec<SessionEvent>) {
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        loop {
            let mut progress = false;
            while let Some(m) = a.poll_transmit() {
                progress = true;
                eb.extend(b.on_message(m, now));
            }
            while let Some(m) = b.poll_transmit() {
                progress = true;
                ea.extend(a.on_message(m, now));
            }
            if !progress {
                return (ea, eb);
            }
        }
    }

    #[test]
    fn handshake_reaches_established() {
        let mut a = Session::new(cfg(65001, 1));
        let mut b = Session::new(cfg(65002, 2));
        a.start(t(0));
        b.start(t(0));
        let (ea, eb) = pump(&mut a, &mut b, t(0));
        assert_eq!(a.state(), SessionState::Established);
        assert_eq!(b.state(), SessionState::Established);
        assert!(matches!(ea[..], [SessionEvent::Established(o)] if o.my_as == 65002));
        assert!(matches!(eb[..], [SessionEvent::Established(o)] if o.my_as == 65001));
        assert_eq!(a.negotiated_hold(), SimDuration::from_secs(90));
    }

    #[test]
    fn hold_time_negotiates_to_minimum() {
        let mut a = Session::new(SessionConfig {
            hold_time: SimDuration::from_secs(30),
            ..cfg(65001, 1)
        });
        let mut b = Session::new(cfg(65002, 2));
        a.start(t(0));
        b.start(t(0));
        pump(&mut a, &mut b, t(0));
        assert_eq!(a.negotiated_hold(), SimDuration::from_secs(30));
        assert_eq!(b.negotiated_hold(), SimDuration::from_secs(30));
    }

    #[test]
    fn updates_flow_only_when_established() {
        let mut a = Session::new(cfg(65001, 1));
        let mut b = Session::new(cfg(65002, 2));
        a.start(t(0));
        b.start(t(0));
        pump(&mut a, &mut b, t(0));
        let upd = UpdateMsg::announce(
            RouteAttrs::ebgp(AsPath::sequence(vec![65001]), Ipv4Addr::new(10, 0, 0, 1)).shared(),
            vec!["1.0.0.0/24".parse::<Ipv4Prefix>().unwrap()],
        );
        a.queue_update(upd.clone());
        let (_, eb) = pump(&mut a, &mut b, t(1));
        assert!(matches!(&eb[..], [SessionEvent::Update(u)] if *u == upd));
        assert_eq!(b.updates_in, 1);
        assert_eq!(a.updates_out, 1);
    }

    #[test]
    fn keepalives_keep_session_alive() {
        let mut a = Session::new(cfg(65001, 1));
        let mut b = Session::new(cfg(65002, 2));
        a.start(t(0));
        b.start(t(0));
        pump(&mut a, &mut b, t(0));
        // Pump keepalives every 30s (hold/3) for 10 virtual minutes.
        for step in 1..20u64 {
            let now = t(step * 30);
            assert!(a.poll(now).is_empty(), "a stays up at {now}");
            assert!(b.poll(now).is_empty(), "b stays up at {now}");
            pump(&mut a, &mut b, now);
        }
        assert_eq!(a.state(), SessionState::Established);
    }

    #[test]
    fn hold_timer_expires_without_keepalives() {
        let mut a = Session::new(cfg(65001, 1));
        let mut b = Session::new(cfg(65002, 2));
        a.start(t(0));
        b.start(t(0));
        pump(&mut a, &mut b, t(0));
        // b goes silent; a must declare the peer dead after 90s.
        assert!(a.poll(t(89)).is_empty());
        let ev = a.poll(t(90));
        assert!(matches!(
            &ev[..],
            [SessionEvent::Down(DownReason::HoldTimerExpired)]
        ));
        assert_eq!(a.state(), SessionState::Idle);
        // A hold-expired NOTIFICATION is queued for the (possibly dead) peer.
        assert!(matches!(
            a.poll_transmit(),
            Some(BgpMessage::Notification(n)) if n.code == 4
        ));
    }

    #[test]
    fn notification_tears_down() {
        let mut a = Session::new(cfg(65001, 1));
        let mut b = Session::new(cfg(65002, 2));
        a.start(t(0));
        b.start(t(0));
        pump(&mut a, &mut b, t(0));
        let ev = a.on_message(BgpMessage::Notification(NotificationMsg::cease()), t(1));
        assert!(matches!(
            &ev[..],
            [SessionEvent::Down(DownReason::NotificationReceived(n))] if n.code == 6
        ));
        assert_eq!(a.state(), SessionState::Idle);
    }

    #[test]
    fn unexpected_open_is_fsm_error() {
        let mut a = Session::new(cfg(65001, 1));
        let mut b = Session::new(cfg(65002, 2));
        a.start(t(0));
        b.start(t(0));
        pump(&mut a, &mut b, t(0));
        let ev = a.on_message(
            BgpMessage::Open(OpenMsg::new(65002, 90, Ipv4Addr::new(2, 2, 2, 2))),
            t(1),
        );
        assert!(matches!(
            &ev[..],
            [SessionEvent::Down(DownReason::FsmError(_))]
        ));
        // The FSM-error NOTIFICATION goes out.
        assert!(matches!(a.poll_transmit(), Some(BgpMessage::Notification(n)) if n.code == 5));
    }

    #[test]
    fn next_wakeup_is_min_of_timers() {
        let mut a = Session::new(cfg(65001, 1));
        let mut b = Session::new(cfg(65002, 2));
        a.start(t(0));
        b.start(t(0));
        pump(&mut a, &mut b, t(0));
        // keepalive at 30s, hold at 90s → wakeup 30s.
        assert_eq!(a.next_wakeup(), Some(t(30)));
        a.poll(t(30));
        assert_eq!(a.next_wakeup(), Some(t(60)), "next keepalive");
    }

    #[test]
    fn restart_after_down() {
        let mut a = Session::new(cfg(65001, 1));
        let mut b = Session::new(cfg(65002, 2));
        a.start(t(0));
        b.start(t(0));
        pump(&mut a, &mut b, t(0));
        a.poll(t(100)); // hold expiry
        assert_eq!(a.state(), SessionState::Idle);
        // The old transport is gone: its queued NOTIFICATION dies with it.
        while a.poll_transmit().is_some() {}
        // Both sides restart: must re-establish cleanly.
        let mut b2 = Session::new(cfg(65002, 2));
        a.start(t(101));
        b2.start(t(101));
        let (ea, _) = pump(&mut a, &mut b2, t(101));
        assert!(ea.iter().any(|e| matches!(e, SessionEvent::Established(_))));
    }

    #[test]
    fn stop_reports_admin_down() {
        let mut a = Session::new(cfg(65001, 1));
        a.start(t(0));
        let ev = a.stop(DownReason::AdminDown);
        assert!(matches!(
            ev,
            Some(SessionEvent::Down(DownReason::AdminDown))
        ));
        assert!(a.stop(DownReason::AdminDown).is_none(), "idempotent");
    }
}
