//! Property tests for the BGP substrate: wire-format identity for
//! arbitrary UPDATEs, the decision process as a strict total order, and
//! the Loc-RIB against a naive model.

use proptest::collection::vec;
use proptest::prelude::*;
use sc_bgp::attrs::{AsPath, AsSegment, Origin, RouteAttrs};
use sc_bgp::msg::{BgpMessage, UpdateMsg};
use sc_bgp::rib::LocRib;
use sc_bgp::{compare_routes, PeerInfo, Route};
use sc_net::Ipv4Prefix;
use std::cmp::Ordering;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Ipv4Prefix::new(Ipv4Addr::from(a), l))
}

fn arb_as_path() -> impl Strategy<Value = AsPath> {
    vec(
        prop_oneof![
            vec(any::<u16>(), 1..8).prop_map(AsSegment::Sequence),
            vec(any::<u16>(), 1..5).prop_map(AsSegment::Set),
        ],
        0..4,
    )
    .prop_map(|segments| AsPath { segments })
}

fn arb_attrs() -> impl Strategy<Value = RouteAttrs> {
    (
        0u8..3,
        arb_as_path(),
        any::<u32>(),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        vec(any::<u32>(), 0..4),
    )
        .prop_map(
            |(origin, as_path, nh, med, local_pref, communities)| RouteAttrs {
                origin: match origin {
                    0 => Origin::Igp,
                    1 => Origin::Egp,
                    _ => Origin::Incomplete,
                },
                as_path,
                next_hop: Ipv4Addr::from(nh),
                med,
                local_pref,
                communities,
            },
        )
}

fn arb_route() -> impl Strategy<Value = Route> {
    (
        arb_prefix(),
        arb_attrs(),
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
        any::<u32>(),
        0u32..1000,
    )
        .prop_map(
            |(prefix, attrs, peer, router_id, ebgp, igp_cost, local_pref)| Route {
                prefix,
                attrs: Arc::new(attrs),
                from: PeerInfo {
                    peer: Ipv4Addr::from(peer),
                    router_id: Ipv4Addr::from(router_id),
                    ebgp,
                    igp_cost,
                },
                local_pref,
            },
        )
}

proptest! {
    /// Arbitrary UPDATE messages survive encode→decode unchanged.
    #[test]
    fn update_roundtrip(
        withdrawn in vec(arb_prefix(), 0..40),
        attrs in arb_attrs(),
        nlri in vec(arb_prefix(), 0..40),
    ) {
        // Dedup (BGP NLRI is a set; duplicates are legal on the wire but
        // equality after reparse needs set semantics — keep it simple).
        let mut withdrawn = withdrawn;
        withdrawn.sort();
        withdrawn.dedup();
        let mut nlri = nlri;
        nlri.sort();
        nlri.dedup();
        let upd = UpdateMsg {
            withdrawn,
            attrs: if nlri.is_empty() { None } else { Some(Arc::new(attrs)) },
            nlri,
        };
        let msg = BgpMessage::Update(upd);
        let enc = msg.encode();
        if enc.len() <= sc_bgp::msg::MAX_MESSAGE_LEN {
            prop_assert_eq!(BgpMessage::decode(&enc).unwrap(), msg);
        }
    }

    /// The zero-alloc encode path is byte-identical to the fresh-`Vec`
    /// one, the exact-size accounting matches the bytes produced, and a
    /// reused buffer never leaks previous contents.
    #[test]
    fn encode_into_matches_encode(
        withdrawn in vec(arb_prefix(), 0..40),
        attrs in arb_attrs(),
        nlri in vec(arb_prefix(), 0..40),
    ) {
        let upd = UpdateMsg {
            withdrawn,
            attrs: if nlri.is_empty() { None } else { Some(Arc::new(attrs)) },
            nlri,
        };
        let msg = BgpMessage::Update(upd.clone());
        let fresh = msg.encode();
        prop_assert_eq!(upd.encoded_len(), fresh.len());
        // Dirty, oversized reusable buffer: encode_into must clear it.
        let mut buf = vec![0xAB; 9000];
        msg.encode_into(&mut buf);
        prop_assert_eq!(buf, fresh);
    }

    /// Full packed-replay round-trip under forced splitting: random
    /// attrs over a prefix set large enough to exceed the RFC 4271
    /// message cap must split, encode through the reusable buffer,
    /// decode, and reassemble to exactly the original table.
    #[test]
    fn split_pack_encode_decode_roundtrip(attrs in arb_attrs(), n in 900usize..2200) {
        let mut nlri: Vec<Ipv4Prefix> = (0..n as u32)
            .map(|i| Ipv4Prefix::new(Ipv4Addr::from(0x0a00_0000u32.wrapping_add(i << 8)), 24))
            .collect();
        nlri.sort();
        nlri.dedup();
        let attrs = Arc::new(attrs);
        let parts = UpdateMsg::announce(attrs.clone(), nlri.clone()).split_to_fit();
        let mut buf = Vec::new();
        let mut collected = Vec::new();
        for part in &parts {
            let msg = BgpMessage::Update(part.clone());
            msg.encode_into(&mut buf);
            prop_assert!(buf.len() <= sc_bgp::msg::MAX_MESSAGE_LEN);
            prop_assert_eq!(part.encoded_len(), buf.len());
            let decoded = BgpMessage::decode(&buf).unwrap();
            let BgpMessage::Update(u) = decoded else {
                return Err(TestCaseError::fail("decoded to a non-UPDATE".to_string()));
            };
            prop_assert_eq!(u.attrs.as_deref(), Some(attrs.as_ref()));
            collected.extend(u.nlri);
        }
        prop_assert_eq!(collected, nlri);
    }

    /// split_to_fit never loses or reorders NLRI and every part fits.
    #[test]
    fn split_preserves_nlri(attrs in arb_attrs(), n in 1usize..3000) {
        let nlri: Vec<Ipv4Prefix> = (0..n as u32)
            .map(|i| Ipv4Prefix::new(Ipv4Addr::from(0x0100_0000u32.wrapping_add(i << 8)), 24))
            .collect();
        let mut nlri = nlri;
        nlri.sort();
        nlri.dedup();
        let parts = UpdateMsg::announce(Arc::new(attrs), nlri.clone()).split_to_fit();
        let mut collected = Vec::new();
        for p in &parts {
            let enc = BgpMessage::Update(p.clone()).encode();
            prop_assert!(enc.len() <= sc_bgp::msg::MAX_MESSAGE_LEN);
            collected.extend(p.nlri.iter().copied());
        }
        prop_assert_eq!(collected, nlri);
    }

    /// The decision process is a strict weak order: antisymmetric,
    /// transitive, and total — two routes from distinct peers never tie.
    /// (A tie would make the controller's backup-groups nondeterministic
    /// across replicas, breaking §3 of the paper.)
    #[test]
    fn decision_is_total_order(routes in vec(arb_route(), 2..12)) {
        for a in &routes {
            prop_assert_eq!(compare_routes(a, a), Ordering::Equal);
            for b in &routes {
                let ab = compare_routes(a, b);
                let ba = compare_routes(b, a);
                prop_assert_eq!(ab, ba.reverse(), "antisymmetry");
                if a.from.peer != b.from.peer {
                    prop_assert_ne!(ab, Ordering::Equal, "distinct peers must not tie");
                }
                for c in &routes {
                    if ab != Ordering::Greater && compare_routes(b, c) != Ordering::Greater {
                        prop_assert_ne!(
                            compare_routes(a, c),
                            Ordering::Greater,
                            "transitivity"
                        );
                    }
                }
            }
        }
        // Sorting is therefore stable and deterministic: two shuffles
        // agree.
        let mut v1 = routes.clone();
        let mut v2: Vec<Route> = routes.iter().rev().cloned().collect();
        v1.sort_by(compare_routes);
        v2.sort_by(compare_routes);
        let key = |r: &Route| (r.from.peer, r.prefix);
        prop_assert_eq!(v1.iter().map(key).collect::<Vec<_>>(),
                        v2.iter().map(key).collect::<Vec<_>>());
    }

    /// LocRib against a naive model: after arbitrary update/withdraw
    /// interleavings, the ranked candidate lists agree with brute-force
    /// sorting, and every reported Change old/new snapshot is truthful.
    #[test]
    fn locrib_matches_naive_model(
        ops in vec((arb_route(), any::<bool>()), 1..80),
    ) {
        let mut rib = LocRib::new();
        // Model: Vec of (prefix, peer) -> Route.
        let mut model: Vec<Route> = Vec::new();
        for (route, is_update) in ops {
            let naive_top2 = |model: &[Route], pfx| {
                let mut cands: Vec<&Route> =
                    model.iter().filter(|r| r.prefix == pfx).collect();
                cands.sort_by(|a, b| compare_routes(a, b));
                (
                    cands.first().map(|r| r.from.peer),
                    cands.get(1).map(|r| r.from.peer),
                )
            };
            let before = naive_top2(&model, route.prefix);
            if is_update {
                model.retain(|r| !(r.prefix == route.prefix && r.from.peer == route.from.peer));
                model.push(route.clone());
                let change = rib.update(route.clone());
                prop_assert_eq!(change.old.nh_pair(), before);
                prop_assert_eq!(
                    change.new.nh_pair(),
                    naive_top2(&model, route.prefix)
                );
            } else {
                let existed = model
                    .iter()
                    .any(|r| r.prefix == route.prefix && r.from.peer == route.from.peer);
                model.retain(|r| !(r.prefix == route.prefix && r.from.peer == route.from.peer));
                let change = rib.withdraw(route.prefix, route.from.peer);
                prop_assert_eq!(change.is_some(), existed);
                if let Some(c) = change {
                    prop_assert_eq!(c.old.nh_pair(), before);
                    prop_assert_eq!(c.new.nh_pair(), naive_top2(&model, route.prefix));
                }
            }
            prop_assert_eq!(rib.route_count(), model.len());
        }
        // Final state: every prefix's ranked list matches brute force.
        let mut prefixes: Vec<Ipv4Prefix> = model.iter().map(|r| r.prefix).collect();
        prefixes.sort();
        prefixes.dedup();
        for pfx in prefixes {
            let mut want: Vec<&Route> = model.iter().filter(|r| r.prefix == pfx).collect();
            want.sort_by(|a, b| compare_routes(a, b));
            let got = rib.candidates(pfx);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want) {
                prop_assert_eq!(g.from.peer, w.from.peer);
            }
        }
    }

    /// withdraw_peer ≡ withdrawing each of the peer's prefixes one by
    /// one, and leaves no trace of the peer.
    #[test]
    fn withdraw_peer_purges_completely(routes in vec(arb_route(), 1..60)) {
        let mut rib = LocRib::new();
        for r in &routes {
            rib.update(r.clone());
        }
        let victim = routes[0].from.peer;
        let changes = rib.withdraw_peer(victim);
        // No candidate from the victim remains.
        for (_, cands) in rib.iter() {
            prop_assert!(cands.iter().all(|r| r.from.peer != victim));
        }
        // Change list covers exactly the prefixes the victim served.
        let mut served: Vec<Ipv4Prefix> = routes
            .iter()
            .filter(|r| r.from.peer == victim)
            .map(|r| r.prefix)
            .collect();
        served.sort();
        served.dedup();
        let mut changed: Vec<Ipv4Prefix> = changes.iter().map(|c| c.prefix).collect();
        changed.sort();
        changed.dedup();
        prop_assert_eq!(changed, served);
    }
}
