//! Per-crate policy: which severity each rule carries in each crate,
//! the layering ranks the import graph must respect, and the one file
//! allowed to read the wall clock.
//!
//! The table is source, not a config file, on purpose: policy changes
//! are code-reviewed diffs next to the rules they tune, and the checker
//! stays dependency-free (no TOML parser needed beyond the 20-line
//! `[dependencies]` scanner in `workspace.rs`).

use crate::rules::Rule;

/// How a finding is treated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Rule disabled here: no diagnostic at all.
    Allow,
    /// Reported, but `--deny` does not fail on it.
    Warn,
    /// Reported; `--deny` exits non-zero.
    Deny,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// What role a crate plays, which decides its default severities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrateKind {
    /// Simulation/core logic: everything must be a pure function of the
    /// seed, so all determinism rules deny.
    Sim,
    /// Outermost shells (bench harnesses, this checker): wall-clock
    /// timing is their job and hasher determinism is a warning, not a
    /// failure.
    Shell,
}

/// One workspace crate the checker knows about.
pub struct CrateInfo {
    /// Package name as in `Cargo.toml` (`supercharger`, not `core`).
    pub name: &'static str,
    /// Directory under `crates/`.
    pub dir: &'static str,
    /// Layering rank: a crate may only depend on strictly lower ranks.
    pub layer: u8,
    pub kind: CrateKind,
}

/// The workspace layering map (mirrors ROADMAP's architecture: wire
/// types < kernel/protocol state machines < devices < measurement <
/// shells). `cargo run -p sc-check` fails if `Cargo.toml` grows an
/// edge that flows upward or sideways.
pub const CRATES: &[CrateInfo] = &[
    ci("sc-net", "net", 0, CrateKind::Sim),
    ci("sc-sim", "sim", 1, CrateKind::Sim),
    ci("sc-bgp", "bgp", 1, CrateKind::Sim),
    ci("sc-bfd", "bfd", 1, CrateKind::Sim),
    ci("sc-mrt", "mrt", 2, CrateKind::Sim),
    ci("sc-openflow", "openflow", 2, CrateKind::Sim),
    ci("sc-traffic", "traffic", 2, CrateKind::Sim),
    ci("sc-router", "router", 3, CrateKind::Sim),
    ci("supercharger", "core", 3, CrateKind::Sim),
    ci("sc-routegen", "routegen", 3, CrateKind::Sim),
    ci("sc-invariant", "invariant", 4, CrateKind::Sim),
    ci("sc-lab", "lab", 5, CrateKind::Sim),
    ci("sc-scenarios", "scenarios", 6, CrateKind::Sim),
    ci("sc-bench", "bench", 7, CrateKind::Shell),
    ci("sc-check", "check", 7, CrateKind::Shell),
];

const fn ci(name: &'static str, dir: &'static str, layer: u8, kind: CrateKind) -> CrateInfo {
    CrateInfo {
        name,
        dir,
        layer,
        kind,
    }
}

/// Look up a crate by package name. Unknown crates (a future PR's new
/// crate before this table learns about it) default to the strict
/// `Sim` policy with no layering rank — determinism rules apply from
/// the crate's first commit.
pub fn crate_info(name: &str) -> Option<&'static CrateInfo> {
    CRATES.iter().find(|c| c.name == name)
}

/// Crates whose state machines must stay transport-agnostic: naming
/// `sc_net::channel` types here blocks the sans-io refactor (ROADMAP:
/// "Sans-io core + real-I/O shell").
pub const SANS_IO_CRATES: &[&str] = &["sc-bgp", "sc-bfd", "supercharger"];

/// The single file allowed to touch `Instant`/`SystemTime`: the bench
/// shell's timing module, which every other harness goes through.
pub const WALL_CLOCK_ALLOWLIST: &[&str] = &["crates/bench/src/timing.rs"];

/// Files allowed to spawn threads outside `sc-sim` (which hosts the
/// sharded parallel kernel and is exempt crate-wide): the suite
/// runners, which fan whole independent trials out across a worker
/// pool. Everything else must stay single-threaded — `no-ambient-
/// threading` denies `thread::spawn`/`scope`/`Builder` and `rayon`.
pub const THREADING_ALLOWLIST: &[&str] = &[
    "crates/scenarios/src/runner.rs",
    "crates/lab/src/experiments.rs",
];

/// The severity of `rule` inside `crate_name`.
pub fn severity(rule: Rule, crate_name: &str) -> Severity {
    let kind = crate_info(crate_name)
        .map(|c| c.kind)
        .unwrap_or(CrateKind::Sim);
    match (rule, kind) {
        // Hashers: sim/core crates must be deterministic; shells only
        // report results (their maps never feed back into a trial), so
        // a stray HashMap there is noise worth flagging, not a failure.
        (Rule::NoDefaultHasher, CrateKind::Sim) => Severity::Deny,
        (Rule::NoDefaultHasher, CrateKind::Shell) => Severity::Warn,
        // Wall clock: denied everywhere; the allowlist file (not a
        // crate-level hole) is carved out in the engine.
        (Rule::NoWallClock, _) => Severity::Deny,
        // Ambient randomness: even benches must be seeded — perf worlds
        // are replayed for byte-identical event streams.
        (Rule::NoAmbientRandomness, _) => Severity::Deny,
        // Threading: the sharded kernel crate owns all simulation
        // parallelism; the runner files are carved out in the engine.
        (Rule::NoAmbientThreading, _) if crate_name == "sc-sim" => Severity::Allow,
        (Rule::NoAmbientThreading, _) => Severity::Deny,
        // Printing: simulation code must speak through sc-trace /
        // metrics, never ambient stdio (output interleaves across suite
        // workers and is invisible to the determinism contract). Shells
        // are CLIs — printing is their job; `bin/` files are carved out
        // in the engine.
        (Rule::NoAmbientPrint, CrateKind::Sim) => Severity::Deny,
        (Rule::NoAmbientPrint, CrateKind::Shell) => Severity::Allow,
        (Rule::Layering, _) => Severity::Deny,
        (Rule::UnsafeNeedsSafetyComment, _) => Severity::Deny,
        (Rule::AllowNeedsJustification, _) => Severity::Deny,
        // A malformed waiver is always an error: a waiver that silently
        // fails to parse would silently stop waiving.
        (Rule::WaiverSyntax, _) => Severity::Deny,
    }
}
