//! A small lossless Rust lexer.
//!
//! Purpose-built for static analysis, not compilation: it splits a
//! source file into tokens whose byte spans exactly tile the input
//! (nothing is dropped, nothing overlaps), so the rule engine can strip
//! comments and string/char literals and scan only *code* for hazard
//! patterns. It understands everything that can hide a fake match:
//! nested block comments, ordinary strings with escapes, raw strings
//! with any hash depth (including byte/C-string prefixes), raw
//! identifiers, and the `'a` lifetime vs `'a'` char-literal ambiguity.
//!
//! It never panics, whatever bytes it is fed — the property tests in
//! `tests/lexer_props.rs` fuzz it with arbitrary input and check the
//! tiling invariant on every run.

/// What a token is. The rule engine treats `Ident`/`Num`/`Punct` as
/// scannable code and everything else as opaque.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Whitespace run.
    Ws,
    /// `// …` to end of line (doc `///` and `//!` included).
    LineComment,
    /// `/* … */`, nesting respected; unterminated runs to EOF.
    BlockComment,
    /// `"…"`, `b"…"`, `c"…"` with backslash escapes; unterminated runs
    /// to EOF.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##`, `cr"…"` — no escapes, closed by a
    /// quote followed by the opening hash count.
    RawStr,
    /// `'x'`, `'\n'`, `'\u{1F600}'`, `'🦀'`.
    Char,
    /// `'label` / `'lifetime` (a quote followed by an identifier with
    /// no closing quote).
    Lifetime,
    /// Identifier or keyword (`r#raw` identifiers included).
    Ident,
    /// Number literal body (`0x5c`, `1_000u64`; a decimal point splits
    /// into `Num Punct Num`, which is fine for pattern scanning).
    Num,
    /// A single punctuation byte (`::` is two `:` tokens).
    Punct,
    /// Anything else (stray quote, non-UTF8 punctuation byte, …).
    Other,
}

/// One token: kind plus the byte span `[start, end)` and the 1-based
/// line its first byte sits on.
#[derive(Clone, Copy, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Tok {
    /// The token's text (empty if the span is not valid UTF-8, which
    /// only happens for `Other` bytes inside malformed input).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// The single byte of a `Punct` token, `0` for any other kind —
    /// puncts are always exactly one byte, so the rule engine matches
    /// them this way without slicing.
    pub fn punct_byte(&self, src: &str) -> u8 {
        if self.kind == TokKind::Punct {
            src.as_bytes().get(self.start).copied().unwrap_or(0)
        } else {
            0
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Length of the UTF-8 sequence starting with `b` (1 for malformed
/// leading bytes — the lexer only needs an upper bound that keeps it
/// from splitting well-formed chars).
fn utf8_len(b: u8) -> usize {
    match b {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

/// Tokenize `src`. The returned spans exactly tile `0..src.len()`.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    b: &'s [u8],
    i: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.i < self.b.len() {
            let start = self.i;
            let kind = self.next_token();
            debug_assert!(self.i > start, "lexer must always advance");
            // Belt and braces for release builds: never loop forever.
            if self.i <= start {
                self.i = start + 1;
            }
            // The token is tagged with the line of its first byte; its
            // own newlines advance the counter for the next token.
            let line = self.line;
            let newlines = self.b[start..self.i]
                .iter()
                .filter(|&&c| c == b'\n')
                .count();
            self.line += newlines as u32;
            self.out.push(Tok {
                kind,
                start,
                end: self.i,
                line,
            });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn next_token(&mut self) -> TokKind {
        let c = self.b[self.i];
        if c.is_ascii_whitespace() {
            while self.peek(0).is_some_and(|b| b.is_ascii_whitespace()) {
                self.i += 1;
            }
            return TokKind::Ws;
        }
        if c == b'/' {
            match self.peek(1) {
                Some(b'/') => {
                    while self.peek(0).is_some_and(|b| b != b'\n') {
                        self.i += 1;
                    }
                    return TokKind::LineComment;
                }
                Some(b'*') => {
                    self.i += 2;
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(0), self.peek(1)) {
                            (Some(b'/'), Some(b'*')) => {
                                depth += 1;
                                self.i += 2;
                            }
                            (Some(b'*'), Some(b'/')) => {
                                depth -= 1;
                                self.i += 2;
                            }
                            (Some(_), _) => self.i += 1,
                            (None, _) => break,
                        }
                    }
                    return TokKind::BlockComment;
                }
                _ => {
                    self.i += 1;
                    return TokKind::Punct;
                }
            }
        }
        if c == b'"' {
            self.i += 1;
            self.consume_escaped_until(b'"');
            return TokKind::Str;
        }
        // String-literal prefixes: r"", r#""#, b"", br#""#, c"", cr"",
        // plus raw identifiers r#ident. Anything that does not complete
        // a prefix falls through to the identifier path.
        if matches!(c, b'r' | b'b' | b'c') {
            if let Some(kind) = self.try_prefixed_string() {
                return kind;
            }
        }
        if c == b'\'' {
            return self.char_or_lifetime();
        }
        if is_ident_start(c) {
            while self.peek(0).is_some_and(is_ident_continue) {
                self.i += 1;
            }
            return TokKind::Ident;
        }
        if c.is_ascii_digit() {
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.i += 1;
            }
            return TokKind::Num;
        }
        self.i += 1;
        if c.is_ascii_punctuation() {
            TokKind::Punct
        } else {
            TokKind::Other
        }
    }

    /// Consume bytes until an unescaped `close` (or EOF), starting just
    /// past the opening quote. A backslash always escapes exactly the
    /// next byte — enough to keep `"\""` and `'\''` from closing early.
    fn consume_escaped_until(&mut self, close: u8) {
        while let Some(b) = self.peek(0) {
            self.i += 1;
            if b == b'\\' {
                if self.peek(0).is_some() {
                    self.i += 1;
                }
            } else if b == close {
                return;
            }
        }
    }

    /// Try to lex `r`/`b`/`c`-prefixed string forms at the cursor.
    /// Returns `None` (cursor untouched) if this is just an identifier
    /// that happens to start with those letters.
    fn try_prefixed_string(&mut self) -> Option<TokKind> {
        let mut j = 0usize;
        let mut raw = false;
        // Optional b/c, optional r — in that order (br"", cr"") — or a
        // bare r ("r#raw-ident" is also handled here).
        match self.peek(j) {
            Some(b'b') | Some(b'c') => {
                j += 1;
                if self.peek(j) == Some(b'r') {
                    raw = true;
                    j += 1;
                }
            }
            Some(b'r') => {
                raw = true;
                j += 1;
            }
            _ => {}
        }
        if raw {
            let mut hashes = 0usize;
            while self.peek(j + hashes) == Some(b'#') {
                hashes += 1;
            }
            if self.peek(j + hashes) == Some(b'"') {
                // Raw string: scan for `"` followed by `hashes` hashes.
                self.i += j + hashes + 1;
                while let Some(b) = self.peek(0) {
                    self.i += 1;
                    if b == b'"' {
                        let mut k = 0;
                        while k < hashes && self.peek(k) == Some(b'#') {
                            k += 1;
                        }
                        if k == hashes {
                            self.i += hashes;
                            return Some(TokKind::RawStr);
                        }
                    }
                }
                return Some(TokKind::RawStr); // unterminated: to EOF
            }
            if hashes == 1 && self.peek(j + 1).is_some_and(is_ident_start) {
                // Raw identifier r#ident.
                self.i += j + 1;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.i += 1;
                }
                return Some(TokKind::Ident);
            }
            return None;
        }
        // Non-raw byte/C string: b"…" / c"…" with escapes.
        if j > 0 && self.peek(j) == Some(b'"') {
            self.i += j + 1;
            self.consume_escaped_until(b'"');
            return Some(TokKind::Str);
        }
        None
    }

    /// Disambiguate `'a'` (char), `'\n'` (escaped char), `'a`
    /// (lifetime/label), and a stray quote.
    fn char_or_lifetime(&mut self) -> TokKind {
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: consume to the closing quote.
                self.i += 1;
                self.consume_escaped_until(b'\'');
                TokKind::Char
            }
            Some(c) => {
                // One UTF-8 char followed by a closing quote ⇒ char
                // literal; this check comes first so `'_'` and `'r''`
                // read as chars, not lifetimes.
                let l = utf8_len(c);
                if self.peek(1 + l) == Some(b'\'') {
                    self.i += 1 + l + 1;
                    return TokKind::Char;
                }
                if is_ident_start(c) {
                    self.i += 2;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.i += 1;
                    }
                    return TokKind::Lifetime;
                }
                self.i += 1;
                TokKind::Other
            }
            None => {
                self.i += 1;
                TokKind::Other
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).iter().map(|t| t.kind).collect()
    }

    /// The tiling invariant every caller relies on.
    fn assert_tiles(src: &str) {
        let toks = lex(src);
        let mut at = 0usize;
        for t in &toks {
            assert_eq!(t.start, at, "gap/overlap at byte {at} in {src:?}");
            assert!(t.end > t.start, "empty token in {src:?}");
            at = t.end;
        }
        assert_eq!(at, src.len(), "tokens do not cover {src:?}");
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                TokKind::Ident,
                TokKind::Ws,
                TokKind::Ident,
                TokKind::Ws,
                TokKind::Punct,
                TokKind::Ws,
                TokKind::Num,
                TokKind::Punct
            ]
        );
        assert_tiles("let x = 42;");
    }

    #[test]
    fn double_colon_is_two_puncts() {
        let src = "std::time";
        let toks = lex(src);
        let texts: Vec<&str> = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(texts, vec!["std", ":", ":", "time"]);
    }

    #[test]
    fn comments_strings_chars_are_opaque() {
        let src = "// HashMap\n/* Instant */ \"thread_rng\" 'u' b\"x\"";
        let k = kinds(src);
        assert!(k.contains(&TokKind::LineComment));
        assert!(k.contains(&TokKind::BlockComment));
        assert!(k.contains(&TokKind::Str));
        assert!(k.contains(&TokKind::Char));
        assert!(
            !k.contains(&TokKind::Ident),
            "nothing leaked as code: {k:?}"
        );
        assert_tiles(src);
    }

    #[test]
    fn nested_block_comment() {
        let src = "/* a /* b */ c */ x";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert_eq!(toks[0].text(src), "/* a /* b */ c */");
        assert_eq!(toks.last().unwrap().kind, TokKind::Ident);
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let src = r####"r#"has "quotes" and // fake comment"# after"####;
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::RawStr);
        assert!(toks[0].text(src).ends_with("\"#"));
        assert_eq!(toks.last().unwrap().text(src), "after");
        assert_tiles(src);
    }

    #[test]
    fn byte_and_c_string_prefixes() {
        for src in [
            "b\"bytes\" x",
            "br##\"raw\"## x",
            "c\"cstr\" x",
            "cr\"r\" x",
        ] {
            let toks = lex(src);
            assert!(
                matches!(toks[0].kind, TokKind::Str | TokKind::RawStr),
                "{src}: {:?}",
                toks[0].kind
            );
            assert_eq!(toks.last().unwrap().text(src), "x", "{src}");
            assert_tiles(src);
        }
    }

    #[test]
    fn raw_identifier() {
        let src = "r#type = 1";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::Ident);
        assert_eq!(toks[0].text(src), "r#type");
    }

    #[test]
    fn lifetime_vs_char() {
        let src = "<'a> 'a' '\\n' 'static '_'";
        let got: Vec<(TokKind, &str)> = lex(src)
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::Ws | TokKind::Punct))
            .map(|t| (t.kind, t.text(src)))
            .collect();
        assert_eq!(
            got,
            vec![
                (TokKind::Lifetime, "'a"),
                (TokKind::Char, "'a'"),
                (TokKind::Char, "'\\n'"),
                (TokKind::Lifetime, "'static"),
                (TokKind::Char, "'_'"),
            ]
        );
        assert_tiles(src);
    }

    #[test]
    fn multibyte_char_literal() {
        let src = "'🦀' x";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::Char);
        assert_eq!(toks[0].text(src), "'🦀'");
        assert_tiles(src);
    }

    #[test]
    fn unterminated_everything_reaches_eof_without_panic() {
        for src in [
            "\"never closed",
            "/* open /* deeper",
            "r#\"open",
            "'\\",
            "'",
        ] {
            assert_tiles(src);
        }
    }

    #[test]
    fn line_numbers_track_newlines_inside_tokens() {
        let src = "a\n/* x\ny */\nb";
        let toks: Vec<(TokKind, u32)> = lex(src)
            .iter()
            .filter(|t| t.kind != TokKind::Ws)
            .map(|t| (t.kind, t.line))
            .collect();
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, 1),
                (TokKind::BlockComment, 2),
                (TokKind::Ident, 4)
            ]
        );
    }
}
