//! `sc-check`: determinism & layering static analysis for the
//! workspace.
//!
//! A discrete-event simulator's entire value rests on replayability —
//! every report must be a pure function of the scenario seed. That
//! property is global and fragile: one `HashMap::new()` in a hot path,
//! one `Instant::now()` in the kernel, one `thread_rng()` anywhere, and
//! runs stop being byte-identical. `sc-check` makes the property
//! machine-checked instead of review-checked: a lossless lexer
//! ([`lex`]) strips comments and literals, a rule engine ([`rules`])
//! scans what remains, per-crate policy ([`config`]) decides severity,
//! and CI runs `cargo run -p sc-check -- --deny` on every push.
//!
//! See the README "Static analysis" section for the rule glossary and
//! waiver syntax.

pub mod config;
pub mod lex;
pub mod report;
pub mod rules;
pub mod workspace;

use std::path::Path;

use report::Report;

/// Run the full analysis over the workspace at `root`.
pub fn run(root: &Path) -> Result<Report, String> {
    let ws = workspace::load(root)?;
    let mut diagnostics = Vec::new();
    let mut waived = 0usize;
    let files_scanned = ws.files.len();
    for f in &ws.files {
        let src = std::fs::read_to_string(&f.path)
            .map_err(|e| format!("cannot read {}: {e}", f.path.display()))?;
        let mut fa = rules::analyze_source(&f.crate_name, &f.rel_path, &src);
        diagnostics.append(&mut fa.diagnostics);
        waived += fa.waived;
    }
    diagnostics.extend(ws.layering);
    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(Report {
        diagnostics,
        files_scanned,
        crates_scanned: ws.crates,
        waived,
    })
}
