//! CLI shell for `sc-check`.
//!
//! ```text
//! cargo run -p sc-check -- [--root PATH] [--json] [--out FILE] [--deny]
//! ```
//!
//! `--root` defaults to the workspace root this binary was built from.
//! `--json` prints the machine-readable report to stdout instead of the
//! human one; `--out FILE` additionally writes the JSON to a file (CI
//! uploads it as an artifact); `--deny` exits non-zero if any
//! deny-severity finding survives waivers.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut json = false;
    let mut deny = false;
    let mut out_file: Option<PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => match argv.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--out" => match argv.next() {
                Some(p) => out_file = Some(PathBuf::from(p)),
                None => return usage("--out needs a path"),
            },
            "--json" => json = true,
            "--deny" => deny = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    let report = match sc_check::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sc-check: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &out_file {
        if let Err(e) = std::fs::write(path, report.json()) {
            eprintln!("sc-check: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json {
        print!("{}", report.json());
    } else {
        print!("{}", report.human());
    }

    if deny && report.deny_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("sc-check: {err}");
    }
    eprintln!("usage: sc-check [--root PATH] [--json] [--out FILE] [--deny]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
