//! Rendering: human `file:line` diagnostics and a machine-readable
//! JSON report (hand-rolled — the checker takes no dependencies).

use crate::config::Severity;
use crate::rules::Diagnostic;

/// Everything one run produced, ready to render.
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    pub crates_scanned: usize,
    pub waived: usize,
}

impl Report {
    pub fn deny_count(&self) -> usize {
        self.count(Severity::Deny)
    }

    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// One `file:line: severity[rule] message` line per finding, plus a
    /// trailing summary — the default terminal output.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}: {}[{}] {}\n",
                d.file,
                d.line,
                d.severity.label(),
                d.rule.id(),
                d.message
            ));
        }
        out.push_str(&format!(
            "sc-check: {} files in {} crates: {} deny, {} warn, {} waived\n",
            self.files_scanned,
            self.crates_scanned,
            self.deny_count(),
            self.warn_count(),
            self.waived
        ));
        out
    }

    /// The `--json` form consumed by CI.
    pub fn json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"crate\": \"{}\", \
                 \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                d.rule.id(),
                d.severity.label(),
                json_escape(&d.krate),
                json_escape(&d.file),
                d.line,
                json_escape(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"summary\": {{\"files\": {}, \"crates\": {}, \"deny\": {}, \
             \"warn\": {}, \"waived\": {}}}\n}}\n",
            self.files_scanned,
            self.crates_scanned,
            self.deny_count(),
            self.warn_count(),
            self.waived
        ));
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: Rule::NoWallClock,
            severity: Severity::Deny,
            krate: "sc-sim".to_string(),
            file: "crates/sim/src/world.rs".to_string(),
            line: 7,
            message: "say \"no\"\tto clocks".to_string(),
        }
    }

    #[test]
    fn human_line_has_file_line_rule() {
        let r = Report {
            diagnostics: vec![diag()],
            files_scanned: 1,
            crates_scanned: 1,
            waived: 0,
        };
        let h = r.human();
        assert!(h.contains("crates/sim/src/world.rs:7: deny[no-wall-clock]"));
        assert!(h.contains("1 deny, 0 warn"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let r = Report {
            diagnostics: vec![diag()],
            files_scanned: 3,
            crates_scanned: 2,
            waived: 1,
        };
        let j = r.json();
        assert!(j.contains("\\\"no\\\"\\tto clocks"), "{j}");
        assert!(j.contains("\"deny\": 1"));
        assert!(j.contains("\"waived\": 1"));
        // Sanity: balanced braces so downstream JSON parsers accept it.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced: {j}"
        );
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let r = Report {
            diagnostics: vec![],
            files_scanned: 0,
            crates_scanned: 0,
            waived: 0,
        };
        let j = r.json();
        assert!(j.contains("\"diagnostics\": []"), "{j}");
    }
}
