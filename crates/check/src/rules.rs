//! The rule engine: scan one file's code tokens for determinism and
//! layering hazards, honoring inline waivers and `cfg(test)` regions.
//!
//! Test code (unit-test modules and `#[test]` functions inside
//! `crates/*/src`) is exempt from every rule: tests may time things,
//! use std hashers, and poke transport types — none of it runs inside
//! a measured trial. Integration tests under `tests/` are never
//! scanned at all.
//!
//! Waiver syntax (the reason is mandatory):
//!
//! ```text
//! // sc-check: allow(rule-id) -- why this line is exempt
//! ```
//!
//! A waiver covers findings of that rule on its own line and on the
//! line directly below, so it works both trailing and standing alone.

use crate::config::{self, Severity};
use crate::lex::{lex, Tok, TokKind};

/// Every rule the engine knows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    NoDefaultHasher,
    NoWallClock,
    NoAmbientRandomness,
    NoAmbientThreading,
    NoAmbientPrint,
    Layering,
    UnsafeNeedsSafetyComment,
    AllowNeedsJustification,
    /// Meta-rule: a `sc-check:` comment that does not parse, names an
    /// unknown rule, or omits the mandatory reason.
    WaiverSyntax,
}

impl Rule {
    pub const ALL: &'static [Rule] = &[
        Rule::NoDefaultHasher,
        Rule::NoWallClock,
        Rule::NoAmbientRandomness,
        Rule::NoAmbientThreading,
        Rule::NoAmbientPrint,
        Rule::Layering,
        Rule::UnsafeNeedsSafetyComment,
        Rule::AllowNeedsJustification,
        Rule::WaiverSyntax,
    ];

    pub fn id(self) -> &'static str {
        match self {
            Rule::NoDefaultHasher => "no-default-hasher",
            Rule::NoWallClock => "no-wall-clock",
            Rule::NoAmbientRandomness => "no-ambient-randomness",
            Rule::NoAmbientThreading => "no-ambient-threading",
            Rule::NoAmbientPrint => "no-ambient-print",
            Rule::Layering => "layering",
            Rule::UnsafeNeedsSafetyComment => "unsafe-needs-safety-comment",
            Rule::AllowNeedsJustification => "allow-needs-justification",
            Rule::WaiverSyntax => "waiver-syntax",
        }
    }

    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }
}

/// One finding, ready to print.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    pub rule: Rule,
    pub severity: Severity,
    pub krate: String,
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// The result of analyzing one source file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by a well-formed waiver.
    pub waived: usize,
}

/// A parsed `sc-check: allow(...)` comment.
struct Waiver {
    line: u32,
    rule: Rule,
}

/// Analyze `src` as `rel_path` (workspace-relative, `/`-separated)
/// inside crate `crate_name`.
pub fn analyze_source(crate_name: &str, rel_path: &str, src: &str) -> FileAnalysis {
    let toks = lex(src);

    // The scannable code stream: everything comments and literals
    // can't fake. (Lifetimes carry no hazard and `Other` is noise.)
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| matches!(t.kind, TokKind::Ident | TokKind::Num | TokKind::Punct))
        .collect();

    let comments: Vec<&Tok> = toks
        .iter()
        .filter(|t| matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();

    let mut out = FileAnalysis::default();
    let (waivers, mut waiver_diags) = parse_waivers(&comments, src);
    let test_ranges = test_line_ranges(&code, src);

    let mut findings: Vec<(Rule, u32, String)> = Vec::new();
    scan_idents(crate_name, rel_path, &code, src, &mut findings);
    scan_attrs_and_unsafe(&code, &comments, src, &mut findings);

    for (rule, line, message) in findings {
        if in_test_region(&test_ranges, line) {
            continue;
        }
        if waivers
            .iter()
            .any(|w| w.rule == rule && (w.line == line || w.line + 1 == line))
        {
            out.waived += 1;
            continue;
        }
        let severity = config::severity(rule, crate_name);
        if severity == Severity::Allow {
            continue;
        }
        out.diagnostics.push(Diagnostic {
            rule,
            severity,
            krate: crate_name.to_string(),
            file: rel_path.to_string(),
            line,
            message,
        });
    }

    // Waiver-syntax errors are never themselves waivable and apply even
    // in test regions (a broken waiver anywhere misleads the reader).
    for d in &mut waiver_diags {
        d.krate = crate_name.to_string();
        d.file = rel_path.to_string();
    }
    out.diagnostics.append(&mut waiver_diags);
    out.diagnostics.sort_by_key(|d| (d.line, d.rule));
    out
}

/// Identifier- and path-pattern rules over the code stream.
fn scan_idents(
    crate_name: &str,
    rel_path: &str,
    code: &[&Tok],
    src: &str,
    findings: &mut Vec<(Rule, u32, String)>,
) {
    let wall_clock_allowed = config::WALL_CLOCK_ALLOWLIST.contains(&rel_path);
    let threading_allowed = config::THREADING_ALLOWLIST.contains(&rel_path);
    let sans_io = config::SANS_IO_CRATES.contains(&crate_name);
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text(src) {
            name @ ("HashMap" | "HashSet" | "RandomState") => {
                findings.push((
                    Rule::NoDefaultHasher,
                    t.line,
                    format!(
                        "`{name}` defaults to a randomly seeded hasher; use \
                         `sc_net::{{FxHashMap,FxHashSet}}` or a BTree map so \
                         iteration order is identical in every run"
                    ),
                ));
            }
            // `TracePhase::Instant` is the Chrome trace-phase name, not
            // std::time — only that one qualifier is exempt, so
            // `time::Instant` still fires.
            name @ ("Instant" | "SystemTime")
                if !wall_clock_allowed && !qualified_by(code, i, "TracePhase", src) =>
            {
                findings.push((
                    Rule::NoWallClock,
                    t.line,
                    format!(
                        "`{name}` reads real time; only the bench shell \
                         (`sc_bench::timing`) may — inject its `wall_clock` \
                         via `World::set_wall_clock` instead"
                    ),
                ));
            }
            name @ ("thread_rng" | "ThreadRng" | "OsRng" | "from_entropy") => {
                findings.push((
                    Rule::NoAmbientRandomness,
                    t.line,
                    format!(
                        "`{name}` draws ambient entropy; seed a `SmallRng` from \
                         the scenario seed so runs replay byte-identically"
                    ),
                ));
            }
            // `thread_local!` is a different identifier and stays
            // legal — per-thread caches don't order events, spawns do.
            "thread"
                if !threading_allowed
                    && (path_seq(code, i, &["thread", "spawn"], src)
                        || path_seq(code, i, &["thread", "scope"], src)
                        || path_seq(code, i, &["thread", "Builder"], src)) =>
            {
                findings.push((
                    Rule::NoAmbientThreading,
                    t.line,
                    "spawning threads outside the sharded kernel (`sc-sim`) or \
                     a suite runner creates ambient parallelism; simulation \
                     state machines must stay single-threaded so event order \
                     is a pure function of the seed"
                        .to_string(),
                ));
            }
            "rayon" if !threading_allowed => {
                findings.push((
                    Rule::NoAmbientThreading,
                    t.line,
                    "`rayon` pools are ambient parallelism; the only sanctioned \
                     threading lives in the sharded kernel (`sc-sim`) and the \
                     suite runners"
                        .to_string(),
                ));
            }
            // Macro call shape only (`name` + `!` + open bracket): a
            // local named `dbg` compared with `!=` is not a finding.
            name @ ("println" | "eprintln" | "print" | "eprint" | "dbg")
                if !rel_path.contains("/bin/")
                    && pb(code, i + 1, src) == b'!'
                    && matches!(pb(code, i + 2, src), b'(' | b'[' | b'{') =>
            {
                findings.push((
                    Rule::NoAmbientPrint,
                    t.line,
                    format!(
                        "`{name}!` writes to ambient stdio from simulation code; \
                         emit a trace event (`Ctx::trace_instant`) or a metrics \
                         counter instead — CLIs under `bin/` may print"
                    ),
                ));
            }
            "rand" if path_seq(code, i, &["rand", "random"], src) => {
                findings.push((
                    Rule::NoAmbientRandomness,
                    t.line,
                    "`rand::random` draws ambient entropy; seed a `SmallRng` \
                     from the scenario seed instead"
                        .to_string(),
                ));
            }
            "sc_net" if sans_io && path_seq(code, i, &["sc_net", "channel"], src) => {
                findings.push((
                    Rule::Layering,
                    t.line,
                    format!(
                        "`{crate_name}` is a sans-io state-machine crate and must \
                         not name `sc_net::channel` transport types; take bytes/\
                         timers in and hand actions out (ROADMAP: sans-io core)"
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// The punct byte of `code[i]` (`0` if out of range or not a punct).
fn pb(code: &[&Tok], i: usize, src: &str) -> u8 {
    code.get(i).map(|t| t.punct_byte(src)).unwrap_or(0)
}

/// Is `code[i]` written as `prefix::code[i]`?
fn qualified_by(code: &[&Tok], i: usize, prefix: &str, src: &str) -> bool {
    i >= 3
        && pb(code, i - 1, src) == b':'
        && pb(code, i - 2, src) == b':'
        && code[i - 3].kind == TokKind::Ident
        && code[i - 3].text(src) == prefix
}

/// Does `code[i..]` spell the `::`-joined path `segments`?
fn path_seq(code: &[&Tok], i: usize, segments: &[&str], src: &str) -> bool {
    let mut at = i;
    for (n, seg) in segments.iter().enumerate() {
        let ok = code
            .get(at)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(src) == *seg);
        if !ok {
            return false;
        }
        at += 1;
        if n + 1 < segments.len() {
            if pb(code, at, src) != b':' || pb(code, at + 1, src) != b':' {
                return false;
            }
            at += 2;
        }
    }
    true
}

/// Attribute-shaped rules: `#[allow]` justification, `unsafe` SAFETY
/// comments.
fn scan_attrs_and_unsafe(
    code: &[&Tok],
    comments: &[&Tok],
    src: &str,
    findings: &mut Vec<(Rule, u32, String)>,
) {
    use std::collections::BTreeSet;
    let comment_lines: BTreeSet<u32> = comments.iter().map(|t| t.line).collect();
    let safety_lines: BTreeSet<u32> = comments
        .iter()
        .filter(|t| t.text(src).contains("SAFETY"))
        .map(|t| t.line)
        .collect();

    for (i, t) in code.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text(src) == "unsafe" {
            let has_safety = (t.line.saturating_sub(3)..=t.line).any(|l| safety_lines.contains(&l));
            if !has_safety {
                findings.push((
                    Rule::UnsafeNeedsSafetyComment,
                    t.line,
                    "`unsafe` without a `// SAFETY:` comment on or directly \
                     above the line stating the upheld invariant"
                        .to_string(),
                ));
            }
        }
        // `#[allow(...)]` / `#![allow(...)]` / `#[expect(...)]`.
        if t.punct_byte(src) == b'#' {
            let mut j = i + 1;
            if pb(code, j, src) == b'!' {
                j += 1;
            }
            if pb(code, j, src) == b'[' {
                let name = code.get(j + 1).map(|t| t.text(src)).unwrap_or("");
                if name == "allow" || name == "expect" {
                    let justified = comment_lines.contains(&t.line)
                        || comment_lines.contains(&t.line.saturating_sub(1));
                    if !justified {
                        findings.push((
                            Rule::AllowNeedsJustification,
                            t.line,
                            format!(
                                "`#[{name}(…)]` without a comment on this line or \
                                 the one above saying why the lint is suppressed"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Parse `sc-check: allow(rule) -- reason` waivers out of comments.
/// Returns well-formed waivers plus diagnostics for malformed ones.
fn parse_waivers(comments: &[&Tok], src: &str) -> (Vec<Waiver>, Vec<Diagnostic>) {
    let mut waivers = Vec::new();
    let mut diags = Vec::new();
    for t in comments {
        let body = comment_body(t, src);
        let Some(rest) = body.strip_prefix("sc-check:") else {
            continue;
        };
        let rest = rest.trim_start();
        let mut fail = |msg: String| {
            diags.push(Diagnostic {
                rule: Rule::WaiverSyntax,
                severity: Severity::Deny,
                krate: String::new(),
                file: String::new(),
                line: t.line,
                message: msg,
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            fail("malformed waiver: expected `sc-check: allow(<rule>) -- <reason>`".to_string());
            continue;
        };
        let Some(close) = args.find(')') else {
            fail("malformed waiver: missing `)` after rule id".to_string());
            continue;
        };
        let rule_id = args[..close].trim();
        let Some(rule) = Rule::from_id(rule_id) else {
            fail(format!(
                "waiver names unknown rule `{rule_id}` (known: {})",
                Rule::ALL
                    .iter()
                    .map(|r| r.id())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            continue;
        };
        let tail = args[close + 1..].trim();
        let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            fail(format!(
                "waiver for `{rule_id}` has no reason; append `-- <why this is sound>`"
            ));
            continue;
        }
        waivers.push(Waiver { line: t.line, rule });
    }
    (waivers, diags)
}

/// A comment's text with the `//` / `/* */` furniture stripped. Doc
/// comments keep their third `/` or `!`, so a waiver cannot hide in
/// rendered documentation.
fn comment_body<'s>(t: &Tok, src: &'s str) -> &'s str {
    let raw = t.text(src);
    if let Some(body) = raw.strip_prefix("//") {
        body.trim()
    } else if let Some(body) = raw.strip_prefix("/*") {
        body.strip_suffix("*/").unwrap_or(body).trim()
    } else {
        raw.trim()
    }
}

/// Line ranges occupied by test-only items: `#[cfg(test)]`- or
/// `#[test]`-attributed modules, functions and statements. A
/// `#[cfg(not(test))]` guard is production code and is NOT skipped.
fn test_line_ranges(code: &[&Tok], src: &str) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].punct_byte(src) != b'#' {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if pb(code, j, src) == b'!' {
            j += 1;
        }
        if pb(code, j, src) != b'[' {
            i += 1;
            continue;
        }
        let (idents, after_attr) = bracket_group_idents(code, j, src);
        let is_test = idents.contains(&"test") && !idents.contains(&"not");
        if !is_test {
            i = after_attr;
            continue;
        }
        // Skip any further attributes between the test marker and the
        // item (`#[cfg(test)] #[rustfmt::skip] mod tests { … }`).
        let mut k = after_attr;
        while pb(code, k, src) == b'#' {
            let mut a = k + 1;
            if pb(code, a, src) == b'!' {
                a += 1;
            }
            if pb(code, a, src) != b'[' {
                break;
            }
            let (_, next) = bracket_group_idents(code, a, src);
            k = next;
        }
        // The item body: everything to the matching `}` of its first
        // brace, or to the terminating `;` for braceless items.
        let mut depth = 0usize;
        let mut end_line = code.get(k).map(|t| t.line).unwrap_or(code[i].line);
        while let Some(t) = code.get(k) {
            end_line = t.line;
            match t.punct_byte(src) {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        ranges.push((code[i].line, end_line));
        i = after_attr;
    }
    ranges
}

/// Collect the identifiers inside the bracket group opening at
/// `code[open]` (which must be `[`); returns them plus the index just
/// past the matching `]` (or EOF for unbalanced input).
fn bracket_group_idents<'s>(code: &[&Tok], open: usize, src: &'s str) -> (Vec<&'s str>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0usize;
    let mut k = open;
    while let Some(t) = code.get(k) {
        match t.punct_byte(src) {
            b'[' | b'(' => depth += 1,
            b']' | b')' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return (idents, k + 1);
                }
            }
            _ => {}
        }
        if t.kind == TokKind::Ident {
            idents.push(t.text(src));
        }
        k += 1;
    }
    (idents, code.len())
}

fn in_test_region(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| a <= line && line <= b)
}
