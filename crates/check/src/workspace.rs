//! Workspace discovery: enumerate `crates/*/src/**/*.rs` in sorted
//! order, read each crate's package name, and check the `Cargo.toml`
//! dependency edges against the layering ranks in [`crate::config`].
//!
//! The manifest "parser" here reads exactly the subset of TOML the
//! workspace uses (`[section]` headers, `key = …` lines) — enough to
//! find the package name and the `[dependencies]` block without
//! pulling in a TOML crate.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::{self, Severity};
use crate::rules::{Diagnostic, Rule};

/// One source file to analyze.
pub struct SourceFile {
    /// Package name from the owning crate's manifest.
    pub crate_name: String,
    /// Workspace-relative, `/`-separated (`crates/sim/src/world.rs`).
    pub rel_path: String,
    pub path: PathBuf,
}

/// The scannable workspace: every source file plus layering findings
/// from the manifests themselves.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub layering: Vec<Diagnostic>,
    pub crates: usize,
}

/// Load the workspace rooted at `root` (the directory holding
/// `crates/`).
pub fn load(root: &Path) -> Result<Workspace, String> {
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();

    let mut ws = Workspace {
        files: Vec::new(),
        layering: Vec::new(),
        crates: 0,
    };
    for dir in dirs {
        let manifest_path = dir.join("Cargo.toml");
        let manifest = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        let dir_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let crate_name = package_name(&manifest).unwrap_or_else(|| dir_name.clone());
        ws.crates += 1;

        check_layering(
            &crate_name,
            &format!("crates/{dir_name}/Cargo.toml"),
            &manifest,
            &mut ws.layering,
        );

        let src = dir.join("src");
        if src.is_dir() {
            let mut files = Vec::new();
            collect_rs(&src, &mut files)?;
            files.sort();
            for path in files {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                ws.files.push(SourceFile {
                    crate_name: crate_name.clone(),
                    rel_path: rel,
                    path,
                });
            }
        }
    }
    Ok(ws)
}

/// The `name = "…"` value from the `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(section) = line.strip_prefix('[') {
            in_package = section.trim_end_matches(']') == "package";
            continue;
        }
        if in_package {
            if let Some(v) = line.strip_prefix("name") {
                let v = v.trim_start().strip_prefix('=')?.trim();
                return Some(v.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Verify every `[dependencies]` edge points at a strictly lower
/// layering rank. `[dev-dependencies]` are exempt (tests may reach
/// anywhere) and crates the rank table doesn't know are skipped.
fn check_layering(crate_name: &str, rel_path: &str, manifest: &str, out: &mut Vec<Diagnostic>) {
    let Some(me) = config::crate_info(crate_name) else {
        return;
    };
    let mut in_deps = false;
    for (idx, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if let Some(section) = line.strip_prefix('[') {
            in_deps = section.trim_end_matches(']') == "dependencies";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Dep name: the key up to `.`, `=`, or whitespace.
        let dep = line
            .split(|c: char| c == '.' || c == '=' || c.is_whitespace())
            .next()
            .unwrap_or("");
        let Some(them) = config::crate_info(dep) else {
            continue;
        };
        if them.layer >= me.layer {
            out.push(Diagnostic {
                rule: Rule::Layering,
                severity: Severity::Deny,
                krate: crate_name.to_string(),
                file: rel_path.to_string(),
                line: (idx + 1) as u32,
                message: format!(
                    "`{crate_name}` (layer {}) depends on `{dep}` (layer {}); \
                     dependencies must point strictly down the stack — move \
                     shared types into a lower crate instead",
                    me.layer, them.layer
                ),
            });
        }
    }
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses_workspace_style_manifest() {
        let m = "[package]\nname = \"sc-sim\"\nversion.workspace = true\n";
        assert_eq!(package_name(m).as_deref(), Some("sc-sim"));
    }

    #[test]
    fn upward_dependency_is_flagged_with_line() {
        let m = "[package]\nname = \"sc-net\"\n\n[dependencies]\nsc-sim.workspace = true\n";
        let mut out = Vec::new();
        check_layering("sc-net", "crates/net/Cargo.toml", m, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 5);
        assert_eq!(out[0].rule, Rule::Layering);
    }

    #[test]
    fn dev_dependencies_are_exempt() {
        let m = "[package]\nname = \"sc-net\"\n\n[dev-dependencies]\nsc-sim.workspace = true\n";
        let mut out = Vec::new();
        check_layering("sc-net", "crates/net/Cargo.toml", m, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn downward_dependency_is_fine() {
        let m = "[package]\nname = \"sc-sim\"\n\n[dependencies]\nsc-net.workspace = true\n";
        let mut out = Vec::new();
        check_layering("sc-sim", "crates/sim/Cargo.toml", m, &mut out);
        assert!(out.is_empty());
    }
}
