//! Self-test corpus: every rule must fire on its `*_bad.rs` exemplar
//! and stay silent on the matching `*_good.rs` one. The snippets live
//! under `tests/corpus/` as plain data — they are analyzed, never
//! compiled.

use sc_check::config::Severity;
use sc_check::rules::{analyze_source, FileAnalysis, Rule};

const SIM_CRATE: &str = "supercharger";
const SIM_PATH: &str = "crates/core/src/corpus.rs";

fn analyze(crate_name: &str, rel_path: &str, src: &str) -> FileAnalysis {
    analyze_source(crate_name, rel_path, src)
}

fn rules_of(fa: &FileAnalysis) -> Vec<Rule> {
    fa.diagnostics.iter().map(|d| d.rule).collect()
}

#[test]
fn default_hasher_bad_and_good() {
    let bad = analyze(SIM_CRATE, SIM_PATH, include_str!("corpus/hasher_bad.rs"));
    assert_eq!(
        rules_of(&bad),
        vec![Rule::NoDefaultHasher, Rule::NoDefaultHasher]
    );
    let lines: Vec<u32> = bad.diagnostics.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![1, 4], "the `use` and the `::new()`");
    assert!(bad.diagnostics.iter().all(|d| d.severity == Severity::Deny));

    let good = analyze(SIM_CRATE, SIM_PATH, include_str!("corpus/hasher_good.rs"));
    assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
}

#[test]
fn default_hasher_is_only_a_warning_in_shell_crates() {
    let fa = analyze(
        "sc-bench",
        "crates/bench/src/corpus.rs",
        include_str!("corpus/hasher_bad.rs"),
    );
    assert!(!fa.diagnostics.is_empty());
    assert!(fa.diagnostics.iter().all(|d| d.severity == Severity::Warn));
}

#[test]
fn wall_clock_bad_and_good() {
    let bad = analyze(
        SIM_CRATE,
        SIM_PATH,
        include_str!("corpus/wall_clock_bad.rs"),
    );
    assert_eq!(rules_of(&bad), vec![Rule::NoWallClock, Rule::NoWallClock]);

    let good = analyze(
        SIM_CRATE,
        SIM_PATH,
        include_str!("corpus/wall_clock_good.rs"),
    );
    assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
}

#[test]
fn wall_clock_allowlist_file_is_exempt() {
    let fa = analyze(
        "sc-bench",
        "crates/bench/src/timing.rs",
        include_str!("corpus/wall_clock_bad.rs"),
    );
    assert!(fa.diagnostics.is_empty(), "{:?}", fa.diagnostics);
}

#[test]
fn ambient_randomness_bad_and_good() {
    let bad = analyze(
        SIM_CRATE,
        SIM_PATH,
        include_str!("corpus/randomness_bad.rs"),
    );
    assert_eq!(
        rules_of(&bad),
        vec![
            Rule::NoAmbientRandomness,
            Rule::NoAmbientRandomness,
            Rule::NoAmbientRandomness
        ],
        "thread_rng, OsRng and rand::random"
    );

    let good = analyze(
        SIM_CRATE,
        SIM_PATH,
        include_str!("corpus/randomness_good.rs"),
    );
    assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
}

#[test]
fn ambient_threading_bad_and_good() {
    let bad = analyze(SIM_CRATE, SIM_PATH, include_str!("corpus/threading_bad.rs"));
    assert_eq!(
        rules_of(&bad),
        vec![
            Rule::NoAmbientThreading,
            Rule::NoAmbientThreading,
            Rule::NoAmbientThreading,
            Rule::NoAmbientThreading
        ],
        "std::thread::spawn, thread::scope, thread::Builder and rayon"
    );
    assert!(bad.diagnostics.iter().all(|d| d.severity == Severity::Deny));

    // thread_local!, available_parallelism and test-only spawns stay legal.
    let good = analyze(
        SIM_CRATE,
        SIM_PATH,
        include_str!("corpus/threading_good.rs"),
    );
    assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
}

#[test]
fn ambient_print_bad_and_good() {
    let bad = analyze(SIM_CRATE, SIM_PATH, include_str!("corpus/print_bad.rs"));
    assert_eq!(
        rules_of(&bad),
        vec![
            Rule::NoAmbientPrint,
            Rule::NoAmbientPrint,
            Rule::NoAmbientPrint
        ],
        "println!, eprintln! and dbg!"
    );
    assert!(bad.diagnostics.iter().all(|d| d.severity == Severity::Deny));

    // Trace/metrics emission, a `dbg` local, and test prints stay legal.
    let good = analyze(SIM_CRATE, SIM_PATH, include_str!("corpus/print_good.rs"));
    assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
}

#[test]
fn ambient_print_exempts_clis_and_shell_crates() {
    let src = include_str!("corpus/print_bad.rs");
    // A `bin/` CLI inside a Sim-kind crate prints by design.
    let cli = analyze("sc-scenarios", "crates/scenarios/src/bin/report.rs", src);
    assert!(cli.diagnostics.is_empty(), "{:?}", cli.diagnostics);
    // Shell crates are CLIs wholesale.
    let shell = analyze("sc-bench", "crates/bench/src/lib.rs", src);
    assert!(shell.diagnostics.is_empty(), "{:?}", shell.diagnostics);
    // Library code in a Sim crate still denies.
    let lib = analyze("sc-scenarios", "crates/scenarios/src/runner.rs", src);
    assert!(!lib.diagnostics.is_empty());
}

#[test]
fn ambient_threading_exempts_kernel_and_suite_runners() {
    let src = include_str!("corpus/threading_bad.rs");
    // The sharded kernel crate owns simulation parallelism.
    let sim = analyze("sc-sim", "crates/sim/src/world.rs", src);
    assert!(sim.diagnostics.is_empty(), "{:?}", sim.diagnostics);
    // The suite runner files fan independent trials across a pool.
    for path in [
        "crates/scenarios/src/runner.rs",
        "crates/lab/src/experiments.rs",
    ] {
        let krate = if path.contains("scenarios") {
            "sc-scenarios"
        } else {
            "sc-lab"
        };
        let fa = analyze(krate, path, src);
        assert!(fa.diagnostics.is_empty(), "{path}: {:?}", fa.diagnostics);
    }
    // Same code elsewhere in those crates still denies.
    let other = analyze("sc-scenarios", "crates/scenarios/src/builder.rs", src);
    assert!(!other.diagnostics.is_empty());
}

#[test]
fn layering_fires_only_in_sans_io_crates() {
    let src = include_str!("corpus/layering_bad.rs");
    let bad = analyze("sc-bgp", "crates/bgp/src/corpus.rs", src);
    assert_eq!(rules_of(&bad), vec![Rule::Layering]);

    // A device/orchestration crate may drive channels directly.
    let lab = analyze("sc-lab", "crates/lab/src/corpus.rs", src);
    assert!(lab.diagnostics.is_empty(), "{:?}", lab.diagnostics);

    let good = analyze(
        "sc-bgp",
        "crates/bgp/src/corpus.rs",
        include_str!("corpus/layering_good.rs"),
    );
    assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
}

#[test]
fn unsafe_needs_safety_comment() {
    let bad = analyze(SIM_CRATE, SIM_PATH, include_str!("corpus/unsafe_bad.rs"));
    assert_eq!(rules_of(&bad), vec![Rule::UnsafeNeedsSafetyComment]);

    let good = analyze(SIM_CRATE, SIM_PATH, include_str!("corpus/unsafe_good.rs"));
    assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
}

#[test]
fn allow_needs_justification() {
    let bad = analyze(SIM_CRATE, SIM_PATH, include_str!("corpus/allow_bad.rs"));
    assert_eq!(rules_of(&bad), vec![Rule::AllowNeedsJustification]);

    let good = analyze(SIM_CRATE, SIM_PATH, include_str!("corpus/allow_good.rs"));
    assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
}

#[test]
fn wellformed_waivers_suppress_and_are_counted() {
    let fa = analyze(SIM_CRATE, SIM_PATH, include_str!("corpus/waiver_good.rs"));
    assert!(fa.diagnostics.is_empty(), "{:?}", fa.diagnostics);
    assert_eq!(fa.waived, 2, "standing + trailing waiver");
}

#[test]
fn malformed_waivers_error_and_do_not_waive() {
    let fa = analyze(SIM_CRATE, SIM_PATH, include_str!("corpus/waiver_bad.rs"));
    let syntax = rules_of(&fa)
        .iter()
        .filter(|r| **r == Rule::WaiverSyntax)
        .count();
    assert_eq!(
        syntax, 3,
        "missing reason, unknown rule, wrong verb: {fa:?}"
    );
    assert!(
        rules_of(&fa).contains(&Rule::NoWallClock),
        "a broken waiver must not suppress the finding it sat on: {fa:?}"
    );
    assert_eq!(fa.waived, 0);
}

#[test]
fn test_code_is_exempt_but_cfg_not_test_is_not() {
    let good = analyze(
        SIM_CRATE,
        SIM_PATH,
        include_str!("corpus/test_code_good.rs"),
    );
    assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);

    let bad = analyze(
        SIM_CRATE,
        SIM_PATH,
        include_str!("corpus/cfg_not_test_bad.rs"),
    );
    assert_eq!(rules_of(&bad), vec![Rule::NoWallClock, Rule::NoWallClock]);
}

#[test]
fn hazard_names_in_literals_and_comments_are_invisible() {
    let fa = analyze(SIM_CRATE, SIM_PATH, include_str!("corpus/decoys_good.rs"));
    assert!(fa.diagnostics.is_empty(), "{:?}", fa.diagnostics);
    assert_eq!(fa.waived, 0);
}
