#[allow(dead_code)]
fn scaffolding() {}
