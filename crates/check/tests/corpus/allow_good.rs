// Wired up by the follow-up PR that adds the real caller.
#[allow(dead_code)]
fn scaffolding() {}
