#[cfg(not(test))]
pub fn clock() -> std::time::Instant {
    std::time::Instant::now()
}
