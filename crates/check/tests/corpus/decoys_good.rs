//! Hazard names in opaque positions: HashMap, Instant, thread_rng and
//! sc_net::channel may all appear in docs, comments and literals.

pub const PLAIN: &str = "HashMap SystemTime thread_rng";
pub const RAW: &str = r#"use std::time::Instant; rand::random()"#;
pub const BYTES: &[u8] = b"OsRng unsafe";
/* block comment decoys: sc_net::channel HashSet from_entropy */

pub fn lifetime_not_char<'a>(_x: &'a u8) -> char {
    'I'
}
