use std::collections::HashMap;

pub fn has_dup(xs: &[u32]) -> bool {
    let mut seen = HashMap::new();
    for x in xs {
        if seen.insert(*x, ()).is_some() {
            return true;
        }
    }
    false
}
