use sc_net::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;

pub fn count(xs: &[u32]) -> (FxHashMap<u32, u32>, FxHashSet<u32>, BTreeMap<u32, u32>) {
    let mut m = FxHashMap::default();
    let mut s = FxHashSet::default();
    let mut b = BTreeMap::new();
    for x in xs {
        *m.entry(*x).or_insert(0) += 1;
        s.insert(*x);
        *b.entry(*x).or_insert(0) += 1;
    }
    (m, s, b)
}
