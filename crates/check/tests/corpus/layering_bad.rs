use sc_net::channel::{ChannelConfig, ChannelEvent};

pub fn open(cfg: ChannelConfig) -> ChannelEvent {
    todo!()
}
