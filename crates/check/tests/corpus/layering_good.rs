use sc_net::wire::{EtherType, EthernetRepr};

pub fn kind(frame: &EthernetRepr) -> EtherType {
    frame.ethertype
}
