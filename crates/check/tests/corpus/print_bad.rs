pub fn apply(&mut self, ops: &[FibOp]) {
    println!("applying {} ops", ops.len());
    for op in ops {
        eprintln!("op: {op:?}");
        self.table.insert(dbg!(op.prefix), op.next_hop);
    }
}
