pub fn apply(&mut self, ctx: &mut Ctx, ops: &[FibOp]) {
    // The sanctioned channels: trace events and metrics counters.
    ctx.trace_instant("program", "fib.apply", 0, ops.len() as u64, String::new);
    ctx.metrics().add("fib.ops_applied", ops.len() as u64);
    for op in ops {
        self.table.insert(op.prefix, op.next_hop);
    }
    // A local that merely *names* dbg is not a macro invocation.
    let dbg = ops.len();
    if dbg != 0 {
        self.applied += dbg as u64;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("test output is fine");
    }
}
