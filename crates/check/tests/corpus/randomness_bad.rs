pub fn roll() -> u8 {
    let mut rng = rand::thread_rng();
    let _ = OsRng;
    rand::random()
}
