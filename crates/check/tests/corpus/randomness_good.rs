use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub fn roll(seed: u64) -> u8 {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.gen()
}
