pub fn prod() -> u32 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn timers_and_std_maps_are_fine_in_tests() {
        let t0 = Instant::now();
        let mut m = HashMap::new();
        m.insert(1u32, t0.elapsed());
        assert_eq!(super::prod(), 7);
    }
}
