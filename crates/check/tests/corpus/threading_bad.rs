use std::thread;

fn fan_out() {
    std::thread::spawn(|| {});
    thread::scope(|s| {
        s.spawn(|| {});
    });
    let b = thread::Builder::new();
    rayon::join(|| {}, || {});
}
