use std::cell::RefCell;

thread_local! {
    static CACHE: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

fn sizing() -> usize {
    // Reading the core count orders nothing; only spawning does.
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn() {
        std::thread::spawn(|| {}).join().unwrap();
    }
}
