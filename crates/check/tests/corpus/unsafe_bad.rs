pub fn first_byte(p: *const u8) -> u8 {
    unsafe { *p }
}
