// sc-check: allow(no-wall-clock)
use std::time::Instant;

// sc-check: allow(no-such-rule) -- the rule id has a typo
fn f() {}

// sc-check: deny(no-wall-clock) -- wrong verb entirely
fn g() {}
