// sc-check: allow(no-wall-clock) -- corpus exemplar: a standing waiver covers the line below
use std::time::Instant;

pub fn stamp() -> u64 {
    let t0 = Instant::now(); // sc-check: allow(no-wall-clock) -- corpus exemplar: a trailing waiver covers its own line
    t0.elapsed().as_nanos() as u64
}
