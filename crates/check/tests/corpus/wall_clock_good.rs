use std::time::Duration;

pub fn measure(clock: sc_sim::WallClock) -> Duration {
    let t0 = clock();
    clock().saturating_sub(t0)
}
