//! Property tests for the lexer and the rule engine's decoy blindness.
//!
//! The vendored proptest stand-in has no `String` strategy and no
//! shrinking, so arbitrary sources are built two ways: raw byte soup
//! pushed through `from_utf8_lossy`, and a concatenation of Rust-ish
//! fragments that exercise every tricky token form.

use proptest::collection::vec;
use proptest::prelude::*;
use sc_check::lex::lex;
use sc_check::rules::analyze_source;

/// The invariant every caller relies on: token spans exactly tile the
/// input — no gaps, no overlaps, no empty tokens.
fn tiles(src: &str) -> Result<(), String> {
    let toks = lex(src);
    let mut at = 0usize;
    for t in &toks {
        if t.start != at {
            return Err(format!("gap/overlap at byte {at} in {src:?}"));
        }
        if t.end <= t.start {
            return Err(format!("empty token at byte {at} in {src:?}"));
        }
        at = t.end;
    }
    if at != src.len() {
        return Err(format!("tokens stop at {at}/{} in {src:?}", src.len()));
    }
    Ok(())
}

/// Rust-ish fragments covering every token form the lexer special-cases,
/// including pathological unterminated openers.
fn fragment() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("fn f(x: u32) -> u32 { x + 1 }\n"),
        Just("// line comment with HashMap inside\n"),
        Just("/* block /* nested */ comment */"),
        Just("let s = \"string with \\\" escape\";\n"),
        Just("let r = r#\"raw \"quoted\" text\"#;\n"),
        Just("let b = br##\"deep raw\"##;\n"),
        Just("let c = 'x';"),
        Just("let e = '\\n';"),
        Just("let u = '\u{1F980}';"),
        Just("fn g<'a>(v: &'a [u8]) {}\n"),
        Just("let n = 1_000u64 + 0x5c;"),
        Just("let id = r#type;"),
        Just("::<>#![]{}()"),
        // Unterminated openers: everything after them is swallowed.
        Just("\"never closed "),
        Just("/* never closed "),
        Just("r###\"never closed "),
        Just("'"),
        Just("\\"),
    ]
}

/// Fragments that mention every hazard name, all in opaque positions.
/// Each is balanced/self-contained so concatenations stay opaque.
fn decoy() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("// HashMap HashSet RandomState Instant SystemTime\n"),
        Just("/* thread_rng OsRng from_entropy rand::random */"),
        Just("let a = \"sc_net::channel unsafe ThreadRng\";\n"),
        Just("let b = r##\"Instant::now() #[allow(dead_code)]\"##;\n"),
        Just("let c = b\"SystemTime HashMap\";\n"),
        Just("let l: Option<&'static str> = None;\n"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_bytes_never_panic_and_tile(bytes in vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        prop_assert!(tiles(&src).is_ok(), "{:?}", tiles(&src));
    }

    #[test]
    fn fragment_soup_never_panics_and_tiles(parts in vec(fragment(), 0..48)) {
        let src = parts.concat();
        prop_assert!(tiles(&src).is_ok(), "{:?}", tiles(&src));
    }

    #[test]
    fn lexing_is_deterministic(parts in vec(fragment(), 0..24)) {
        let src = parts.concat();
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!(x.kind == y.kind && x.start == y.start && x.end == y.end);
        }
    }

    #[test]
    fn decoy_soup_produces_no_findings(parts in vec(decoy(), 0..32)) {
        let src = parts.concat();
        let fa = analyze_source("supercharger", "crates/core/src/soup.rs", &src);
        prop_assert!(fa.diagnostics.is_empty(), "{:?} from {src:?}", fa.diagnostics);
    }
}
