//! The supercharger controller as a simulation node.
//!
//! This is the reproduction of the paper's ExaBGP + FreeBFD + Floodlight
//! stack (§3), collapsed into one deterministic node:
//!
//! * **BGP interposition**: it terminates the peers' sessions (R2, R3,
//!   …) and runs one session toward the supercharged router, feeding
//!   every update through the [`Engine`] (Listing 1) and forwarding the
//!   rewritten announcements;
//! * **BFD**: one session per peer; a `Down` event triggers the
//!   data-plane convergence procedure (Listing 2) — the constant-size
//!   set of FLOW_MODs — after a configurable controller reaction delay,
//!   then queues the control-plane repair at router pace;
//! * **OpenFlow client**: drives the switch (HELLO/FEATURES handshake,
//!   ARP punt rule, per-group VMAC rules, barriers);
//! * **ARP responder**: answers PACKET_IN ARP requests for virtual
//!   next-hops with the owning group's VMAC via PACKET_OUT.

use crate::engine::{Engine, EngineAction, EngineConfig, FailoverPlan, PeerSpec};
use sc_bfd::{BfdConfig, BfdEvent, BfdSession};
use sc_bgp::msg::BgpMessage;
use sc_bgp::session::{DownReason, Session, SessionConfig, SessionEvent};
use sc_bgp::PeerId;
// sc-check: allow(layering) -- the controller still drives channels directly; unpicking this is the ROADMAP sans-io refactor
use sc_net::channel::{ChannelConfig, ChannelEvent};
use sc_net::wire::udp::port as udp_port;
use sc_net::wire::{
    open_udp_frame, udp_frame, ArpOp, ArpRepr, EtherType, EthernetRepr, UdpEndpoints,
};
use sc_net::{MacAddr, SimDuration, SimTime};
use sc_openflow::msg::{FlowModCommand, OfMessage};
use sc_openflow::{Action, FlowMatch};
use sc_sim::{ChannelPort, Ctx, Node, PortId, TimerToken};
use std::any::Any;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

const TIMER_SWITCH_CHAN: TimerToken = TimerToken(10);
const TIMER_ROUTER_CHAN: TimerToken = TimerToken(11);
const TIMER_ROUTER_SESSION: TimerToken = TimerToken(12);
const TIMER_REACTION: TimerToken = TimerToken(13);
const TIMER_RETIRE: TimerToken = TimerToken(14);
const TIMER_FLOWMOD_ACK: TimerToken = TimerToken(15);
const TIMER_ECHO: TimerToken = TimerToken(16);
const PEER_TIMER_BASE: u64 = 100;
const PEER_TIMER_STRIDE: u64 = 10;

/// Priority of per-group VMAC rules.
const VMAC_RULE_PRIORITY: u16 = 100;
/// Priority of the ARP punt rule.
const ARP_RULE_PRIORITY: u16 = 50;
/// Cookie marking all supercharger-owned rules.
const SC_COOKIE: u64 = 0x5c;

/// The session toward the supercharged router.
#[derive(Clone, Copy, Debug)]
pub struct RouterLink {
    pub router_ip: Ipv4Addr,
    pub router_mac: MacAddr,
    /// We are the passive side; the router connects to us.
    pub local_port: u16,
    pub remote_port: u16,
    pub hold_time: SimDuration,
}

/// One interposed peer session (plus optional BFD).
#[derive(Clone, Copy, Debug)]
pub struct PeerLink {
    pub spec: PeerSpec,
    pub local_port: u16,
    pub remote_port: u16,
    pub hold_time: SimDuration,
    pub bfd: Option<BfdConfig>,
}

/// The OpenFlow control channel to the switch.
#[derive(Clone, Copy, Debug)]
pub struct SwitchLink {
    pub switch_ip: Ipv4Addr,
    pub switch_mac: MacAddr,
    pub local_port: u16,
}

/// Full controller configuration.
#[derive(Clone, Debug)]
pub struct ControllerConfig {
    pub name: String,
    pub asn: u16,
    pub router_id: Ipv4Addr,
    pub ip: Ipv4Addr,
    pub mac: MacAddr,
    pub engine: EngineConfig,
    pub router: RouterLink,
    pub peers: Vec<PeerLink>,
    pub switch: SwitchLink,
    /// Modeled controller compute/REST latency between the BFD event and
    /// the FLOW_MODs leaving the box (the paper's prototype measured a
    /// few ms on this path).
    pub reaction_delay: SimDuration,
    /// How long a retired group's rule stays installed. Must exceed the
    /// router's worst-case FIB walk, or traffic still tagged with the
    /// old VMAC would blackhole (see `groups::BackupGroup::retired`).
    pub rule_grace: SimDuration,
    /// React to switch PORT_STATUS (carrier loss) in addition to BFD —
    /// an ablation beyond the paper: when the failed peer hangs directly
    /// off the supercharged switch, carrier detection beats BFD's
    /// detect-mult x interval by an order of magnitude.
    pub portstatus_failover: bool,
    /// Seed for the retry backoff jitter — the only randomness this node
    /// is allowed (sc-check `no-ambient-randomness`).
    pub seed: u64,
    /// Send an OpenFlow ECHO_REQUEST to the switch at this cadence so
    /// the switch-side liveness deadline keeps hearing from us even when
    /// no flow-mods flow. `None` disables keepalives.
    pub echo_interval: Option<SimDuration>,
    /// How long an issued flow-mod batch may stay unacked (no
    /// BARRIER_REPLY) before its first retry; later retries back off
    /// exponentially from here.
    pub ack_timeout: SimDuration,
    /// Retry attempts before the controller gives the batch up and
    /// declares itself degraded (the switch is not programmable; the
    /// routers' own BGP fallback is the remaining convergence path).
    pub max_flowmod_attempts: u32,
}

/// Timestamped controller events, for the experiment harness.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ControllerEvent {
    SwitchReady,
    RouterSessionUp,
    PeerSessionUp(PeerId),
    PeerDown(PeerId),
    FailoverIssued { peer: PeerId, rewrites: usize },
    RepairQueued { peer: PeerId, announcements: usize },
    ArpAnswered { vnh: Ipv4Addr },
    FlowBatchRetry { token: u64, attempt: u32 },
    FlowBatchGiveUp { token: u64 },
}

/// Robustness counters (acked flow programming).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ControllerStats {
    /// Unacked flow-mod batches re-sent after a backoff expiry.
    pub flowmod_retries: u64,
    /// Batches abandoned after `max_flowmod_attempts` — each one flips
    /// the controller into its degraded state until an ack returns.
    pub flowmod_giveups: u64,
}

/// One flow-mod batch awaiting its barrier ack.
struct UnackedBatch {
    token: u64,
    msgs: Vec<OfMessage>,
    attempt: u32,
    deadline: SimTime,
}

struct PeerSessionState {
    link: PeerLink,
    chan: ChannelPort,
    session: Session,
    bfd: Option<BfdSession>,
    session_armed: Option<SimTime>,
    bfd_armed: Option<SimTime>,
    failed_over: bool,
}

/// The controller node.
pub struct Controller {
    cfg: ControllerConfig,
    engine: Engine,
    switch_chan: ChannelPort,
    switch_ready: bool,
    router_chan: ChannelPort,
    router_session: Session,
    router_session_armed: Option<SimTime>,
    peers: Vec<PeerSessionState>,
    xid: u32,
    /// FLOW_MODs waiting out the reaction delay.
    pending_flowmods: VecDeque<OfMessage>,
    reaction_armed: bool,
    /// Retired groups awaiting the rule-grace purge: (eligible_at, group).
    retire_queue: VecDeque<(SimTime, sc_net::Ipv4Prefix, crate::groups::GroupId)>,
    retire_armed: Option<SimTime>,
    /// Flow-mod batches fenced by a barrier whose reply is still out.
    /// Tokens are assigned in send order, so the deque stays sorted and
    /// a reply acks every batch with a token ≤ its own (cumulative).
    unacked: VecDeque<UnackedBatch>,
    barrier_token: u64,
    ack_timer_armed: Option<SimTime>,
    degraded: bool,
    pub stats: ControllerStats,
    pub events: Vec<(SimTime, ControllerEvent)>,
}

impl Controller {
    /// Build the controller. `port` is the node's single attachment (to
    /// the switch); all sessions run through it.
    pub fn new(cfg: ControllerConfig, port: PortId) -> Controller {
        let engine = Engine::new(cfg.engine.clone());
        let switch_chan = ChannelPort::connect(
            ChannelConfig::default(),
            UdpEndpoints {
                src_mac: cfg.mac,
                dst_mac: cfg.switch.switch_mac,
                src_ip: cfg.ip,
                dst_ip: cfg.switch.switch_ip,
                src_port: cfg.switch.local_port,
                dst_port: udp_port::OPENFLOW,
            },
            port,
            TIMER_SWITCH_CHAN,
        );
        let router_chan = ChannelPort::listen(
            ChannelConfig::default(),
            UdpEndpoints {
                src_mac: cfg.mac,
                dst_mac: cfg.router.router_mac,
                src_ip: cfg.ip,
                dst_ip: cfg.router.router_ip,
                src_port: cfg.router.local_port,
                dst_port: cfg.router.remote_port,
            },
            port,
            TIMER_ROUTER_CHAN,
        );
        let router_session = Session::new(SessionConfig {
            local_as: cfg.asn,
            router_id: cfg.router_id,
            hold_time: cfg.router.hold_time,
        });
        let peers = cfg
            .peers
            .iter()
            .enumerate()
            .map(|(i, link)| PeerSessionState {
                link: *link,
                chan: ChannelPort::connect(
                    ChannelConfig::default(),
                    UdpEndpoints {
                        src_mac: cfg.mac,
                        dst_mac: link.spec.mac,
                        src_ip: cfg.ip,
                        dst_ip: link.spec.id,
                        src_port: link.local_port,
                        dst_port: link.remote_port,
                    },
                    port,
                    TimerToken(PEER_TIMER_BASE + i as u64 * PEER_TIMER_STRIDE),
                ),
                session: Session::new(SessionConfig {
                    local_as: cfg.asn,
                    router_id: cfg.router_id,
                    hold_time: link.hold_time,
                }),
                bfd: link.bfd.map(BfdSession::new),
                session_armed: None,
                bfd_armed: None,
                failed_over: false,
            })
            .collect();
        Controller {
            engine,
            switch_chan,
            switch_ready: false,
            router_chan,
            router_session,
            router_session_armed: None,
            peers,
            xid: 1,
            pending_flowmods: VecDeque::new(),
            reaction_armed: false,
            retire_queue: VecDeque::new(),
            retire_armed: None,
            unacked: VecDeque::new(),
            barrier_token: 0,
            ack_timer_armed: None,
            degraded: false,
            stats: ControllerStats::default(),
            events: Vec::new(),
            cfg,
        }
    }

    /// Has the controller given up on programming the switch (unacked
    /// flow-mods exhausted their retries)? Cleared by the next ack.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Fold this controller's lifetime counters — the router-facing and
    /// every peer-facing BGP session, per-peer BFD, and the flow-mod
    /// robustness stats — into a metrics registry. Call once, after a
    /// run: the counters are totals, not deltas.
    pub fn fold_metrics(&self, reg: &mut sc_net::metrics::Registry) {
        self.router_session.fold_metrics(reg);
        for p in &self.peers {
            p.session.fold_metrics(reg);
            if let Some(bfd) = &p.bfd {
                bfd.fold_metrics(reg);
            }
        }
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// BFD state and negotiated detection time toward a peer.
    pub fn bfd_snapshot(&self, peer: PeerId) -> Option<(sc_bfd::BfdState, SimDuration)> {
        let p = self.peers.iter().find(|p| p.link.spec.id == peer)?;
        let bfd = p.bfd.as_ref()?;
        Some((bfd.state(), bfd.detection_time()))
    }

    /// BFD packet counters toward a peer (diagnostics).
    pub fn bfd_counters(&self, peer: PeerId) -> Option<(u64, u64)> {
        let p = self.peers.iter().find(|p| p.link.spec.id == peer)?;
        let bfd = p.bfd.as_ref()?;
        Some((bfd.packets_sent, bfd.packets_received))
    }

    /// Is the router-facing session Established?
    pub fn router_session_up(&self) -> bool {
        self.router_session.state() == sc_bgp::SessionState::Established
    }

    fn next_xid(&mut self) -> u32 {
        self.xid += 1;
        self.xid
    }

    fn of_send(&mut self, ctx: &mut Ctx, msg: OfMessage) {
        let xid = self.next_xid();
        self.switch_chan.send(msg.encode(xid));
        self.switch_chan.flush(ctx);
    }

    /// Send a batch of FLOW_MODs fenced by a barrier, and track it until
    /// the BARRIER_REPLY acks it. Unacked batches are re-sent on a
    /// bounded exponential backoff with seeded jitter; after
    /// `max_flowmod_attempts` the batch is abandoned and the controller
    /// declares itself degraded.
    fn send_flow_batch(&mut self, ctx: &mut Ctx, msgs: Vec<OfMessage>) {
        if msgs.is_empty() {
            return;
        }
        self.barrier_token += 1;
        let token = self.barrier_token;
        ctx.span_begin("program", "flowmod.batch", token, msgs.len() as u64);
        ctx.metrics().inc("ctl.flow_batches");
        ctx.metrics().add("ctl.flow_mods", msgs.len() as u64);
        for m in &msgs {
            self.of_send(ctx, m.clone());
        }
        self.of_send(ctx, OfMessage::BarrierRequest { token });
        let deadline = ctx.now() + self.backoff(token, 0);
        self.unacked.push_back(UnackedBatch {
            token,
            msgs,
            attempt: 0,
            deadline,
        });
        self.arm_ack_timer(ctx);
    }

    /// Deterministic backoff before retry `attempt + 1` of batch
    /// `token`: `ack_timeout × 2^attempt` (exponent capped) plus a
    /// jitter in `[0, ack_timeout/4)` that is a pure function of
    /// `(seed, token, attempt)` — replicas desynchronize their retry
    /// storms without any ambient randomness.
    fn backoff(&self, token: u64, attempt: u32) -> SimDuration {
        let step = self.cfg.ack_timeout * (1u64 << attempt.min(4));
        let span = (self.cfg.ack_timeout.as_micros() / 4).max(1);
        let jitter = splitmix64(
            self.cfg
                .seed
                .wrapping_add(token.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add(attempt as u64),
        ) % span;
        step + SimDuration::from_micros(jitter)
    }

    fn arm_ack_timer(&mut self, ctx: &mut Ctx) {
        if let Some(at) = self.unacked.iter().map(|b| b.deadline).min() {
            if self.ack_timer_armed != Some(at) {
                self.ack_timer_armed = Some(at);
                ctx.set_timer_at(at, TIMER_FLOWMOD_ACK);
            }
        }
    }

    fn on_barrier_reply(&mut self, ctx: &mut Ctx, token: u64) {
        while let Some(front) = self.unacked.front() {
            if front.token <= token {
                // Cumulative ack: one BARRIER_REPLY closes every batch
                // with a token at or below its own.
                ctx.span_end("program", "flowmod.batch", front.token, 0);
                self.unacked.pop_front();
            } else {
                break;
            }
        }
        // An ack proves the switch is programmable again: leave the
        // degraded state (the `flowmod_giveups` counter keeps the
        // history).
        if self.degraded {
            ctx.trace_instant("bgp", "ctl.degraded.exit", 0, 0, String::new);
        }
        self.degraded = false;
    }

    fn retry_unacked(&mut self, ctx: &mut Ctx) {
        self.ack_timer_armed = None;
        let now = ctx.now();
        let mut resend: Vec<(u64, Vec<OfMessage>)> = Vec::new();
        let mut kept = VecDeque::with_capacity(self.unacked.len());
        while let Some(mut b) = self.unacked.pop_front() {
            if b.deadline > now {
                kept.push_back(b);
                continue;
            }
            b.attempt += 1;
            if b.attempt >= self.cfg.max_flowmod_attempts {
                self.stats.flowmod_giveups += 1;
                if !self.degraded {
                    ctx.trace_instant("bgp", "ctl.degraded.enter", b.token, 0, String::new);
                }
                self.degraded = true;
                ctx.span_end("program", "flowmod.batch", b.token, 0);
                ctx.trace_instant(
                    "program",
                    "flowmod.giveup",
                    b.token,
                    b.attempt as u64,
                    String::new,
                );
                ctx.metrics().inc("ctl.flowmod_giveups");
                self.events
                    .push((now, ControllerEvent::FlowBatchGiveUp { token: b.token }));
                continue;
            }
            self.stats.flowmod_retries += 1;
            ctx.trace_instant(
                "program",
                "flowmod.retry",
                b.token,
                b.attempt as u64,
                String::new,
            );
            ctx.metrics().inc("ctl.flowmod_retries");
            self.events.push((
                now,
                ControllerEvent::FlowBatchRetry {
                    token: b.token,
                    attempt: b.attempt,
                },
            ));
            b.deadline = now + self.backoff(b.token, b.attempt);
            resend.push((b.token, b.msgs.clone()));
            kept.push_back(b);
        }
        self.unacked = kept;
        for (token, msgs) in resend {
            for m in msgs {
                self.of_send(ctx, m);
            }
            self.of_send(ctx, OfMessage::BarrierRequest { token });
        }
        self.arm_ack_timer(ctx);
    }

    fn flow_mod(command: FlowModCommand, vmac: MacAddr, actions: Vec<Action>) -> OfMessage {
        OfMessage::FlowMod {
            command,
            priority: VMAC_RULE_PRIORITY,
            cookie: SC_COOKIE,
            matcher: FlowMatch::dst_mac(vmac),
            actions,
        }
    }

    /// Execute a batch of engine actions.
    fn run_actions(&mut self, ctx: &mut Ctx, actions: Vec<EngineAction>) {
        // Routing side, packed like a real speaker. With the session
        // down nothing is queued: the engine's `announced` state is the
        // source of truth and is replayed in full on (re-)establishment.
        if self.router_session.state() == sc_bgp::SessionState::Established {
            for update in Engine::pack_for_router(&actions) {
                self.router_session.queue_update(update);
            }
        }
        // Switch side: the whole run is one fenced batch.
        let mut batch = Vec::new();
        for action in actions {
            let msg = match action {
                EngineAction::FlowAdd {
                    vmac,
                    dst_mac,
                    port,
                } => Some(Self::flow_mod(
                    FlowModCommand::Add,
                    vmac,
                    vec![Action::SetDstMac(dst_mac), Action::Output(port)],
                )),
                EngineAction::FlowModify {
                    vmac,
                    dst_mac,
                    port,
                } => Some(Self::flow_mod(
                    FlowModCommand::Modify,
                    vmac,
                    vec![Action::SetDstMac(dst_mac), Action::Output(port)],
                )),
                EngineAction::FlowDelete { vmac } => {
                    Some(Self::flow_mod(FlowModCommand::Delete, vmac, Vec::new()))
                }
                EngineAction::FlowRetire { group, .. } => {
                    let eligible = ctx.now() + self.cfg.rule_grace;
                    self.retire_queue
                        .push_back((eligible, sc_net::Ipv4Prefix::DEFAULT, group));
                    self.arm_retire_timer(ctx);
                    None
                }
                EngineAction::Announce { .. } | EngineAction::Withdraw { .. } => None,
            };
            if let Some(m) = msg {
                batch.push(m);
            }
        }
        self.send_flow_batch(ctx, batch);
        self.pump_router(ctx);
    }

    fn arm_retire_timer(&mut self, ctx: &mut Ctx) {
        if let Some((at, _, _)) = self.retire_queue.front() {
            let at = *at;
            if self.retire_armed != Some(at) {
                self.retire_armed = Some(at);
                ctx.set_timer_at(at, TIMER_RETIRE);
            }
        }
    }

    fn drain_retired(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        let mut batch = Vec::new();
        while let Some((at, _, group)) = self.retire_queue.front().copied() {
            if at > now {
                break;
            }
            self.retire_queue.pop_front();
            if let Some(vmac) = self.engine.purge_retired(group) {
                batch.push(Self::flow_mod(FlowModCommand::Delete, vmac, Vec::new()));
            }
        }
        self.send_flow_batch(ctx, batch);
        self.retire_armed = None;
        self.arm_retire_timer(ctx);
    }

    fn pump_router(&mut self, ctx: &mut Ctx) {
        while let Some(msg) = self.router_session.poll_transmit() {
            let mut buf = self.router_chan.take_buffer();
            msg.encode_into(&mut buf);
            self.router_chan.send(buf);
        }
        self.router_chan.flush(ctx);
        if let Some(at) = self.router_session.next_wakeup() {
            if self.router_session_armed != Some(at) {
                self.router_session_armed = Some(at);
                ctx.set_timer_at(at, TIMER_ROUTER_SESSION);
            }
        }
    }

    fn pump_peer(&mut self, idx: usize, ctx: &mut Ctx) {
        let peer = &mut self.peers[idx];
        while let Some(msg) = peer.session.poll_transmit() {
            let mut buf = peer.chan.take_buffer();
            msg.encode_into(&mut buf);
            peer.chan.send(buf);
        }
        peer.chan.flush(ctx);
        if let Some(at) = peer.session.next_wakeup() {
            if peer.session_armed != Some(at) {
                peer.session_armed = Some(at);
                ctx.set_timer_at(
                    at,
                    TimerToken(PEER_TIMER_BASE + idx as u64 * PEER_TIMER_STRIDE + 1),
                );
            }
        }
    }

    fn pump_bfd(&mut self, idx: usize, ctx: &mut Ctx) {
        let now = ctx.now();
        let Some(bfd) = self.peers[idx].bfd.as_mut() else {
            return;
        };
        let (events, packets) = bfd.poll(now);
        let next = bfd.next_wakeup();
        let link = self.peers[idx].link;
        for pkt in packets {
            let frame = udp_frame(
                UdpEndpoints {
                    src_mac: self.cfg.mac,
                    dst_mac: link.spec.mac,
                    src_ip: self.cfg.ip,
                    dst_ip: link.spec.id,
                    src_port: udp_port::BFD_CONTROL,
                    dst_port: udp_port::BFD_CONTROL,
                },
                255,
                &pkt.to_bytes(),
            );
            ctx.send_frame(self.switch_port(), frame);
        }
        if let Some(at) = next {
            if self.peers[idx].bfd_armed != Some(at) {
                self.peers[idx].bfd_armed = Some(at);
                ctx.set_timer_at(
                    at,
                    TimerToken(PEER_TIMER_BASE + idx as u64 * PEER_TIMER_STRIDE + 2),
                );
            }
        }
        for ev in events {
            self.on_bfd_event(idx, ev, ctx);
        }
    }

    fn switch_port(&self) -> PortId {
        self.switch_chan.port
    }

    fn on_bfd_event(&mut self, idx: usize, ev: BfdEvent, ctx: &mut Ctx) {
        let peer_id = self.peers[idx].link.spec.id;
        match ev {
            BfdEvent::Up => {
                self.peers[idx].failed_over = false;
                // Re-arm: groups failed over away from this peer steer
                // back the moment its forwarding plane is verified (RFC
                // 5882 §4.1); its routes return when the BGP session
                // re-establishes and replays the feed.
                let actions = self.engine.peer_up(peer_id);
                self.run_actions(ctx, actions);
            }
            BfdEvent::Down(_diag) => {
                if self.peers[idx].failed_over {
                    return;
                }
                self.peers[idx].failed_over = true;
                self.events
                    .push((ctx.now(), ControllerEvent::PeerDown(peer_id)));
                ctx.metrics().inc("ctl.bfd_downs");
                ctx.trace_instant("detect", "bfd.down", idx as u64, 0, || {
                    format!("BFD: peer {peer_id} down")
                });
                // Fast path: Listing 2, after the modeled reaction delay.
                let plan = self.engine.failover_plan(peer_id);
                self.issue_failover(ctx, peer_id, &plan);
                // Tear the BGP session (it would hold-time out anyway)
                // and restart the transport so the session can
                // re-establish — and the peer re-announce — once the
                // peer returns.
                self.peers[idx].session.stop(DownReason::BfdDown);
                self.peers[idx].chan.reset();
                self.pump_peer(idx, ctx);
                // Slow path: control-plane repair toward the router.
                let actions = self.engine.peer_down_repair(peer_id);
                ctx.trace_instant("bgp", "repair.queued", 0, actions.len() as u64, String::new);
                self.events.push((
                    ctx.now(),
                    ControllerEvent::RepairQueued {
                        peer: peer_id,
                        announcements: actions.len(),
                    },
                ));
                self.run_actions(ctx, actions);
            }
        }
    }

    fn issue_failover(&mut self, ctx: &mut Ctx, peer: PeerId, plan: &FailoverPlan) {
        self.events.push((
            ctx.now(),
            ControllerEvent::FailoverIssued {
                peer,
                rewrites: plan.rewrites.len(),
            },
        ));
        ctx.metrics().inc("ctl.failovers");
        ctx.trace_instant(
            "bgp",
            "failover.plan",
            0,
            plan.rewrites.len() as u64,
            || format!("failover plan for {peer}: {} rewrites", plan.rewrites.len()),
        );
        for rw in &plan.rewrites {
            let msg = Self::flow_mod(
                FlowModCommand::Modify,
                rw.vmac,
                vec![
                    Action::SetDstMac(rw.new_dst_mac),
                    Action::Output(rw.out_port),
                ],
            );
            self.pending_flowmods.push_back(msg);
        }
        if !self.reaction_armed {
            self.reaction_armed = true;
            ctx.set_timer_after(self.cfg.reaction_delay, TIMER_REACTION);
        }
    }

    fn handle_of_message(&mut self, ctx: &mut Ctx, msg: OfMessage) {
        match msg {
            OfMessage::Hello if !self.switch_ready => {
                self.switch_ready = true;
                self.events.push((ctx.now(), ControllerEvent::SwitchReady));
                self.of_send(ctx, OfMessage::FeaturesRequest);
                // Punt broadcast ARP (requests) to us; keep flooding
                // them too so ordinary hosts still resolve each
                // other.
                let arp_rule = OfMessage::FlowMod {
                    command: FlowModCommand::Add,
                    priority: ARP_RULE_PRIORITY,
                    cookie: SC_COOKIE,
                    matcher: FlowMatch {
                        eth_type: Some(EtherType::Arp.to_u16()),
                        eth_dst: Some(MacAddr::BROADCAST),
                        ..FlowMatch::default()
                    },
                    actions: vec![Action::ToController, Action::Flood],
                };
                self.send_flow_batch(ctx, vec![arp_rule]);
            }
            OfMessage::PacketIn { in_port, frame } => {
                self.handle_packet_in(ctx, in_port, &frame);
            }
            OfMessage::EchoRequest(d) => {
                self.of_send(ctx, OfMessage::EchoReply(d));
            }
            OfMessage::BarrierReply { token } => {
                self.on_barrier_reply(ctx, token);
            }
            OfMessage::PortStatus { port, up } if self.cfg.portstatus_failover && !up => {
                // Carrier loss on a port a peer hangs off: run the
                // Listing 2 fast path immediately (the BFD event,
                // arriving up to detect-time later, dedups on
                // `failed_over`).
                if let Some(idx) = self
                    .peers
                    .iter()
                    .position(|p| p.link.spec.switch_port == port)
                {
                    self.on_bfd_event(idx, BfdEvent::Down(sc_bfd::BfdDiag::None), ctx);
                }
            }
            _ => {}
        }
    }

    /// The Floodlight ARP-resolver extension: answer requests for VNHs
    /// with the group's VMAC.
    fn handle_packet_in(&mut self, ctx: &mut Ctx, in_port: u16, frame: &[u8]) {
        let Ok((eth, payload)) = EthernetRepr::parse(frame) else {
            return;
        };
        if eth.ethertype != EtherType::Arp {
            return;
        }
        let Ok(arp) = ArpRepr::parse(payload) else {
            return;
        };
        if arp.op != ArpOp::Request || !self.engine.owns_vnh(arp.target_ip) {
            return;
        }
        let Some(vmac) = self.engine.arp_lookup(arp.target_ip) else {
            return; // unallocated VNH: nobody should be asking
        };
        self.events.push((
            ctx.now(),
            ControllerEvent::ArpAnswered { vnh: arp.target_ip },
        ));
        let reply = ArpRepr::reply_to(&arp, vmac);
        let reply_frame = EthernetRepr {
            dst: arp.sender_mac,
            src: vmac,
            ethertype: EtherType::Arp,
        }
        .to_frame(&reply.to_bytes());
        let out = OfMessage::PacketOut {
            actions: vec![Action::Output(in_port)],
            frame: reply_frame,
        };
        self.of_send(ctx, out);
    }

    fn handle_router_session_events(&mut self, events: Vec<SessionEvent>, ctx: &mut Ctx) {
        for ev in events {
            match ev {
                SessionEvent::Established(_) => {
                    self.events
                        .push((ctx.now(), ControllerEvent::RouterSessionUp));
                    // Full replay of the announced state (the router
                    // purged our routes when the session dropped): the
                    // controller-side Adj-RIB-Out, RFC 4271 §9.4.
                    let replay = self.engine.export_announcements();
                    for update in Engine::pack_for_router(&replay) {
                        self.router_session.queue_update(update);
                    }
                }
                SessionEvent::Down(_) => {
                    // Flush any final NOTIFICATION, then reset the
                    // transport so the router (the active side) can
                    // reconnect; the next establishment replays
                    // everything from engine state.
                    self.pump_router(ctx);
                    self.router_chan.reset();
                }
                SessionEvent::Update(_) => {
                    // The supercharged router does not originate routes
                    // in this lab; ignore.
                }
            }
        }
    }

    /// Dispatch a batch of peer-session events. UPDATEs are processed
    /// one message at a time on purpose: [`Engine::pack_for_router`]
    /// packs a run of actions announcements-first/withdrawals-last, so
    /// concatenating actions *across* messages would let an earlier
    /// message's withdrawal overtake a later message's announcement of
    /// the same prefix on the wire toward the router (a co-timed
    /// withdraw + re-announce would end withdrawn downstream).
    /// Per-message processing keeps the packed output order-faithful.
    fn handle_peer_session_events(&mut self, idx: usize, events: Vec<SessionEvent>, ctx: &mut Ctx) {
        let peer_id = self.peers[idx].link.spec.id;
        for ev in events {
            match ev {
                SessionEvent::Established(_) => {
                    self.events
                        .push((ctx.now(), ControllerEvent::PeerSessionUp(peer_id)));
                    self.peers[idx].failed_over = false;
                    let actions = self.engine.peer_up(peer_id);
                    self.run_actions(ctx, actions);
                }
                SessionEvent::Down(_) => {
                    // Without BFD this is the detection path (hold
                    // timer); with BFD it usually arrives after the
                    // failover already ran — failed_over dedups.
                    if !self.peers[idx].failed_over {
                        self.peers[idx].failed_over = true;
                        self.events
                            .push((ctx.now(), ControllerEvent::PeerDown(peer_id)));
                        let plan = self.engine.failover_plan(peer_id);
                        self.issue_failover(ctx, peer_id, &plan);
                        let actions = self.engine.peer_down_repair(peer_id);
                        ctx.trace_instant(
                            "bgp",
                            "repair.queued",
                            0,
                            actions.len() as u64,
                            String::new,
                        );
                        self.events.push((
                            ctx.now(),
                            ControllerEvent::RepairQueued {
                                peer: peer_id,
                                announcements: actions.len(),
                            },
                        ));
                        self.run_actions(ctx, actions);
                    }
                    // Either way the transport restarts: flush any final
                    // NOTIFICATION, then reconnect so the peer can
                    // re-establish and re-announce when it returns.
                    self.pump_peer(idx, ctx);
                    self.peers[idx].chan.reset();
                }
                SessionEvent::Update(upd) => {
                    let actions = self.engine.process_update(peer_id, &upd);
                    self.run_actions(ctx, actions);
                }
            }
        }
    }
}

impl Node for Controller {
    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn on_start(&mut self, ctx: &mut Ctx) {
        // Kick the OpenFlow handshake and all active transports.
        self.of_send(ctx, OfMessage::Hello);
        if let Some(iv) = self.cfg.echo_interval {
            ctx.set_timer_after(iv, TIMER_ECHO);
        }
        for idx in 0..self.peers.len() {
            self.peers[idx].chan.flush(ctx);
            if let Some(bfd) = self.peers[idx].bfd.as_mut() {
                bfd.start(ctx.now());
            }
            self.pump_bfd(idx, ctx);
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx, _port: PortId, frame: sc_net::Frame) {
        // NIC filter: the switch floods unknown-unicast frames (e.g. a
        // peer's BFD packets addressed to a *dead* controller replica
        // after its L2 entry was purged); without this filter those
        // flooded `your_discr = 0` Down packets would be mis-demuxed
        // into our own healthy sessions (RFC 5880 §6.8.6 demultiplexing
        // respects addressing).
        if let Ok(dst) = EthernetRepr::peek_dst(&frame) {
            if dst != self.cfg.mac && !dst.is_broadcast() {
                return;
            }
        }
        let Ok(Some(d)) = open_udp_frame(&frame) else {
            return;
        };
        if d.ip.dst != self.cfg.ip {
            return;
        }
        let now = ctx.now();
        // 1. Switch control channel.
        if self.switch_chan.matches(&d) {
            let events = self.switch_chan.on_datagram(&d, now);
            self.switch_chan.flush(ctx);
            for ev in events {
                match ev {
                    ChannelEvent::Connected => {}
                    ChannelEvent::Delivered(bytes) => {
                        if let Ok((_xid, msg)) = OfMessage::decode(&bytes) {
                            self.handle_of_message(ctx, msg);
                        }
                    }
                    ChannelEvent::PeerClosed => {}
                }
            }
            return;
        }
        // 2. BFD.
        if d.udp.dst_port == udp_port::BFD_CONTROL {
            if let Some(idx) = self
                .peers
                .iter()
                .position(|p| p.link.spec.id == d.ip.src && p.bfd.is_some())
            {
                if let Ok(pkt) = sc_bfd::BfdPacket::parse(&d.payload) {
                    let events = self.peers[idx].bfd.as_mut().unwrap().on_packet(&pkt, now);
                    for ev in events {
                        self.on_bfd_event(idx, ev, ctx);
                    }
                    self.pump_bfd(idx, ctx);
                }
            }
            return;
        }
        // 3. Router-facing BGP session.
        if self.router_chan.matches(&d) {
            let events = self.router_chan.on_datagram(&d, now);
            let mut session_events = Vec::new();
            for ev in events {
                match ev {
                    ChannelEvent::Connected => self.router_session.start(now),
                    ChannelEvent::Delivered(bytes) => {
                        if let Ok(msg) = BgpMessage::decode(&bytes) {
                            session_events.extend(self.router_session.on_message(msg, now));
                        }
                    }
                    ChannelEvent::PeerClosed => {
                        if let Some(ev) = self.router_session.stop(DownReason::AdminDown) {
                            session_events.push(ev);
                        }
                    }
                }
            }
            self.handle_router_session_events(session_events, ctx);
            self.pump_router(ctx);
            return;
        }
        // 4. Peer BGP sessions.
        if let Some(idx) = self.peers.iter().position(|p| p.chan.matches(&d)) {
            let events = self.peers[idx].chan.on_datagram(&d, now);
            let mut session_events = Vec::new();
            for ev in events {
                match ev {
                    ChannelEvent::Connected => self.peers[idx].session.start(now),
                    ChannelEvent::Delivered(bytes) => {
                        if let Ok(msg) = BgpMessage::decode(&bytes) {
                            session_events.extend(self.peers[idx].session.on_message(msg, now));
                        }
                    }
                    ChannelEvent::PeerClosed => {
                        if let Some(ev) = self.peers[idx].session.stop(DownReason::AdminDown) {
                            session_events.push(ev);
                        }
                    }
                }
            }
            self.handle_peer_session_events(idx, session_events, ctx);
            self.pump_peer(idx, ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: TimerToken) {
        match token {
            TIMER_SWITCH_CHAN => self.switch_chan.on_timer(ctx),
            TIMER_ROUTER_CHAN => self.router_chan.on_timer(ctx),
            TIMER_ROUTER_SESSION => {
                self.router_session_armed = None;
                let events = self.router_session.poll(ctx.now());
                self.handle_router_session_events(events, ctx);
                self.pump_router(ctx);
            }
            TIMER_REACTION => {
                self.reaction_armed = false;
                let batch: Vec<OfMessage> = self.pending_flowmods.drain(..).collect();
                self.send_flow_batch(ctx, batch);
            }
            TIMER_RETIRE => self.drain_retired(ctx),
            TIMER_FLOWMOD_ACK => self.retry_unacked(ctx),
            TIMER_ECHO => {
                if let Some(iv) = self.cfg.echo_interval {
                    // Liveness beacons to both fail-safe watchdogs: an
                    // OpenFlow echo for the switch agent's deadline and
                    // an out-of-schedule BGP KEEPALIVE for the router's.
                    self.of_send(ctx, OfMessage::EchoRequest(Vec::new()));
                    self.router_session.send_keepalive();
                    self.pump_router(ctx);
                    ctx.set_timer_after(iv, TIMER_ECHO);
                }
            }
            TimerToken(t) if t >= PEER_TIMER_BASE => {
                let idx = ((t - PEER_TIMER_BASE) / PEER_TIMER_STRIDE) as usize;
                if idx >= self.peers.len() {
                    return;
                }
                match (t - PEER_TIMER_BASE) % PEER_TIMER_STRIDE {
                    0 => self.peers[idx].chan.on_timer(ctx),
                    1 => {
                        self.peers[idx].session_armed = None;
                        let events = self.peers[idx].session.poll(ctx.now());
                        self.handle_peer_session_events(idx, events, ctx);
                        self.pump_peer(idx, ctx);
                    }
                    2 => {
                        self.peers[idx].bfd_armed = None;
                        self.pump_bfd(idx, ctx);
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// SplitMix64 mix (Steele et al.) — the jitter hash for retry backoff.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
