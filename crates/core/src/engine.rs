//! The supercharger engine: Listing 1 (online backup-group computation)
//! and Listing 2 (data-plane convergence) of the paper, as a pure state
//! machine.
//!
//! The engine is deliberately free of I/O and simulator types: it maps
//! BGP updates to *actions* (announcements toward the router, flow-rule
//! operations toward the switch). That makes it directly benchmarkable
//! (the paper's §4 controller micro-benchmark) and lets the replication
//! tests compare two engines fed the same stream for bit-identical
//! state — the paper's §3 reliability argument.
//!
//! Differences from the paper's pseudocode, made deliberately and
//! commented inline: Listing 1 as printed does not handle brand-new
//! prefixes (its outer `if old:` has no else), and re-sends the
//! *original* next-hop when the backup pair is unchanged but attributes
//! churned — which would overwrite the VNH in the router. This
//! implementation announces the correct VNH in both cases.

use crate::groups::{GroupId, GroupTable};
use crate::vnh::VnhAllocator;
use sc_bgp::attrs::RouteAttrs;
use sc_bgp::msg::UpdateMsg;
use sc_bgp::rib::LocRib;
use sc_bgp::{PeerId, PeerInfo, Route};
use sc_net::{Ipv4Prefix, MacAddr, PrefixTrie};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Static facts about one of the supercharged router's original peers.
#[derive(Clone, Copy, Debug)]
pub struct PeerSpec {
    pub id: PeerId,
    /// The peer's real MAC (flow rules rewrite VMAC → this).
    pub mac: MacAddr,
    /// The switch port the peer hangs off.
    pub switch_port: u16,
    /// Import LOCAL_PREF the supercharged router would assign (the
    /// engine must rank exactly like the router it fronts).
    pub local_pref: u32,
    /// The peer's BGP identifier (decision-process tiebreak).
    pub router_id: Ipv4Addr,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Pool for virtual next-hops; must lie inside the LAN subnet shared
    /// with the router (it will ARP for these).
    pub vnh_pool: Ipv4Prefix,
    pub peers: Vec<PeerSpec>,
    /// Backup-group depth: 2 protects any single link/node failure (the
    /// paper's choice); deeper groups survive simultaneous failures.
    pub protect_depth: usize,
}

impl EngineConfig {
    pub fn new(vnh_pool: Ipv4Prefix, peers: Vec<PeerSpec>) -> EngineConfig {
        EngineConfig {
            vnh_pool,
            peers,
            protect_depth: 2,
        }
    }
}

/// Actions the engine asks its host (the controller node) to perform.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineAction {
    /// (Re-)announce `prefix` to the supercharged router with the given
    /// attributes and `next_hop` (a VNH for protected prefixes, the real
    /// next-hop for unprotected ones).
    Announce {
        prefix: Ipv4Prefix,
        attrs: Arc<RouteAttrs>,
        next_hop: Ipv4Addr,
    },
    /// Withdraw `prefix` from the router.
    Withdraw { prefix: Ipv4Prefix },
    /// Install the flow rule for a newly created backup-group.
    FlowAdd {
        vmac: MacAddr,
        dst_mac: MacAddr,
        port: u16,
    },
    /// Rewrite a group's flow rule (the failover operation).
    FlowModify {
        vmac: MacAddr,
        dst_mac: MacAddr,
        port: u16,
    },
    /// A group lost its last prefix: its rule must stay installed for a
    /// grace period (the router's FIB may still tag traffic with the
    /// VMAC until its slow walk completes), after which the host calls
    /// [`Engine::purge_retired`] and deletes the rule.
    FlowRetire { group: GroupId, vmac: MacAddr },
    /// Remove the flow rule of a purged group.
    FlowDelete { vmac: MacAddr },
}

/// One rewrite of the data-plane convergence procedure (Listing 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlowRewrite {
    pub group: GroupId,
    pub vmac: MacAddr,
    pub new_dst_mac: MacAddr,
    pub out_port: u16,
    pub new_target: PeerId,
}

/// The output of [`Engine::failover_plan`]: the constant-size set of
/// flow rewrites that restores connectivity.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FailoverPlan {
    pub rewrites: Vec<FlowRewrite>,
    /// Groups whose entire key is dead: traffic stays black-holed until
    /// the control plane re-announces (counted for diagnostics).
    pub unprotected_groups: usize,
}

/// Engine counters (also part of the state-hash for replication tests).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct EngineStats {
    pub updates_processed: u64,
    pub routes_learned: u64,
    pub withdrawals_processed: u64,
    pub announcements: u64,
    pub withdrawals_sent: u64,
    pub groups_created: u64,
    pub groups_retired: u64,
    pub groups_purged: u64,
    pub failovers: u64,
    /// Groups steered back to a better (restored) member outside the
    /// failover fast path — the flap-recovery "re-arm" operation.
    pub groups_rearmed: u64,
}

/// What we last told the router about a prefix.
#[derive(Clone, Debug)]
struct Announced {
    next_hop: Ipv4Addr,
    /// Identity of the attribute set we forwarded (Arc pointer — the
    /// sets are immutable, so pointer equality implies content
    /// equality).
    attrs: Arc<RouteAttrs>,
    group: Option<GroupId>,
}

/// The supercharger engine.
pub struct Engine {
    cfg: EngineConfig,
    peer_specs: BTreeMap<PeerId, PeerSpec>,
    alive: BTreeMap<PeerId, bool>,
    rib: LocRib,
    groups: GroupTable,
    announced: PrefixTrie<Announced>,
    pub stats: EngineStats,
}

impl Engine {
    pub fn new(cfg: EngineConfig) -> Engine {
        let peer_specs: BTreeMap<PeerId, PeerSpec> = cfg.peers.iter().map(|p| (p.id, *p)).collect();
        let alive = peer_specs.keys().map(|&p| (p, true)).collect();
        let groups = GroupTable::new(VnhAllocator::new(cfg.vnh_pool));
        Engine {
            peer_specs,
            alive,
            rib: LocRib::new(),
            groups,
            announced: PrefixTrie::new(),
            stats: EngineStats::default(),
            cfg,
        }
    }

    // ----------------------------------------------------- inspection

    pub fn rib(&self) -> &LocRib {
        &self.rib
    }

    pub fn groups(&self) -> &GroupTable {
        &self.groups
    }

    /// The ARP responder's lookup: resolve a VNH to its group's VMAC.
    pub fn arp_lookup(&self, vnh: Ipv4Addr) -> Option<MacAddr> {
        self.groups.by_vnh(vnh).map(|g| g.vmac)
    }

    /// Is this address inside the VNH pool (ours to answer for)?
    pub fn owns_vnh(&self, ip: Ipv4Addr) -> bool {
        self.cfg.vnh_pool.contains(ip)
    }

    /// A deterministic digest of externally visible state: what each
    /// prefix is announced as, and every group's (key → VNH/VMAC/target).
    /// Two replicas fed the same update stream must agree on this — the
    /// paper's §3 claim, checked by `replication` tests.
    pub fn state_digest(&self) -> u64 {
        // FNV-1a over a canonical serialization.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for (prefix, a) in self.announced.iter() {
            eat(&prefix.raw_bits().to_be_bytes());
            eat(&[prefix.len()]);
            eat(&u32::from(a.next_hop).to_be_bytes());
        }
        for g in self.groups.iter() {
            eat(&g.id.0.to_be_bytes());
            for p in &g.key {
                eat(&u32::from(*p).to_be_bytes());
            }
            eat(&u32::from(g.vnh).to_be_bytes());
            eat(&g.vmac.octets());
            eat(&u32::from(g.active_target).to_be_bytes());
        }
        h
    }

    // ------------------------------------------------- update handling

    /// Process one BGP UPDATE received from `peer` (Listing 1, applied
    /// per prefix). Returns the actions to perform, in order.
    pub fn process_update(&mut self, peer: PeerId, upd: &UpdateMsg) -> Vec<EngineAction> {
        let mut actions = Vec::new();
        self.process_update_into(peer, upd, &mut actions);
        actions
    }

    /// [`Engine::process_update`] appending to a caller-owned action
    /// buffer (the batch path).
    fn process_update_into(
        &mut self,
        peer: PeerId,
        upd: &UpdateMsg,
        actions: &mut Vec<EngineAction>,
    ) {
        self.stats.updates_processed += 1;
        for prefix in &upd.withdrawn {
            self.stats.withdrawals_processed += 1;
            if self.rib.withdraw(*prefix, peer).is_some() {
                self.reconcile(*prefix, actions);
            }
        }
        if let Some(attrs) = &upd.attrs {
            let spec = self.peer_specs.get(&peer).copied();
            let from = PeerInfo {
                peer,
                router_id: spec.map(|s| s.router_id).unwrap_or(peer),
                ebgp: true,
                igp_cost: 0,
            };
            let local_pref = attrs
                .local_pref
                .unwrap_or_else(|| spec.map(|s| s.local_pref).unwrap_or(100));
            for prefix in &upd.nlri {
                self.stats.routes_learned += 1;
                let route = Route {
                    prefix: *prefix,
                    attrs: attrs.clone(),
                    from,
                    local_pref,
                };
                self.rib.update(route);
                self.reconcile(*prefix, actions);
            }
        }
    }

    /// Bring the announced state for `prefix` in line with the RIB.
    fn reconcile(&mut self, prefix: Ipv4Prefix, actions: &mut Vec<EngineAction>) {
        let candidates = self.rib.candidates(prefix);
        let desired: Option<(Arc<RouteAttrs>, Ipv4Addr, Option<GroupId>)> = match candidates {
            [] => None,
            [only] => Some((only.attrs.clone(), only.next_hop(), None)),
            multiple => {
                let depth = self.cfg.protect_depth.min(multiple.len());
                let key: Vec<PeerId> = multiple[..depth].iter().map(|r| r.from.peer).collect();
                let best = &multiple[0];
                // A group is only useful if we can actually steer to its
                // members (all peers known to the switch config).
                if key.iter().all(|p| self.peer_specs.contains_key(p)) {
                    let attrs = best.attrs.clone();
                    let (group, created) = self.groups.get_or_create(&key);
                    let (gid, vnh, vmac, target) =
                        (group.id, group.vnh, group.vmac, group.active_target);
                    // Steer to the first *alive* member. A resurrected
                    // group may still target the backup it failed over
                    // to before its primary returned; re-arm it so a
                    // restored peer's re-announcements de-supercharge
                    // the temporary failover steering. With no member
                    // alive there is nothing useful to steer to — leave
                    // the rule alone (mirrors [`Engine::peer_up`]).
                    let desired = key
                        .iter()
                        .find(|p| *self.alive.get(p).unwrap_or(&false))
                        .copied();
                    if created {
                        self.stats.groups_created += 1;
                        let spec = self.peer_specs[&desired.unwrap_or(key[0])];
                        actions.push(EngineAction::FlowAdd {
                            vmac,
                            dst_mac: spec.mac,
                            port: spec.switch_port,
                        });
                        self.groups.get_mut(gid).unwrap().active_target = spec.id;
                    } else if let Some(desired) = desired.filter(|d| *d != target) {
                        self.stats.groups_rearmed += 1;
                        let spec = self.peer_specs[&desired];
                        actions.push(EngineAction::FlowModify {
                            vmac,
                            dst_mac: spec.mac,
                            port: spec.switch_port,
                        });
                        self.groups.get_mut(gid).unwrap().active_target = desired;
                    }
                    Some((attrs, vnh, Some(gid)))
                } else {
                    Some((best.attrs.clone(), best.next_hop(), None))
                }
            }
        };

        let previous = self.announced.get(prefix);
        match (&previous, &desired) {
            (None, None) => {}
            (Some(prev), Some((attrs, nh, group)))
                if prev.next_hop == *nh
                    && Arc::ptr_eq(&prev.attrs, attrs)
                    && prev.group == *group => {}
            _ => {
                // Reference counting for group transitions.
                let old_group = previous.and_then(|p| p.group);
                let new_group = desired.as_ref().and_then(|(_, _, g)| *g);
                if old_group != new_group {
                    if let Some(g) = new_group {
                        self.groups.add_ref(g);
                    }
                    if let Some(g) = old_group {
                        if let Some(retired) = self.groups.drop_ref(g) {
                            self.stats.groups_retired += 1;
                            let vmac = self.groups.get(retired).unwrap().vmac;
                            actions.push(EngineAction::FlowRetire {
                                group: retired,
                                vmac,
                            });
                        }
                    }
                }
                match desired {
                    Some((attrs, next_hop, group)) => {
                        self.stats.announcements += 1;
                        actions.push(EngineAction::Announce {
                            prefix,
                            attrs: attrs.clone(),
                            next_hop,
                        });
                        self.announced.insert(
                            prefix,
                            Announced {
                                next_hop,
                                attrs,
                                group,
                            },
                        );
                    }
                    None => {
                        self.stats.withdrawals_sent += 1;
                        actions.push(EngineAction::Withdraw { prefix });
                        self.announced.remove(prefix);
                    }
                }
            }
        }
    }

    // ----------------------------------------------------- failure path

    /// Listing 2: the constant-time data-plane convergence procedure.
    /// Computes the flow rewrites for every group currently steering
    /// into `dead_peer`, redirecting each to its first alive backup.
    ///
    /// This is the *fast path* — call it the moment BFD reports the
    /// failure, before any control-plane repair.
    pub fn failover_plan(&mut self, dead_peer: PeerId) -> FailoverPlan {
        self.stats.failovers += 1;
        self.alive.insert(dead_peer, false);
        let mut plan = FailoverPlan::default();
        for gid in self.groups.groups_targeting(dead_peer) {
            let group = self.groups.get(gid).unwrap();
            let backup = group
                .key
                .iter()
                .find(|p| *self.alive.get(p).unwrap_or(&false))
                .copied();
            match backup {
                Some(peer) => {
                    let spec = self.peer_specs[&peer];
                    plan.rewrites.push(FlowRewrite {
                        group: gid,
                        vmac: group.vmac,
                        new_dst_mac: spec.mac,
                        out_port: spec.switch_port,
                        new_target: peer,
                    });
                    self.groups.get_mut(gid).unwrap().active_target = peer;
                }
                None => plan.unprotected_groups += 1,
            }
        }
        plan
    }

    /// The control-plane repair that follows the fast path: purge the
    /// dead peer's routes and re-announce every affected prefix (the
    /// router digests this at its own slow pace — the data plane is
    /// already healed).
    pub fn peer_down_repair(&mut self, dead_peer: PeerId) -> Vec<EngineAction> {
        let changes = self.rib.withdraw_peer(dead_peer);
        let mut actions = Vec::new();
        for change in changes {
            self.reconcile(change.prefix, &mut actions);
        }
        actions
    }

    /// A previously failed peer is back (its BFD session recovered or
    /// its BGP session re-established). Marks it eligible as a failover
    /// target again and **re-arms** every group — live or retired, the
    /// rules are still installed — whose current steering is worse than
    /// the restored member: those flow rules are rewritten back, undoing
    /// the temporary failover before the peer's routes even return via
    /// ordinary UPDATEs. Returns the flow rewrites to issue.
    pub fn peer_up(&mut self, peer: PeerId) -> Vec<EngineAction> {
        if self.alive.insert(peer, true) == Some(true) {
            return Vec::new(); // already alive: nothing to re-arm
        }
        let mut actions = Vec::new();
        let rearm: Vec<(GroupId, MacAddr, PeerId)> = self
            .groups
            .iter()
            .filter(|g| g.key.contains(&peer))
            .filter_map(|g| {
                let desired = g
                    .key
                    .iter()
                    .find(|p| *self.alive.get(p).unwrap_or(&false))
                    .copied()?;
                (desired != g.active_target).then_some((g.id, g.vmac, desired))
            })
            .collect();
        for (gid, vmac, desired) in rearm {
            self.stats.groups_rearmed += 1;
            let spec = self.peer_specs[&desired];
            actions.push(EngineAction::FlowModify {
                vmac,
                dst_mac: spec.mac,
                port: spec.switch_port,
            });
            self.groups.get_mut(gid).unwrap().active_target = desired;
        }
        actions
    }

    /// The full announced state as `Announce` actions — what the router
    /// must be told when its session (re-)establishes (RFC 4271 §9.4 on
    /// the controller side). The router purged our routes when the
    /// session dropped, so a full replay is exactly the delta.
    pub fn export_announcements(&self) -> Vec<EngineAction> {
        self.announced
            .iter()
            .map(|(prefix, a)| EngineAction::Announce {
                prefix,
                attrs: a.attrs.clone(),
                next_hop: a.next_hop,
            })
            .collect()
    }

    /// Destroy a retired group after its grace period; returns the VMAC
    /// whose flow rule should now be deleted.
    pub fn purge_retired(&mut self, group: GroupId) -> Option<MacAddr> {
        let dead = self.groups.purge_retired(group)?;
        self.stats.groups_purged += 1;
        Some(dead.vmac)
    }

    /// Convert a batch of announce/withdraw actions into packed BGP
    /// UPDATE messages toward the router (consecutive announcements
    /// sharing attributes and next-hop ride one UPDATE, like real
    /// speakers pack NLRI).
    pub fn pack_for_router(actions: &[EngineAction]) -> Vec<UpdateMsg> {
        let mut out: Vec<UpdateMsg> = Vec::new();
        let mut current: Option<(Arc<RouteAttrs>, Ipv4Addr, Vec<Ipv4Prefix>)> = None;
        let mut withdrawals: Vec<Ipv4Prefix> = Vec::new();
        let flush_current = |current: &mut Option<(Arc<RouteAttrs>, Ipv4Addr, Vec<Ipv4Prefix>)>,
                             out: &mut Vec<UpdateMsg>| {
            if let Some((attrs, nh, nlri)) = current.take() {
                let rewritten = Arc::new(attrs.with_next_hop(nh));
                for part in UpdateMsg::announce(rewritten, nlri).split_to_fit() {
                    out.push(part);
                }
            }
        };
        for action in actions {
            match action {
                EngineAction::Announce {
                    prefix,
                    attrs,
                    next_hop,
                } => match &mut current {
                    Some((a, nh, nlri)) if Arc::ptr_eq(a, attrs) && nh == next_hop => {
                        nlri.push(*prefix);
                    }
                    _ => {
                        flush_current(&mut current, &mut out);
                        current = Some((attrs.clone(), *next_hop, vec![*prefix]));
                    }
                },
                EngineAction::Withdraw { prefix } => {
                    withdrawals.push(*prefix);
                }
                _ => {}
            }
        }
        flush_current(&mut current, &mut out);
        if !withdrawals.is_empty() {
            for part in UpdateMsg::withdraw(withdrawals).split_to_fit() {
                out.push(part);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_bgp::attrs::AsPath;

    const R2: PeerId = Ipv4Addr::new(10, 0, 0, 2);
    const R3: PeerId = Ipv4Addr::new(10, 0, 0, 3);
    const R4: PeerId = Ipv4Addr::new(10, 0, 0, 4);
    const MAC_R2: MacAddr = MacAddr([2, 0, 0, 0, 0, 2]);
    const MAC_R3: MacAddr = MacAddr([2, 0, 0, 0, 0, 3]);
    const MAC_R4: MacAddr = MacAddr([2, 0, 0, 0, 0, 4]);

    fn spec(id: PeerId, mac: MacAddr, port: u16, lp: u32) -> PeerSpec {
        PeerSpec {
            id,
            mac,
            switch_port: port,
            local_pref: lp,
            router_id: id,
        }
    }

    fn engine2() -> Engine {
        // Paper scenario: R2 preferred ($, lp 200), R3 backup ($$, lp 100).
        Engine::new(EngineConfig::new(
            "10.0.200.0/24".parse().unwrap(),
            vec![spec(R2, MAC_R2, 2, 200), spec(R3, MAC_R3, 3, 100)],
        ))
    }

    fn engine3() -> Engine {
        Engine::new(EngineConfig::new(
            "10.0.200.0/24".parse().unwrap(),
            vec![
                spec(R2, MAC_R2, 2, 200),
                spec(R3, MAC_R3, 3, 150),
                spec(R4, MAC_R4, 4, 100),
            ],
        ))
    }

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn announce(peer: PeerId, prefixes: &[&str]) -> UpdateMsg {
        let attrs = RouteAttrs::ebgp(
            AsPath::sequence(vec![65000 + peer.octets()[3] as u16, 174]),
            peer,
        )
        .shared();
        UpdateMsg::announce(attrs, prefixes.iter().map(|s| p(s)).collect())
    }

    #[test]
    fn single_candidate_announced_plain() {
        let mut e = engine2();
        let actions = e.process_update(R2, &announce(R2, &["1.0.0.0/24"]));
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            EngineAction::Announce {
                prefix, next_hop, ..
            } => {
                assert_eq!(*prefix, p("1.0.0.0/24"));
                assert_eq!(*next_hop, R2, "one candidate: real NH, no protection");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(e.groups().len(), 0);
    }

    #[test]
    fn second_candidate_creates_group_and_rewrites_nh() {
        let mut e = engine2();
        e.process_update(R2, &announce(R2, &["1.0.0.0/24"]));
        let actions = e.process_update(R3, &announce(R3, &["1.0.0.0/24"]));
        // Expect: FlowAdd for the new (R2,R3) group, then re-announce
        // with the VNH.
        let flow_adds: Vec<_> = actions
            .iter()
            .filter(|a| matches!(a, EngineAction::FlowAdd { .. }))
            .collect();
        assert_eq!(flow_adds.len(), 1);
        match flow_adds[0] {
            EngineAction::FlowAdd {
                vmac,
                dst_mac,
                port,
            } => {
                assert_eq!(*dst_mac, MAC_R2, "rule steers to the primary");
                assert_eq!(*port, 2);
                assert_eq!(vmac.virtual_index(), Some(0));
            }
            _ => unreachable!(),
        }
        let vnh = match actions
            .iter()
            .find(|a| matches!(a, EngineAction::Announce { .. }))
            .unwrap()
        {
            EngineAction::Announce { next_hop, .. } => *next_hop,
            _ => unreachable!(),
        };
        assert!(e.owns_vnh(vnh), "NH rewritten to a pool address");
        assert_eq!(e.arp_lookup(vnh), Some(MacAddr::virtual_mac(0)));
        assert_eq!(e.groups().len(), 1);
    }

    #[test]
    fn prefixes_sharing_backup_pair_share_one_group() {
        let mut e = engine2();
        let prefixes = ["1.0.0.0/24", "2.0.0.0/16", "3.3.0.0/24", "4.0.0.0/8"];
        e.process_update(R2, &announce(R2, &prefixes));
        let actions = e.process_update(R3, &announce(R3, &prefixes));
        let flow_adds = actions
            .iter()
            .filter(|a| matches!(a, EngineAction::FlowAdd { .. }))
            .count();
        assert_eq!(
            flow_adds, 1,
            "one rule for all 4 prefixes (the paper's 512k→1)"
        );
        assert_eq!(e.groups().len(), 1);
        assert_eq!(e.groups().iter().next().unwrap().prefixes, 4);
        // All announcements carry the same VNH.
        let vnhs: std::collections::HashSet<Ipv4Addr> = actions
            .iter()
            .filter_map(|a| match a {
                EngineAction::Announce { next_hop, .. } => Some(*next_hop),
                _ => None,
            })
            .collect();
        assert_eq!(vnhs.len(), 1);
    }

    #[test]
    fn no_redundant_reannouncement() {
        let mut e = engine2();
        e.process_update(R2, &announce(R2, &["1.0.0.0/24"]));
        e.process_update(R3, &announce(R3, &["1.0.0.0/24"]));
        // R3 re-announces identical content: the pair (R2,R3) is
        // unchanged, the attrs pointer differs but NH/group are the
        // same... a new Arc means we do re-announce; send the same
        // UPDATE twice instead and expect silence the second time.
        let upd = announce(R3, &["1.0.0.0/24"]);
        let first = e.process_update(R3, &upd);
        let second = e.process_update(R3, &upd);
        assert!(
            second.is_empty(),
            "identical update produces no churn, got {second:?}"
        );
        let _ = first;
    }

    #[test]
    fn failover_plan_is_constant_size_and_correct() {
        let mut e = engine2();
        let prefixes: Vec<String> = (0..100)
            .map(|i| format!("{}.{}.0.0/16", 1 + i / 250, i % 250))
            .collect();
        let refs: Vec<&str> = prefixes.iter().map(String::as_str).collect();
        e.process_update(R2, &announce(R2, &refs));
        e.process_update(R3, &announce(R3, &refs));
        assert_eq!(e.groups().len(), 1);

        let plan = e.failover_plan(R2);
        // Listing 2: number of rewrites ≤ number of peers, regardless of
        // 100 prefixes.
        assert_eq!(plan.rewrites.len(), 1);
        let rw = plan.rewrites[0];
        assert_eq!(rw.new_dst_mac, MAC_R3);
        assert_eq!(rw.out_port, 3);
        assert_eq!(rw.new_target, R3);
        assert_eq!(plan.unprotected_groups, 0);
        // The group now steers to R3.
        assert_eq!(e.groups().get(rw.group).unwrap().active_target, R3);
    }

    #[test]
    fn repair_reannounces_with_real_backup_nh_and_gcs_group() {
        let mut e = engine2();
        e.process_update(R2, &announce(R2, &["1.0.0.0/24", "2.0.0.0/24"]));
        e.process_update(R3, &announce(R3, &["1.0.0.0/24", "2.0.0.0/24"]));
        e.failover_plan(R2);
        let actions = e.peer_down_repair(R2);
        // With only R3 left, prefixes become unprotected: announced with
        // R3's real NH; the (R2,R3) group empties and its rule dies.
        let announces: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                EngineAction::Announce { next_hop, .. } => Some(*next_hop),
                _ => None,
            })
            .collect();
        assert_eq!(announces, vec![R3, R3]);
        let retire = actions
            .iter()
            .find_map(|a| match a {
                EngineAction::FlowRetire { group, vmac } => Some((*group, *vmac)),
                _ => None,
            })
            .expect("group retired, not deleted");
        assert_eq!(e.groups().len(), 0, "no live groups");
        assert_eq!(e.groups().retired_count(), 1, "rule kept during grace");
        assert_eq!(e.stats.groups_retired, 1);
        // The retired VNH still answers ARP (the router may re-query).
        assert!(e
            .arp_lookup(e.groups().get(retire.0).unwrap().vnh)
            .is_some());
        // After the grace period the host purges; only then is the rule
        // deleted.
        assert_eq!(e.purge_retired(retire.0), Some(retire.1));
        assert_eq!(e.groups().retired_count(), 0);
        assert_eq!(e.stats.groups_purged, 1);
        assert_eq!(e.purge_retired(retire.0), None, "idempotent");
    }

    #[test]
    fn three_peers_repair_regroups_to_next_pair() {
        let mut e = engine3();
        for peer in [R2, R3, R4] {
            e.process_update(peer, &announce(peer, &["1.0.0.0/24"]));
        }
        // Group is (R2,R3) — top two by local-pref.
        assert_eq!(e.groups().iter().next().unwrap().key, vec![R2, R3]);
        let plan = e.failover_plan(R2);
        assert_eq!(plan.rewrites.len(), 1);
        assert_eq!(plan.rewrites[0].new_target, R3);
        let actions = e.peer_down_repair(R2);
        // Repair creates the (R3,R4) group and re-announces with its VNH.
        assert!(actions
            .iter()
            .any(|a| matches!(a, EngineAction::FlowAdd { dst_mac, .. } if *dst_mac == MAC_R3)));
        let new_group = e.groups().by_key(&[R3, R4]).expect("regrouped");
        assert_eq!(new_group.prefixes, 1);
        assert!(e.groups().by_key(&[R2, R3]).is_none(), "old group retired");
        assert_eq!(e.groups().retired_count(), 1);
    }

    #[test]
    fn withdrawal_of_best_promotes_and_regroups() {
        let mut e = engine3();
        for peer in [R2, R3, R4] {
            e.process_update(peer, &announce(peer, &["1.0.0.0/24"]));
        }
        // R2 withdraws just this prefix (no failure): group becomes
        // (R3,R4) for it.
        let actions = e.process_update(R2, &UpdateMsg::withdraw(vec![p("1.0.0.0/24")]));
        let vnh = actions
            .iter()
            .find_map(|a| match a {
                EngineAction::Announce { next_hop, .. } => Some(*next_hop),
                _ => None,
            })
            .expect("re-announced");
        let g = e.groups().by_vnh(vnh).expect("protected by a group");
        assert_eq!(g.key, vec![R3, R4]);
    }

    #[test]
    fn full_withdrawal_sends_withdraw() {
        let mut e = engine2();
        e.process_update(R2, &announce(R2, &["1.0.0.0/24"]));
        let actions = e.process_update(R2, &UpdateMsg::withdraw(vec![p("1.0.0.0/24")]));
        assert_eq!(
            actions,
            vec![EngineAction::Withdraw {
                prefix: p("1.0.0.0/24")
            }]
        );
        assert_eq!(e.stats.withdrawals_sent, 1);
    }

    #[test]
    fn double_failure_with_depth_three() {
        let mut e = Engine::new(EngineConfig {
            protect_depth: 3,
            ..EngineConfig::new(
                "10.0.200.0/24".parse().unwrap(),
                vec![
                    spec(R2, MAC_R2, 2, 200),
                    spec(R3, MAC_R3, 3, 150),
                    spec(R4, MAC_R4, 4, 100),
                ],
            )
        });
        for peer in [R2, R3, R4] {
            e.process_update(peer, &announce(peer, &["1.0.0.0/24"]));
        }
        let live: Vec<_> = e.groups().iter().filter(|g| !g.retired).collect();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].key, vec![R2, R3, R4]);
        let plan1 = e.failover_plan(R2);
        assert_eq!(plan1.rewrites[0].new_target, R3);
        // Second failure before any repair: fall through to R4.
        let plan2 = e.failover_plan(R3);
        assert_eq!(plan2.rewrites[0].new_target, R4);
        // The retired (R2,R3) group from the early two-candidate phase
        // has no survivor — it counts as unprotected (it carries no
        // announced prefixes, only a lingering rule).
        assert_eq!(plan2.unprotected_groups, 1);
        // Third failure: nobody left.
        let plan3 = e.failover_plan(R4);
        assert!(plan3.rewrites.is_empty());
        assert_eq!(plan3.unprotected_groups, 1);
    }

    #[test]
    fn peer_up_restores_failover_eligibility() {
        let mut e = engine2();
        e.process_update(R2, &announce(R2, &["1.0.0.0/24"]));
        e.process_update(R3, &announce(R3, &["1.0.0.0/24"]));
        e.failover_plan(R3); // backup dies first
        e.peer_up(R3);
        let plan = e.failover_plan(R2);
        assert_eq!(plan.rewrites.len(), 1);
        assert_eq!(plan.rewrites[0].new_target, R3, "revived peer usable again");
    }

    #[test]
    fn restored_peer_rearms_group_and_reannouncement_restores_vnh() {
        let mut e = engine2();
        e.process_update(R2, &announce(R2, &["1.0.0.0/24"]));
        e.process_update(R3, &announce(R3, &["1.0.0.0/24"]));
        let vnh = e.groups().iter().next().unwrap().vnh;
        // Primary dies: fast path steers to R3, repair de-superchages.
        e.failover_plan(R2);
        e.peer_down_repair(R2);
        assert_eq!(e.groups().retired_count(), 1, "group retired");

        // Primary's forwarding plane returns (BFD Up): the retired
        // group's rule — still installed — is re-armed back to R2
        // before any route returns.
        let actions = e.peer_up(R2);
        assert_eq!(
            actions,
            vec![EngineAction::FlowModify {
                vmac: MacAddr::virtual_mac(0),
                dst_mac: MAC_R2,
                port: 2,
            }]
        );
        assert_eq!(e.stats.groups_rearmed, 1);
        assert!(e.peer_up(R2).is_empty(), "already alive: no-op");

        // Its re-announcement resurrects the group (same VNH, correct
        // target) and the prefix goes back behind the VNH.
        let actions = e.process_update(R2, &announce(R2, &["1.0.0.0/24"]));
        let nh = actions
            .iter()
            .find_map(|a| match a {
                EngineAction::Announce { next_hop, .. } => Some(*next_hop),
                _ => None,
            })
            .expect("re-announced toward the router");
        assert_eq!(nh, vnh, "same VNH resurrected");
        let g = e.groups().by_vnh(vnh).unwrap();
        assert!(!g.retired);
        assert_eq!(g.active_target, R2, "steering restored to the primary");
        assert_eq!(e.stats.groups_rearmed, 1, "no redundant re-arm");
    }

    #[test]
    fn pack_for_router_batches_shared_attrs() {
        let mut e = engine2();
        // 600 distinct /24s sharing one attribute set.
        let refs: Vec<String> = (0..600u32)
            .map(|i| {
                format!(
                    "{}",
                    Ipv4Prefix::new(Ipv4Addr::from(0x0100_0000u32 + (i << 8)), 24)
                )
            })
            .collect();
        let refs2: Vec<&str> = refs.iter().map(String::as_str).collect();
        let actions = e.process_update(R2, &announce(R2, &refs2));
        let msgs = Engine::pack_for_router(&actions);
        // 600 prefixes sharing one attribute set pack into few messages,
        // each under the BGP size cap.
        assert!(msgs.len() < 10, "got {}", msgs.len());
        let total: usize = msgs.iter().map(|m| m.nlri.len()).sum();
        assert_eq!(total, 600);
        for m in &msgs {
            assert!(sc_bgp::BgpMessage::Update(m.clone()).encode().len() <= 4096);
        }
    }

    #[test]
    fn state_digest_differs_on_divergence() {
        let mut a = engine2();
        let mut b = engine2();
        a.process_update(R2, &announce(R2, &["1.0.0.0/24"]));
        b.process_update(R2, &announce(R2, &["1.0.0.0/24"]));
        assert_eq!(a.state_digest(), b.state_digest());
        b.process_update(R3, &announce(R3, &["1.0.0.0/24"]));
        assert_ne!(a.state_digest(), b.state_digest());
    }
}
