//! The backup-group table.
//!
//! A backup-group is the ordered list of next-hop peers `(primary,
//! backup, ...)` shared by many prefixes (§2 of the paper: with `n`
//! peers there are at most `n!/(n-2)! = n(n-1)` groups of size 2 — for
//! 10 peers, only 90). Each group owns one (VNH, VMAC) pair and one
//! switch flow rule; the table tracks how many prefixes reference each
//! group so rules and VNHs can be garbage-collected when a group empties.

use crate::vnh::VnhAllocator;
use sc_bgp::PeerId;
// Deterministic hasher, not std's randomly seeded SipHash: controller
// state must be identical across runs (sc-check `no-default-hasher`).
use sc_net::FxHashMap;
use sc_net::MacAddr;
use std::net::Ipv4Addr;

/// Dense group identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u32);

/// One backup-group.
#[derive(Clone, Debug)]
pub struct BackupGroup {
    pub id: GroupId,
    /// Ordered next-hop peers: `key[0]` is the primary, `key[1]` the
    /// first backup, etc. (the paper uses size 2; the algorithm is
    /// general — §2).
    pub key: Vec<PeerId>,
    pub vnh: Ipv4Addr,
    pub vmac: MacAddr,
    /// Number of prefixes currently announced with this group's VNH.
    pub prefixes: u64,
    /// The peer traffic is *currently* steered to (normally `key[0]`;
    /// after a failover, the first alive entry of `key`).
    pub active_target: PeerId,
    /// True once no prefix references the group anymore. The paper does
    /// not say when the old rule may be removed; removing it while the
    /// router's slow FIB walk still tags traffic with this VMAC would
    /// blackhole exactly the traffic supercharging is meant to save, so
    /// retired groups keep their rule (and VNH) until a grace period
    /// passes — and they still take part in failover rewrites.
    pub retired: bool,
}

/// The table of all live backup-groups.
#[derive(Debug)]
pub struct GroupTable {
    by_key: FxHashMap<Vec<PeerId>, GroupId>,
    /// Retired groups indexed by key: a re-request for the same key
    /// *resurrects* the group (its VNH, VMAC and installed rule are all
    /// still valid) instead of burning a fresh VNH — table-load churn
    /// cycles through candidate pairs rapidly and would otherwise
    /// exhaust the pool.
    retired_by_key: FxHashMap<Vec<PeerId>, GroupId>,
    by_vnh: FxHashMap<Ipv4Addr, GroupId>,
    groups: Vec<Option<BackupGroup>>,
    alloc: VnhAllocator,
    free_ids: Vec<u32>,
}

impl GroupTable {
    pub fn new(alloc: VnhAllocator) -> GroupTable {
        GroupTable {
            by_key: FxHashMap::default(),
            retired_by_key: FxHashMap::default(),
            by_vnh: FxHashMap::default(),
            groups: Vec::new(),
            alloc,
            free_ids: Vec::new(),
        }
    }

    /// Number of live (non-retired) groups.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Number of retired groups awaiting purge.
    pub fn retired_count(&self) -> usize {
        self.groups.iter().flatten().filter(|g| g.retired).count()
    }

    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Look up or create the group for `key`. Returns `(group, created)`.
    ///
    /// # Panics
    /// Panics when the VNH pool is exhausted (size the pool for
    /// `n(n-1)`; see [`VnhAllocator::capacity`]).
    pub fn get_or_create(&mut self, key: &[PeerId]) -> (&BackupGroup, bool) {
        debug_assert!(
            key.len() >= 2,
            "a backup-group needs at least two next-hops"
        );
        if let Some(&id) = self.by_key.get(key) {
            return (self.groups[id.0 as usize].as_ref().unwrap(), false);
        }
        // Resurrect a retired group with this key: same VNH/VMAC, and
        // its flow rule is still installed, so `created = false`.
        if let Some(id) = self.retired_by_key.remove(key) {
            let g = self.groups[id.0 as usize].as_mut().unwrap();
            g.retired = false;
            self.by_key.insert(key.to_vec(), id);
            return (self.groups[id.0 as usize].as_ref().unwrap(), false);
        }
        let (vnh, vmac) = self
            .alloc
            .allocate()
            .expect("VNH pool exhausted: size it for n(n-1) groups");
        let id = match self.free_ids.pop() {
            Some(i) => GroupId(i),
            None => {
                self.groups.push(None);
                GroupId(self.groups.len() as u32 - 1)
            }
        };
        let group = BackupGroup {
            id,
            key: key.to_vec(),
            vnh,
            vmac,
            prefixes: 0,
            active_target: key[0],
            retired: false,
        };
        self.by_key.insert(key.to_vec(), id);
        self.by_vnh.insert(vnh, id);
        self.groups[id.0 as usize] = Some(group);
        (self.groups[id.0 as usize].as_ref().unwrap(), true)
    }

    pub fn get(&self, id: GroupId) -> Option<&BackupGroup> {
        self.groups.get(id.0 as usize)?.as_ref()
    }

    pub fn get_mut(&mut self, id: GroupId) -> Option<&mut BackupGroup> {
        self.groups.get_mut(id.0 as usize)?.as_mut()
    }

    pub fn by_key(&self, key: &[PeerId]) -> Option<&BackupGroup> {
        let id = self.by_key.get(key)?;
        self.get(*id)
    }

    /// Resolve a VNH to its group (the ARP responder's lookup).
    pub fn by_vnh(&self, vnh: Ipv4Addr) -> Option<&BackupGroup> {
        let id = self.by_vnh.get(&vnh)?;
        self.get(*id)
    }

    /// Add one prefix reference to a group.
    pub fn add_ref(&mut self, id: GroupId) {
        self.get_mut(id).expect("ref to dead group").prefixes += 1;
    }

    /// Drop one prefix reference; when the count reaches zero the group
    /// is *retired*: removed from the key index (a fresh group with the
    /// same key gets a fresh VNH), but its slot, VNH, VMAC and flow rule
    /// stay live until [`GroupTable::purge_retired`]. Returns the group's
    /// id when this drop retired it.
    pub fn drop_ref(&mut self, id: GroupId) -> Option<GroupId> {
        let group = self.get_mut(id).expect("unref of dead group");
        debug_assert!(group.prefixes > 0, "refcount underflow");
        group.prefixes -= 1;
        if group.prefixes > 0 {
            return None;
        }
        group.retired = true;
        let key = group.key.clone();
        self.by_key.remove(&key);
        self.retired_by_key.insert(key, id);
        Some(id)
    }

    /// Destroy a retired group for good: release its (VNH, VMAC) and
    /// recycle the slot. Call only after a grace period long enough for
    /// the router to have walked away from the VMAC. Returns the group
    /// so the caller can delete its switch rule.
    pub fn purge_retired(&mut self, id: GroupId) -> Option<BackupGroup> {
        match self.get(id) {
            Some(g) if g.retired => {}
            _ => return None,
        }
        let group = self.groups[id.0 as usize].take().unwrap();
        self.retired_by_key.remove(&group.key);
        self.by_vnh.remove(&group.vnh);
        self.alloc.release(group.vnh);
        self.free_ids.push(id.0);
        Some(group)
    }

    /// Iterate live groups in id order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &BackupGroup> {
        self.groups.iter().flatten()
    }

    /// The groups whose *currently active* target is `peer` — exactly
    /// the rules Listing 2 rewrites on that peer's failure.
    pub fn groups_targeting(&self, peer: PeerId) -> Vec<GroupId> {
        self.iter()
            .filter(|g| g.active_target == peer)
            .map(|g| g.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(n: u8) -> PeerId {
        Ipv4Addr::new(10, 0, 0, n)
    }

    fn table() -> GroupTable {
        GroupTable::new(VnhAllocator::new("10.0.200.0/24".parse().unwrap()))
    }

    #[test]
    fn create_and_lookup() {
        let mut t = table();
        let key = vec![peer(2), peer(3)];
        let (g, created) = t.get_or_create(&key);
        assert!(created);
        let (vnh, vmac, id) = (g.vnh, g.vmac, g.id);
        let (g2, created2) = t.get_or_create(&key);
        assert!(!created2);
        assert_eq!(g2.id, id);
        assert_eq!(t.len(), 1);
        assert_eq!(t.by_vnh(vnh).unwrap().vmac, vmac);
        assert_eq!(t.by_key(&key).unwrap().id, id);
    }

    #[test]
    fn order_matters_in_group_key() {
        let mut t = table();
        let (a, _) = t.get_or_create(&[peer(2), peer(3)]);
        let a_id = a.id;
        let (b, created) = t.get_or_create(&[peer(3), peer(2)]);
        assert!(created, "(R2,R3) and (R3,R2) are distinct groups");
        assert_ne!(a_id, b.id);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn refcount_retires_then_purge_releases() {
        let mut t = table();
        let id = t.get_or_create(&[peer(2), peer(3)]).0.id;
        let vnh = t.get(id).unwrap().vnh;
        t.add_ref(id);
        t.add_ref(id);
        assert!(t.drop_ref(id).is_none(), "still referenced");
        assert_eq!(t.drop_ref(id), Some(id), "last ref retires the group");
        // Retired: gone from the key index, but VNH/ARP still resolvable
        // and the slot is NOT recycled yet (the switch rule is live).
        assert_eq!(t.len(), 0);
        assert_eq!(t.retired_count(), 1);
        assert!(t.by_vnh(vnh).is_some(), "ARP responder can still answer");
        // Re-requesting the SAME key resurrects the retired group —
        // its VNH, VMAC and switch rule are all still valid.
        let (g2, created) = t.get_or_create(&[peer(2), peer(3)]);
        assert!(!created, "resurrection, not creation");
        assert_eq!(g2.vnh, vnh);
        assert!(!g2.retired);
        assert_eq!(t.retired_count(), 0);
        // Retire it again for the purge checks below; a *different* key
        // meanwhile gets a fresh VNH.
        t.add_ref(id);
        t.drop_ref(id);
        let (g_other, created) = t.get_or_create(&[peer(6), peer(7)]);
        assert!(created);
        assert_ne!(g_other.vnh, vnh, "different key never steals a retired VNH");
        // Purge releases everything.
        let dead = t.purge_retired(id).expect("purged");
        assert_eq!(dead.vnh, vnh);
        assert!(t.by_vnh(vnh).is_none());
        assert_eq!(t.retired_count(), 0);
        assert!(t.purge_retired(id).is_none(), "idempotent");
        // Now the VNH and slot can recycle.
        let (g3, _) = t.get_or_create(&[peer(4), peer(5)]);
        assert_eq!(g3.vnh, vnh);
    }

    #[test]
    fn retired_groups_still_targetable_for_failover() {
        // A retired group's rule still carries traffic while the router
        // walks away from the VMAC; a failure of its active target must
        // still be repaired.
        let mut t = table();
        let id = t.get_or_create(&[peer(2), peer(3)]).0.id;
        t.add_ref(id);
        t.drop_ref(id);
        assert!(t.get(id).unwrap().retired);
        assert_eq!(t.groups_targeting(peer(2)), vec![id]);
    }

    #[test]
    fn groups_targeting_selects_failover_set() {
        let mut t = table();
        let g1 = t.get_or_create(&[peer(2), peer(3)]).0.id;
        let g2 = t.get_or_create(&[peer(2), peer(4)]).0.id;
        let g3 = t.get_or_create(&[peer(3), peer(2)]).0.id;
        assert_eq!(t.groups_targeting(peer(2)), vec![g1, g2]);
        assert_eq!(t.groups_targeting(peer(3)), vec![g3]);
        // After failover, g1 targets peer 3.
        t.get_mut(g1).unwrap().active_target = peer(3);
        assert_eq!(t.groups_targeting(peer(2)), vec![g2]);
        assert_eq!(t.groups_targeting(peer(3)), vec![g1, g3], "id order");
    }

    #[test]
    fn n_peers_yield_n_times_n_minus_one_groups() {
        // §2's combinatorial claim, checked directly for n = 10.
        let mut t = table();
        let n = 10u8;
        for a in 1..=n {
            for b in 1..=n {
                if a != b {
                    t.get_or_create(&[peer(a), peer(b)]);
                }
            }
        }
        assert_eq!(t.len(), (n as usize) * (n as usize - 1));
        assert_eq!(t.len(), 90);
    }

    #[test]
    fn deeper_groups_supported() {
        let mut t = table();
        let (g, created) = t.get_or_create(&[peer(2), peer(3), peer(4)]);
        assert!(created);
        assert_eq!(g.key.len(), 3);
        let (_, created2) = t.get_or_create(&[peer(2), peer(3)]);
        assert!(created2, "size-2 and size-3 keys are distinct");
    }
}
