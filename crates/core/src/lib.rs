//! **The supercharger** — the paper's contribution.
//!
//! A *supercharged router* is a legacy router whose convergence is
//! boosted by an SDN switch and this controller. The controller
//! interposes on the router's BGP sessions and builds a hierarchical
//! FIB spanning the two devices:
//!
//! 1. For every prefix it ranks the candidate routes with the full BGP
//!    decision process and derives the **backup-group** — the ordered
//!    pair (primary next-hop, backup next-hop) — using the paper's
//!    online algorithm (Listing 1, [`engine`]).
//! 2. Each distinct backup-group gets a **virtual next-hop** (VNH) and
//!    **virtual MAC** (VMAC) from the deterministic allocator
//!    ([`vnh`], [`groups`]). Announcements to the router carry the VNH;
//!    the router resolves it via ARP and the controller answers with
//!    the VMAC ([`engine::Engine::arp_lookup`]).
//! 3. The SDN switch holds one flow rule per backup-group:
//!    `match(dst_mac = VMAC) → set_dst_mac(primary), output(primary)`.
//! 4. On BFD failure detection, only those rules are rewritten to the
//!    backup (Listing 2, [`engine::Engine::failover_plan`]) — a constant
//!    number of updates, giving the paper's prefix-independent ~150 ms
//!    convergence — and the control plane repairs at router pace behind
//!    the healed data plane.
//!
//! [`controller`] packages the engine as a simulation node (BGP speaker,
//! BFD agent, OpenFlow client, ARP responder); [`replication`] provides
//! the paper's §3 reliability argument as testable code: replicas fed
//! the same updates compute identical state, so no synchronization is
//! needed.

pub mod controller;
pub mod engine;
pub mod groups;
pub mod replication;
pub mod vnh;

pub use controller::{Controller, ControllerConfig, PeerLink, RouterLink, SwitchLink};
pub use engine::{Engine, EngineAction, EngineConfig, FailoverPlan};
pub use groups::{BackupGroup, GroupId, GroupTable};
pub use vnh::VnhAllocator;
