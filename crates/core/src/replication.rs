//! Controller replication (§3 of the paper).
//!
//! > "no state needs to be synchronized across the backups as both
//! > backups will receive exactly the same input (BGP routes) and run
//! > the exact same deterministic algorithm and, hence, eventually
//! > compute the same outcome."
//!
//! This module turns that claim into checkable code: a
//! [`ReplicaSet`] drives N engines with the same input stream and
//! asserts digest equality after every step. The integration tests (and
//! the `convergence_lab`) use it to run a primary/backup controller pair
//! and kill the primary mid-experiment.

use crate::engine::{Engine, EngineAction, EngineConfig, FailoverPlan};
use sc_bgp::msg::UpdateMsg;
use sc_bgp::PeerId;

/// N engines fed identical input.
pub struct ReplicaSet {
    replicas: Vec<Engine>,
    /// Number of steps processed (for divergence reports).
    steps: u64,
}

/// Raised when replicas disagree — which would break the paper's
/// synchronization-free failover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    pub step: u64,
    pub digests: Vec<u64>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replicas diverged at step {}: {:x?}",
            self.step, self.digests
        )
    }
}

impl std::error::Error for Divergence {}

impl ReplicaSet {
    /// Build `n` replicas from the same configuration.
    pub fn new(cfg: EngineConfig, n: usize) -> ReplicaSet {
        assert!(n >= 1);
        ReplicaSet {
            replicas: (0..n).map(|_| Engine::new(cfg.clone())).collect(),
            steps: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The primary replica (the one whose actions are applied).
    pub fn primary(&self) -> &Engine {
        &self.replicas[0]
    }

    /// Feed one update to every replica; returns the primary's actions
    /// after checking all replicas agree.
    pub fn process_update(
        &mut self,
        peer: PeerId,
        upd: &UpdateMsg,
    ) -> Result<Vec<EngineAction>, Divergence> {
        self.steps += 1;
        let mut first_actions = None;
        for (i, r) in self.replicas.iter_mut().enumerate() {
            let actions = r.process_update(peer, upd);
            if i == 0 {
                first_actions = Some(actions);
            }
        }
        self.check()?;
        Ok(first_actions.unwrap())
    }

    /// Feed a failover to every replica.
    pub fn failover(&mut self, dead: PeerId) -> Result<FailoverPlan, Divergence> {
        self.steps += 1;
        let mut first = None;
        for (i, r) in self.replicas.iter_mut().enumerate() {
            let plan = r.failover_plan(dead);
            if i == 0 {
                first = Some(plan);
            }
        }
        self.check()?;
        Ok(first.unwrap())
    }

    /// Feed the control-plane repair to every replica.
    pub fn repair(&mut self, dead: PeerId) -> Result<Vec<EngineAction>, Divergence> {
        self.steps += 1;
        let mut first = None;
        for (i, r) in self.replicas.iter_mut().enumerate() {
            let actions = r.peer_down_repair(dead);
            if i == 0 {
                first = Some(actions);
            }
        }
        self.check()?;
        Ok(first.unwrap())
    }

    /// Kill the primary: the next replica takes over. Returns false when
    /// this was the last one.
    pub fn fail_primary(&mut self) -> bool {
        self.replicas.remove(0);
        !self.replicas.is_empty()
    }

    fn check(&self) -> Result<(), Divergence> {
        let digests: Vec<u64> = self.replicas.iter().map(|r| r.state_digest()).collect();
        if digests.windows(2).all(|w| w[0] == w[1]) {
            Ok(())
        } else {
            Err(Divergence {
                step: self.steps,
                digests,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PeerSpec;
    use sc_bgp::attrs::{AsPath, RouteAttrs};
    use sc_net::MacAddr;
    use std::net::Ipv4Addr;

    const R2: PeerId = Ipv4Addr::new(10, 0, 0, 2);
    const R3: PeerId = Ipv4Addr::new(10, 0, 0, 3);

    fn cfg() -> EngineConfig {
        EngineConfig::new(
            "10.0.200.0/24".parse().unwrap(),
            vec![
                PeerSpec {
                    id: R2,
                    mac: MacAddr([2, 0, 0, 0, 0, 2]),
                    switch_port: 2,
                    local_pref: 200,
                    router_id: R2,
                },
                PeerSpec {
                    id: R3,
                    mac: MacAddr([2, 0, 0, 0, 0, 3]),
                    switch_port: 3,
                    local_pref: 100,
                    router_id: R3,
                },
            ],
        )
    }

    fn upd(peer: PeerId, n: u32, seed: u32) -> UpdateMsg {
        let attrs =
            RouteAttrs::ebgp(AsPath::sequence(vec![(65000 + seed % 7) as u16, 174]), peer).shared();
        let nlri = (0..n)
            .map(|i| {
                sc_net::Ipv4Prefix::new(
                    Ipv4Addr::from(0x0100_0000u32 + (((seed * 131 + i) % 5000) << 8)),
                    24,
                )
            })
            .collect();
        UpdateMsg::announce(attrs, nlri)
    }

    #[test]
    fn replicas_agree_over_churny_stream() {
        let mut set = ReplicaSet::new(cfg(), 3);
        for step in 0..200u32 {
            let peer = if step % 2 == 0 { R2 } else { R3 };
            set.process_update(peer, &upd(peer, 20, step))
                .expect("no divergence");
        }
        set.failover(R2).expect("no divergence");
        set.repair(R2).expect("no divergence");
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn backup_takes_over_with_identical_state() {
        let mut set = ReplicaSet::new(cfg(), 2);
        // Both peers announce the same prefix sets (seed = step/2), so
        // every prefix ends up protected by an (R2,R3) group.
        for step in 0..50u32 {
            let peer = if step % 2 == 0 { R2 } else { R3 };
            set.process_update(peer, &upd(peer, 10, step / 2)).unwrap();
        }
        let digest_before = set.primary().state_digest();
        assert!(set.fail_primary(), "backup remains");
        assert_eq!(
            set.primary().state_digest(),
            digest_before,
            "the backup is bit-identical: failover needs no sync"
        );
        // And it can drive the failover by itself.
        let plan = set.failover(R2).unwrap();
        assert!(!plan.rewrites.is_empty());
    }
}
