//! Deterministic allocation of virtual next-hops and virtual MACs.
//!
//! Determinism is load-bearing: the paper's reliability story (§3) runs
//! two controller replicas *without* state synchronization, arguing that
//! the same BGP input yields the same outcome. That only holds if the
//! (VNH, VMAC) assigned to the i-th newly seen backup-group is a pure
//! function of allocation order — which a free-list allocator over a
//! configured pool provides (and property tests verify).

use sc_net::{Ipv4Prefix, MacAddr};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Allocates (VNH, VMAC) pairs from a configured IP pool.
///
/// VNHs are drawn sequentially from inside `pool` (skipping the network
/// and broadcast addresses); VMACs use the locally-administered
/// [`MacAddr::virtual_mac`] scheme indexed by the same slot, so a pair
/// can be reconstructed from either half.
#[derive(Clone, Debug)]
pub struct VnhAllocator {
    pool: Ipv4Prefix,
    next: u32,
    /// Released slots, reused lowest-first for determinism.
    free: BTreeSet<u32>,
    allocated: u32,
}

impl VnhAllocator {
    /// Create an allocator over `pool`. The pool must leave room for at
    /// least one host (a /30 or wider).
    pub fn new(pool: Ipv4Prefix) -> VnhAllocator {
        assert!(pool.len() <= 30, "VNH pool too small: {pool}");
        VnhAllocator {
            pool,
            next: 0,
            free: BTreeSet::new(),
            allocated: 0,
        }
    }

    /// Capacity of the pool (usable host addresses).
    pub fn capacity(&self) -> u32 {
        (self.pool.size() as u32).saturating_sub(2)
    }

    /// Currently allocated count.
    pub fn in_use(&self) -> u32 {
        self.allocated
    }

    /// Allocate the next (VNH, VMAC) pair. Returns `None` when the pool
    /// is exhausted.
    pub fn allocate(&mut self) -> Option<(Ipv4Addr, MacAddr)> {
        let slot = match self.free.iter().next().copied() {
            Some(s) => {
                self.free.remove(&s);
                s
            }
            None => {
                if self.next >= self.capacity() {
                    return None;
                }
                let s = self.next;
                self.next += 1;
                s
            }
        };
        self.allocated += 1;
        Some((self.vnh_for_slot(slot), MacAddr::virtual_mac(slot)))
    }

    /// Return a pair to the pool (by its VNH).
    ///
    /// # Panics
    /// Panics if the address is not a currently allocated VNH — that is
    /// a bookkeeping bug, not a runtime condition.
    pub fn release(&mut self, vnh: Ipv4Addr) {
        let slot = self
            .slot_for_vnh(vnh)
            .expect("released address is not from this pool");
        assert!(
            slot < self.next && !self.free.contains(&slot),
            "double release of {vnh}"
        );
        self.free.insert(slot);
        self.allocated -= 1;
    }

    /// Is this address one of ours (allocated or not)?
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        self.pool.contains(ip)
    }

    fn vnh_for_slot(&self, slot: u32) -> Ipv4Addr {
        // +1 skips the network address; capacity() keeps us below the
        // broadcast address.
        Ipv4Addr::from(self.pool.raw_bits() + 1 + slot)
    }

    fn slot_for_vnh(&self, vnh: Ipv4Addr) -> Option<u32> {
        if !self.pool.contains(vnh) {
            return None;
        }
        let off = u32::from(vnh).checked_sub(self.pool.raw_bits() + 1)?;
        (off < self.capacity()).then_some(off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> VnhAllocator {
        VnhAllocator::new("10.0.200.0/24".parse().unwrap())
    }

    #[test]
    fn sequential_deterministic_allocation() {
        let mut a = pool();
        let mut b = pool();
        for _ in 0..100 {
            assert_eq!(a.allocate(), b.allocate(), "two allocators agree");
        }
        let (first_vnh, first_vmac) = {
            let mut c = pool();
            c.allocate().unwrap()
        };
        assert_eq!(first_vnh, Ipv4Addr::new(10, 0, 200, 1));
        assert_eq!(first_vmac, MacAddr::virtual_mac(0));
    }

    #[test]
    fn vnh_and_vmac_are_paired_by_slot() {
        let mut a = pool();
        for i in 0..10u32 {
            let (vnh, vmac) = a.allocate().unwrap();
            assert_eq!(vmac.virtual_index(), Some(i));
            assert_eq!(u32::from(vnh), u32::from(Ipv4Addr::new(10, 0, 200, 1)) + i);
        }
        assert_eq!(a.in_use(), 10);
    }

    #[test]
    fn release_reuses_lowest_slot_first() {
        let mut a = pool();
        let pairs: Vec<_> = (0..5).map(|_| a.allocate().unwrap()).collect();
        a.release(pairs[3].0);
        a.release(pairs[1].0);
        // Lowest released slot (1) comes back first.
        assert_eq!(a.allocate().unwrap(), pairs[1]);
        assert_eq!(a.allocate().unwrap(), pairs[3]);
        // Then fresh slots continue.
        let (vnh, _) = a.allocate().unwrap();
        assert_eq!(vnh, Ipv4Addr::new(10, 0, 200, 6));
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut a = VnhAllocator::new("10.0.200.0/29".parse().unwrap()); // 6 hosts
        for _ in 0..6 {
            assert!(a.allocate().is_some());
        }
        assert_eq!(a.allocate(), None);
        assert_eq!(a.in_use(), 6);
        assert_eq!(a.capacity(), 6);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_is_a_bug() {
        let mut a = pool();
        let (vnh, _) = a.allocate().unwrap();
        a.release(vnh);
        a.release(vnh);
    }

    #[test]
    #[should_panic(expected = "not from this pool")]
    fn foreign_release_is_a_bug() {
        let mut a = pool();
        a.release(Ipv4Addr::new(8, 8, 8, 8));
    }

    #[test]
    fn contains_checks_pool_membership() {
        let a = pool();
        assert!(a.contains(Ipv4Addr::new(10, 0, 200, 77)));
        assert!(!a.contains(Ipv4Addr::new(10, 0, 201, 1)));
    }

    #[test]
    fn paper_scale_ninety_groups_fit() {
        // §2: 10 peers → 90 backup-groups; a /24 pool fits comfortably.
        let mut a = pool();
        for _ in 0..90 {
            assert!(a.allocate().is_some());
        }
        assert_eq!(a.in_use(), 90);
    }
}
