//! Property tests on the supercharger engine — the invariants DESIGN.md
//! §9 promises:
//!
//! 1. every protected announcement's next-hop is a pool VNH that the ARP
//!    responder can resolve; every unprotected announcement carries a
//!    real peer next-hop;
//! 2. the announced prefix set always equals the RIB's prefix set;
//! 3. a failover plan is bounded by the group count (never by the prefix
//!    count) and only rewrites groups that targeted the dead peer;
//! 4. replicas fed the same arbitrary stream are digest-identical (§3);
//! 5. after failover + repair, no announcement points at the dead peer.

use proptest::collection::vec;
use proptest::prelude::*;
use sc_bgp::attrs::{AsPath, RouteAttrs};
use sc_bgp::msg::UpdateMsg;
use sc_bgp::PeerId;
use sc_net::{Ipv4Prefix, MacAddr};
use std::net::Ipv4Addr;
use supercharger::engine::{EngineAction, PeerSpec};
use supercharger::replication::ReplicaSet;
use supercharger::{Engine, EngineConfig};

const N_PEERS: usize = 4;

fn peer(i: usize) -> PeerId {
    Ipv4Addr::new(10, 0, 7, i as u8 + 1)
}

fn config() -> EngineConfig {
    EngineConfig::new(
        "10.0.200.0/24".parse().unwrap(),
        (0..N_PEERS)
            .map(|i| PeerSpec {
                id: peer(i),
                mac: MacAddr([2, 7, 0, 0, 0, i as u8 + 1]),
                switch_port: i as u16 + 1,
                local_pref: 100, // rank by attributes + tiebreaks
                router_id: peer(i),
            })
            .collect(),
    )
}

/// One scripted step: (peer index, announce?, prefix slot, path length).
type Step = (usize, bool, u8, u8);

fn prefix_for(slot: u8) -> Ipv4Prefix {
    Ipv4Prefix::new(Ipv4Addr::from(0x0100_0000u32 + ((slot as u32) << 8)), 24)
}

fn step_update(step: Step) -> (PeerId, UpdateMsg) {
    let (pi, announce, slot, path_len) = step;
    let pfx = prefix_for(slot);
    let who = peer(pi % N_PEERS);
    let upd = if announce {
        let path: Vec<u16> = (0..(path_len % 5) as u16 + 1).map(|h| 64000 + h).collect();
        UpdateMsg::announce(
            RouteAttrs::ebgp(AsPath::sequence(path), who).shared(),
            vec![pfx],
        )
    } else {
        UpdateMsg::withdraw(vec![pfx])
    };
    (who, upd)
}

/// Run a stream through a fresh engine, checking per-step invariants;
/// returns the engine.
fn run_stream(steps: &[Step]) -> Engine {
    let mut e = Engine::new(config());
    for &step in steps {
        let (who, upd) = step_update(step);
        let actions = e.process_update(who, &upd);
        for a in &actions {
            if let EngineAction::Announce {
                prefix, next_hop, ..
            } = a
            {
                let cands = e.rib().candidates(*prefix);
                assert!(!cands.is_empty(), "announced a prefix with no candidates");
                if cands.len() >= 2 {
                    assert!(
                        e.owns_vnh(*next_hop),
                        "multi-candidate prefix must be announced with a VNH, got {next_hop}"
                    );
                    assert!(
                        e.arp_lookup(*next_hop).is_some(),
                        "announced VNH must resolve via ARP"
                    );
                } else {
                    assert_eq!(
                        *next_hop, cands[0].from.peer,
                        "single-candidate prefix announced with its real next-hop"
                    );
                }
            }
        }
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants 1 & 2 over arbitrary announce/withdraw streams.
    #[test]
    fn announcements_track_rib(steps in vec((0..N_PEERS, any::<bool>(), 0u8..24, any::<u8>()), 1..120)) {
        let e = run_stream(&steps);
        // The set of prefixes with candidates == the set the paper's
        // router would have received (engine announces exactly those).
        let rib_prefixes: Vec<Ipv4Prefix> =
            e.rib().iter().map(|(p, _)| p).collect();
        // Rebuild announced set from engine state: every rib prefix must
        // have a consistent announcement (checked in run_stream); here
        // check counts via stats: announcements - withdrawals == live set.
        prop_assert_eq!(
            e.stats.announcements >= rib_prefixes.len() as u64,
            true
        );
        // Group refcounts sum == number of protected prefixes.
        let protected = e
            .rib()
            .iter()
            .filter(|(_, cands)| cands.len() >= 2)
            .count() as u64;
        let refs: u64 = e.groups().iter().filter(|g| !g.retired).map(|g| g.prefixes).sum();
        prop_assert_eq!(refs, protected, "group refcounts == protected prefixes");
    }

    /// Invariant 3: failover plans are group-bounded and correct.
    #[test]
    fn failover_is_group_bounded(
        steps in vec((0..N_PEERS, any::<bool>(), 0u8..24, any::<u8>()), 1..120),
        victim in 0..N_PEERS,
    ) {
        let mut e = run_stream(&steps);
        let groups_before: Vec<_> = e
            .groups()
            .iter()
            .map(|g| (g.id, g.active_target, g.vmac))
            .collect();
        let targeting: Vec<_> = groups_before
            .iter()
            .filter(|(_, t, _)| *t == peer(victim))
            .collect();
        let plan = e.failover_plan(peer(victim));
        // Bounded by groups targeting the victim, never by prefixes.
        prop_assert_eq!(plan.rewrites.len() + plan.unprotected_groups, targeting.len());
        for rw in &plan.rewrites {
            prop_assert_ne!(rw.new_target, peer(victim), "never redirect to the dead peer");
            // The rewrite names a real group's VMAC.
            prop_assert!(groups_before.iter().any(|(id, _, vmac)| *id == rw.group && *vmac == rw.vmac));
        }
    }

    /// Invariant 4 (§3 of the paper): replicas agree after any stream,
    /// including failovers and repairs interleaved.
    #[test]
    fn replicas_never_diverge(
        steps in vec((0..N_PEERS, any::<bool>(), 0u8..24, any::<u8>()), 1..80),
        fail_at in 0usize..80,
        victim in 0..N_PEERS,
    ) {
        let mut set = ReplicaSet::new(config(), 3);
        for (i, &step) in steps.iter().enumerate() {
            if i == fail_at {
                set.failover(peer(victim)).expect("agree on failover");
                set.repair(peer(victim)).expect("agree on repair");
            }
            let (who, upd) = step_update(step);
            if who == peer(victim) && fail_at <= i {
                continue; // a dead peer sends nothing
            }
            set.process_update(who, &upd).expect("agree on update");
        }
    }

    /// Invariant 5: after failover + repair, no announcement and no
    /// active flow target references the dead peer.
    #[test]
    fn repair_eliminates_dead_peer(
        steps in vec((0..N_PEERS, any::<bool>(), 0u8..24, any::<u8>()), 1..120),
        victim in 0..N_PEERS,
    ) {
        let mut e = run_stream(&steps);
        e.failover_plan(peer(victim));
        let actions = e.peer_down_repair(peer(victim));
        for a in &actions {
            if let EngineAction::Announce { next_hop, .. } = a {
                prop_assert_ne!(*next_hop, peer(victim));
            }
        }
        for g in e.groups().iter() {
            prop_assert_ne!(g.active_target, peer(victim),
                "no group may still steer into the dead peer");
        }
        // The RIB holds nothing from the victim.
        for (_, cands) in e.rib().iter() {
            prop_assert!(cands.iter().all(|r| r.from.peer != peer(victim)));
        }
    }
}
