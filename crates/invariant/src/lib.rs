//! **sc-invariant** — the continuous convergence-invariant engine.
//!
//! Convergence *time* says when the network went quiet; it does not say
//! what broke while it was loud. Following snowcap's `HardPolicy` shape
//! (invariants checked *during* reconfiguration, not just at
//! quiescence), this crate walks the installed FIBs of every router and
//! switch at a fixed cadence inside each measurement window and
//! classifies each (src, prefix) pair as OK, **blackhole** (the probe
//! dies at a live node: no route, unresolved next hop, dark egress),
//! **loop** (the forwarding graph cycles), or **transit violation**
//! (the probe delivers but crosses a node the scenario policy forbids
//! — e.g. a provider that has withdrawn the prefix). Per window and per
//! class it accumulates violation *durations* (first-seen → last-seen,
//! kernel time), which the `sc-scenarios` suite reports as first-class
//! columns next to convergence time.
//!
//! Three layers:
//!
//! * [`walk`] — the pure core: a [`walk::ForwardingView`] trait (one
//!   hop in, next hops out) and a tri-color DFS that traces every
//!   branch, detects cycles, and always terminates — property-testable
//!   without a simulator.
//! * [`view`] — [`view::WorldView`], the view backed by a live
//!   [`sc_sim::World`]: replays the router's installed-FIB decision and
//!   the switch's flow-table match (with the L2-learn miss fallback of
//!   the scenario switches) strictly read-only, so sampling never
//!   perturbs the event stream.
//! * [`record`] — [`record::TransitPolicy`] (time-windowed forbidden
//!   transit rules derived from the event script) and
//!   [`record::InvariantRecorder`], the per-window first/last-seen
//!   duration accounting.
//!
//! Samples are pre-scheduled kernel events
//! (`sc_lab::harness::schedule_window_samples`), so an invariant-
//! checked trial is exactly as deterministic and byte-reproducible as
//! an unchecked one — at the cost of extra (deterministic) kernel
//! events, which is why perf-gated benches keep the engine off.

pub mod record;
pub mod view;
pub mod walk;

pub use record::{
    classify, InvariantRecorder, InvariantReport, TransitPolicy, TransitRule, ViolationClass,
    WindowViolations, CLASSES,
};
pub use view::{sample_flags, NetModel, ProbeSpec, WorldView};
pub use walk::{walk, DropReason, ForwardingView, Hop, Step, WalkReport, MAX_WALK_STATES};
