//! Violation classes, the scenario transit policy, and per-window
//! duration accounting.
//!
//! Durations are *first-seen → last-seen* in kernel time, per class,
//! per measurement window: the engine cannot see between samples, so a
//! violation observed at exactly one sample reports a zero duration and
//! the resolution of every figure is the sampling cadence.

use crate::walk::WalkReport;
use sc_net::{Ipv4Prefix, SimDuration, SimTime};
use sc_sim::NodeId;
use std::net::Ipv4Addr;

/// What went wrong for one (src, prefix) pair at one sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationClass {
    /// Probe dies at a live node: no route, no resolved next hop, or a
    /// dark egress.
    Blackhole = 0,
    /// The forwarding graph cycles (or explodes past the walk cap).
    Loop = 1,
    /// The probe delivers, but its path crosses a node the scenario
    /// policy forbids for that destination at that time.
    Transit = 2,
}

/// All classes, in column order.
pub const CLASSES: [ViolationClass; 3] = [
    ViolationClass::Blackhole,
    ViolationClass::Loop,
    ViolationClass::Transit,
];

/// Classify one walk: delivery beats everything except a transit ban;
/// an undelivered walk is a loop if any branch cycled, else a
/// blackhole.
pub fn classify(report: &WalkReport, transit_forbidden: bool) -> Option<ViolationClass> {
    if report.delivered {
        transit_forbidden.then_some(ViolationClass::Transit)
    } else if report.looped || report.truncated {
        Some(ViolationClass::Loop)
    } else {
        Some(ViolationClass::Blackhole)
    }
}

/// One forbidden-transit rule: between `from` and `until`, traffic for
/// any of `prefixes` must not cross `node`. The suite runner derives
/// these from the event script — a provider that withdrew a prefix has
/// disclaimed transit for it until it re-announces.
#[derive(Clone, Debug)]
pub struct TransitRule {
    pub node: NodeId,
    pub prefixes: Vec<Ipv4Prefix>,
    pub from: SimTime,
    pub until: SimTime,
}

/// The scenario's transit policy: a set of time-windowed bans.
#[derive(Clone, Debug, Default)]
pub struct TransitPolicy {
    pub rules: Vec<TransitRule>,
}

impl TransitPolicy {
    /// Does a walk visiting `visited` for destination `dst` at `now`
    /// cross any banned node?
    pub fn forbids(&self, visited: &[NodeId], dst: Ipv4Addr, now: SimTime) -> bool {
        self.rules.iter().any(|r| {
            now >= r.from
                && now < r.until
                && visited.contains(&r.node)
                && r.prefixes.iter().any(|p| p.contains(dst))
        })
    }
}

/// Violation accounting for one measurement window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowViolations {
    /// Samples taken inside the window.
    pub samples: u64,
    /// Samples at which ≥1 flow was in each class.
    pub hits: [u64; 3],
    /// First sample time each class was seen.
    pub first: [Option<SimTime>; 3],
    /// Last sample time each class was seen.
    pub last: [Option<SimTime>; 3],
}

impl WindowViolations {
    /// First-seen → last-seen span of `class` within the window; zero
    /// when the class was seen at most once (resolution = cadence).
    pub fn duration(&self, class: ViolationClass) -> SimDuration {
        match (self.first[class as usize], self.last[class as usize]) {
            (Some(a), Some(b)) => b - a,
            _ => SimDuration::ZERO,
        }
    }
}

/// Accumulates per-window violation observations as the pre-scheduled
/// samples fire.
#[derive(Clone, Debug, Default)]
pub struct InvariantRecorder {
    windows: Vec<WindowViolations>,
}

impl InvariantRecorder {
    /// Pre-size to the measurement plan's window count so windows that
    /// never see a sample still report (empty, all-zero).
    pub fn new(windows: usize) -> InvariantRecorder {
        InvariantRecorder {
            windows: vec![WindowViolations::default(); windows],
        }
    }

    /// Record one sample of window `window` at kernel time `now`:
    /// `flags[c]` says whether any flow was in class `c`.
    pub fn record(&mut self, window: usize, now: SimTime, flags: [bool; 3]) {
        if window >= self.windows.len() {
            self.windows.resize(window + 1, WindowViolations::default());
        }
        let w = &mut self.windows[window];
        w.samples += 1;
        for (c, &hit) in flags.iter().enumerate() {
            if hit {
                w.hits[c] += 1;
                w.first[c].get_or_insert(now);
                w.last[c] = Some(now);
            }
        }
    }

    /// Finalize into a report.
    pub fn report(self) -> InvariantReport {
        InvariantReport {
            windows: self.windows,
        }
    }
}

/// The finished per-trial invariant measurements: one entry per
/// measurement window, in window order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InvariantReport {
    pub windows: Vec<WindowViolations>,
}

impl InvariantReport {
    /// Pooled violation duration: the sum of per-window spans.
    pub fn total(&self, class: ViolationClass) -> SimDuration {
        self.windows
            .iter()
            .fold(SimDuration::ZERO, |acc, w| acc + w.duration(class))
    }

    /// Total samples across all windows.
    pub fn samples(&self) -> u64 {
        self.windows.iter().map(|w| w.samples).sum()
    }

    /// Total samples-in-violation across all windows.
    pub fn hits(&self, class: ViolationClass) -> u64 {
        self.windows.iter().map(|w| w.hits[class as usize]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn empty_window_reports_zero() {
        let rec = InvariantRecorder::new(2);
        let rep = rec.report();
        assert_eq!(rep.windows.len(), 2);
        for c in CLASSES {
            assert_eq!(rep.total(c), SimDuration::ZERO);
            assert_eq!(rep.hits(c), 0);
        }
        assert_eq!(rep.samples(), 0);
    }

    #[test]
    fn single_hit_has_zero_span_but_counts() {
        // A violation seen at exactly one sample: the first-seen →
        // last-seen span collapses to zero (the cadence bounds what the
        // engine can claim), but the hit is still visible.
        let mut rec = InvariantRecorder::new(1);
        rec.record(0, ms(10), [true, false, false]);
        rec.record(0, ms(20), [false, false, false]);
        let rep = rec.report();
        assert_eq!(rep.total(ViolationClass::Blackhole), SimDuration::ZERO);
        assert_eq!(rep.hits(ViolationClass::Blackhole), 1);
        assert_eq!(rep.samples(), 2);
    }

    #[test]
    fn span_is_first_to_last_seen() {
        let mut rec = InvariantRecorder::new(1);
        rec.record(0, ms(10), [false, false, false]);
        rec.record(0, ms(20), [true, false, false]);
        rec.record(0, ms(30), [true, false, true]);
        rec.record(0, ms(40), [true, false, false]);
        rec.record(0, ms(50), [false, false, false]);
        let rep = rec.report();
        assert_eq!(
            rep.total(ViolationClass::Blackhole),
            SimDuration::from_millis(20)
        );
        assert_eq!(rep.total(ViolationClass::Transit), SimDuration::ZERO);
        assert_eq!(rep.hits(ViolationClass::Transit), 1);
    }

    #[test]
    fn truncated_window_spans_to_its_last_sample() {
        // A violation still live when the window closes: the span runs
        // to the final sample — the window truncates the measurement
        // exactly like the gap harvester truncates an open gap.
        let mut rec = InvariantRecorder::new(2);
        rec.record(0, ms(10), [true, false, false]);
        rec.record(0, ms(90), [true, false, false]);
        // Next window starts its own accounting.
        rec.record(1, ms(100), [true, false, false]);
        rec.record(1, ms(110), [false, false, false]);
        let rep = rec.report();
        assert_eq!(
            rep.windows[0].duration(ViolationClass::Blackhole),
            SimDuration::from_millis(80)
        );
        assert_eq!(
            rep.windows[1].duration(ViolationClass::Blackhole),
            SimDuration::ZERO
        );
        assert_eq!(
            rep.total(ViolationClass::Blackhole),
            SimDuration::from_millis(80)
        );
    }

    #[test]
    fn out_of_range_window_extends() {
        let mut rec = InvariantRecorder::new(1);
        rec.record(3, ms(5), [false, true, false]);
        let rep = rec.report();
        assert_eq!(rep.windows.len(), 4);
        assert_eq!(rep.hits(ViolationClass::Loop), 1);
    }

    #[test]
    fn transit_policy_is_time_and_prefix_windowed() {
        let p: Ipv4Prefix = "20.0.0.0/16".parse().unwrap();
        let policy = TransitPolicy {
            rules: vec![TransitRule {
                node: NodeId(7),
                prefixes: vec![p],
                from: ms(100),
                until: ms(200),
            }],
        };
        let in_prefix: Ipv4Addr = "20.0.1.1".parse().unwrap();
        let outside: Ipv4Addr = "30.0.1.1".parse().unwrap();
        let path = [NodeId(1), NodeId(7)];
        assert!(policy.forbids(&path, in_prefix, ms(150)));
        assert!(!policy.forbids(&path, in_prefix, ms(50)), "before the ban");
        assert!(!policy.forbids(&path, in_prefix, ms(200)), "ban has lifted");
        assert!(!policy.forbids(&path, outside, ms(150)), "other prefixes");
        assert!(
            !policy.forbids(&[NodeId(1)], in_prefix, ms(150)),
            "path avoids the node"
        );
    }

    #[test]
    fn classification_precedence() {
        use crate::walk::WalkReport;
        let delivered = WalkReport {
            delivered: true,
            ..WalkReport::default()
        };
        assert_eq!(classify(&delivered, false), None);
        assert_eq!(classify(&delivered, true), Some(ViolationClass::Transit));
        let looped = WalkReport {
            looped: true,
            ..WalkReport::default()
        };
        assert_eq!(classify(&looped, false), Some(ViolationClass::Loop));
        let dead = WalkReport::default();
        assert_eq!(classify(&dead, false), Some(ViolationClass::Blackhole));
    }
}
