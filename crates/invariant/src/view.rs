//! [`WorldView`]: a [`ForwardingView`] backed by a live
//! [`sc_sim::World`].
//!
//! The view replays, read-only, the exact forwarding decision each node
//! type makes for a probe frame — the router's installed-FIB LPM +
//! interface scan + ARP resolution ([`sc_router::LegacyRouter`]'s data
//! plane), and the switch's flow-table match with the L2-learn
//! table-miss fallback ([`sc_openflow::OfSwitch`]). Nothing is sent,
//! learned, or counted: sampling the view any number of times leaves
//! the event stream byte-identical.

use crate::record::{classify, TransitPolicy};
use crate::walk::{walk, DropReason, ForwardingView, Hop, Step, MAX_WALK_STATES};
use sc_net::wire::ethernet::EtherType;
use sc_net::MacAddr;
use sc_openflow::{Action, FlowKey, OfSwitch};
use sc_router::LegacyRouter;
use sc_sim::{NodeId, PortId, World};
use std::net::Ipv4Addr;

/// Which node plays which role — the only topology knowledge the
/// engine needs beyond the world's own wiring.
#[derive(Clone, Debug)]
pub struct NetModel {
    /// Every [`LegacyRouter`] (edge router, providers, forwarders).
    pub routers: Vec<NodeId>,
    /// Every [`OfSwitch`].
    pub switches: Vec<NodeId>,
    /// The probe origin (walks start at its port 0 uplink).
    pub source: NodeId,
    /// The destination: a walk arriving here has delivered.
    pub sink: NodeId,
}

/// The constant header fields of the probe traffic whose forwarding
/// the walk predicts (flow rules may match on any of them).
#[derive(Clone, Copy, Debug)]
pub struct ProbeSpec {
    pub src_mac: MacAddr,
    pub src_ip: Ipv4Addr,
    /// The first-hop gateway the source addresses frames to.
    pub gateway_mac: MacAddr,
    pub udp_src: u16,
    pub udp_dst: u16,
}

/// A read-only forwarding view over a world.
pub struct WorldView<'a> {
    world: &'a World,
    model: &'a NetModel,
    probe: ProbeSpec,
}

impl<'a> WorldView<'a> {
    pub fn new(world: &'a World, model: &'a NetModel, probe: ProbeSpec) -> WorldView<'a> {
        WorldView {
            world,
            model,
            probe,
        }
    }

    /// Cross the link out of `(node, port)`: `None` when the egress is
    /// dark (no link, link down, or dead peer).
    fn cross(&self, node: NodeId, port: PortId, src_mac: MacAddr, dst_mac: MacAddr) -> Option<Hop> {
        let link = self.world.link_at(node, port)?;
        if !self.world.is_link_up(link) {
            return None;
        }
        let peer = self.world.peer_of(node, port)?;
        if !self.world.is_alive(peer.node) {
            return None;
        }
        Some(Hop {
            node: peer.node,
            in_port: peer.port,
            src_mac,
            dst_mac,
        })
    }

    /// The probe's first hop: the source transmits on port 0, addressed
    /// to its gateway. `None` when the source uplink itself is dark.
    pub fn start(&self) -> Option<Hop> {
        self.cross(
            self.model.source,
            PortId(0),
            self.probe.src_mac,
            self.probe.gateway_mac,
        )
    }

    /// Walk one flow destination from the source.
    pub fn walk_flow(&self, dst: Ipv4Addr) -> crate::walk::WalkReport {
        match self.start() {
            Some(start) => walk(self, start, dst, MAX_WALK_STATES),
            None => crate::walk::WalkReport::default(), // undelivered
        }
    }

    fn router_step(&self, hop: &Hop, dst: Ipv4Addr) -> Step {
        let r = self.world.node::<LegacyRouter>(hop.node);
        // NIC filter: the arrival interface only accepts frames
        // addressed to it.
        let Some(iface_in) = r.interfaces().iter().find(|i| i.port == hop.in_port) else {
            return Step::Drop(DropReason::NicFilter);
        };
        if hop.dst_mac != iface_in.mac && !hop.dst_mac.is_broadcast() {
            return Step::Drop(DropReason::NicFilter);
        }
        // The installed-FIB forwarding decision, exactly as
        // `forward_ipv4` takes it (the flow cache is a pure memo of the
        // same decision, so skipping it changes nothing).
        let Some((_, entry)) = r.fib().lookup(dst) else {
            return Step::Drop(DropReason::NoRoute);
        };
        let nh = if entry.next_hop == Ipv4Addr::UNSPECIFIED {
            dst
        } else {
            entry.next_hop
        };
        let Some(idx) = r.interfaces().iter().position(|i| i.subnet.contains(nh)) else {
            return Step::Drop(DropReason::NoInterface);
        };
        let out = r.interfaces()[idx];
        let Some(mac) = r.arp().lookup(nh, self.world.now()) else {
            return Step::Drop(DropReason::ArpUnresolved);
        };
        match self.cross(hop.node, out.port, out.mac, mac) {
            Some(next) => Step::Forward(vec![next]),
            None => Step::Forward(Vec::new()),
        }
    }

    fn switch_step(&self, hop: &Hop, dst: Ipv4Addr) -> Step {
        let sw = self.world.node::<OfSwitch>(hop.node);
        let key = FlowKey {
            in_port: hop.in_port.0 as u16,
            eth_src: hop.src_mac,
            eth_dst: hop.dst_mac,
            eth_type: EtherType::Ipv4.to_u16(),
            ip_src: Some(self.probe.src_ip),
            ip_dst: Some(dst),
            udp_src: Some(self.probe.udp_src),
            udp_dst: Some(self.probe.udp_dst),
        };
        // (out port, src mac, dst mac) egress list.
        let mut egress: Vec<(PortId, MacAddr, MacAddr)> = Vec::new();
        if let Some(entry) = sw.table().peek(&key) {
            let (mut smac, mut dmac) = (hop.src_mac, hop.dst_mac);
            for action in &entry.actions {
                match action {
                    Action::SetDstMac(m) => dmac = *m,
                    Action::SetSrcMac(m) => smac = *m,
                    Action::Output(p) => egress.push((PortId(*p as usize), smac, dmac)),
                    Action::Flood => {
                        for &p in sw.data_ports() {
                            if p != hop.in_port {
                                egress.push((p, smac, dmac));
                            }
                        }
                    }
                    Action::ToController => {}
                    Action::Drop => break, // stops the action list
                }
            }
            if egress.is_empty() {
                return Step::Drop(DropReason::Dropped);
            }
        } else if hop.dst_mac.is_unicast() && sw.l2_table().contains_key(&hop.dst_mac) {
            // L2-learn table miss with a known destination.
            let out = sw.l2_table()[&hop.dst_mac];
            if out == hop.in_port {
                return Step::Drop(DropReason::Dropped);
            }
            egress.push((out, hop.src_mac, hop.dst_mac));
        } else {
            // Unknown destination: flood the data ports.
            for &p in sw.data_ports() {
                if p != hop.in_port {
                    egress.push((p, hop.src_mac, hop.dst_mac));
                }
            }
        }
        Step::Forward(
            egress
                .into_iter()
                .filter_map(|(p, s, d)| self.cross(hop.node, p, s, d))
                .collect(),
        )
    }
}

impl ForwardingView for WorldView<'_> {
    fn step(&self, hop: &Hop, dst: Ipv4Addr) -> Step {
        if hop.node == self.model.sink {
            return Step::Deliver;
        }
        if self.model.routers.contains(&hop.node) {
            return self.router_step(hop, dst);
        }
        if self.model.switches.contains(&hop.node) {
            return self.switch_step(hop, dst);
        }
        // Controller, source, or anything else: not a forwarder.
        Step::Drop(DropReason::NotForwarding)
    }
}

/// One engine sample: walk every flow, classify against the policy,
/// and return per-class "≥1 flow in violation" flags in
/// [`crate::record::CLASSES`] order — the shape
/// [`crate::record::InvariantRecorder::record`] consumes.
pub fn sample_flags(
    world: &World,
    model: &NetModel,
    probe: ProbeSpec,
    policy: &TransitPolicy,
    flows: &[Ipv4Addr],
) -> [bool; 3] {
    let view = WorldView::new(world, model, probe);
    let now = world.now();
    let mut flags = [false; 3];
    for &dst in flows {
        let report = view.walk_flow(dst);
        let forbidden = policy.forbids(&report.visited, dst, now);
        if let Some(class) = classify(&report, forbidden) {
            flags[class as usize] = true;
        }
    }
    flags
}
