//! The pure walk core: given an abstract forwarding function (one hop
//! in, next hops out), trace every path a probe frame can take and
//! report whether it delivers, dead-ends, or cycles.
//!
//! The walker is deliberately independent of the simulator: a
//! [`ForwardingView`] can be backed by a live [`sc_sim::World`] (see
//! [`crate::view::WorldView`]) or by a plain map in tests, so loop
//! detection and classification are property-testable as pure functions
//! of the FIB state.

use sc_net::MacAddr;
// Deterministic hasher, not std's randomly seeded SipHash: the walker
// runs inside byte-reproducible trials (sc-check `no-default-hasher`).
use sc_net::FxHashMap;
use sc_sim::{NodeId, PortId};
use std::net::Ipv4Addr;

/// One L2 arrival: a probe for `dst` lands on `node` via `in_port`,
/// addressed `src_mac` → `dst_mac`. This quadruple is the walk state —
/// everything a deterministic forwarding pipeline may branch on for a
/// fixed probe header (the IP/UDP fields never change in flight).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Hop {
    pub node: NodeId,
    pub in_port: PortId,
    pub src_mac: MacAddr,
    pub dst_mac: MacAddr,
}

/// Why a walk branch died at a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// FIB longest-prefix match came up empty.
    NoRoute,
    /// A next-hop with no interface whose subnet covers it.
    NoInterface,
    /// The next-hop's L2 address is not resolved (the live router would
    /// park the frame — a blackhole for as long as ARP dangles).
    ArpUnresolved,
    /// The NIC filter rejected the frame (wrong destination MAC).
    NicFilter,
    /// An explicit drop action, or an L2 table pointing back out the
    /// ingress port.
    Dropped,
    /// The frame reached a node that does not forward (controller,
    /// traffic source).
    NotForwarding,
}

/// What one node does with an arriving probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// The destination: the walk delivered.
    Deliver,
    /// The frame dies here.
    Drop(DropReason),
    /// The frame continues — possibly to several next hops (flood,
    /// multi-output rules). Branches whose egress link is down or whose
    /// peer is dead are already filtered out; an empty list means every
    /// egress was dark.
    Forward(Vec<Hop>),
}

/// A forwarding function the walker can trace.
pub trait ForwardingView {
    /// Resolve one hop for a probe addressed to `dst`.
    fn step(&self, hop: &Hop, dst: Ipv4Addr) -> Step;
}

/// The outcome of tracing every branch from one start hop.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalkReport {
    /// Some branch reached the destination.
    pub delivered: bool,
    /// Some branch re-entered a hop state already on its own path — a
    /// forwarding cycle.
    pub looped: bool,
    /// The walk hit the state-expansion cap before finishing (treated
    /// as a loop by classification — only unbounded replication gets
    /// there).
    pub truncated: bool,
    /// Every node some branch traversed, in first-visit order.
    pub visited: Vec<NodeId>,
    /// Where branches died, with the reason.
    pub drops: Vec<(NodeId, DropReason)>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Color {
    /// On the current DFS path.
    Grey,
    /// Fully explored.
    Black,
}

enum Task {
    Enter(Hop),
    Exit(Hop),
}

/// Trace every branch from `start`. Iterative depth-first search with
/// tri-color marking: a grey re-entry is a genuine cycle (the state is
/// on the current path), a black re-entry is a join (flood diamonds)
/// and is not re-expanded, so the walk is linear in distinct hop
/// states and always terminates. `max_states` bounds expansions as a
/// final backstop.
pub fn walk<V: ForwardingView + ?Sized>(
    view: &V,
    start: Hop,
    dst: Ipv4Addr,
    max_states: usize,
) -> WalkReport {
    let mut report = WalkReport::default();
    let mut color: FxHashMap<Hop, Color> = FxHashMap::default();
    let mut stack = vec![Task::Enter(start)];
    let mut expanded = 0usize;
    while let Some(task) = stack.pop() {
        match task {
            Task::Enter(h) => match color.get(&h) {
                Some(Color::Grey) => report.looped = true,
                Some(Color::Black) => {}
                None => {
                    if expanded >= max_states {
                        report.truncated = true;
                        continue;
                    }
                    expanded += 1;
                    color.insert(h, Color::Grey);
                    stack.push(Task::Exit(h));
                    if !report.visited.contains(&h.node) {
                        report.visited.push(h.node);
                    }
                    match view.step(&h, dst) {
                        Step::Deliver => report.delivered = true,
                        Step::Drop(r) => report.drops.push((h.node, r)),
                        Step::Forward(next) => {
                            for n in next {
                                stack.push(Task::Enter(n));
                            }
                        }
                    }
                }
            },
            Task::Exit(h) => {
                color.insert(h, Color::Black);
            }
        }
    }
    report
}

/// Default state-expansion cap: far beyond any realistic topology, but
/// finite, so a pathological view cannot hang a sample.
pub const MAX_WALK_STATES: usize = 65_536;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A map-backed view for tests: hop → step.
    pub struct MapView(pub HashMap<Hop, Step>);

    impl ForwardingView for MapView {
        fn step(&self, hop: &Hop, _dst: Ipv4Addr) -> Step {
            self.0
                .get(hop)
                .cloned()
                .unwrap_or(Step::Drop(DropReason::NotForwarding))
        }
    }

    fn hop(node: usize) -> Hop {
        Hop {
            node: NodeId(node),
            in_port: PortId(0),
            src_mac: MacAddr([0; 6]),
            dst_mac: MacAddr([1; 6]),
        }
    }

    const DST: Ipv4Addr = Ipv4Addr::new(10, 9, 9, 9);

    #[test]
    fn linear_chain_delivers() {
        let mut m = HashMap::new();
        m.insert(hop(0), Step::Forward(vec![hop(1)]));
        m.insert(hop(1), Step::Forward(vec![hop(2)]));
        m.insert(hop(2), Step::Deliver);
        let r = walk(&MapView(m), hop(0), DST, MAX_WALK_STATES);
        assert!(r.delivered && !r.looped && !r.truncated);
        assert_eq!(r.visited, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn two_node_cycle_is_a_loop() {
        let mut m = HashMap::new();
        m.insert(hop(0), Step::Forward(vec![hop(1)]));
        m.insert(hop(1), Step::Forward(vec![hop(0)]));
        let r = walk(&MapView(m), hop(0), DST, MAX_WALK_STATES);
        assert!(r.looped && !r.delivered);
    }

    #[test]
    fn diamond_join_is_not_a_loop() {
        // 0 → {1, 2} → 3 → deliver: node 3 is entered twice via
        // different paths, which must read as a join, not a cycle.
        let mut m = HashMap::new();
        let (h1, h2) = (hop(1), hop(2));
        m.insert(hop(0), Step::Forward(vec![h1, h2]));
        m.insert(h1, Step::Forward(vec![hop(3)]));
        m.insert(h2, Step::Forward(vec![hop(3)]));
        m.insert(hop(3), Step::Deliver);
        let r = walk(&MapView(m), hop(0), DST, MAX_WALK_STATES);
        assert!(r.delivered && !r.looped);
    }

    #[test]
    fn one_live_flood_branch_suffices() {
        let mut m = HashMap::new();
        m.insert(hop(0), Step::Forward(vec![hop(1), hop(2)]));
        m.insert(hop(1), Step::Drop(DropReason::NoRoute));
        m.insert(hop(2), Step::Deliver);
        let r = walk(&MapView(m), hop(0), DST, MAX_WALK_STATES);
        assert!(r.delivered);
        assert_eq!(r.drops, vec![(NodeId(1), DropReason::NoRoute)]);
    }

    #[test]
    fn state_cap_truncates_instead_of_hanging() {
        // A self-amplifying view (every hop forwards to two
        // never-seen-before states) can only be stopped by the cap.
        struct Amplifier(std::cell::Cell<usize>);
        impl ForwardingView for Amplifier {
            fn step(&self, hop: &Hop, _dst: Ipv4Addr) -> Step {
                let fresh = self.0.get();
                self.0.set(fresh + 2);
                Step::Forward(vec![
                    Hop {
                        node: NodeId(fresh + 1),
                        ..*hop
                    },
                    Hop {
                        node: NodeId(fresh + 2),
                        ..*hop
                    },
                ])
            }
        }
        let r = walk(&Amplifier(std::cell::Cell::new(0)), hop(0), DST, 100);
        assert!(r.truncated && !r.delivered);
    }
}
