//! Property tests for the loop-detecting FIB walker: over arbitrary
//! random forwarding graphs (drops, delivery, multi-way forwarding,
//! arbitrary cycles), the walk always terminates within its state
//! bound, its report is a pure function of the graph, and the
//! loop/blackhole classification matches ground truth on graphs where
//! ground truth is known (ascending-edge DAGs cannot loop).

use proptest::collection::vec;
use proptest::prelude::*;
use sc_invariant::{classify, walk, ForwardingView, Hop, Step, ViolationClass, WalkReport};
use sc_invariant::{DropReason, MAX_WALK_STATES};
use sc_net::MacAddr;
use sc_sim::{NodeId, PortId};
use std::net::Ipv4Addr;

/// One node's forwarding behaviour in a generated graph.
#[derive(Clone, Debug, PartialEq, Eq)]
enum NodeRule {
    Deliver,
    Drop,
    Forward(Vec<usize>),
}

/// A generated forwarding graph: node `i` behaves per `rules[i]`.
#[derive(Clone, Debug)]
struct GraphView {
    rules: Vec<NodeRule>,
}

fn hop(node: usize) -> Hop {
    Hop {
        node: NodeId(node),
        in_port: PortId(0),
        src_mac: MacAddr([0; 6]),
        dst_mac: MacAddr([1; 6]),
    }
}

impl ForwardingView for GraphView {
    fn step(&self, h: &Hop, _dst: Ipv4Addr) -> Step {
        match self.rules.get(h.node.0) {
            Some(NodeRule::Deliver) => Step::Deliver,
            Some(NodeRule::Drop) => Step::Drop(DropReason::NoRoute),
            Some(NodeRule::Forward(targets)) => {
                Step::Forward(targets.iter().map(|&t| hop(t)).collect())
            }
            None => Step::Drop(DropReason::NotForwarding),
        }
    }
}

const DST: Ipv4Addr = Ipv4Addr::new(10, 9, 9, 9);

/// Random graphs of 2..=16 nodes. The vendored proptest has no
/// `prop_flat_map`, so node count and edge targets are drawn
/// independently and targets reduced modulo the node count — every
/// graph shape (cycles included) is still reachable.
fn arb_graph() -> impl Strategy<Value = GraphView> {
    vec((0u8..=3, vec(any::<u8>(), 0..4)), 2..=16).prop_map(|raw| {
        let n = raw.len();
        let rules = raw
            .into_iter()
            .map(|(kind, targets)| match kind {
                0 => NodeRule::Deliver,
                1 => NodeRule::Drop,
                // Forward twice as likely as the terminals: interesting
                // walks need edges.
                _ => NodeRule::Forward(targets.into_iter().map(|t| t as usize % n).collect()),
            })
            .collect();
        GraphView { rules }
    })
}

/// The same raw graph with every edge forced ascending (node `i` only
/// forwards to nodes `> i`): a DAG by construction, so the walker must
/// never call it a loop.
fn ascending(g: &GraphView) -> GraphView {
    let n = g.rules.len();
    let rules = g
        .rules
        .iter()
        .enumerate()
        .map(|(i, r)| match r {
            NodeRule::Forward(targets) if i + 1 < n => {
                NodeRule::Forward(targets.iter().map(|&t| i + 1 + t % (n - i - 1)).collect())
            }
            NodeRule::Forward(_) => NodeRule::Drop,
            other => other.clone(),
        })
        .collect();
    GraphView { rules }
}

proptest! {
    #[test]
    fn walk_terminates_within_the_state_bound(g in arb_graph()) {
        // The walk state here varies only in the node (ports and MACs
        // are fixed), so a terminating walk can visit at most one state
        // per node and never hits the cap.
        let r = walk(&g, hop(0), DST, MAX_WALK_STATES);
        prop_assert!(!r.truncated);
        prop_assert!(r.visited.len() <= g.rules.len());
    }

    #[test]
    fn report_is_a_pure_function_of_the_graph(g in arb_graph()) {
        let a = walk(&g, hop(0), DST, MAX_WALK_STATES);
        let b = walk(&g, hop(0), DST, MAX_WALK_STATES);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn delivery_needs_a_reachable_deliver_rule(g in arb_graph()) {
        let r = walk(&g, hop(0), DST, MAX_WALK_STATES);
        if r.delivered {
            prop_assert!(
                r.visited
                    .iter()
                    .any(|n| g.rules[n.0] == NodeRule::Deliver),
                "a delivering walk must have crossed a Deliver node"
            );
        }
        // Classification is total and consistent with delivery: a
        // delivered walk with no transit ban is no violation; an
        // undelivered one is always some violation.
        match classify(&r, false) {
            None => prop_assert!(r.delivered),
            Some(ViolationClass::Loop) => prop_assert!(r.looped || r.truncated),
            Some(ViolationClass::Blackhole) => prop_assert!(!r.delivered),
            Some(ViolationClass::Transit) => prop_assert!(false, "no ban was in force"),
        }
    }

    #[test]
    fn ascending_dags_never_loop(g in arb_graph()) {
        let dag = ascending(&g);
        let r = walk(&dag, hop(0), DST, MAX_WALK_STATES);
        prop_assert!(!r.looped, "DAG misclassified as a loop: {r:?}");
        prop_assert!(!r.truncated);
    }

    #[test]
    fn self_loops_are_always_caught(g in arb_graph(), node_raw in any::<u8>()) {
        // Splice a self-edge into an arbitrary graph and route the walk
        // through it: the walker must flag a loop whenever the walk
        // reaches the spliced node.
        let mut g = g;
        let n = g.rules.len();
        let node = node_raw as usize % n;
        g.rules[node] = NodeRule::Forward(vec![node]);
        let r = walk(&g, hop(node), DST, MAX_WALK_STATES);
        prop_assert!(r.looped);
        prop_assert_eq!(classify(&r, false), Some(ViolationClass::Loop));
    }
}

/// Non-proptest regression: an unreferenced `WalkReport` default is the
/// undelivered/blackhole shape `WorldView::walk_flow` returns when the
/// source uplink itself is dark.
#[test]
fn default_report_classifies_as_blackhole() {
    let r = WalkReport::default();
    assert_eq!(classify(&r, false), Some(ViolationClass::Blackhole));
}
