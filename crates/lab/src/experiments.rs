//! Experiment drivers: one function per paper result.
//!
//! [`run_convergence_trial`] is the workhorse behind Fig. 5: build the
//! lab, converge, start traffic, cut R2, measure per-flow recovery at
//! the sink — the paper's §4 methodology, phase by phase.

use crate::stats::BoxStats;
use crate::topology::{expected_convergence, suggested_flow_rate, ConvergenceLab, LabConfig, Mode};
use sc_net::{SimDuration, SimTime};
use sc_router::LegacyRouter;
use sc_traffic::{TrafficSink, TrafficSource};
use supercharger::controller::ControllerEvent;
use supercharger::Controller;

/// The outcome of one convergence trial.
#[derive(Clone, Debug)]
pub struct TrialResult {
    pub mode: Mode,
    pub prefixes: u32,
    pub seed: u64,
    /// Probe rate per flow actually used.
    pub rate_pps: u64,
    /// Per-flow convergence time: the maximum inter-packet gap measured
    /// across the failure (the paper's metric), one entry per flow.
    pub per_flow: Vec<SimDuration>,
    /// Flows that never recovered within the measurement window.
    pub unrecovered: usize,
    /// When the failure was injected.
    pub fail_at: SimTime,
    /// Detection instant (BFD down at the converging party), if observed.
    pub detected_at: Option<SimTime>,
    /// Virtual time consumed by setup (table load).
    pub setup_time: SimTime,
    /// Flow rewrites issued by the controller (supercharged only).
    pub flow_rewrites: Option<usize>,
}

impl TrialResult {
    pub fn stats(&self) -> BoxStats {
        BoxStats::of(&self.per_flow)
    }
}

/// Run one full convergence experiment (one Fig. 5 data point's worth of
/// flows).
pub fn run_convergence_trial(cfg: LabConfig) -> TrialResult {
    let mut lab = ConvergenceLab::build(cfg.clone());
    let rate = suggested_flow_rate(&cfg);

    // Phase 1: load the table and converge the control plane.
    let converged_at = lab.run_until_converged();

    // Phase 2: start traffic, let every flow deliver a few packets.
    let gap = SimDuration::from_nanos(1_000_000_000 / rate);
    let t_start = lab.world.now() + SimDuration::from_millis(100);
    let warmup = (gap * 20).max(SimDuration::from_millis(200));
    let t_fail = t_start + warmup;
    let budget = expected_convergence(&cfg);
    let t_end = t_fail + budget + budget / 2 + SimDuration::from_secs(1);
    {
        let src = lab.world.node_mut::<TrafficSource>(lab.source);
        src.set_window(t_start, t_end + SimDuration::from_secs(5));
    }
    lab.world.wake_node(t_start, lab.source, sc_sim::TimerToken(1));

    // Phase 3: open the measurement window just before the cut, then
    // pull R2's cable (the paper disconnects R2 from the switch).
    let sink_id = lab.sink;
    lab.world
        .schedule(t_fail - SimDuration::from_millis(1), move |w| {
            let now = w.now();
            w.node_mut::<TrafficSink>(sink_id).reset_window(now);
        });
    let link = lab.r2_link;
    lab.world.schedule(t_fail, move |w| w.set_link_up(link, false));

    // Phase 4: run out the measurement window and harvest.
    lab.world.run_until(t_end);
    let end = lab.world.now();
    lab.world.node_mut::<TrafficSink>(sink_id).close_window(end);

    let sink = lab.world.node::<TrafficSink>(sink_id);
    assert_eq!(
        sink.active_flows(),
        cfg.flows,
        "every monitored flow must have delivered before the cut"
    );
    let reports = sink.report();
    let per_flow: Vec<SimDuration> = reports.iter().map(|r| r.max_gap).collect();
    let unrecovered = reports.iter().filter(|r| r.recovered_at.is_none()).count();

    // Detection instant.
    let detected_at = match cfg.mode {
        Mode::Stock => lab
            .world
            .node::<LegacyRouter>(lab.r1)
            .events
            .iter()
            .find_map(|(t, e)| match e {
                sc_router::node::RouterEvent::PeerDown(ip)
                    if *ip == crate::topology::IP_R2 && *t >= t_fail =>
                {
                    Some(*t)
                }
                _ => None,
            }),
        Mode::Supercharged => lab
            .world
            .node::<Controller>(lab.controllers[0])
            .events
            .iter()
            .find_map(|(t, e)| match e {
                ControllerEvent::PeerDown(ip)
                    if *ip == crate::topology::IP_R2 && *t >= t_fail =>
                {
                    Some(*t)
                }
                _ => None,
            }),
    };
    let flow_rewrites = match cfg.mode {
        Mode::Stock => None,
        Mode::Supercharged => lab
            .world
            .node::<Controller>(lab.controllers[0])
            .events
            .iter()
            .find_map(|(_, e)| match e {
                ControllerEvent::FailoverIssued { rewrites, .. } => Some(*rewrites),
                _ => None,
            }),
    };

    TrialResult {
        mode: cfg.mode,
        prefixes: cfg.prefixes,
        seed: cfg.seed,
        rate_pps: rate,
        per_flow,
        unrecovered,
        fail_at: t_fail,
        detected_at,
        setup_time: converged_at,
        flow_rewrites,
    }
}

/// One row of the Fig. 5 sweep: a prefix count with the pooled per-flow
/// distribution over all trials (the paper pools 3 × 100 flows).
#[derive(Clone, Debug)]
pub struct SweepRow {
    pub mode: Mode,
    pub prefixes: u32,
    pub samples: Vec<SimDuration>,
    pub trials: usize,
}

impl SweepRow {
    pub fn stats(&self) -> BoxStats {
        BoxStats::of(&self.samples)
    }
}

/// The paper's x-axis.
pub const FIG5_PREFIX_COUNTS: [u32; 9] =
    [1_000, 5_000, 10_000, 50_000, 100_000, 200_000, 300_000, 400_000, 500_000];

/// Run the Fig. 5 sweep for one mode over the given prefix counts,
/// pooling `trials` repetitions (the paper: 3 × 100 flows = 300 points
/// per count). Trials run on parallel threads (each owns its world).
pub fn run_fig5_sweep(
    mode: Mode,
    prefix_counts: &[u32],
    trials: usize,
    base: &LabConfig,
) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for &prefixes in prefix_counts {
        let samples = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for t in 0..trials {
                let base = base.clone();
                let samples = &samples;
                scope.spawn(move || {
                    let cfg = LabConfig {
                        mode,
                        prefixes,
                        seed: base.seed + t as u64 * 1000 + prefixes as u64,
                        ..base
                    };
                    let result = run_convergence_trial(cfg);
                    samples.lock().unwrap().extend(result.per_flow);
                });
            }
        });
        rows.push(SweepRow {
            mode,
            prefixes,
            samples: samples.into_inner().unwrap(),
            trials,
        });
    }
    rows
}
