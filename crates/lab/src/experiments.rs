//! Experiment drivers: one function per paper result.
//!
//! [`run_convergence_trial`] is the workhorse behind Fig. 5: build the
//! lab, converge, start traffic, cut R2, measure per-flow recovery at
//! the sink — the paper's §4 methodology, phase by phase. The phase
//! machinery itself lives in [`crate::harness`] (shared with the
//! `sc-scenarios` suite runner); this module only supplies the Fig. 4
//! specifics: which lab to build and which cable to pull.

use crate::harness::{arm_traffic, plan_measurement, run_out_and_harvest};
use crate::stats::BoxStats;
use crate::topology::{expected_convergence, suggested_flow_rate, ConvergenceLab, LabConfig, Mode};
use sc_net::{SimDuration, SimTime};
use sc_router::LegacyRouter;
use supercharger::controller::ControllerEvent;
use supercharger::Controller;

/// The outcome of one convergence trial.
#[derive(Clone, Debug)]
pub struct TrialResult {
    pub mode: Mode,
    pub prefixes: u32,
    pub seed: u64,
    /// Probe rate per flow actually used.
    pub rate_pps: u64,
    /// Per-flow convergence time: the maximum inter-packet gap measured
    /// across the failure (the paper's metric), one entry per flow.
    pub per_flow: Vec<SimDuration>,
    /// Flows that never recovered within the measurement window.
    pub unrecovered: usize,
    /// When the failure was injected.
    pub fail_at: SimTime,
    /// Detection instant (BFD down at the converging party), if observed.
    pub detected_at: Option<SimTime>,
    /// Virtual time consumed by setup (table load).
    pub setup_time: SimTime,
    /// Flow rewrites issued by the controller (supercharged only).
    pub flow_rewrites: Option<usize>,
}

impl TrialResult {
    pub fn stats(&self) -> BoxStats {
        BoxStats::of(&self.per_flow)
    }
}

/// Run one full convergence experiment (one Fig. 5 data point's worth of
/// flows).
pub fn run_convergence_trial(cfg: LabConfig) -> TrialResult {
    let mut lab = ConvergenceLab::build(cfg.clone());
    let rate = suggested_flow_rate(&cfg);

    // Phase 1: load the table and converge the control plane.
    let converged_at = lab.run_until_converged();

    // Phases 2-3: start traffic, open the measurement window just
    // before the cut, then pull R2's cable (the paper disconnects R2
    // from the switch).
    let budget = expected_convergence(&cfg);
    let horizon = budget + budget / 2 + SimDuration::from_secs(1);
    let plan = plan_measurement(lab.world.now(), rate, horizon);
    arm_traffic(&mut lab.world, lab.source, lab.sink, &plan);
    let t_fail = plan.t_fail;
    let link = lab.r2_link;
    lab.world
        .schedule(t_fail, move |w| w.set_link_up(link, false));

    // Phase 4: run out the measurement window and harvest.
    let harvest = run_out_and_harvest(&mut lab.world, lab.sink, plan.t_end, cfg.flows);
    let (per_flow, unrecovered) = (harvest.per_flow, harvest.unrecovered);

    // Detection instant.
    let detected_at = match cfg.mode {
        Mode::Stock => lab
            .world
            .node::<LegacyRouter>(lab.r1)
            .events
            .iter()
            .find_map(|(t, e)| match e {
                sc_router::node::RouterEvent::PeerDown { peer, .. }
                    if *peer == crate::topology::IP_R2 && *t >= t_fail =>
                {
                    Some(*t)
                }
                _ => None,
            }),
        Mode::Supercharged => lab
            .world
            .node::<Controller>(lab.controllers[0])
            .events
            .iter()
            .find_map(|(t, e)| match e {
                ControllerEvent::PeerDown(ip) if *ip == crate::topology::IP_R2 && *t >= t_fail => {
                    Some(*t)
                }
                _ => None,
            }),
    };
    let flow_rewrites = match cfg.mode {
        Mode::Stock => None,
        Mode::Supercharged => lab
            .world
            .node::<Controller>(lab.controllers[0])
            .events
            .iter()
            .find_map(|(_, e)| match e {
                ControllerEvent::FailoverIssued { rewrites, .. } => Some(*rewrites),
                _ => None,
            }),
    };

    TrialResult {
        mode: cfg.mode,
        prefixes: cfg.prefixes,
        seed: cfg.seed,
        rate_pps: rate,
        per_flow,
        unrecovered,
        fail_at: t_fail,
        detected_at,
        setup_time: converged_at,
        flow_rewrites,
    }
}

/// One row of the Fig. 5 sweep: a prefix count with the pooled per-flow
/// distribution over all trials (the paper pools 3 × 100 flows).
#[derive(Clone, Debug)]
pub struct SweepRow {
    pub mode: Mode,
    pub prefixes: u32,
    pub samples: Vec<SimDuration>,
    pub trials: usize,
}

impl SweepRow {
    pub fn stats(&self) -> BoxStats {
        BoxStats::of(&self.samples)
    }
}

/// The paper's x-axis.
pub const FIG5_PREFIX_COUNTS: [u32; 9] = [
    1_000, 5_000, 10_000, 50_000, 100_000, 200_000, 300_000, 400_000, 500_000,
];

/// Run the Fig. 5 sweep for one mode over the given prefix counts,
/// pooling `trials` repetitions (the paper: 3 × 100 flows = 300 points
/// per count). Trials run on parallel threads (each owns its world).
pub fn run_fig5_sweep(
    mode: Mode,
    prefix_counts: &[u32],
    trials: usize,
    base: &LabConfig,
) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for &prefixes in prefix_counts {
        let samples = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for t in 0..trials {
                let base = base.clone();
                let samples = &samples;
                scope.spawn(move || {
                    let cfg = LabConfig {
                        mode,
                        prefixes,
                        seed: base.seed + t as u64 * 1000 + prefixes as u64,
                        ..base
                    };
                    let result = run_convergence_trial(cfg);
                    samples.lock().unwrap().extend(result.per_flow);
                });
            }
        });
        rows.push(SweepRow {
            mode,
            prefixes,
            samples: samples.into_inner().unwrap(),
            trials,
        });
    }
    rows
}
