//! The reusable measurement phases of a convergence experiment.
//!
//! The paper's §4 methodology — converge the control plane, stream
//! probe traffic, open the measurement window just before the failure,
//! run out the window, harvest per-flow maximum gaps — is independent
//! of *which* topology is under test and *what* failure is injected.
//! This module holds that shared machinery; [`crate::experiments`] and
//! the `sc-scenarios` suite runner are both thin consumers of it.

use crate::topology::Mode;
use sc_net::{SimDuration, SimTime};
use sc_router::Calibration;
use sc_sim::{NodeId, TimerToken, World};
use sc_traffic::{TrafficSink, TrafficSource};

/// The expected convergence budget for sizing measurement windows and
/// probe rates — the single source both `sc_lab::expected_convergence`
/// and the `sc-scenarios` runner derive from.
pub fn convergence_budget(
    mode: Mode,
    cal: &Calibration,
    prefixes: u32,
    control_loss: f64,
) -> SimDuration {
    match mode {
        Mode::Stock => {
            // detection + processing + full walk.
            SimDuration::from_millis(100) + cal.expected_full_walk(prefixes as u64)
        }
        // detection (≤3×interval) + reaction + install, padded; lossy
        // control links add retransmission rounds.
        Mode::Supercharged => {
            let base = SimDuration::from_millis(300);
            if control_loss > 0.0 {
                base + SimDuration::from_millis(700)
            } else {
                base
            }
        }
    }
}

/// Probe rate per flow: full paper rate when affordable, scaled down
/// for long runs so a whole sweep stays tractable. The scaled rate
/// keeps ≥ 1000 probe intervals across the expected convergence time,
/// i.e. relative quantization error ≤ 0.1%.
pub fn probe_rate(rate_pps: Option<u64>, expected: SimDuration, flows: usize) -> u64 {
    if let Some(r) = rate_pps {
        return r;
    }
    let expected = expected.as_secs_f64().max(0.001);
    let budget_packets = 4_000_000.0; // total probe sends per trial
    let cap = (budget_packets / (expected * flows.max(1) as f64)) as u64;
    cap.clamp(1_000, 14_000)
}

/// Merge two ascending epoch lists into one strictly-ascending union —
/// a trial's convergence onsets can come from more than one source (a
/// failure script *and* a replayed MRT update trace), and
/// [`plan_cycle_measurement`] wants them as a single schedule, one
/// window per distinct onset.
pub fn merge_epochs(a: &[SimDuration], b: &[SimDuration]) -> Vec<SimDuration> {
    let mut out: Vec<SimDuration> = a.iter().chain(b).copied().collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// One measurement window, covering one scripted failure epoch: gap
/// counters are re-armed at `t_open` (1 ms before the epoch's failure
/// fires at `t_fail`) and harvested at `t_close`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleWindow {
    /// Window opens (sink gap-state reset — the FPGA re-arm).
    pub t_open: SimTime,
    /// The epoch's failure-injection instant.
    pub t_fail: SimTime,
    /// Window closes (per-flow maxima harvested).
    pub t_close: SimTime,
}

/// The timing of one measurement: when probes start, when the failure
/// script fires (`t_fail`), and when the window closes — plus one
/// [`CycleWindow`] per scripted failure epoch, so repeated convergence
/// events (flaps, session resets, churn cycles) are each measured on
/// their own, not folded into a single "max gap anywhere" number.
#[derive(Clone, Debug)]
pub struct MeasurementPlan {
    /// Probe rate per flow actually used.
    pub rate_pps: u64,
    /// Traffic starts (after control-plane convergence).
    pub t_start: SimTime,
    /// The script origin `t0` (script event offsets are relative to it).
    pub t_origin: SimTime,
    /// The first failure onset (`t0 + epochs[0]`): the first measurement
    /// window opens 1 ms before this instant.
    pub t_fail: SimTime,
    /// End of the last measurement window.
    pub t_end: SimTime,
    /// One window per failure epoch, contiguous: each cycle closes where
    /// the next opens, and the last runs out the full horizon.
    pub cycles: Vec<CycleWindow>,
}

/// Lay out the phases after the control plane converged at `now`:
/// probes start 100 ms later, warm up for at least 20 inter-packet
/// gaps (so every flow has delivered before the cut), then the failure
/// fires, and the window runs for `horizon` beyond it. One epoch at
/// offset zero — the single-failure experiments of the paper.
pub fn plan_measurement(now: SimTime, rate_pps: u64, horizon: SimDuration) -> MeasurementPlan {
    plan_cycle_measurement(now, rate_pps, &[SimDuration::ZERO], horizon)
}

/// The multi-epoch generalization: `epochs` are the failure onsets of
/// the script (offsets from the script origin, ascending — e.g. one per
/// flap cycle). Each epoch gets its own [`CycleWindow`]; cycle `i`
/// closes exactly where cycle `i+1` opens, and the last cycle runs for
/// `horizon` past its onset.
pub fn plan_cycle_measurement(
    now: SimTime,
    rate_pps: u64,
    epochs: &[SimDuration],
    horizon: SimDuration,
) -> MeasurementPlan {
    assert!(!epochs.is_empty(), "at least one failure epoch required");
    assert!(
        epochs.windows(2).all(|w| w[0] < w[1]),
        "failure epochs must be strictly ascending"
    );
    let gap = SimDuration::from_nanos(1_000_000_000 / rate_pps.max(1));
    let t_start = now + SimDuration::from_millis(100);
    let warmup = (gap * 20).max(SimDuration::from_millis(200));
    let t0 = t_start + warmup;
    // The re-arm offset before each onset, shrunk to half the gap to
    // the *previous* onset when epochs are closer than 1 ms — windows
    // must stay ordered (open < fail <= close) and contiguous even for
    // sub-millisecond flap periods.
    let arm_before = |i: usize, off: SimDuration| -> SimDuration {
        let full = SimDuration::from_millis(1);
        match i.checked_sub(1).map(|p| epochs[p]) {
            Some(prev) => full.min((off - prev) / 2),
            None => full,
        }
    };
    let cycles: Vec<CycleWindow> = epochs
        .iter()
        .enumerate()
        .map(|(i, &off)| {
            let t_fail = t0 + off;
            let t_close = match epochs.get(i + 1) {
                Some(&next) => t0 + next - arm_before(i + 1, next),
                None => t_fail + horizon,
            };
            CycleWindow {
                t_open: t_fail - arm_before(i, off),
                t_fail,
                t_close,
            }
        })
        .collect();
    MeasurementPlan {
        rate_pps,
        t_start,
        t_origin: t0,
        t_fail: t0 + epochs[0],
        t_end: cycles.last().unwrap().t_close,
        cycles,
    }
}

/// Window the source, schedule its first tick, and schedule the sink's
/// first measurement-window reset 1 ms before the first failure (the
/// FPGA equivalent of arming the gap counters). Later cycles are
/// re-armed by [`run_cycles_and_harvest`] as it walks the windows.
pub fn arm_traffic(world: &mut World, source: NodeId, sink: NodeId, plan: &MeasurementPlan) {
    {
        let src = world.node_mut::<TrafficSource>(source);
        src.set_window(plan.t_start, plan.t_end + SimDuration::from_secs(5));
    }
    world.wake_node(plan.t_start, source, TimerToken(1));
    let sink_id = sink;
    let first_open = plan.cycles.first().map(|c| c.t_open).unwrap_or(plan.t_fail);
    world.schedule(first_open, move |w| {
        let now = w.now();
        w.node_mut::<TrafficSink>(sink_id).reset_window(now);
    });
}

/// A shared read-mostly observer invoked as `(world, window, at)` by
/// [`schedule_window_samples`].
pub type WindowSampler = std::rc::Rc<dyn Fn(&mut World, usize, SimTime)>;

/// Pre-schedule one sampler invocation every `cadence` inside each of
/// the plan's measurement windows: window `w` is sampled at `t_open`,
/// `t_open + cadence`, … strictly before `t_close`. Because every
/// sample is a kernel control event scheduled *before* the world runs,
/// the event stream — and therefore any report derived from it — stays
/// deterministic and byte-reproducible; the sampler must only read.
/// The invariant engine rides on this; any periodic in-window observer
/// can. Returns the number of samples scheduled.
pub fn schedule_window_samples(
    world: &mut World,
    plan: &MeasurementPlan,
    cadence: SimDuration,
    sampler: WindowSampler,
) -> usize {
    assert!(cadence > SimDuration::ZERO, "sampling cadence must be > 0");
    let mut scheduled = 0;
    for (w, cycle) in plan.cycles.iter().enumerate() {
        let mut t = cycle.t_open;
        while t < cycle.t_close {
            let s = sampler.clone();
            world.schedule(t, move |world| s(world, w, t));
            scheduled += 1;
            t += cadence;
        }
    }
    scheduled
}

/// The harvested per-flow measurements of one trial.
#[derive(Clone, Debug)]
pub struct Harvest {
    /// Per-flow convergence time: the maximum inter-packet gap measured
    /// across the failure (the paper's metric), one entry per flow.
    pub per_flow: Vec<SimDuration>,
    /// Flows that never recovered within the measurement window.
    pub unrecovered: usize,
}

/// Run the world out to the end of the window, close it (so blackholed
/// flows report open-ended gaps), and collect the per-flow maxima.
/// Panics if fewer than `expect_flows` flows delivered before the cut —
/// that is a harness bug, not a measurement.
pub fn run_out_and_harvest(
    world: &mut World,
    sink: NodeId,
    t_end: SimTime,
    expect_flows: usize,
) -> Harvest {
    world.run_until(t_end);
    let end = world.now();
    world.node_mut::<TrafficSink>(sink).close_window(end);
    harvest_sink(world, sink, Some(expect_flows))
}

fn harvest_sink(world: &World, sink: NodeId, expect_flows: Option<usize>) -> Harvest {
    let sink_node = world.node::<TrafficSink>(sink);
    if let Some(expect) = expect_flows {
        assert_eq!(
            sink_node.active_flows(),
            expect,
            "every monitored flow must have delivered before the cut"
        );
    }
    let reports = sink_node.report();
    Harvest {
        per_flow: reports.iter().map(|r| r.max_gap).collect(),
        unrecovered: reports.iter().filter(|r| r.recovered_at.is_none()).count(),
    }
}

/// Walk the plan's cycle windows: run out each window, close and
/// harvest it, then re-arm the sink for the next cycle. Returns one
/// [`Harvest`] per cycle — the per-flow maximum gap *within that
/// cycle*, so the second flap of a script is measured as its own
/// convergence event instead of disappearing under the first one's
/// maximum. The `expect_flows` delivery check applies to the first
/// window only (later cycles legitimately start mid-blackhole when a
/// scenario's recovery is slower than its flap period).
pub fn run_cycles_and_harvest(
    world: &mut World,
    sink: NodeId,
    plan: &MeasurementPlan,
    expect_flows: usize,
) -> Vec<Harvest> {
    let mut out = Vec::with_capacity(plan.cycles.len());
    for (i, cycle) in plan.cycles.iter().enumerate() {
        if i > 0 {
            // The previous window was harvested exactly at this
            // window's open instant; re-arm the gap counters.
            let now = world.now();
            world.node_mut::<TrafficSink>(sink).reset_window(now);
        }
        world.run_until(cycle.t_close);
        let end = world.now();
        world.node_mut::<TrafficSink>(sink).close_window(end);
        out.push(harvest_sink(world, sink, (i == 0).then_some(expect_flows)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn merge_epochs_unions_and_dedupes() {
        assert_eq!(
            merge_epochs(
                &[SimDuration::ZERO, ms(200)],
                &[SimDuration::ZERO, ms(50), ms(200)]
            ),
            vec![SimDuration::ZERO, ms(50), ms(200)]
        );
        assert_eq!(merge_epochs(&[], &[ms(3)]), vec![ms(3)]);
        assert_eq!(merge_epochs(&[], &[]), Vec::<SimDuration>::new());
        // The merged list satisfies plan_cycle_measurement's contract.
        let merged = merge_epochs(&[ms(10)], &[SimDuration::ZERO, ms(10), ms(20)]);
        let plan = plan_cycle_measurement(SimTime::from_secs(1), 1_000, &merged, ms(100));
        assert_eq!(plan.cycles.len(), 3);
    }

    #[test]
    fn single_epoch_plan_matches_the_classic_layout() {
        let plan = plan_measurement(SimTime::from_secs(1), 1_000, ms(500));
        assert_eq!(plan.cycles.len(), 1);
        assert_eq!(plan.t_origin, plan.t_fail);
        assert_eq!(plan.cycles[0].t_fail, plan.t_fail);
        assert_eq!(plan.cycles[0].t_open, plan.t_fail - ms(1));
        assert_eq!(plan.cycles[0].t_close, plan.t_fail + ms(500));
        assert_eq!(plan.t_end, plan.cycles[0].t_close);
        // 1000 pps -> 1 ms gap; warmup floor of 200 ms applies.
        assert_eq!(plan.t_start, SimTime::from_secs(1) + ms(100));
        assert_eq!(plan.t_fail, plan.t_start + ms(200));
    }

    #[test]
    fn sub_millisecond_epochs_keep_windows_ordered() {
        // Epoch spacing below the 1 ms re-arm offset (a `period=500us`
        // flap script is expressible) must still yield ordered,
        // contiguous windows — the arm offset shrinks, it never inverts
        // a window.
        let us = SimDuration::from_micros;
        let epochs = [SimDuration::ZERO, us(500), us(1000)];
        let plan = plan_cycle_measurement(SimTime::from_secs(1), 14_000, &epochs, ms(100));
        for (i, c) in plan.cycles.iter().enumerate() {
            assert!(c.t_open < c.t_fail, "cycle {i}: opens before its failure");
            assert!(c.t_fail < c.t_close, "cycle {i}: closes after its failure");
            if i + 1 < plan.cycles.len() {
                assert_eq!(c.t_close, plan.cycles[i + 1].t_open, "contiguous");
            }
        }
        assert_eq!(plan.t_end, plan.t_origin + us(1000) + ms(100));
    }

    #[test]
    fn cycle_windows_are_contiguous_and_cover_the_horizon() {
        let epochs = [SimDuration::ZERO, ms(250), ms(500)];
        let plan = plan_cycle_measurement(SimTime::from_secs(2), 1_000, &epochs, ms(400));
        assert_eq!(plan.cycles.len(), 3);
        let t0 = plan.t_origin;
        for (i, c) in plan.cycles.iter().enumerate() {
            assert_eq!(c.t_fail, t0 + epochs[i]);
            assert_eq!(c.t_open, c.t_fail - ms(1), "armed 1ms before the failure");
            if i + 1 < plan.cycles.len() {
                assert_eq!(
                    c.t_close,
                    plan.cycles[i + 1].t_open,
                    "cycle {i} closes where cycle {} opens",
                    i + 1
                );
            }
        }
        assert_eq!(
            plan.t_end,
            t0 + ms(500) + ms(400),
            "last window runs the horizon"
        );
        assert_eq!(plan.t_fail, t0, "first onset at the origin");
    }
}
