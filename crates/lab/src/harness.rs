//! The reusable measurement phases of a convergence experiment.
//!
//! The paper's §4 methodology — converge the control plane, stream
//! probe traffic, open the measurement window just before the failure,
//! run out the window, harvest per-flow maximum gaps — is independent
//! of *which* topology is under test and *what* failure is injected.
//! This module holds that shared machinery; [`crate::experiments`] and
//! the `sc-scenarios` suite runner are both thin consumers of it.

use crate::topology::Mode;
use sc_net::{SimDuration, SimTime};
use sc_router::Calibration;
use sc_sim::{NodeId, TimerToken, World};
use sc_traffic::{TrafficSink, TrafficSource};

/// The expected convergence budget for sizing measurement windows and
/// probe rates — the single source both `sc_lab::expected_convergence`
/// and the `sc-scenarios` runner derive from.
pub fn convergence_budget(
    mode: Mode,
    cal: &Calibration,
    prefixes: u32,
    control_loss: f64,
) -> SimDuration {
    match mode {
        Mode::Stock => {
            // detection + processing + full walk.
            SimDuration::from_millis(100) + cal.expected_full_walk(prefixes as u64)
        }
        // detection (≤3×interval) + reaction + install, padded; lossy
        // control links add retransmission rounds.
        Mode::Supercharged => {
            let base = SimDuration::from_millis(300);
            if control_loss > 0.0 {
                base + SimDuration::from_millis(700)
            } else {
                base
            }
        }
    }
}

/// Probe rate per flow: full paper rate when affordable, scaled down
/// for long runs so a whole sweep stays tractable. The scaled rate
/// keeps ≥ 1000 probe intervals across the expected convergence time,
/// i.e. relative quantization error ≤ 0.1%.
pub fn probe_rate(rate_pps: Option<u64>, expected: SimDuration, flows: usize) -> u64 {
    if let Some(r) = rate_pps {
        return r;
    }
    let expected = expected.as_secs_f64().max(0.001);
    let budget_packets = 4_000_000.0; // total probe sends per trial
    let cap = (budget_packets / (expected * flows.max(1) as f64)) as u64;
    cap.clamp(1_000, 14_000)
}

/// The timing of one measurement: when probes start, when the failure
/// script fires (`t_fail`), and when the window closes.
#[derive(Clone, Copy, Debug)]
pub struct MeasurementPlan {
    /// Probe rate per flow actually used.
    pub rate_pps: u64,
    /// Traffic starts (after control-plane convergence).
    pub t_start: SimTime,
    /// The failure-script origin: the measurement window opens 1 ms
    /// before this instant.
    pub t_fail: SimTime,
    /// End of the measurement window.
    pub t_end: SimTime,
}

/// Lay out the phases after the control plane converged at `now`:
/// probes start 100 ms later, warm up for at least 20 inter-packet
/// gaps (so every flow has delivered before the cut), then the failure
/// fires, and the window runs for `horizon` beyond it.
pub fn plan_measurement(now: SimTime, rate_pps: u64, horizon: SimDuration) -> MeasurementPlan {
    let gap = SimDuration::from_nanos(1_000_000_000 / rate_pps.max(1));
    let t_start = now + SimDuration::from_millis(100);
    let warmup = (gap * 20).max(SimDuration::from_millis(200));
    let t_fail = t_start + warmup;
    MeasurementPlan {
        rate_pps,
        t_start,
        t_fail,
        t_end: t_fail + horizon,
    }
}

/// Window the source, schedule its first tick, and schedule the sink's
/// measurement-window reset 1 ms before the failure (the FPGA
/// equivalent of arming the gap counters).
pub fn arm_traffic(world: &mut World, source: NodeId, sink: NodeId, plan: &MeasurementPlan) {
    {
        let src = world.node_mut::<TrafficSource>(source);
        src.set_window(plan.t_start, plan.t_end + SimDuration::from_secs(5));
    }
    world.wake_node(plan.t_start, source, TimerToken(1));
    let sink_id = sink;
    world.schedule(plan.t_fail - SimDuration::from_millis(1), move |w| {
        let now = w.now();
        w.node_mut::<TrafficSink>(sink_id).reset_window(now);
    });
}

/// The harvested per-flow measurements of one trial.
#[derive(Clone, Debug)]
pub struct Harvest {
    /// Per-flow convergence time: the maximum inter-packet gap measured
    /// across the failure (the paper's metric), one entry per flow.
    pub per_flow: Vec<SimDuration>,
    /// Flows that never recovered within the measurement window.
    pub unrecovered: usize,
}

/// Run the world out to the end of the window, close it (so blackholed
/// flows report open-ended gaps), and collect the per-flow maxima.
/// Panics if fewer than `expect_flows` flows delivered before the cut —
/// that is a harness bug, not a measurement.
pub fn run_out_and_harvest(
    world: &mut World,
    sink: NodeId,
    t_end: SimTime,
    expect_flows: usize,
) -> Harvest {
    world.run_until(t_end);
    let end = world.now();
    world.node_mut::<TrafficSink>(sink).close_window(end);
    let sink_node = world.node::<TrafficSink>(sink);
    assert_eq!(
        sink_node.active_flows(),
        expect_flows,
        "every monitored flow must have delivered before the cut"
    );
    let reports = sink_node.report();
    Harvest {
        per_flow: reports.iter().map(|r| r.max_gap).collect(),
        unrecovered: reports.iter().filter(|r| r.recovered_at.is_none()).count(),
    }
}
