//! The evaluation harness: the paper's Fig. 4 lab, experiment drivers,
//! and statistics.
//!
//! * [`topology`] — the lab builder ([`ConvergenceLab`]): one switch,
//!   three routers, the traffic boards, and optionally the
//!   supercharger controller(s), wired exactly like the paper's
//!   hardware testbed;
//! * [`experiments`] — phase-by-phase drivers reproducing §4's
//!   methodology (converge → stream → cut → measure) and the Fig. 5
//!   sweep;
//! * [`stats`] — box-plot summaries and CSV emission.

pub mod experiments;
pub mod harness;
pub mod stats;
pub mod topology;

pub use experiments::{
    run_convergence_trial, run_fig5_sweep, SweepRow, TrialResult, FIG5_PREFIX_COUNTS,
};
pub use stats::{percentile, BoxStats, Csv};
pub use topology::{expected_convergence, suggested_flow_rate, ConvergenceLab, LabConfig, Mode};
