//! Statistics for the experiment harness: the box-plot summaries Fig. 5
//! reports (median, inter-quartile range, 5th/95th whiskers, max) and
//! simple CSV emission.

use sc_net::SimDuration;
use std::fmt;

/// A box-plot summary of a sample of durations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoxStats {
    pub n: usize,
    pub min: SimDuration,
    pub p5: SimDuration,
    pub q1: SimDuration,
    pub median: SimDuration,
    pub q3: SimDuration,
    pub p95: SimDuration,
    pub max: SimDuration,
    pub mean: SimDuration,
}

impl BoxStats {
    /// Summarize a sample. Panics on an empty sample (an experiment that
    /// measured nothing is a harness bug).
    pub fn of(samples: &[SimDuration]) -> BoxStats {
        assert!(!samples.is_empty(), "no samples to summarize");
        let mut sorted = samples.to_vec();
        sorted.sort();
        let total: u64 = sorted.iter().map(|d| d.as_nanos()).sum();
        BoxStats {
            n: sorted.len(),
            min: sorted[0],
            p5: percentile(&sorted, 5.0),
            q1: percentile(&sorted, 25.0),
            median: percentile(&sorted, 50.0),
            q3: percentile(&sorted, 75.0),
            p95: percentile(&sorted, 95.0),
            max: *sorted.last().unwrap(),
            mean: SimDuration::from_nanos(total / sorted.len() as u64),
        }
    }
}

impl fmt::Display for BoxStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} p5={} q1={} med={} q3={} p95={} max={}",
            self.n, self.min, self.p5, self.q1, self.median, self.q3, self.p95, self.max
        )
    }
}

/// Nearest-rank (inclusive linear interpolation) percentile of a
/// *sorted* sample.
pub fn percentile(sorted: &[SimDuration], pct: f64) -> SimDuration {
    assert!(!sorted.is_empty());
    assert!((0.0..=100.0).contains(&pct));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = rank - lo as f64;
    let a = sorted[lo].as_nanos() as f64;
    let b = sorted[hi].as_nanos() as f64;
    SimDuration::from_nanos((a + (b - a) * frac).round() as u64)
}

/// Minimal CSV emission (we deliberately avoid a serialization
/// dependency; see DESIGN.md §8).
pub struct Csv {
    out: String,
    columns: usize,
}

impl Csv {
    pub fn new(header: &[&str]) -> Csv {
        let mut c = Csv {
            out: String::new(),
            columns: header.len(),
        };
        c.push_raw(header.iter().map(|s| s.to_string()));
        c
    }

    pub fn row(&mut self, fields: &[String]) {
        assert_eq!(fields.len(), self.columns, "ragged CSV row");
        self.push_raw(fields.iter().cloned());
    }

    fn push_raw(&mut self, fields: impl Iterator<Item = String>) {
        let escaped: Vec<String> = fields
            .map(|f| {
                if f.contains(',') || f.contains('"') || f.contains('\n') {
                    format!("\"{}\"", f.replace('"', "\"\""))
                } else {
                    f
                }
            })
            .collect();
        self.out.push_str(&escaped.join(","));
        self.out.push('\n');
    }

    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn percentiles_interpolate() {
        let s: Vec<SimDuration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&s, 0.0), ms(1));
        assert_eq!(percentile(&s, 100.0), ms(100));
        let med = percentile(&s, 50.0);
        assert_eq!(med.as_micros(), 50_500); // between 50 and 51
        let p95 = percentile(&s, 95.0);
        assert!(p95 >= ms(95) && p95 <= ms(96));
    }

    #[test]
    fn box_stats_of_uniform_walk() {
        // A uniform spread like the stock router's per-flow recovery:
        // median ≈ half the worst case.
        let s: Vec<SimDuration> = (1..=1000).map(ms).collect();
        let b = BoxStats::of(&s);
        assert_eq!(b.n, 1000);
        assert_eq!(b.min, ms(1));
        assert_eq!(b.max, ms(1000));
        let ratio = b.median.as_nanos() as f64 / b.max.as_nanos() as f64;
        assert!((0.45..0.55).contains(&ratio));
        assert!(b.q1 < b.median && b.median < b.q3);
        assert!(b.p5 < b.q1 && b.q3 < b.p95);
    }

    #[test]
    fn box_stats_of_constant_sample() {
        // The supercharged router: every flow ≈150ms.
        let s = vec![ms(150); 300];
        let b = BoxStats::of(&s);
        assert_eq!(b.min, b.max);
        assert_eq!(b.median, ms(150));
        assert_eq!(b.mean, ms(150));
    }

    #[test]
    fn single_sample() {
        let b = BoxStats::of(&[ms(7)]);
        assert_eq!(b.median, ms(7));
        assert_eq!(b.p95, ms(7));
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_sample_panics() {
        let _ = BoxStats::of(&[]);
    }

    #[test]
    fn csv_escapes() {
        let mut c = Csv::new(&["a", "b"]);
        c.row(&["1".into(), "plain".into()]);
        c.row(&["2".into(), "with,comma".into()]);
        let out = c.finish();
        assert_eq!(out, "a,b\n1,plain\n2,\"with,comma\"\n");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn csv_rejects_ragged_rows() {
        let mut c = Csv::new(&["a", "b"]);
        c.row(&["only-one".into()]);
    }
}
