//! The Fig. 4 convergence lab as code.
//!
//! ```text
//!                      ┌────────────┐
//!   FPGA source ───────┤            ├────── R1 (Nexus-7k model)
//!                      │  HP E3800  │
//!   controller(s) ─────┤  (OpenFlow │────── R2 (provider $)──── sink
//!                      │   switch)  │────── R3 (provider $$)─── sink
//!                      └────────────┘
//! ```
//!
//! One builder produces both halves of Fig. 5:
//! * [`Mode::Stock`] — R1 peers R2/R3 directly (BFD on the R2 session),
//!   converging via its flat-FIB walk;
//! * [`Mode::Supercharged`] — the controller(s) interpose on the BGP
//!   sessions, provision VNH/VMAC state, and converge the data plane via
//!   Listing 2.
//!
//! Addressing plan (all MACs locally administered):
//!
//! | node         | IP            | MAC                |
//! |--------------|---------------|--------------------|
//! | R1           | 10.0.0.1      | 02:10:00:00:00:01  |
//! | R2           | 10.0.0.2      | 02:10:00:00:00:02  |
//! | R3           | 10.0.0.3      | 02:10:00:00:00:03  |
//! | controller i | 10.0.0.10+i   | 02:cc:00:00:00:0i  |
//! | switch (mgmt)| 10.0.0.20     | 02:ee:00:00:00:01  |
//! | source       | 10.0.0.100    | 02:aa:00:00:00:01  |
//! | sink         | 192.168.x.100 | 02:bb:00:00:00:01  |
//! | VNH pool     | 10.0.200.0/24 | 02:5c:… (VMACs)    |

use sc_bfd::BfdConfig;
use sc_bgp::msg::UpdateMsg;
use sc_net::{Ipv4Addr, Ipv4Prefix, MacAddr, SimDuration, SimTime};
use sc_openflow::{OfSwitch, SwitchConfig, TableMiss};
use sc_routegen::{generate_feed_for, prefix_universe, sample_flow_ips, FeedConfig};
use sc_router::{Calibration, Interface, LegacyRouter, PeerConfig, RouterConfig, StaticRoute};
use sc_sim::{LinkId, LinkParams, NodeId, PortId, TimerToken, World};
use sc_traffic::{SinkConfig, SourceConfig, TrafficSink, TrafficSource};
use supercharger::engine::PeerSpec;
use supercharger::{Controller, ControllerConfig, PeerLink, RouterLink, SwitchLink};

pub const IP_R1: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
pub const IP_R2: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
pub const IP_R3: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);
pub const IP_SWITCH: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 20);
pub const IP_SOURCE: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);

pub const MAC_R1: MacAddr = MacAddr([0x02, 0x10, 0, 0, 0, 1]);
pub const MAC_R2: MacAddr = MacAddr([0x02, 0x10, 0, 0, 0, 2]);
pub const MAC_R3: MacAddr = MacAddr([0x02, 0x10, 0, 0, 0, 3]);
pub const MAC_SWITCH: MacAddr = MacAddr([0x02, 0xee, 0, 0, 0, 1]);
pub const MAC_SOURCE: MacAddr = MacAddr([0x02, 0xaa, 0, 0, 0, 1]);
pub const MAC_SINK: MacAddr = MacAddr([0x02, 0xbb, 0, 0, 0, 1]);

pub fn controller_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, 10 + i as u8)
}

pub fn controller_mac(i: usize) -> MacAddr {
    MacAddr([0x02, 0xcc, 0, 0, 0, i as u8 + 1])
}

fn lan() -> Ipv4Prefix {
    "10.0.0.0/16".parse().unwrap()
}

fn vnh_pool() -> Ipv4Prefix {
    "10.0.200.0/24".parse().unwrap()
}

/// Which half of Fig. 5 to build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// R1 peers its providers directly; convergence = flat-FIB walk.
    Stock,
    /// The controller(s) interpose; convergence = Listing 2.
    Supercharged,
}

impl Mode {
    pub fn label(self) -> &'static str {
        match self {
            Mode::Stock => "stock",
            Mode::Supercharged => "supercharged",
        }
    }
}

/// Full lab configuration.
#[derive(Clone, Debug)]
pub struct LabConfig {
    pub mode: Mode,
    /// Number of prefixes both providers advertise (Fig. 5's x-axis).
    pub prefixes: u32,
    /// Number of monitored flows (the paper: 100).
    pub flows: usize,
    /// Seed for the feed, flow sampling, and all simulation randomness.
    pub seed: u64,
    /// Probe rate per flow; `None` auto-scales so big stock experiments
    /// stay tractable while keeping relative measurement error < 0.1%
    /// (see `suggested_flow_rate`).
    pub rate_pps: Option<u64>,
    /// Router hardware model.
    pub cal: Calibration,
    /// Run BFD on the R2 sessions (the paper does, in both modes).
    pub bfd: bool,
    /// BFD timing (interval; detect-mult fixed at 3).
    pub bfd_interval: SimDuration,
    /// Number of controller replicas (supercharged mode).
    pub controllers: usize,
    /// Controller compute/REST latency before FLOW_MODs leave.
    pub reaction_delay: SimDuration,
    /// React to switch PORT_STATUS carrier loss in addition to BFD
    /// (ablation beyond the paper; detection drops from ~90ms to the
    /// wire latency).
    pub portstatus_failover: bool,
    /// Frame-loss probability on the controller↔switch links (failure
    /// injection: the reliable channel must repair the control plane).
    pub control_loss: f64,
    /// Keep a bounded event trace for debugging.
    pub trace: bool,
    /// Which event scheduler the world runs on. Both deliver the exact
    /// `(time, seq)` order, so results are identical; the reference
    /// heap exists for differential testing against the timer wheel.
    pub scheduler: sc_sim::SchedulerKind,
}

impl Default for LabConfig {
    fn default() -> Self {
        LabConfig {
            mode: Mode::Supercharged,
            prefixes: 1_000,
            flows: 100,
            seed: 42,
            rate_pps: None,
            cal: Calibration::nexus7k(),
            bfd: true,
            bfd_interval: SimDuration::from_millis(30),
            controllers: 1,
            reaction_delay: SimDuration::from_millis(3),
            portstatus_failover: false,
            control_loss: 0.0,
            trace: false,
            scheduler: sc_sim::SchedulerKind::default(),
        }
    }
}

/// The expected convergence budget for sizing measurement windows and
/// probe rates.
pub fn expected_convergence(cfg: &LabConfig) -> SimDuration {
    crate::harness::convergence_budget(cfg.mode, &cfg.cal, cfg.prefixes, cfg.control_loss)
}

/// Probe rate per flow: full paper rate when affordable, scaled down for
/// the long stock runs so the whole sweep stays tractable (see
/// [`crate::harness::probe_rate`]).
pub fn suggested_flow_rate(cfg: &LabConfig) -> u64 {
    crate::harness::probe_rate(cfg.rate_pps, expected_convergence(cfg), cfg.flows)
}

/// The built lab, ready to run.
pub struct ConvergenceLab {
    pub world: World,
    pub cfg: LabConfig,
    pub switch: NodeId,
    pub r1: NodeId,
    pub r2: NodeId,
    pub r3: NodeId,
    pub controllers: Vec<NodeId>,
    /// Switch ↔ controller links, one per replica (replica-divergence
    /// scripts cut or delay these).
    pub controller_links: Vec<LinkId>,
    pub source: NodeId,
    pub sink: NodeId,
    /// The link the experiment cuts (R2 ↔ switch).
    pub r2_link: LinkId,
    /// R3's switch link (scenario scripts can target the backup too).
    pub r3_link: LinkId,
    /// The provider → sink delivery links, in (R2, R3) order.
    pub sink_links: [LinkId; 2],
    /// Switch-side port numbers (needed by flow rules / diagnostics).
    pub sw_port_r1: PortId,
    pub sw_port_r2: PortId,
    pub sw_port_r3: PortId,
    /// The monitored flows' destination addresses.
    pub flow_ips: Vec<Ipv4Addr>,
    /// The advertised prefix universe.
    pub universe: Vec<Ipv4Prefix>,
    /// The feeds (R2, R3) actually originate — scenario drivers
    /// re-announce from these during churn events, so the knowledge of
    /// how they were generated stays in one place.
    pub feeds: [Vec<UpdateMsg>; 2],
}

impl ConvergenceLab {
    /// Build the full topology for `cfg`.
    pub fn build(cfg: LabConfig) -> ConvergenceLab {
        assert!(cfg.flows >= 1);
        assert!(cfg.prefixes >= 1);
        if cfg.mode == Mode::Stock {
            assert_eq!(
                cfg.controllers, 1,
                "controller count is a supercharged knob"
            );
        }
        let universe = prefix_universe(cfg.prefixes, cfg.seed);
        let flow_ips = sample_flow_ips(&universe, cfg.flows, cfg.seed);

        let mut world = World::with_scheduler(cfg.seed, cfg.scheduler);
        if cfg.trace {
            world.enable_trace(1_000_000);
            world.enable_metrics();
        }
        let lanp = LinkParams::gigabit(SimDuration::from_micros(10));

        // --- nodes ---
        let switch = world.add_node(OfSwitch::new(SwitchConfig {
            table_miss: TableMiss::L2Learn,
            ..SwitchConfig::paper_defaults("hp-e3800")
        }));
        let r1 = world.add_node(LegacyRouter::new(RouterConfig {
            name: "r1-nexus7k".into(),
            asn: 65001,
            router_id: Ipv4Addr::new(1, 1, 1, 1),
            cal: cfg.cal,
        }));
        let r2 = world.add_node(LegacyRouter::new(RouterConfig {
            name: "r2-provider1".into(),
            asn: 65002,
            router_id: Ipv4Addr::new(2, 2, 2, 2),
            cal: Calibration::instant(),
        }));
        let r3 = world.add_node(LegacyRouter::new(RouterConfig {
            name: "r3-provider2".into(),
            asn: 65003,
            router_id: Ipv4Addr::new(3, 3, 3, 3),
            cal: Calibration::instant(),
        }));
        let source = world.add_node(TrafficSource::new(
            SourceConfig::paper(
                "fpga-source",
                MAC_SOURCE,
                IP_SOURCE,
                MAC_R1,
                flow_ips.clone(),
                SimTime::MAX - SimDuration::from_secs(1), // re-windowed later
                SimTime::MAX,
            ),
            PortId(0),
        ));
        let sink = world.add_node(TrafficSink::new(SinkConfig::paper(
            "fpga-sink",
            flow_ips.clone(),
        )));

        // --- wiring (connection order fixes each node's PortId(0)) ---
        let (_, sw_port_r1, _r1_port) = world.connect(switch, r1, lanp);
        let (r2_link, sw_port_r2, _r2_port) = world.connect(switch, r2, lanp);
        let (r3_link, sw_port_r3, _r3_port) = world.connect(switch, r3, lanp);
        let (_, sw_port_src, _src_port) = world.connect(switch, source, lanp);
        let mut sw_ctrl_ports = Vec::new();
        let controllers_n = if cfg.mode == Mode::Supercharged {
            cfg.controllers
        } else {
            0
        };
        let mut ctrl_port_on_switch = Vec::new();
        for _ in 0..controllers_n {
            // Controller nodes are created after wiring (they need their
            // port id, which is always 0 — their only link); reserve the
            // switch-side connection by connecting to a placeholder is
            // not possible, so create the controller node first instead.
            ctrl_port_on_switch.push(());
        }
        // (R2, R3) → sink links.
        let (r2_sink_link, _r2_sink_port, _) = world.connect(r2, sink, lanp);
        let (r3_sink_link, _r3_sink_port, _) = world.connect(r3, sink, lanp);

        // --- controllers (supercharged only) ---
        let peer_specs = vec![
            PeerSpec {
                id: IP_R2,
                mac: MAC_R2,
                switch_port: sw_port_r2.0 as u16,
                local_pref: 200, // prefer R2 ($), the paper's policy
                router_id: Ipv4Addr::new(2, 2, 2, 2),
            },
            PeerSpec {
                id: IP_R3,
                mac: MAC_R3,
                switch_port: sw_port_r3.0 as u16,
                local_pref: 100,
                router_id: Ipv4Addr::new(3, 3, 3, 3),
            },
        ];
        let mut controllers = Vec::new();
        let mut controller_links = Vec::new();
        for ci in 0..controllers_n {
            let ctrl_cfg = ControllerConfig {
                name: format!("supercharger-{ci}"),
                asn: 65000,
                router_id: Ipv4Addr::new(99, 99, 99, ci as u8 + 1),
                ip: controller_ip(ci),
                mac: controller_mac(ci),
                engine: supercharger::EngineConfig::new(vnh_pool(), peer_specs.clone()),
                router: RouterLink {
                    router_ip: IP_R1,
                    router_mac: MAC_R1,
                    local_port: 179,
                    remote_port: (40000 + ci) as u16,
                    hold_time: SimDuration::from_secs(90),
                },
                peers: vec![
                    PeerLink {
                        spec: peer_specs[0],
                        local_port: (41000 + ci * 100) as u16,
                        remote_port: 179,
                        hold_time: SimDuration::from_secs(90),
                        bfd: cfg.bfd.then(|| BfdConfig {
                            local_discr: (100 + ci * 10) as u32,
                            desired_min_tx: cfg.bfd_interval,
                            required_min_rx: cfg.bfd_interval,
                            detect_mult: 3,
                        }),
                    },
                    PeerLink {
                        spec: peer_specs[1],
                        local_port: (41001 + ci * 100) as u16,
                        remote_port: 179,
                        hold_time: SimDuration::from_secs(90),
                        bfd: None,
                    },
                ],
                switch: SwitchLink {
                    switch_ip: IP_SWITCH,
                    switch_mac: MAC_SWITCH,
                    local_port: (45000 + ci) as u16,
                },
                reaction_delay: cfg.reaction_delay,
                rule_grace: SimDuration::from_secs(600),
                portstatus_failover: cfg.portstatus_failover,
                seed: cfg.seed,
                echo_interval: None,
                ack_timeout: SimDuration::from_millis(50),
                max_flowmod_attempts: 5,
            };
            let ctrl = world.add_node(Controller::new(ctrl_cfg, PortId(0)));
            let ctrl_link = LinkParams {
                loss: cfg.control_loss,
                ..lanp
            };
            let (ctrl_l, sw_port_ctrl, _) = world.connect(switch, ctrl, ctrl_link);
            sw_ctrl_ports.push(sw_port_ctrl);
            controller_links.push(ctrl_l);
            controllers.push(ctrl);
        }

        // --- switch port registration + control channels ---
        {
            let sw = world.node_mut::<OfSwitch>(switch);
            sw.register_data_port(sw_port_r1);
            sw.register_data_port(sw_port_r2);
            sw.register_data_port(sw_port_r3);
            sw.register_data_port(sw_port_src);
            for (ci, p) in sw_ctrl_ports.iter().enumerate() {
                sw.register_data_port(*p);
                sw.attach_controller(sc_sim::ChannelPort::listen(
                    sc_net::channel::ChannelConfig::default(),
                    sc_net::wire::UdpEndpoints {
                        src_mac: MAC_SWITCH,
                        dst_mac: controller_mac(ci),
                        src_ip: IP_SWITCH,
                        dst_ip: controller_ip(ci),
                        src_port: sc_net::wire::udp::port::OPENFLOW,
                        dst_port: (45000 + ci) as u16,
                    },
                    *p,
                    TimerToken(0), // reassigned by attach_controller
                ));
            }
        }

        // --- R1 ---
        {
            let r1n = world.node_mut::<LegacyRouter>(r1);
            r1n.add_interface(Interface {
                port: PortId(0),
                ip: IP_R1,
                mac: MAC_R1,
                subnet: lan(),
            });
            match cfg.mode {
                Mode::Stock => {
                    r1n.add_peer(PeerConfig {
                        local_pref: 200,
                        local_port: 40000,
                        remote_port: 179,
                        bfd: cfg.bfd.then_some(BfdConfig {
                            local_discr: 12,
                            desired_min_tx: cfg.bfd_interval,
                            required_min_rx: cfg.bfd_interval,
                            detect_mult: 3,
                        }),
                        ..PeerConfig::ebgp(IP_R2, MAC_R2, true)
                    });
                    r1n.add_peer(PeerConfig {
                        local_pref: 100,
                        local_port: 40001,
                        remote_port: 179,
                        ..PeerConfig::ebgp(IP_R3, MAC_R3, true)
                    });
                }
                Mode::Supercharged => {
                    for ci in 0..controllers_n {
                        r1n.add_peer(PeerConfig {
                            local_port: (40000 + ci) as u16,
                            remote_port: 179,
                            ..PeerConfig::ebgp(controller_ip(ci), controller_mac(ci), true)
                        });
                    }
                }
            }
        }

        // --- R2 / R3 (providers) ---
        let feed_r2 = generate_feed_for(
            &FeedConfig::new(cfg.prefixes, cfg.seed, IP_R2, 65002),
            &universe,
        );
        let feed_r3 = generate_feed_for(
            &FeedConfig::new(cfg.prefixes, cfg.seed, IP_R3, 65003),
            &universe,
        );
        for (node, ip, mac, sink_net, sink_ip, feed, discr_base) in [
            (
                r2,
                IP_R2,
                MAC_R2,
                "192.168.2.0/24",
                Ipv4Addr::new(192, 168, 2, 100),
                &feed_r2,
                20u32,
            ),
            (
                r3,
                IP_R3,
                MAC_R3,
                "192.168.3.0/24",
                Ipv4Addr::new(192, 168, 3, 100),
                &feed_r3,
                30u32,
            ),
        ] {
            let rn = world.node_mut::<LegacyRouter>(node);
            rn.add_interface(Interface {
                port: PortId(0),
                ip,
                mac,
                subnet: lan(),
            });
            let sink_subnet: Ipv4Prefix = sink_net.parse().unwrap();
            rn.add_interface(Interface {
                port: PortId(1),
                ip: Ipv4Addr::from(sink_subnet.raw_bits() + 1),
                mac: MacAddr([0x02, 0x20, 0, 0, 0, mac.octets()[5]]),
                subnet: sink_subnet,
            });
            rn.add_static_arp(sink_ip, MAC_SINK);
            rn.add_static_route(StaticRoute {
                prefix: Ipv4Prefix::DEFAULT,
                next_hop: sink_ip,
            });
            // BGP sessions: to R1 directly (stock) or to each controller
            // (supercharged).
            match cfg.mode {
                Mode::Stock => {
                    let is_r2 = ip == IP_R2;
                    rn.add_peer(PeerConfig {
                        local_port: 179,
                        remote_port: if is_r2 { 40000 } else { 40001 },
                        bfd: (cfg.bfd && is_r2).then_some(BfdConfig {
                            local_discr: discr_base,
                            desired_min_tx: cfg.bfd_interval,
                            required_min_rx: cfg.bfd_interval,
                            detect_mult: 3,
                        }),
                        originate: feed.clone(),
                        ..PeerConfig::ebgp(IP_R1, MAC_R1, false)
                    });
                }
                Mode::Supercharged => {
                    let is_r2 = ip == IP_R2;
                    for ci in 0..controllers_n {
                        rn.add_peer(PeerConfig {
                            local_port: 179,
                            remote_port: (41000 + ci * 100 + if is_r2 { 0 } else { 1 }) as u16,
                            bfd: (cfg.bfd && is_r2).then(|| BfdConfig {
                                local_discr: discr_base + ci as u32,
                                desired_min_tx: cfg.bfd_interval,
                                required_min_rx: cfg.bfd_interval,
                                detect_mult: 3,
                            }),
                            originate: feed.clone(),
                            ..PeerConfig::ebgp(controller_ip(ci), controller_mac(ci), false)
                        });
                    }
                }
            }
        }

        ConvergenceLab {
            world,
            cfg,
            switch,
            r1,
            r2,
            r3,
            controllers,
            controller_links,
            source,
            sink,
            r2_link,
            r3_link,
            sink_links: [r2_sink_link, r3_sink_link],
            sw_port_r1,
            sw_port_r2,
            sw_port_r3,
            flow_ips,
            universe,
            feeds: [feed_r2, feed_r3],
        }
    }

    /// Run until R1's control plane has fully converged (all feed
    /// prefixes installed, walker quiescent). Returns the instant of
    /// quiescence. Panics if convergence takes implausibly long.
    pub fn run_until_converged(&mut self) -> SimTime {
        // Generous budget: feed transfer + (possibly two) full walks.
        let budget = SimDuration::from_secs(60)
            + self.cfg.cal.fib_entry_update * (self.cfg.prefixes as u64 * 3);
        let deadline = self.world.now() + budget;
        loop {
            self.world.run_for(SimDuration::from_millis(500));
            let installed = {
                let r1 = self.world.node::<LegacyRouter>(self.r1);
                r1.fib().len() >= self.cfg.prefixes as usize && r1.is_quiescent()
            };
            if installed && self.bfd_ready() {
                // One settle round for in-flight control traffic.
                self.world.run_for(SimDuration::from_millis(500));
                let r1 = self.world.node::<LegacyRouter>(self.r1);
                if r1.fib().len() >= self.cfg.prefixes as usize
                    && r1.is_quiescent()
                    && self.bfd_ready()
                {
                    return self.world.now();
                }
            }
            assert!(
                self.world.now() < deadline,
                "control plane failed to converge within {budget} ({} of {} prefixes installed)",
                self.world.node::<LegacyRouter>(self.r1).fib().len(),
                self.cfg.prefixes
            );
        }
    }

    /// All configured BFD sessions Up with the *fast* negotiated
    /// detection time (a long-running lab never injects failures while
    /// BFD is still in its slow bootstrap cadence).
    pub fn bfd_ready(&self) -> bool {
        if !self.cfg.bfd {
            return true;
        }
        let fast = self.cfg.bfd_interval * 4; // detect_mult(3) + margin
        match self.cfg.mode {
            Mode::Stock => match self.world.node::<LegacyRouter>(self.r1).bfd_snapshot(IP_R2) {
                Some((sc_bfd::BfdState::Up, det)) => det <= fast,
                _ => false,
            },
            Mode::Supercharged => self.controllers.iter().all(|&c| {
                match self.world.node::<Controller>(c).bfd_snapshot(IP_R2) {
                    Some((sc_bfd::BfdState::Up, det)) => det <= fast,
                    _ => false,
                }
            }),
        }
    }
}
