//! Full-stack lab tests: both halves of Fig. 5 at reduced scale, the
//! controller-replication story, and the headline claim — the
//! supercharged router converges in ~150 ms regardless of table size
//! while the stock router's convergence grows linearly.

use sc_lab::{run_convergence_trial, LabConfig, Mode};
use sc_net::SimDuration;

fn base(mode: Mode, prefixes: u32) -> LabConfig {
    LabConfig {
        mode,
        prefixes,
        flows: 30,
        seed: 7,
        ..LabConfig::default()
    }
}

#[test]
fn supercharged_converges_within_150ms_regardless_of_position() {
    let r = run_convergence_trial(base(Mode::Supercharged, 1_000));
    assert_eq!(r.unrecovered, 0, "all flows recovered");
    assert_eq!(r.flow_rewrites, Some(1), "one backup-group, one rewrite");
    let stats = r.stats();
    // The paper: systematically within ~150ms. Allow the BFD-jitter
    // envelope: detection ≤90ms + reaction 3ms + install ~17ms + wire.
    assert!(
        stats.max <= SimDuration::from_millis(150),
        "worst flow took {}",
        stats.max
    );
    assert!(
        stats.min >= SimDuration::from_millis(30),
        "faster than detection is impossible, got {}",
        stats.min
    );
    // Prefix-independence: the spread across flows is the single rule
    // flip — every flow recovers at the same instant (within one probe
    // gap + measurement quantum).
    let spread = stats.max - stats.min;
    assert!(
        spread <= SimDuration::from_millis(35),
        "supercharged recovery must be flat across flows, spread {spread}"
    );
    let detect = r.detected_at.expect("controller saw the failure") - r.fail_at;
    assert!(
        detect <= SimDuration::from_millis(91),
        "BFD budget, got {detect}"
    );
}

#[test]
fn stock_converges_linearly_with_table_size() {
    let r = run_convergence_trial(base(Mode::Stock, 1_000));
    assert_eq!(r.unrecovered, 0);
    let stats = r.stats();
    let expected_max = sc_router::Calibration::nexus7k().expected_full_walk(1_000);
    // Worst flow ≈ detection + full walk.
    let got = stats.max.as_secs_f64();
    let model = expected_max.as_secs_f64() + 0.09;
    assert!(
        (got / model - 1.0).abs() < 0.25,
        "stock worst-case {got:.3}s vs model {model:.3}s"
    );
    // First flow recovers no earlier than ~375ms (paper's best case).
    assert!(
        stats.min >= SimDuration::from_millis(300),
        "best case {}",
        stats.min
    );
    // The distribution is spread (flows recover as the walk reaches
    // their prefix): median must sit well between min and max — not
    // collapsed like the supercharged case.
    assert!(stats.median > stats.min + (stats.max - stats.min) / 10);
    assert!(stats.median < stats.max - (stats.max - stats.min) / 10);
}

#[test]
fn supercharging_wins_by_a_growing_factor() {
    // At 2k prefixes the stock walk is ≈0.9s while the supercharged
    // recovery stays ~0.11s: the gap grows with the table, which is the
    // paper's core claim (×900 at 500k — checked at full scale by the
    // fig5 bench, not in unit tests).
    let stock = run_convergence_trial(base(Mode::Stock, 2_000));
    let sup = run_convergence_trial(base(Mode::Supercharged, 2_000));
    let ratio = stock.stats().max.as_secs_f64() / sup.stats().max.as_secs_f64();
    assert!(ratio > 4.0, "speedup only {ratio:.1}x");
    // And supercharged does not depend on the table size.
    let sup_small = run_convergence_trial(base(Mode::Supercharged, 200));
    let d = (sup.stats().max.as_secs_f64() - sup_small.stats().max.as_secs_f64()).abs();
    assert!(
        d < 0.05,
        "supercharged convergence must be prefix-independent (Δ {d:.3}s)"
    );
}

#[test]
fn replicated_controllers_survive_primary_loss() {
    let cfg = LabConfig {
        controllers: 2,
        ..base(Mode::Supercharged, 500)
    };
    // Build manually so we can kill the primary before the failure.
    let mut lab = sc_lab::ConvergenceLab::build(cfg.clone());
    lab.run_until_converged();

    // Kill the primary controller, then R2, and verify the backup does
    // the Listing-2 rewrite alone.
    let primary = lab.controllers[0];
    let t0 = lab.world.now();
    let kill_at = t0 + SimDuration::from_millis(500);
    lab.world.schedule(kill_at, move |w| w.crash_node(primary));
    let link = lab.r2_link;
    let fail_at = kill_at + SimDuration::from_secs(2);
    lab.world
        .schedule(fail_at, move |w| w.set_link_up(link, false));
    lab.world.run_until(fail_at + SimDuration::from_secs(2));

    let backup = lab
        .world
        .node::<supercharger::Controller>(lab.controllers[1]);
    let failover = backup
        .events
        .iter()
        .find_map(|(t, e)| match e {
            supercharger::controller::ControllerEvent::FailoverIssued { rewrites, .. }
                if *t >= fail_at =>
            {
                Some((*t, *rewrites))
            }
            _ => None,
        })
        .expect("backup controller performed the failover");
    assert!(
        failover.0 - fail_at <= SimDuration::from_millis(120),
        "backup failover took {}",
        failover.0 - fail_at
    );
    assert_eq!(failover.1, 1);
    // The switch now steers the VMAC to R3.
    let sw = lab.world.node::<sc_openflow::OfSwitch>(lab.switch);
    let vmac_rules: Vec<_> = sw
        .table()
        .entries()
        .iter()
        .filter(|e| {
            e.matcher
                .eth_dst
                .map(|m| m.virtual_index().is_some())
                .unwrap_or(false)
        })
        .collect();
    assert!(!vmac_rules.is_empty());
    for rule in vmac_rules {
        assert!(
            rule.actions
                .contains(&sc_openflow::Action::Output(lab.sw_port_r3.0 as u16)),
            "rule still points at the dead provider: {rule}"
        );
    }
}

#[test]
fn trial_metadata_is_sound() {
    let r = run_convergence_trial(base(Mode::Supercharged, 300));
    assert_eq!(r.prefixes, 300);
    assert_eq!(r.per_flow.len(), 30);
    assert!(r.rate_pps >= 1_000 && r.rate_pps <= 14_000);
    assert!(r.detected_at.unwrap() > r.fail_at);
    assert!(r.setup_time < r.fail_at);
}

#[test]
fn carrier_detection_beats_bfd() {
    // Ablation beyond the paper: with PORT_STATUS failover the detection
    // term (~90ms of BFD) collapses to the wire+control-channel latency,
    // pushing total convergence well under 50ms.
    let cfg = LabConfig {
        portstatus_failover: true,
        ..base(Mode::Supercharged, 500)
    };
    let r = run_convergence_trial(cfg);
    assert_eq!(r.unrecovered, 0);
    let with_carrier = r.stats().max;
    assert!(
        with_carrier <= SimDuration::from_millis(50),
        "carrier-based failover took {with_carrier}"
    );
    let bfd_only = run_convergence_trial(base(Mode::Supercharged, 500));
    assert!(
        with_carrier < bfd_only.stats().max,
        "carrier detection must beat BFD ({} vs {})",
        with_carrier,
        bfd_only.stats().max
    );
}

#[test]
fn lossy_control_plane_is_repaired_by_the_channel() {
    // Failure injection: 10% frame loss on the controller↔switch link.
    // OpenFlow rides the reliable channel, so the FLOW_MODs still land;
    // convergence may pay retransmission rounds (RTO 200ms) but every
    // flow must recover.
    let cfg = LabConfig {
        control_loss: 0.10,
        ..base(Mode::Supercharged, 500)
    };
    let r = run_convergence_trial(cfg);
    assert_eq!(r.unrecovered, 0, "all flows recovered despite control loss");
    let max = r.stats().max;
    assert!(
        max <= SimDuration::from_millis(800),
        "convergence with lossy control plane took {max}"
    );
}
