//! **sc-mrt** — RFC 6396 MRT dumps and timed route replay.
//!
//! The paper loads its routers with "actual BGP routes collected from
//! the RIPE RIS dataset". RIS publishes those collections as MRT files
//! (RFC 6396): `TABLE_DUMP_V2` RIB snapshots (`bview.*`) and
//! `BGP4MP`/`BGP4MP_ET` timestamped UPDATE streams (`updates.*`). This
//! crate reads and writes both, and turns an update stream into a
//! replay schedule that preserves the *recorded inter-arrival timing* —
//! the burst structure that actually stresses the event kernel and the
//! batched RIB path, which synthetic table generation alone cannot
//! reproduce.
//!
//! Three layers:
//!
//! * [`records`] — the wire format. [`records::MrtReader`] is a
//!   zero-copy iterator over a byte slice (each record is a borrowed
//!   view; nothing is copied until a record is decoded), and
//!   [`records::MrtWriter`] emits the same format so `sc-routegen` can
//!   build deterministic offline fixtures (real archives are not
//!   available offline; encode→decode round-trips are proptest-pinned).
//!   BGP message bodies and path attributes reuse `sc_bgp`'s decoders.
//! * [`replay`] — [`replay::RibSnapshot`] loads a `TABLE_DUMP_V2` dump
//!   into per-peer route lists (what seeds the provider feeds), and
//!   [`replay::ReplaySchedule`] compiles a `BGP4MP` stream into
//!   pre-scheduled world events with a [`replay::TimeScale`] warp knob.
//! * consumers — `sc-scenarios` wires a schedule in as
//!   `FeedSource::MrtReplay`, and `sc-bench replay` measures the kernel
//!   against a paper-scale generated stream.

pub mod records;
pub mod replay;

pub use records::{
    Bgp4mpMessage, MrtError, MrtReader, MrtRecord, MrtWriter, PeerIndexTable, PeerTableEntry,
    RawRecord, RibEntry, RibEntryRecord,
};
pub use replay::{pack_feed, NextHopRewriter, ReplayEvent, ReplaySchedule, RibSnapshot, TimeScale};
