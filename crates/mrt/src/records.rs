//! The MRT wire format (RFC 6396).
//!
//! Every record starts with the 12-byte common header — a 4-byte
//! timestamp (seconds), 2-byte type, 2-byte subtype and a 4-byte body
//! length. `BGP4MP_ET` records (RFC 6396 §4.4.3) prepend a 4-byte
//! microsecond field to the body (counted in the length); the reader
//! strips it into [`RawRecord::micros`] so consumers see one uniform
//! `(secs, micros)` timestamp.
//!
//! Supported records — the subset RIS archives are made of:
//!
//! * `TABLE_DUMP_V2` / `PEER_INDEX_TABLE` — the collector's peer table,
//!   referenced by index from every RIB entry;
//! * `TABLE_DUMP_V2` / `RIB_IPV4_UNICAST` — one prefix with its
//!   per-peer attribute entries (a `bview` snapshot row);
//! * `BGP4MP(_ET)` / `MESSAGE` — one timestamped BGP message on a
//!   peering (an `updates` stream row);
//! * `BGP4MP(_ET)` / `STATE_CHANGE` — FSM transitions (parsed so real
//!   archives don't choke the reader; replay ignores them).
//!
//! Reading is zero-copy: [`MrtReader`] iterates `RawRecord` views whose
//! bodies borrow the input slice — framing only, nothing is copied or
//! parsed until [`MrtRecord::decode`] is called on a record you care
//! about. BGP message bodies and path attributes decode through
//! `sc_bgp`, so MRT-carried routes are bit-compatible with what the
//! simulated sessions speak.

use sc_bgp::attrs::{decode_attrs, encode_attrs, RouteAttrs};
use sc_bgp::msg::{decode_prefixes, encode_prefix, prefix_wire_len, BgpMessage};
use sc_net::wire::{be16, be32, WireError};
use sc_net::Ipv4Prefix;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// MRT record types (RFC 6396 §4).
pub const TYPE_TABLE_DUMP_V2: u16 = 13;
pub const TYPE_BGP4MP: u16 = 16;
pub const TYPE_BGP4MP_ET: u16 = 17;

/// `TABLE_DUMP_V2` subtypes (§4.3).
pub const SUB_PEER_INDEX_TABLE: u16 = 1;
pub const SUB_RIB_IPV4_UNICAST: u16 = 2;

/// `BGP4MP` subtypes (§4.4).
pub const SUB_BGP4MP_STATE_CHANGE: u16 = 0;
pub const SUB_BGP4MP_MESSAGE: u16 = 1;

/// The MRT common header length (timestamp + type + subtype + length).
pub const HEADER_LEN: usize = 12;

/// Errors from reading an MRT stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MrtError {
    /// The stream ends mid-record; `at` is the byte offset of the
    /// record that could not be completed (a writer died mid-record —
    /// everything before `at` parsed fine).
    Truncated { at: usize },
    /// A structurally invalid MRT field.
    Bad(&'static str),
    /// A nested BGP wire-format error (message body or attributes).
    Wire(WireError),
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::Truncated { at } => write!(f, "MRT stream truncated at byte {at}"),
            MrtError::Bad(what) => write!(f, "bad MRT field: {what}"),
            MrtError::Wire(e) => write!(f, "bad BGP payload in MRT record: {e}"),
        }
    }
}

impl From<WireError> for MrtError {
    fn from(e: WireError) -> MrtError {
        MrtError::Wire(e)
    }
}

/// One framed record: header fields plus a borrowed body. For
/// `BGP4MP_ET` the leading microsecond field has been stripped into
/// `micros` (zero for every other type), so `(ts_secs, micros)` is the
/// record's uniform timestamp.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RawRecord<'a> {
    pub ts_secs: u32,
    pub micros: u32,
    pub rtype: u16,
    pub subtype: u16,
    pub body: &'a [u8],
}

/// Zero-copy iterator over the records of an MRT byte slice (e.g. a
/// whole mmap'd file). Yields `Err` once on a malformed/truncated
/// record, then fuses.
pub struct MrtReader<'a> {
    buf: &'a [u8],
    pos: usize,
    dead: bool,
}

impl<'a> MrtReader<'a> {
    pub fn new(buf: &'a [u8]) -> MrtReader<'a> {
        MrtReader {
            buf,
            pos: 0,
            dead: false,
        }
    }

    /// Byte offset of the next unread record.
    pub fn offset(&self) -> usize {
        self.pos
    }
}

impl<'a> Iterator for MrtReader<'a> {
    type Item = Result<RawRecord<'a>, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.dead || self.pos == self.buf.len() {
            return None;
        }
        let at = self.pos;
        let rest = &self.buf[at..];
        if rest.len() < HEADER_LEN {
            self.dead = true;
            return Some(Err(MrtError::Truncated { at }));
        }
        let ts_secs = be32(rest, 0);
        let rtype = be16(rest, 4);
        let subtype = be16(rest, 6);
        let len = be32(rest, 8) as usize;
        if rest.len() < HEADER_LEN + len {
            self.dead = true;
            return Some(Err(MrtError::Truncated { at }));
        }
        let mut body = &rest[HEADER_LEN..HEADER_LEN + len];
        let mut micros = 0;
        if rtype == TYPE_BGP4MP_ET {
            if body.len() < 4 {
                self.dead = true;
                return Some(Err(MrtError::Truncated { at }));
            }
            micros = be32(body, 0);
            if micros >= 1_000_000 {
                self.dead = true;
                return Some(Err(MrtError::Bad("ET microseconds >= 1s")));
            }
            body = &body[4..];
        }
        self.pos = at + HEADER_LEN + len;
        Some(Ok(RawRecord {
            ts_secs,
            micros,
            rtype,
            subtype,
            body,
        }))
    }
}

/// One peer of a `PEER_INDEX_TABLE` (IPv4 peers only — the workspace
/// models an IPv4 world; both 2- and 4-byte AS entries decode, the
/// latter must fit `u16`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PeerTableEntry {
    pub bgp_id: Ipv4Addr,
    pub addr: Ipv4Addr,
    pub asn: u16,
}

/// The collector's peer table; every RIB entry names a peer by index
/// into it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PeerIndexTable {
    pub collector_id: Ipv4Addr,
    pub view: String,
    pub peers: Vec<PeerTableEntry>,
}

/// One peer's route for a RIB record's prefix.
#[derive(Clone, PartialEq, Debug)]
pub struct RibEntry {
    /// Index into the dump's [`PeerIndexTable`].
    pub peer_index: u16,
    /// When the route was originated (MRT epoch seconds).
    pub originated: u32,
    pub attrs: Arc<RouteAttrs>,
}

/// A `RIB_IPV4_UNICAST` record: one prefix, each peer's route for it.
#[derive(Clone, PartialEq, Debug)]
pub struct RibEntryRecord {
    pub seq: u32,
    pub prefix: Ipv4Prefix,
    pub entries: Vec<RibEntry>,
}

/// A `BGP4MP(_ET)` message record: one timestamped BGP message on one
/// peering.
#[derive(Clone, PartialEq, Debug)]
pub struct Bgp4mpMessage {
    pub peer_as: u16,
    pub local_as: u16,
    pub peer_ip: Ipv4Addr,
    pub local_ip: Ipv4Addr,
    pub msg: BgpMessage,
}

/// A decoded record.
#[derive(Clone, PartialEq, Debug)]
pub enum MrtRecord {
    PeerIndex(PeerIndexTable),
    RibIpv4(RibEntryRecord),
    Message(Bgp4mpMessage),
    /// A `BGP4MP` FSM transition: `(peering, old_state, new_state)`.
    StateChange(Bgp4mpMessage, u16, u16),
    /// A record type/subtype this model doesn't interpret (real
    /// archives interleave e.g. IPv6 RIB records; callers skip these).
    Unknown {
        rtype: u16,
        subtype: u16,
    },
}

/// Peer-type flag: 4-byte AS number follows (RFC 6396 §4.3.1).
const PEER_TYPE_AS4: u8 = 0x02;
/// Peer-type flag: IPv6 peer address.
const PEER_TYPE_IPV6: u8 = 0x01;

fn need(body: &[u8], n: usize, what: &'static str) -> Result<(), MrtError> {
    if body.len() < n {
        Err(MrtError::Bad(what))
    } else {
        Ok(())
    }
}

fn ip4(body: &[u8], at: usize) -> Ipv4Addr {
    Ipv4Addr::new(body[at], body[at + 1], body[at + 2], body[at + 3])
}

/// Decode one NLRI-form prefix at the head of `body`; returns the
/// prefix and the bytes consumed.
fn decode_one_prefix(body: &[u8]) -> Result<(Ipv4Prefix, usize), MrtError> {
    need(body, 1, "rib prefix")?;
    let n = 1 + (body[0] as usize).div_ceil(8);
    need(body, n, "rib prefix")?;
    let mut v = decode_prefixes(&body[..n])?;
    Ok((v.pop().expect("one prefix"), n))
}

impl MrtRecord {
    /// Decode a framed record. Types outside the supported set come
    /// back as [`MrtRecord::Unknown`] rather than an error, so a reader
    /// can skip through a heterogeneous archive.
    pub fn decode(raw: &RawRecord<'_>) -> Result<MrtRecord, MrtError> {
        match (raw.rtype, raw.subtype) {
            (TYPE_TABLE_DUMP_V2, SUB_PEER_INDEX_TABLE) => decode_peer_index(raw.body),
            (TYPE_TABLE_DUMP_V2, SUB_RIB_IPV4_UNICAST) => decode_rib_ipv4(raw.body),
            (TYPE_BGP4MP | TYPE_BGP4MP_ET, SUB_BGP4MP_MESSAGE) => decode_bgp4mp(raw.body, false),
            (TYPE_BGP4MP | TYPE_BGP4MP_ET, SUB_BGP4MP_STATE_CHANGE) => {
                decode_bgp4mp(raw.body, true)
            }
            (rtype, subtype) => Ok(MrtRecord::Unknown { rtype, subtype }),
        }
    }
}

fn decode_peer_index(body: &[u8]) -> Result<MrtRecord, MrtError> {
    need(body, 8, "peer index header")?;
    let collector_id = ip4(body, 0);
    let view_len = be16(body, 4) as usize;
    need(body, 8 + view_len, "peer index view name")?;
    let view = std::str::from_utf8(&body[6..6 + view_len])
        .map_err(|_| MrtError::Bad("peer index view name utf8"))?
        .to_string();
    let count = be16(body, 6 + view_len) as usize;
    let mut at = 8 + view_len;
    let mut peers = Vec::with_capacity(count);
    for _ in 0..count {
        need(body, at + 1, "peer entry type")?;
        let ty = body[at];
        if ty & PEER_TYPE_IPV6 != 0 {
            return Err(MrtError::Bad("IPv6 peer in an IPv4 model"));
        }
        let as_len = if ty & PEER_TYPE_AS4 != 0 { 4 } else { 2 };
        need(body, at + 1 + 4 + 4 + as_len, "peer entry")?;
        let bgp_id = ip4(body, at + 1);
        let addr = ip4(body, at + 5);
        let asn = if as_len == 4 {
            let v = be32(body, at + 9);
            u16::try_from(v).map_err(|_| MrtError::Bad("4-byte AS exceeds u16 model"))?
        } else {
            be16(body, at + 9)
        };
        peers.push(PeerTableEntry { bgp_id, addr, asn });
        at += 1 + 4 + 4 + as_len;
    }
    if at != body.len() {
        return Err(MrtError::Bad("peer index trailing bytes"));
    }
    Ok(MrtRecord::PeerIndex(PeerIndexTable {
        collector_id,
        view,
        peers,
    }))
}

fn decode_rib_ipv4(body: &[u8]) -> Result<MrtRecord, MrtError> {
    need(body, 4, "rib header")?;
    let seq = be32(body, 0);
    let (prefix, plen) = decode_one_prefix(&body[4..])?;
    let mut at = 4 + plen;
    need(body, at + 2, "rib entry count")?;
    let count = be16(body, at) as usize;
    at += 2;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        need(body, at + 8, "rib entry header")?;
        let peer_index = be16(body, at);
        let originated = be32(body, at + 2);
        let alen = be16(body, at + 6) as usize;
        need(body, at + 8 + alen, "rib entry attrs")?;
        let attrs = Arc::new(decode_attrs(&body[at + 8..at + 8 + alen])?);
        entries.push(RibEntry {
            peer_index,
            originated,
            attrs,
        });
        at += 8 + alen;
    }
    if at != body.len() {
        return Err(MrtError::Bad("rib trailing bytes"));
    }
    Ok(MrtRecord::RibIpv4(RibEntryRecord {
        seq,
        prefix,
        entries,
    }))
}

fn decode_bgp4mp(body: &[u8], state_change: bool) -> Result<MrtRecord, MrtError> {
    // peer AS (2), local AS (2), ifindex (2), AFI (2), peer IP, local IP.
    need(body, 8, "bgp4mp header")?;
    let peer_as = be16(body, 0);
    let local_as = be16(body, 2);
    let afi = be16(body, 6);
    if afi != 1 {
        return Err(MrtError::Bad("bgp4mp AFI (IPv4 only)"));
    }
    need(body, 16, "bgp4mp addresses")?;
    let peer_ip = ip4(body, 8);
    let local_ip = ip4(body, 12);
    let rest = &body[16..];
    if state_change {
        need(rest, 4, "state change states")?;
        if rest.len() != 4 {
            return Err(MrtError::Bad("state change trailing bytes"));
        }
        let peering = Bgp4mpMessage {
            peer_as,
            local_as,
            peer_ip,
            local_ip,
            msg: BgpMessage::Keepalive, // placeholder; states carry the info
        };
        Ok(MrtRecord::StateChange(
            peering,
            be16(rest, 0),
            be16(rest, 2),
        ))
    } else {
        let msg = BgpMessage::decode(rest)?;
        Ok(MrtRecord::Message(Bgp4mpMessage {
            peer_as,
            local_as,
            peer_ip,
            local_ip,
            msg,
        }))
    }
}

/// Streaming MRT encoder: the mirror of [`MrtReader`], emitting the
/// exact subset the reader supports. Record lengths are backpatched in
/// place (single pass, like `BgpMessage::encode_into`).
#[derive(Default)]
pub struct MrtWriter {
    out: Vec<u8>,
}

impl MrtWriter {
    pub fn new() -> MrtWriter {
        MrtWriter::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    pub fn len(&self) -> usize {
        self.out.len()
    }

    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Start a record; returns the offset of the length field for
    /// [`MrtWriter::finish_record`].
    fn start_record(&mut self, ts_secs: u32, rtype: u16, subtype: u16) -> usize {
        self.out.extend_from_slice(&ts_secs.to_be_bytes());
        self.out.extend_from_slice(&rtype.to_be_bytes());
        self.out.extend_from_slice(&subtype.to_be_bytes());
        let len_at = self.out.len();
        self.out.extend_from_slice(&[0; 4]);
        len_at
    }

    fn finish_record(&mut self, len_at: usize) {
        let len = (self.out.len() - len_at - 4) as u32;
        self.out[len_at..len_at + 4].copy_from_slice(&len.to_be_bytes());
    }

    /// Emit the `PEER_INDEX_TABLE` (must precede any RIB record, per
    /// RFC 6396 §4.3.1).
    pub fn peer_index_table(
        &mut self,
        ts_secs: u32,
        collector_id: Ipv4Addr,
        view: &str,
        peers: &[PeerTableEntry],
    ) {
        let len_at = self.start_record(ts_secs, TYPE_TABLE_DUMP_V2, SUB_PEER_INDEX_TABLE);
        self.out.extend_from_slice(&collector_id.octets());
        assert!(view.len() <= u16::MAX as usize);
        self.out
            .extend_from_slice(&(view.len() as u16).to_be_bytes());
        self.out.extend_from_slice(view.as_bytes());
        self.out
            .extend_from_slice(&(peers.len() as u16).to_be_bytes());
        for p in peers {
            self.out.push(0); // IPv4 peer, 2-byte AS
            self.out.extend_from_slice(&p.bgp_id.octets());
            self.out.extend_from_slice(&p.addr.octets());
            self.out.extend_from_slice(&p.asn.to_be_bytes());
        }
        self.finish_record(len_at);
    }

    /// Emit one `RIB_IPV4_UNICAST` record.
    pub fn rib_ipv4(&mut self, ts_secs: u32, seq: u32, prefix: Ipv4Prefix, entries: &[RibEntry]) {
        let len_at = self.start_record(ts_secs, TYPE_TABLE_DUMP_V2, SUB_RIB_IPV4_UNICAST);
        self.out.extend_from_slice(&seq.to_be_bytes());
        encode_prefix(prefix, &mut self.out);
        self.out
            .extend_from_slice(&(entries.len() as u16).to_be_bytes());
        for e in entries {
            self.out.extend_from_slice(&e.peer_index.to_be_bytes());
            self.out.extend_from_slice(&e.originated.to_be_bytes());
            let alen_at = self.out.len();
            self.out.extend_from_slice(&[0; 2]);
            encode_attrs(&e.attrs, &mut self.out);
            let alen = (self.out.len() - alen_at - 2) as u16;
            self.out[alen_at..alen_at + 2].copy_from_slice(&alen.to_be_bytes());
        }
        self.finish_record(len_at);
    }

    /// Emit one `BGP4MP` (or, with `micros`, `BGP4MP_ET`) message
    /// record.
    pub fn bgp4mp_message(&mut self, ts_secs: u32, micros: Option<u32>, peering: &Bgp4mpMessage) {
        let rtype = if micros.is_some() {
            TYPE_BGP4MP_ET
        } else {
            TYPE_BGP4MP
        };
        let len_at = self.start_record(ts_secs, rtype, SUB_BGP4MP_MESSAGE);
        if let Some(us) = micros {
            assert!(us < 1_000_000, "ET microseconds must be < 1s");
            self.out.extend_from_slice(&us.to_be_bytes());
        }
        self.out.extend_from_slice(&peering.peer_as.to_be_bytes());
        self.out.extend_from_slice(&peering.local_as.to_be_bytes());
        self.out.extend_from_slice(&0u16.to_be_bytes()); // ifindex
        self.out.extend_from_slice(&1u16.to_be_bytes()); // AFI: IPv4
        self.out.extend_from_slice(&peering.peer_ip.octets());
        self.out.extend_from_slice(&peering.local_ip.octets());
        let mut msg = Vec::new();
        peering.msg.encode_into(&mut msg);
        self.out.extend_from_slice(&msg);
        self.finish_record(len_at);
    }
}

/// Exact body size of a RIB record (diagnostic; the writer backpatches
/// rather than pre-computing).
pub fn rib_body_len(prefix: Ipv4Prefix, entries: &[RibEntry]) -> usize {
    4 + prefix_wire_len(prefix)
        + 2
        + entries
            .iter()
            .map(|e| 8 + sc_bgp::attrs::encoded_attrs_len(&e.attrs))
            .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_bgp::attrs::AsPath;
    use sc_bgp::msg::UpdateMsg;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn attrs(nh: [u8; 4]) -> Arc<RouteAttrs> {
        RouteAttrs::ebgp(AsPath::sequence(vec![65001, 174]), Ipv4Addr::from(nh)).shared()
    }

    fn sample_stream() -> Vec<u8> {
        let mut w = MrtWriter::new();
        let peers = [
            PeerTableEntry {
                bgp_id: Ipv4Addr::new(10, 0, 0, 2),
                addr: Ipv4Addr::new(10, 0, 0, 2),
                asn: 65002,
            },
            PeerTableEntry {
                bgp_id: Ipv4Addr::new(10, 0, 0, 3),
                addr: Ipv4Addr::new(10, 0, 0, 3),
                asn: 65003,
            },
        ];
        w.peer_index_table(
            1_431_000_000,
            Ipv4Addr::new(192, 0, 2, 1),
            "rrc-sim",
            &peers,
        );
        w.rib_ipv4(
            1_431_000_000,
            0,
            p("1.0.0.0/24"),
            &[
                RibEntry {
                    peer_index: 0,
                    originated: 1_430_000_000,
                    attrs: attrs([10, 0, 0, 2]),
                },
                RibEntry {
                    peer_index: 1,
                    originated: 1_430_000_001,
                    attrs: attrs([10, 0, 0, 3]),
                },
            ],
        );
        let update = BgpMessage::Update(UpdateMsg::announce(
            attrs([10, 0, 0, 2]),
            vec![p("2.0.0.0/16")],
        ));
        w.bgp4mp_message(
            1_431_000_005,
            Some(250_000),
            &Bgp4mpMessage {
                peer_as: 65002,
                local_as: 65001,
                peer_ip: Ipv4Addr::new(10, 0, 0, 2),
                local_ip: Ipv4Addr::new(10, 0, 0, 1),
                msg: update,
            },
        );
        w.into_bytes()
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        let bytes = sample_stream();
        let records: Vec<(RawRecord, MrtRecord)> = MrtReader::new(&bytes)
            .map(|r| {
                let raw = r.unwrap();
                let dec = MrtRecord::decode(&raw).unwrap();
                (raw, dec)
            })
            .collect();
        assert_eq!(records.len(), 3);
        match &records[0].1 {
            MrtRecord::PeerIndex(t) => {
                assert_eq!(t.view, "rrc-sim");
                assert_eq!(t.peers.len(), 2);
                assert_eq!(t.peers[1].asn, 65003);
            }
            other => panic!("{other:?}"),
        }
        match &records[1].1 {
            MrtRecord::RibIpv4(r) => {
                assert_eq!(r.prefix, p("1.0.0.0/24"));
                assert_eq!(r.entries.len(), 2);
                assert_eq!(r.entries[0].attrs, attrs([10, 0, 0, 2]));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(records[2].0.micros, 250_000);
        assert_eq!(records[2].0.ts_secs, 1_431_000_005);
        match &records[2].1 {
            MrtRecord::Message(m) => {
                assert_eq!(m.peer_as, 65002);
                match &m.msg {
                    BgpMessage::Update(u) => assert_eq!(u.nlri, vec![p("2.0.0.0/16")]),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncation_reports_offset_and_fuses() {
        let bytes = sample_stream();
        // Whole-record boundaries parse clean; any cut inside a record
        // reports Truncated at that record's start.
        let mut boundaries = vec![0];
        let mut rd = MrtReader::new(&bytes);
        while rd.next().is_some() {
            boundaries.push(rd.offset());
        }
        for cut in 1..bytes.len() {
            let results: Vec<_> = MrtReader::new(&bytes[..cut]).collect();
            if boundaries.contains(&cut) {
                assert!(results.iter().all(|r| r.is_ok()), "cut={cut}");
            } else {
                let last = results.last().unwrap();
                let at = *boundaries.iter().filter(|&&b| b < cut).max().unwrap();
                assert_eq!(*last, Err(MrtError::Truncated { at }), "cut={cut}");
                // Everything before the truncated record parsed fine.
                assert!(results[..results.len() - 1].iter().all(|r| r.is_ok()));
            }
        }
    }

    #[test]
    fn unknown_types_are_skippable() {
        // Hand-frame a TABLE_DUMP_V2/IPv6 record followed by a good one.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&TYPE_TABLE_DUMP_V2.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes()); // RIB_IPV6_UNICAST
        bytes.extend_from_slice(&3u32.to_be_bytes());
        bytes.extend_from_slice(&[1, 2, 3]);
        bytes.extend_from_slice(&sample_stream());
        let recs: Vec<MrtRecord> = MrtReader::new(&bytes)
            .map(|r| MrtRecord::decode(&r.unwrap()).unwrap())
            .collect();
        assert_eq!(recs.len(), 4);
        assert_eq!(
            recs[0],
            MrtRecord::Unknown {
                rtype: TYPE_TABLE_DUMP_V2,
                subtype: 4
            }
        );
        assert!(matches!(recs[1], MrtRecord::PeerIndex(_)));
    }

    #[test]
    fn et_micros_validated() {
        let mut w = MrtWriter::new();
        w.bgp4mp_message(
            5,
            Some(999_999),
            &Bgp4mpMessage {
                peer_as: 1,
                local_as: 2,
                peer_ip: Ipv4Addr::new(1, 1, 1, 1),
                local_ip: Ipv4Addr::new(2, 2, 2, 2),
                msg: BgpMessage::Keepalive,
            },
        );
        let mut bytes = w.into_bytes();
        assert_eq!(
            MrtReader::new(&bytes).next().unwrap().unwrap().micros,
            999_999
        );
        // Corrupt the micros field past 1s: reader rejects.
        bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&1_000_000u32.to_be_bytes());
        assert_eq!(
            MrtReader::new(&bytes).next().unwrap(),
            Err(MrtError::Bad("ET microseconds >= 1s"))
        );
    }

    #[test]
    fn as4_peer_entries_decode() {
        // Hand-encode a peer table with one AS4 entry.
        let mut w = MrtWriter::new();
        let len_at = w.start_record(0, TYPE_TABLE_DUMP_V2, SUB_PEER_INDEX_TABLE);
        w.out.extend_from_slice(&[192, 0, 2, 1]);
        w.out.extend_from_slice(&0u16.to_be_bytes()); // empty view
        w.out.extend_from_slice(&1u16.to_be_bytes());
        w.out.push(PEER_TYPE_AS4);
        w.out.extend_from_slice(&[9, 9, 9, 9]);
        w.out.extend_from_slice(&[10, 0, 0, 9]);
        w.out.extend_from_slice(&65009u32.to_be_bytes());
        w.finish_record(len_at);
        let bytes = w.into_bytes();
        let raw = MrtReader::new(&bytes).next().unwrap().unwrap();
        match MrtRecord::decode(&raw).unwrap() {
            MrtRecord::PeerIndex(t) => assert_eq!(t.peers[0].asn, 65009),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn state_change_decodes() {
        let mut w = MrtWriter::new();
        let len_at = w.start_record(7, TYPE_BGP4MP, SUB_BGP4MP_STATE_CHANGE);
        w.out.extend_from_slice(&65002u16.to_be_bytes());
        w.out.extend_from_slice(&65001u16.to_be_bytes());
        w.out.extend_from_slice(&0u16.to_be_bytes());
        w.out.extend_from_slice(&1u16.to_be_bytes());
        w.out.extend_from_slice(&[10, 0, 0, 2]);
        w.out.extend_from_slice(&[10, 0, 0, 1]);
        w.out.extend_from_slice(&6u16.to_be_bytes()); // Established
        w.out.extend_from_slice(&1u16.to_be_bytes()); // Idle
        w.finish_record(len_at);
        let bytes = w.into_bytes();
        let raw = MrtReader::new(&bytes).next().unwrap().unwrap();
        match MrtRecord::decode(&raw).unwrap() {
            MrtRecord::StateChange(peering, old, new) => {
                assert_eq!(peering.peer_ip, Ipv4Addr::new(10, 0, 0, 2));
                assert_eq!((old, new), (6, 1));
            }
            other => panic!("{other:?}"),
        }
    }
}
