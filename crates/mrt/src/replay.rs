//! Timed replay: compile an MRT stream into pre-scheduled world events.
//!
//! A `BGP4MP(_ET)` update stream records *when* each message arrived at
//! the collector — the inter-arrival bursts and withdraw/re-announce
//! interleavings that stress an event kernel in ways a synthetic table
//! load cannot. [`ReplaySchedule::compile`] turns such a stream into a
//! list of `(offset, peering, UPDATE)` events relative to the first
//! record, optionally warped by a [`TimeScale`]; the consumer schedules
//! each event into its simulator (`sc-scenarios` injects them on
//! provider routers through the world `Scheduler`).
//!
//! [`RibSnapshot`] is the companion loader for `TABLE_DUMP_V2` dumps:
//! per-peer route lists that seed the providers' tables before the
//! timed stream plays.

use crate::records::{MrtError, MrtReader, MrtRecord, PeerTableEntry, RibEntryRecord};
use sc_bgp::attrs::RouteAttrs;
use sc_bgp::msg::{BgpMessage, UpdateMsg};
use sc_net::{Ipv4Prefix, SimDuration};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;
use std::sync::Arc;

/// A rational time-warp factor for replay: recorded inter-arrival gaps
/// are multiplied by `num/den`. `1` preserves recorded timing,
/// `0.1` replays ten times faster (gaps compressed), `2` at half speed
/// (gaps stretched). Held as a decimal rational — never a float — so
/// scaled offsets are exact and replay stays bit-deterministic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimeScale {
    num: u32,
    den: u32,
}

impl TimeScale {
    /// Recorded timing, unwarped.
    pub const REAL: TimeScale = TimeScale { num: 1, den: 1 };

    pub fn new(num: u32, den: u32) -> TimeScale {
        assert!(num > 0 && den > 0, "time scale must be positive");
        TimeScale { num, den }
    }

    /// Warp a recorded gap. Exact integer arithmetic (128-bit
    /// intermediate), truncating to whole nanoseconds.
    pub fn apply(self, d: SimDuration) -> SimDuration {
        let ns = d.as_nanos() as u128 * self.num as u128 / self.den as u128;
        SimDuration::from_nanos(ns as u64)
    }
}

impl Default for TimeScale {
    fn default() -> TimeScale {
        TimeScale::REAL
    }
}

impl fmt::Display for TimeScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl FromStr for TimeScale {
    type Err = String;

    /// Parse `"1"`, `"0.25"`, `"2.5"` (decimal, ≤ 9 fractional digits)
    /// or an explicit `"num/den"` rational.
    fn from_str(s: &str) -> Result<TimeScale, String> {
        let bad = |_| format!("bad time scale {s:?}");
        if let Some((n, d)) = s.split_once('/') {
            let (num, den) = (n.parse().map_err(bad)?, d.parse().map_err(bad)?);
            if num == 0 || den == 0 {
                return Err(format!("time scale {s:?} must be positive"));
            }
            return Ok(TimeScale { num, den });
        }
        let (int, frac) = s.split_once('.').unwrap_or((s, ""));
        if frac.len() > 9 || (int.is_empty() && frac.is_empty()) {
            return Err(format!("bad time scale {s:?}"));
        }
        let int: u32 = if int.is_empty() {
            0
        } else {
            int.parse().map_err(bad)?
        };
        let fnum: u32 = if frac.is_empty() {
            0
        } else {
            frac.parse().map_err(bad)?
        };
        let den = 10u64.pow(frac.len() as u32);
        let num = int as u64 * den + fnum as u64;
        if num == 0 {
            return Err(format!("time scale {s:?} must be positive"));
        }
        let num = u32::try_from(num).map_err(|_| format!("time scale {s:?} overflows"))?;
        Ok(TimeScale {
            num,
            den: den as u32,
        })
    }
}

/// One replayable event: an UPDATE to inject at `at` (offset from the
/// replay origin, already time-scaled) as the recorded peer.
#[derive(Clone, PartialEq, Debug)]
pub struct ReplayEvent {
    pub at: SimDuration,
    pub peer_ip: Ipv4Addr,
    pub peer_as: u16,
    pub update: UpdateMsg,
}

/// A compiled, time-scaled schedule of recorded UPDATE events.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ReplaySchedule {
    /// Events in stream order; offsets are non-decreasing.
    pub events: Vec<ReplayEvent>,
    /// Offset of the last event (zero for an empty stream).
    pub end: SimDuration,
}

impl ReplaySchedule {
    /// Compile a `BGP4MP(_ET)` stream. Non-UPDATE records (state
    /// changes, keepalives, RIB/peer-table records, unknown types) are
    /// skipped; a non-monotonic timestamp clamps to the previous
    /// event's offset (stream order is preserved either way).
    pub fn compile(bytes: &[u8], scale: TimeScale) -> Result<ReplaySchedule, MrtError> {
        let mut events = Vec::new();
        let mut origin_us: Option<u64> = None;
        let mut prev = SimDuration::ZERO;
        for raw in MrtReader::new(bytes) {
            let raw = raw?;
            let MrtRecord::Message(m) = MrtRecord::decode(&raw)? else {
                continue;
            };
            let BgpMessage::Update(update) = m.msg else {
                continue;
            };
            let t_us = raw.ts_secs as u64 * 1_000_000 + raw.micros as u64;
            let origin = *origin_us.get_or_insert(t_us);
            let at = match t_us.checked_sub(origin) {
                Some(delta_us) => scale.apply(SimDuration::from_micros(delta_us)).max(prev),
                None => prev, // clock went backwards: keep stream order
            };
            prev = at;
            events.push(ReplayEvent {
                at,
                peer_ip: m.peer_ip,
                peer_as: m.peer_as,
                update,
            });
        }
        Ok(ReplaySchedule {
            end: events.last().map(|e| e.at).unwrap_or(SimDuration::ZERO),
            events,
        })
    }

    /// The distinct recorded peers, in order of first appearance — the
    /// consumer's mapping target (peer k → provider k).
    pub fn peers(&self) -> Vec<(Ipv4Addr, u16)> {
        let mut out: Vec<(Ipv4Addr, u16)> = Vec::new();
        for e in &self.events {
            if !out.iter().any(|(ip, _)| *ip == e.peer_ip) {
                out.push((e.peer_ip, e.peer_as));
            }
        }
        out
    }

    /// Burst onsets: the first event, plus every event separated from
    /// its predecessor by more than `quiet` of silence. These are the
    /// replay's convergence epochs — each gets its own measurement
    /// window (`sc_lab::harness::plan_cycle_measurement`).
    pub fn epochs(&self, quiet: SimDuration) -> Vec<SimDuration> {
        let mut out = Vec::new();
        let mut prev: Option<SimDuration> = None;
        for e in &self.events {
            match prev {
                None => out.push(e.at),
                Some(p) if e.at.saturating_sub(p) > quiet => out.push(e.at),
                _ => {}
            }
            prev = Some(e.at);
        }
        out.dedup();
        out
    }

    /// Total announced + withdrawn prefix count (work volume, for
    /// reports).
    pub fn prefix_events(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.update.nlri.len() + e.update.withdrawn.len())
            .sum()
    }

    /// THE peer→provider mapping policy, shared by every consumer:
    /// recorded peer `k` (its position in `recorded_peers`, usually the
    /// snapshot's peer table) injects on provider `k % providers`;
    /// peers absent from the table fall back to `primary`. Announcement
    /// next-hops are rewritten to the target provider's address with
    /// run-memoized Arc sharing — the same rewrite the snapshot-derived
    /// feeds get, so withdrawals hit the routes their peer actually
    /// announced. Yields `(provider_index, offset, update)` in stream
    /// order, ready to schedule.
    pub fn map_to_providers(
        &self,
        recorded_peers: &[Ipv4Addr],
        provider_ips: &[Ipv4Addr],
        primary: usize,
    ) -> Vec<(usize, SimDuration, UpdateMsg)> {
        let m = provider_ips.len();
        assert!(m > 0 && primary < m);
        let mut rewriters: Vec<NextHopRewriter> = provider_ips
            .iter()
            .map(|ip| NextHopRewriter::new(*ip))
            .collect();
        self.events
            .iter()
            .map(|e| {
                let i = recorded_peers
                    .iter()
                    .position(|ip| *ip == e.peer_ip)
                    .map(|k| k % m)
                    .unwrap_or(primary);
                (i, e.at, rewriters[i].rewrite_update(&e.update))
            })
            .collect()
    }
}

/// A loaded `TABLE_DUMP_V2` snapshot: the peer table plus every RIB
/// record, ready to be carved into per-peer feeds.
#[derive(Clone, PartialEq, Debug)]
pub struct RibSnapshot {
    pub collector_id: Ipv4Addr,
    pub view: String,
    pub peers: Vec<PeerTableEntry>,
    /// RIB records in stream order (RIS `bview` dumps are
    /// prefix-sorted; [`RibSnapshot::prefixes`] sorts defensively).
    pub routes: Vec<RibEntryRecord>,
}

impl RibSnapshot {
    /// Load a snapshot. The `PEER_INDEX_TABLE` must precede the first
    /// RIB record (RFC 6396 §4.3.1); every entry's peer index must
    /// resolve.
    pub fn load(bytes: &[u8]) -> Result<RibSnapshot, MrtError> {
        let mut table: Option<(Ipv4Addr, String, Vec<PeerTableEntry>)> = None;
        let mut routes = Vec::new();
        for raw in MrtReader::new(bytes) {
            let raw = raw?;
            match MrtRecord::decode(&raw)? {
                MrtRecord::PeerIndex(t) => {
                    if table.is_some() {
                        return Err(MrtError::Bad("duplicate peer index table"));
                    }
                    table = Some((t.collector_id, t.view, t.peers));
                }
                MrtRecord::RibIpv4(r) => {
                    let Some((_, _, peers)) = &table else {
                        return Err(MrtError::Bad("RIB record before peer index table"));
                    };
                    if r.entries
                        .iter()
                        .any(|e| e.peer_index as usize >= peers.len())
                    {
                        return Err(MrtError::Bad("RIB entry peer index out of range"));
                    }
                    routes.push(r);
                }
                _ => {}
            }
        }
        let (collector_id, view, peers) = table.ok_or(MrtError::Bad("missing peer index table"))?;
        Ok(RibSnapshot {
            collector_id,
            view,
            peers,
            routes,
        })
    }

    /// The distinct prefixes of the snapshot, sorted ascending — the
    /// replay analogue of `sc_routegen::prefix_universe`.
    pub fn prefixes(&self) -> Vec<Ipv4Prefix> {
        let mut out: Vec<Ipv4Prefix> = self.routes.iter().map(|r| r.prefix).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Peer `idx`'s routes, in stream order: `(prefix, attrs)` for
    /// every RIB record carrying an entry from that peer.
    pub fn routes_for_peer(&self, idx: u16) -> Vec<(Ipv4Prefix, Arc<RouteAttrs>)> {
        self.routes
            .iter()
            .filter_map(|r| {
                r.entries
                    .iter()
                    .find(|e| e.peer_index == idx)
                    .map(|e| (r.prefix, e.attrs.clone()))
            })
            .collect()
    }
}

/// Streaming next-hop rewriter: recorded routes carry the collector
/// peer's next hop, but a simulated provider must announce *itself* —
/// the replay analogue of loading RIS routes onto R2/R3. Rewrites are
/// memoized per consecutive attribute run, so the Arc-sharing a real
/// table exhibits (and NLRI packing exploits) survives the rewrite.
pub struct NextHopRewriter {
    nh: Ipv4Addr,
    memo: Option<(Arc<RouteAttrs>, Arc<RouteAttrs>)>,
}

impl NextHopRewriter {
    pub fn new(nh: Ipv4Addr) -> NextHopRewriter {
        NextHopRewriter { nh, memo: None }
    }

    /// The rewritten attribute set for `attrs` (shared with the
    /// previous call when the source run continues).
    pub fn rewrite(&mut self, attrs: &Arc<RouteAttrs>) -> Arc<RouteAttrs> {
        match &self.memo {
            Some((src, out)) if **src == **attrs => out.clone(),
            _ => {
                let out = Arc::new(attrs.with_next_hop(self.nh));
                self.memo = Some((attrs.clone(), out.clone()));
                out
            }
        }
    }

    /// Rewrite one UPDATE (withdrawals pass through untouched).
    pub fn rewrite_update(&mut self, update: &UpdateMsg) -> UpdateMsg {
        let mut out = update.clone();
        if let Some(a) = &out.attrs {
            out.attrs = Some(self.rewrite(a));
        }
        out
    }

    /// Rewrite a whole route list (e.g. a snapshot peer's table before
    /// [`pack_feed`]).
    pub fn rewrite_routes(
        &mut self,
        routes: &[(Ipv4Prefix, Arc<RouteAttrs>)],
    ) -> Vec<(Ipv4Prefix, Arc<RouteAttrs>)> {
        routes.iter().map(|(p, a)| (*p, self.rewrite(a))).collect()
    }
}

/// Pack a route list into announcement UPDATEs the way a real speaker
/// (and `sc_routegen::generate_feed_for`) does: consecutive routes
/// sharing an attribute set ride one message, capped at
/// `max_nlri_per_update` NLRI and size-split to the 4096-byte limit.
pub fn pack_feed(
    routes: &[(Ipv4Prefix, Arc<RouteAttrs>)],
    max_nlri_per_update: usize,
) -> Vec<UpdateMsg> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < routes.len() {
        let attrs = &routes[i].1;
        let mut j = i + 1;
        while j < routes.len() && routes[j].1 == *attrs {
            j += 1;
        }
        let nlri: Vec<Ipv4Prefix> = routes[i..j].iter().map(|(p, _)| *p).collect();
        for chunk in nlri.chunks(max_nlri_per_update.max(1)) {
            out.extend(UpdateMsg::announce(attrs.clone(), chunk.to_vec()).split_to_fit());
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{Bgp4mpMessage, MrtWriter, RibEntry};
    use sc_bgp::attrs::AsPath;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn attrs(nh: u8) -> Arc<RouteAttrs> {
        RouteAttrs::ebgp(AsPath::sequence(vec![65002]), Ipv4Addr::new(10, 0, 0, nh)).shared()
    }

    fn msg_at(w: &mut MrtWriter, secs: u32, us: u32, update: UpdateMsg) {
        w.bgp4mp_message(
            secs,
            Some(us),
            &Bgp4mpMessage {
                peer_as: 65002,
                local_as: 65001,
                peer_ip: Ipv4Addr::new(10, 0, 0, 2),
                local_ip: Ipv4Addr::new(10, 0, 0, 1),
                msg: BgpMessage::Update(update),
            },
        );
    }

    #[test]
    fn time_scale_parses_and_applies() {
        let half: TimeScale = "0.5".parse().unwrap();
        assert_eq!(half, TimeScale::new(5, 10));
        assert_eq!(
            half.apply(SimDuration::from_micros(100)),
            SimDuration::from_micros(50)
        );
        let x2: TimeScale = "2".parse().unwrap();
        assert_eq!(
            x2.apply(SimDuration::from_millis(3)),
            SimDuration::from_millis(6)
        );
        let r: TimeScale = "3/7".parse().unwrap();
        assert_eq!(
            r.apply(SimDuration::from_nanos(7_000)),
            SimDuration::from_nanos(3_000)
        );
        assert_eq!(
            "1.25".parse::<TimeScale>().unwrap(),
            TimeScale::new(125, 100)
        );
        assert!("0".parse::<TimeScale>().is_err());
        assert!("0.0".parse::<TimeScale>().is_err());
        assert!("".parse::<TimeScale>().is_err());
        assert!("-1".parse::<TimeScale>().is_err());
        assert!("1.0000000001".parse::<TimeScale>().is_err());
        assert_eq!(TimeScale::REAL.to_string(), "1");
        assert_eq!(TimeScale::new(1, 4).to_string(), "1/4");
    }

    #[test]
    fn compile_preserves_inter_arrival_timing() {
        let mut w = MrtWriter::new();
        msg_at(
            &mut w,
            100,
            0,
            UpdateMsg::announce(attrs(2), vec![p("1.0.0.0/24")]),
        );
        msg_at(&mut w, 100, 400, UpdateMsg::withdraw(vec![p("1.0.0.0/24")]));
        msg_at(
            &mut w,
            102,
            100,
            UpdateMsg::announce(attrs(2), vec![p("1.0.0.0/24")]),
        );
        let bytes = w.into_bytes();

        let s = ReplaySchedule::compile(&bytes, TimeScale::REAL).unwrap();
        assert_eq!(s.events.len(), 3);
        assert_eq!(s.events[0].at, SimDuration::ZERO);
        assert_eq!(s.events[1].at, SimDuration::from_micros(400));
        assert_eq!(s.events[2].at, SimDuration::from_micros(2_000_100));
        assert_eq!(s.end, SimDuration::from_micros(2_000_100));
        assert_eq!(s.prefix_events(), 3);
        assert_eq!(s.peers(), vec![(Ipv4Addr::new(10, 0, 0, 2), 65002)]);

        // Warp 10x faster.
        let fast = ReplaySchedule::compile(&bytes, "0.1".parse().unwrap()).unwrap();
        assert_eq!(fast.events[1].at, SimDuration::from_micros(40));
        assert_eq!(fast.events[2].at, SimDuration::from_micros(200_010));
    }

    #[test]
    fn non_monotonic_timestamps_clamp() {
        let mut w = MrtWriter::new();
        msg_at(
            &mut w,
            100,
            500_000,
            UpdateMsg::withdraw(vec![p("1.0.0.0/24")]),
        );
        msg_at(
            &mut w,
            100,
            100_000,
            UpdateMsg::withdraw(vec![p("2.0.0.0/24")]),
        );
        msg_at(&mut w, 101, 0, UpdateMsg::withdraw(vec![p("3.0.0.0/24")]));
        let s = ReplaySchedule::compile(&w.into_bytes(), TimeScale::REAL).unwrap();
        assert_eq!(s.events[1].at, SimDuration::ZERO, "clamped, order kept");
        assert_eq!(s.events[1].update.withdrawn, vec![p("2.0.0.0/24")]);
        assert_eq!(s.events[2].at, SimDuration::from_micros(500_000));
    }

    #[test]
    fn epochs_split_on_quiet_gaps() {
        let mut w = MrtWriter::new();
        // Burst 1: t=0, +200us. Burst 2 after 1.5s of quiet: two events.
        msg_at(&mut w, 10, 0, UpdateMsg::withdraw(vec![p("1.0.0.0/24")]));
        msg_at(&mut w, 10, 200, UpdateMsg::withdraw(vec![p("2.0.0.0/24")]));
        msg_at(
            &mut w,
            11,
            500_200,
            UpdateMsg::withdraw(vec![p("3.0.0.0/24")]),
        );
        msg_at(
            &mut w,
            11,
            500_400,
            UpdateMsg::withdraw(vec![p("4.0.0.0/24")]),
        );
        let s = ReplaySchedule::compile(&w.into_bytes(), TimeScale::REAL).unwrap();
        assert_eq!(
            s.epochs(SimDuration::from_millis(100)),
            vec![SimDuration::ZERO, SimDuration::from_micros(1_500_200)]
        );
        // A coarse-enough quiet threshold folds everything into one.
        assert_eq!(
            s.epochs(SimDuration::from_secs(10)),
            vec![SimDuration::ZERO]
        );
        assert!(ReplaySchedule::default()
            .epochs(SimDuration::from_millis(1))
            .is_empty());
    }

    #[test]
    fn snapshot_loads_and_carves_per_peer() {
        let mut w = MrtWriter::new();
        let peers = [
            PeerTableEntry {
                bgp_id: Ipv4Addr::new(10, 0, 0, 2),
                addr: Ipv4Addr::new(10, 0, 0, 2),
                asn: 65002,
            },
            PeerTableEntry {
                bgp_id: Ipv4Addr::new(10, 0, 0, 3),
                addr: Ipv4Addr::new(10, 0, 0, 3),
                asn: 65003,
            },
        ];
        w.peer_index_table(0, Ipv4Addr::new(192, 0, 2, 1), "v", &peers);
        let both = |pfx: &str, seq: u32, w: &mut MrtWriter| {
            w.rib_ipv4(
                0,
                seq,
                p(pfx),
                &[
                    RibEntry {
                        peer_index: 0,
                        originated: 1,
                        attrs: attrs(2),
                    },
                    RibEntry {
                        peer_index: 1,
                        originated: 1,
                        attrs: attrs(3),
                    },
                ],
            )
        };
        both("9.9.0.0/16", 0, &mut w);
        both("1.0.0.0/24", 1, &mut w);
        // One peer-0-only record.
        w.rib_ipv4(
            0,
            2,
            p("5.5.5.0/24"),
            &[RibEntry {
                peer_index: 0,
                originated: 1,
                attrs: attrs(2),
            }],
        );
        let snap = RibSnapshot::load(&w.into_bytes()).unwrap();
        assert_eq!(snap.peers.len(), 2);
        assert_eq!(
            snap.prefixes(),
            vec![p("1.0.0.0/24"), p("5.5.5.0/24"), p("9.9.0.0/16")]
        );
        let r0 = snap.routes_for_peer(0);
        assert_eq!(r0.len(), 3);
        let r1 = snap.routes_for_peer(1);
        assert_eq!(r1.len(), 2);
        assert!(r1
            .iter()
            .all(|(_, a)| a.next_hop == Ipv4Addr::new(10, 0, 0, 3)));

        // Feeds pack runs of shared attrs into few messages.
        let feed = pack_feed(&r0, 300);
        assert_eq!(feed.len(), 1, "one attr set -> one UPDATE");
        assert_eq!(feed[0].nlri.len(), 3);
    }

    #[test]
    fn snapshot_requires_peer_table_first() {
        let mut w = MrtWriter::new();
        w.rib_ipv4(
            0,
            0,
            p("1.0.0.0/24"),
            &[RibEntry {
                peer_index: 0,
                originated: 1,
                attrs: attrs(2),
            }],
        );
        assert_eq!(
            RibSnapshot::load(&w.into_bytes()),
            Err(MrtError::Bad("RIB record before peer index table"))
        );
        assert_eq!(
            RibSnapshot::load(&[]),
            Err(MrtError::Bad("missing peer index table"))
        );
    }

    #[test]
    fn pack_feed_splits_oversize_runs() {
        let routes: Vec<(Ipv4Prefix, Arc<RouteAttrs>)> = (0..2000u32)
            .map(|i| {
                (
                    Ipv4Prefix::new(Ipv4Addr::from(0x0a00_0000 + (i << 8)), 24),
                    attrs(2),
                )
            })
            .collect();
        let feed = pack_feed(&routes, 300);
        assert!(feed.len() >= 7);
        let total: usize = feed.iter().map(|u| u.nlri.len()).sum();
        assert_eq!(total, 2000);
        for u in &feed {
            assert!(sc_bgp::BgpMessage::Update(u.clone()).encode().len() <= 4096);
        }
    }
}
