//! Property tests pinning the MRT encoder to the reader: encode→decode
//! identity over arbitrary attrs/NLRI/timestamps (including the
//! `BGP4MP_ET` microsecond extension), and graceful truncated-record
//! handling at every cut point.

use proptest::collection::vec;
use proptest::prelude::*;
use sc_bgp::attrs::{AsPath, AsSegment, Origin, RouteAttrs};
use sc_bgp::msg::{BgpMessage, UpdateMsg};
use sc_mrt::{
    Bgp4mpMessage, MrtError, MrtReader, MrtRecord, MrtWriter, PeerTableEntry, ReplaySchedule,
    RibEntry, TimeScale,
};
use sc_net::{Ipv4Prefix, SimDuration};
use std::net::Ipv4Addr;
use std::sync::Arc;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(Ipv4Addr::from(addr), len))
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_attrs() -> impl Strategy<Value = Arc<RouteAttrs>> {
    (
        vec(1u16..65000, 1..6),
        arb_ip(),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        vec(any::<u32>(), 0..4),
        any::<bool>(),
    )
        .prop_map(|(path, nh, med, local_pref, communities, set_seg)| {
            let as_path = if set_seg && path.len() >= 2 {
                AsPath {
                    segments: vec![
                        AsSegment::Sequence(path[..1].to_vec()),
                        AsSegment::Set(path[1..].to_vec()),
                    ],
                }
            } else {
                AsPath::sequence(path)
            };
            Arc::new(RouteAttrs {
                origin: Origin::Igp,
                as_path,
                next_hop: nh,
                med,
                local_pref,
                communities,
            })
        })
}

fn arb_update() -> impl Strategy<Value = UpdateMsg> {
    (
        vec(arb_prefix(), 0..20),
        vec(arb_prefix(), 0..20),
        arb_attrs(),
    )
        .prop_map(|(mut withdrawn, nlri, attrs)| {
            if withdrawn.is_empty() && nlri.is_empty() {
                // An empty UPDATE carries nothing to replay; keep every
                // generated message meaningful.
                withdrawn.push("10.0.0.0/24".parse().unwrap());
            }
            UpdateMsg {
                withdrawn,
                attrs: (!nlri.is_empty()).then_some(attrs),
                nlri,
            }
        })
}

proptest! {
    /// BGP4MP(_ET) encode→decode identity: peering fields, the
    /// timestamp (seconds + optional microseconds), and the embedded
    /// UPDATE all survive.
    #[test]
    fn bgp4mp_roundtrip(
        msgs in vec(
            (any::<u32>(), proptest::option::of(0u32..1_000_000),
             1u16..65000, 1u16..65000, arb_ip(), arb_ip(), arb_update()),
            1..12,
        ),
    ) {
        let mut w = MrtWriter::new();
        for (secs, micros, peer_as, local_as, peer_ip, local_ip, update) in &msgs {
            w.bgp4mp_message(*secs, *micros, &Bgp4mpMessage {
                peer_as: *peer_as,
                local_as: *local_as,
                peer_ip: *peer_ip,
                local_ip: *local_ip,
                msg: BgpMessage::Update(update.clone()),
            });
        }
        let bytes = w.into_bytes();
        let decoded: Vec<_> = MrtReader::new(&bytes)
            .map(|r| {
                let raw = r.unwrap();
                (raw.ts_secs, raw.micros, MrtRecord::decode(&raw).unwrap())
            })
            .collect();
        prop_assert_eq!(decoded.len(), msgs.len());
        for ((secs, micros, peer_as, local_as, peer_ip, local_ip, update), (d_secs, d_micros, rec))
            in msgs.iter().zip(&decoded)
        {
            prop_assert_eq!(*d_secs, *secs);
            prop_assert_eq!(*d_micros, micros.unwrap_or(0));
            let MrtRecord::Message(m) = rec else {
                return Err(TestCaseError::fail(format!("not a message: {rec:?}")));
            };
            prop_assert_eq!(m.peer_as, *peer_as);
            prop_assert_eq!(m.local_as, *local_as);
            prop_assert_eq!(m.peer_ip, *peer_ip);
            prop_assert_eq!(m.local_ip, *local_ip);
            prop_assert_eq!(&m.msg, &BgpMessage::Update(update.clone()));
        }
    }

    /// TABLE_DUMP_V2 encode→decode identity: peer table + RIB records
    /// with arbitrary per-peer attribute entries.
    #[test]
    fn table_dump_roundtrip(
        peers in vec((arb_ip(), arb_ip(), 1u16..65000), 1..6),
        ribs in vec((arb_prefix(), any::<u32>(), vec(arb_attrs(), 1..4)), 1..10),
    ) {
        let peers: Vec<PeerTableEntry> = peers
            .into_iter()
            .map(|(bgp_id, addr, asn)| PeerTableEntry { bgp_id, addr, asn })
            .collect();
        let mut w = MrtWriter::new();
        w.peer_index_table(0, Ipv4Addr::new(192, 0, 2, 1), "view", &peers);
        let mut want = Vec::new();
        for (seq, (prefix, originated, attrs)) in ribs.iter().enumerate() {
            let entries: Vec<RibEntry> = attrs
                .iter()
                .enumerate()
                .map(|(i, a)| RibEntry {
                    peer_index: (i % peers.len()) as u16,
                    originated: *originated,
                    attrs: a.clone(),
                })
                .collect();
            w.rib_ipv4(0, seq as u32, *prefix, &entries);
            want.push((seq as u32, *prefix, entries));
        }
        let bytes = w.into_bytes();
        let mut rd = MrtReader::new(&bytes);
        let first = MrtRecord::decode(&rd.next().unwrap().unwrap()).unwrap();
        let MrtRecord::PeerIndex(t) = first else {
            return Err(TestCaseError::fail(format!("not a peer index: {first:?}")));
        };
        prop_assert_eq!(&t.peers, &peers);
        for (seq, prefix, entries) in &want {
            let rec = MrtRecord::decode(&rd.next().unwrap().unwrap()).unwrap();
            let MrtRecord::RibIpv4(r) = rec else {
                return Err(TestCaseError::fail(format!("not a rib record: {rec:?}")));
            };
            prop_assert_eq!(r.seq, *seq);
            prop_assert_eq!(r.prefix, *prefix);
            prop_assert_eq!(&r.entries, entries);
        }
        prop_assert!(rd.next().is_none());
    }

    /// Truncating a valid stream anywhere never panics: every record
    /// before the cut parses, the cut record reports `Truncated` at its
    /// own offset, and the reader fuses.
    #[test]
    fn truncation_never_panics(
        msgs in vec((any::<u32>(), proptest::option::of(0u32..1_000_000), arb_update()), 1..6),
        cut_ppm in 0u32..1_000_000,
    ) {
        let mut w = MrtWriter::new();
        for (secs, micros, update) in &msgs {
            w.bgp4mp_message(*secs, *micros, &Bgp4mpMessage {
                peer_as: 65002,
                local_as: 65001,
                peer_ip: Ipv4Addr::new(10, 0, 0, 2),
                local_ip: Ipv4Addr::new(10, 0, 0, 1),
                msg: BgpMessage::Update(update.clone()),
            });
        }
        let bytes = w.into_bytes();
        let cut = bytes.len() * cut_ppm as usize / 1_000_000;
        let results: Vec<_> = MrtReader::new(&bytes[..cut]).collect();
        let errs = results.iter().filter(|r| r.is_err()).count();
        prop_assert!(errs <= 1, "at most one error, then fused");
        if let Some(Err(e)) = results.last() {
            prop_assert!(matches!(e, MrtError::Truncated { .. }), "{e:?}");
        }
        // The compiler surfaces the same error instead of panicking.
        match ReplaySchedule::compile(&bytes[..cut], TimeScale::REAL) {
            Ok(s) => prop_assert!(s.events.len() <= msgs.len()),
            Err(e) => prop_assert!(matches!(e, MrtError::Truncated { .. })),
        }
    }

    /// Replay offsets are exactly the time-scaled recorded deltas, for
    /// any rational scale, and remain non-decreasing.
    #[test]
    fn replay_offsets_are_scaled_deltas(
        gaps_us in vec(0u64..5_000_000, 1..10),
        num in 1u32..50, den in 1u32..50,
    ) {
        let mut w = MrtWriter::new();
        let base: u64 = 1_431_000_000_000_000;
        let mut t = base;
        let mut recorded = Vec::new();
        for gap in &gaps_us {
            t += gap;
            recorded.push(t - base);
            w.bgp4mp_message(
                (t / 1_000_000) as u32,
                Some((t % 1_000_000) as u32),
                &Bgp4mpMessage {
                    peer_as: 65002,
                    local_as: 65001,
                    peer_ip: Ipv4Addr::new(10, 0, 0, 2),
                    local_ip: Ipv4Addr::new(10, 0, 0, 1),
                    msg: BgpMessage::Update(UpdateMsg::withdraw(vec![
                        "1.0.0.0/24".parse().unwrap(),
                    ])),
                },
            );
        }
        let scale = TimeScale::new(num, den);
        let s = ReplaySchedule::compile(&w.into_bytes(), scale).unwrap();
        let origin = recorded[0];
        for (e, rec) in s.events.iter().zip(&recorded) {
            let want = scale.apply(SimDuration::from_micros(rec - origin));
            prop_assert_eq!(e.at, want);
        }
        for pair in s.events.windows(2) {
            prop_assert!(pair[0].at <= pair[1].at);
        }
        prop_assert_eq!(s.end, s.events.last().unwrap().at);
    }
}
