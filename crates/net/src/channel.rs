//! A reliable, in-order *message* transport — a deliberately simplified
//! TCP.
//!
//! BGP and OpenFlow both assume a reliable, ordered byte stream (real
//! deployments use TCP). Re-implementing full TCP would add nothing to
//! the paper's experiments, which depend only on reliable in-order
//! delivery and latency; this module provides exactly that as a
//! **poll-based state machine** in the style the networking guides
//! recommend (no I/O, no timers of its own — the caller supplies `now`
//! and asks what to transmit, which is what a discrete-event node needs).
//!
//! Properties:
//! * message-oriented: each `send` is delivered as one message;
//! * cumulative ACKs, fixed RTO retransmission, bounded in-flight window;
//! * out-of-order segments are buffered and re-sequenced;
//! * duplicate segments are discarded and re-ACKed;
//! * a 2-segment handshake (`SYN` / `SYN|ACK`) and a `FIN` half-close.
//!
//! The simplifications versus TCP (no window scaling, no congestion
//! control, no byte-stream framing) are documented in `DESIGN.md` §2.

use crate::time::{SimDuration, SimTime};
use crate::wire::{need, WireError};
use std::collections::{BTreeMap, VecDeque};

const FLAG_DATA: u8 = 0x01;
const FLAG_ACK: u8 = 0x02;
const FLAG_SYN: u8 = 0x04;
const FLAG_FIN: u8 = 0x08;

/// Fixed segment header: flags(1) seq(8) ack(8) len(2).
pub const SEGMENT_HEADER_LEN: usize = 19;

/// Configuration for a channel endpoint.
#[derive(Clone, Copy, Debug)]
pub struct ChannelConfig {
    /// Retransmission timeout for unacknowledged segments.
    pub rto: SimDuration,
    /// Maximum number of unacknowledged data segments in flight.
    pub window: usize,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            rto: SimDuration::from_millis(200),
            window: 32,
        }
    }
}

/// Connection state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChannelState {
    /// Passive side waiting for a SYN (the initial state).
    Listen,
    /// Active side: SYN sent, waiting for SYN|ACK.
    SynSent,
    /// Both sides may exchange data.
    Established,
    /// Peer sent FIN (or we did); no further data expected.
    Closed,
}

/// Events surfaced to the application by [`Endpoint::on_segment`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChannelEvent {
    /// The handshake completed (reported once per endpoint).
    Connected,
    /// An application message arrived, in order.
    Delivered(Vec<u8>),
    /// The peer closed the channel.
    PeerClosed,
}

/// Counters for diagnostics and tests.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ChannelStats {
    pub segments_sent: u64,
    pub segments_received: u64,
    pub retransmits: u64,
    pub duplicates_dropped: u64,
    pub messages_delivered: u64,
}

#[derive(Debug)]
struct InFlight {
    seq: u64,
    payload: Vec<u8>,
    /// None = never transmitted yet.
    last_sent: Option<SimTime>,
    fin: bool,
}

/// One endpoint of a reliable message channel.
#[derive(Debug)]
pub struct Endpoint {
    cfg: ChannelConfig,
    state: ChannelState,
    /// Next sequence number to assign to an outgoing message.
    next_seq: u64,
    /// Outgoing messages: unsent and unacknowledged, in seq order.
    queue: VecDeque<InFlight>,
    /// Next expected incoming sequence number.
    recv_next: u64,
    /// Out-of-order buffer: seq -> (payload, fin).
    reorder: BTreeMap<u64, (Vec<u8>, bool)>,
    /// A (re-)ACK should be emitted even if there is no data to send.
    ack_pending: bool,
    /// SYN bookkeeping.
    syn_last_sent: Option<SimTime>,
    /// True once we have proof the peer's handshake completed: an
    /// opener stuck in SynSent only ever emits pure SYNs, so any
    /// received segment *without* the SYN flag is that proof. Until
    /// then a listener keeps the SYN flag on everything it sends
    /// (SYN|ACK, and SYN-marked data/FIN), so the opener can complete
    /// even when its SYN|ACK was lost or data was piggy-backed over it.
    peer_handshake_done: bool,
    connected_reported: bool,
    stats: ChannelStats,
    /// Recycled message buffers: acknowledged payloads return here and
    /// [`Endpoint::send_from`] reuses them, so a steady-state sender
    /// allocates no fresh `Vec<u8>` per message.
    free: Vec<Vec<u8>>,
}

/// Cap on recycled message buffers kept per endpoint (a few windows'
/// worth; beyond that the memory is better returned to the allocator).
const FREE_POOL_CAP: usize = 64;

impl Endpoint {
    /// A passive endpoint, waiting for the peer's SYN.
    pub fn listen(cfg: ChannelConfig) -> Endpoint {
        Endpoint {
            cfg,
            state: ChannelState::Listen,
            next_seq: 0,
            queue: VecDeque::new(),
            recv_next: 0,
            reorder: BTreeMap::new(),
            ack_pending: false,
            syn_last_sent: None,
            peer_handshake_done: false,
            connected_reported: false,
            stats: ChannelStats::default(),
            free: Vec::new(),
        }
    }

    /// An active endpoint; a SYN will be emitted by the next
    /// [`Endpoint::poll_transmit`].
    pub fn connect(cfg: ChannelConfig) -> Endpoint {
        let mut ep = Endpoint::listen(cfg);
        ep.state = ChannelState::SynSent;
        ep
    }

    /// Current connection state.
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// Diagnostics counters.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Number of queued-or-in-flight outgoing messages.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Queue an application message for reliable delivery.
    ///
    /// Messages may be queued in any state; they flow once established.
    pub fn send(&mut self, msg: Vec<u8>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push_back(InFlight {
            seq,
            payload: msg,
            last_sent: None,
            fin: false,
        });
    }

    /// A cleared buffer from the recycle pool (or a fresh one). Encode
    /// into it and hand it back via [`Endpoint::send`]: the zero-alloc,
    /// zero-copy send path (acknowledged messages return their buffers
    /// to the pool, so a steady-state control-plane sender performs no
    /// allocation per message).
    pub fn take_buffer(&mut self) -> Vec<u8> {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Queue a FIN: the peer will observe [`ChannelEvent::PeerClosed`]
    /// after all preceding messages are delivered.
    pub fn close(&mut self) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push_back(InFlight {
            seq,
            payload: Vec::new(),
            last_sent: None,
            fin: true,
        });
    }

    /// Process an incoming segment; returns application events in order.
    pub fn on_segment(
        &mut self,
        seg: &[u8],
        _now: SimTime,
    ) -> Result<Vec<ChannelEvent>, WireError> {
        need(seg, SEGMENT_HEADER_LEN)?;
        let flags = seg[0];
        let seq = u64::from_be_bytes(seg[1..9].try_into().unwrap());
        let ack = u64::from_be_bytes(seg[9..17].try_into().unwrap());
        let len = u16::from_be_bytes([seg[17], seg[18]]) as usize;
        if seg.len() < SEGMENT_HEADER_LEN + len {
            return Err(WireError::BadLength);
        }
        let payload = &seg[SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + len];
        self.stats.segments_received += 1;

        let mut events = Vec::new();

        // A listener only reacts to SYNs. Anything else is a stray
        // segment from a *previous* connection on the same 5-tuple (the
        // peer retransmitting across a [`Endpoint::listen`] reset);
        // buffering it would leak old-epoch data into the next
        // connection's sequence space. Real TCP would RST; we drop and
        // let the peer's own reset/retransmission sort it out.
        if self.state == ChannelState::Listen && flags & FLAG_SYN == 0 {
            self.stats.duplicates_dropped += 1;
            return Ok(events);
        }
        // Any segment without SYN proves the peer is past its handshake
        // (an opener in SynSent only emits pure SYNs) — we can stop
        // SYN-marking our own transmissions.
        if flags & FLAG_SYN == 0 {
            self.peer_handshake_done = true;
        }
        // Data is only acceptable once our handshake completed, with
        // one exception: a just-accepted listener SYN-marks its data
        // (piggy-backed over the SYN|ACK), which is same-epoch by
        // construction. Anything else reaching a SynSent endpoint is
        // old-epoch traffic from before a transport reset — buffering
        // it would leak stale bytes into the new connection's sequence
        // space. Genuine data dropped here is repaired by
        // retransmission once we are established.
        let data_acceptable =
            self.state != ChannelState::SynSent || (flags & FLAG_SYN != 0 && flags & FLAG_ACK != 0);

        // --- handshake ---
        if flags & FLAG_SYN != 0 {
            match self.state {
                ChannelState::Listen => {
                    self.state = ChannelState::Established;
                    // Reply with SYN|ACK at next poll.
                    self.syn_last_sent = None;
                    self.ack_pending = true;
                    if !self.connected_reported {
                        self.connected_reported = true;
                        events.push(ChannelEvent::Connected);
                    }
                }
                ChannelState::SynSent if flags & FLAG_ACK != 0 => {
                    self.state = ChannelState::Established;
                    // The SYN|ACK sender was a listener: it completed.
                    self.peer_handshake_done = true;
                    if !self.connected_reported {
                        self.connected_reported = true;
                        events.push(ChannelEvent::Connected);
                    }
                }
                ChannelState::Established => {
                    if flags == FLAG_SYN && self.recv_next > 0 {
                        // A *pure* SYN after data flowed is not a
                        // handshake duplicate — only a fresh opener
                        // emits those, so the peer reset its endpoint
                        // and is opening a NEW connection against our
                        // stale one. Real TCP would exchange
                        // challenge-ACK/RST; we surface the old
                        // connection's death so the owner resets us
                        // too, and the peer's SYN retransmission then
                        // lands on a fresh endpoint.
                        self.state = ChannelState::Closed;
                        events.push(ChannelEvent::PeerClosed);
                        return Ok(events);
                    }
                    // A pure duplicate SYN of the current handshake
                    // (our SYN|ACK was lost): re-ACK it. SYN-marked
                    // data/ACK segments from a listener that has not
                    // heard from us yet fall through to the normal
                    // ACK/data handling below.
                    if flags == FLAG_SYN {
                        self.ack_pending = true;
                        self.stats.duplicates_dropped += 1;
                    }
                }
                _ => {}
            }
        }

        // --- acknowledgements ---
        // Note: a *pure* ACK never completes the active open — the
        // handshake section above requires the listener's SYN|ACK. A
        // pure ACK reaching a SynSent endpoint can only be old-epoch
        // traffic from a peer that still holds the previous connection
        // (re-ACKing our SYN as a "duplicate"); treating it as a
        // handshake completion would black-hole the new epoch's data as
        // duplicates on the peer. (In SynSent nothing has been
        // transmitted, so the cumulative-ACK pop below is a no-op.)
        if flags & FLAG_ACK != 0 {
            while let Some(front) = self.queue.front() {
                if front.last_sent.is_some() && front.seq < ack {
                    let acked = self.queue.pop_front().expect("front exists");
                    if self.free.len() < FREE_POOL_CAP {
                        self.free.push(acked.payload);
                    }
                } else {
                    break;
                }
            }
        }

        // --- data / fin ---
        if flags & (FLAG_DATA | FLAG_FIN) != 0 && data_acceptable {
            let is_fin = flags & FLAG_FIN != 0;
            if seq < self.recv_next {
                // Duplicate: our ACK was lost; re-ACK.
                self.stats.duplicates_dropped += 1;
                self.ack_pending = true;
            } else {
                self.reorder.insert(seq, (payload.to_vec(), is_fin));
                self.ack_pending = true;
                // Deliver any now-contiguous run.
                while let Some((p, fin)) = self.reorder.remove(&self.recv_next) {
                    self.recv_next += 1;
                    if fin {
                        self.state = ChannelState::Closed;
                        events.push(ChannelEvent::PeerClosed);
                    } else {
                        self.stats.messages_delivered += 1;
                        events.push(ChannelEvent::Delivered(p));
                    }
                }
            }
        }

        Ok(events)
    }

    /// Ask the endpoint for the next segment to put on the wire, if any.
    /// Call repeatedly until it returns `None`. Deterministic in `now`.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<Vec<u8>> {
        // 1. Handshake segments.
        match self.state {
            ChannelState::SynSent => {
                if self.due(self.syn_last_sent, now) {
                    if self.syn_last_sent.is_some() {
                        self.stats.retransmits += 1;
                    }
                    self.syn_last_sent = Some(now);
                    return Some(self.encode(FLAG_SYN, 0, &[]));
                }
                return None; // no data before establishment
            }
            ChannelState::Listen => return None,
            _ => {}
        }

        // Until the peer is proven established, every segment carries
        // SYN: a just-accepted listener's SYN|ACK may be overtaken by
        // its own piggy-backed data, and the opener must be able to
        // complete off either — while *refusing* unmarked segments,
        // which can only be old-epoch traffic across a transport reset.
        let syn_mark = if self.peer_handshake_done {
            0
        } else {
            FLAG_SYN
        };

        // 2. Data: retransmissions first (oldest outstanding), then fresh
        //    segments while the window allows.
        let mut in_flight = 0;
        for item in self.queue.iter_mut() {
            match item.last_sent {
                Some(t) => {
                    in_flight += 1;
                    if now.saturating_duration_since(t) >= self.cfg.rto {
                        item.last_sent = Some(now);
                        self.stats.retransmits += 1;
                        self.stats.segments_sent += 1;
                        let flags = if item.fin {
                            FLAG_FIN | FLAG_ACK
                        } else {
                            FLAG_DATA | FLAG_ACK
                        } | syn_mark;
                        let seg = encode_segment(flags, item.seq, self.recv_next, &item.payload);
                        self.ack_pending = false;
                        return Some(seg);
                    }
                }
                None => {
                    if in_flight >= self.cfg.window {
                        break;
                    }
                    item.last_sent = Some(now);
                    self.stats.segments_sent += 1;
                    let flags = if item.fin {
                        FLAG_FIN | FLAG_ACK
                    } else {
                        FLAG_DATA | FLAG_ACK
                    } | syn_mark;
                    let seg = encode_segment(flags, item.seq, self.recv_next, &item.payload);
                    self.ack_pending = false;
                    return Some(seg);
                }
            }
        }

        // 3. Pure ACK (doubles as the listener's SYN|ACK reply while the
        //    opener has not completed).
        if self.ack_pending {
            self.ack_pending = false;
            self.stats.segments_sent += 1;
            return Some(self.encode(FLAG_ACK | syn_mark, 0, &[]));
        }

        None
    }

    /// Earliest instant at which [`Endpoint::poll_transmit`] could have
    /// new work due to a timeout (retransmission), if any.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            if let Some(t) = t {
                let deadline = t + self.cfg.rto;
                earliest = Some(match earliest {
                    Some(e) if e <= deadline => e,
                    _ => deadline,
                });
            }
        };
        if self.state == ChannelState::SynSent {
            consider(self.syn_last_sent);
        }
        for item in &self.queue {
            consider(item.last_sent);
        }
        earliest
    }

    fn due(&self, last: Option<SimTime>, now: SimTime) -> bool {
        match last {
            None => true,
            Some(t) => now.saturating_duration_since(t) >= self.cfg.rto,
        }
    }

    fn encode(&mut self, flags: u8, seq: u64, payload: &[u8]) -> Vec<u8> {
        self.stats.segments_sent += 1;
        encode_segment(flags, seq, self.recv_next, payload)
    }
}

fn encode_segment(flags: u8, seq: u64, ack: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(SEGMENT_HEADER_LEN + payload.len());
    buf.push(flags);
    buf.extend_from_slice(&seq.to_be_bytes());
    buf.extend_from_slice(&ack.to_be_bytes());
    buf.extend_from_slice(&(payload.len() as u16).to_be_bytes());
    buf.extend_from_slice(payload);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Drive both endpoints until neither has anything to transmit,
    /// delivering every segment with optional loss decided by `lose`.
    fn pump(
        a: &mut Endpoint,
        b: &mut Endpoint,
        now: SimTime,
        mut lose: impl FnMut(usize) -> bool,
    ) -> (Vec<ChannelEvent>, Vec<ChannelEvent>) {
        let mut ev_a = Vec::new();
        let mut ev_b = Vec::new();
        let mut n = 0;
        loop {
            let mut progressed = false;
            while let Some(seg) = a.poll_transmit(now) {
                progressed = true;
                if !lose(n) {
                    ev_b.extend(b.on_segment(&seg, now).unwrap());
                }
                n += 1;
            }
            while let Some(seg) = b.poll_transmit(now) {
                progressed = true;
                if !lose(n) {
                    ev_a.extend(a.on_segment(&seg, now).unwrap());
                }
                n += 1;
            }
            if !progressed {
                return (ev_a, ev_b);
            }
        }
    }

    #[test]
    fn handshake_then_messages_in_order() {
        let mut a = Endpoint::connect(ChannelConfig::default());
        let mut b = Endpoint::listen(ChannelConfig::default());
        a.send(b"one".to_vec());
        a.send(b"two".to_vec());
        a.send(b"three".to_vec());
        let (ev_a, ev_b) = pump(&mut a, &mut b, t(0), |_| false);
        assert!(ev_a.contains(&ChannelEvent::Connected));
        assert!(ev_b.contains(&ChannelEvent::Connected));
        let msgs: Vec<&[u8]> = ev_b
            .iter()
            .filter_map(|e| match e {
                ChannelEvent::Delivered(m) => Some(m.as_slice()),
                _ => None,
            })
            .collect();
        assert_eq!(
            msgs,
            vec![b"one".as_slice(), b"two".as_slice(), b"three".as_slice()]
        );
        assert_eq!(a.backlog(), 0, "all segments acked");
        assert_eq!(a.state(), ChannelState::Established);
        assert_eq!(b.state(), ChannelState::Established);
    }

    #[test]
    fn loss_is_repaired_by_retransmission() {
        let cfg = ChannelConfig {
            rto: SimDuration::from_millis(100),
            window: 4,
        };
        let mut a = Endpoint::connect(cfg);
        let mut b = Endpoint::listen(cfg);
        for i in 0..10u8 {
            a.send(vec![i]);
        }
        // Lose every third segment on the first exchange.
        let (_, ev_b0) = pump(&mut a, &mut b, t(0), |n| n % 3 == 0);
        // Advance past RTO repeatedly until everything is delivered.
        let mut delivered: Vec<u8> = ev_b0
            .iter()
            .filter_map(|e| match e {
                ChannelEvent::Delivered(m) => Some(m[0]),
                _ => None,
            })
            .collect();
        for round in 1..20 {
            let (_, ev_b) = pump(&mut a, &mut b, t(round * 150), |_| false);
            delivered.extend(ev_b.iter().filter_map(|e| match e {
                ChannelEvent::Delivered(m) => Some(m[0]),
                _ => None,
            }));
            if delivered.len() == 10 {
                break;
            }
        }
        assert_eq!(
            delivered,
            (0..10).collect::<Vec<u8>>(),
            "in order despite loss"
        );
        assert!(a.stats().retransmits > 0);
        assert_eq!(a.backlog(), 0);
    }

    #[test]
    fn duplicates_are_dropped_and_reacked() {
        let mut a = Endpoint::connect(ChannelConfig::default());
        let mut b = Endpoint::listen(ChannelConfig::default());
        a.send(b"msg".to_vec());
        // Capture the data segment and deliver it twice.
        let syn = a.poll_transmit(t(0)).unwrap();
        b.on_segment(&syn, t(0)).unwrap();
        let synack = b.poll_transmit(t(0)).unwrap();
        a.on_segment(&synack, t(0)).unwrap();
        let data = a.poll_transmit(t(0)).unwrap();
        let ev1 = b.on_segment(&data, t(0)).unwrap();
        let ev2 = b.on_segment(&data, t(0)).unwrap();
        assert_eq!(
            ev1.iter()
                .filter(|e| matches!(e, ChannelEvent::Delivered(_)))
                .count(),
            1
        );
        assert!(ev2.iter().all(|e| !matches!(e, ChannelEvent::Delivered(_))));
        assert_eq!(b.stats().duplicates_dropped, 1);
    }

    #[test]
    fn out_of_order_reassembled() {
        let cfg = ChannelConfig {
            rto: SimDuration::from_millis(100),
            window: 8,
        };
        let mut a = Endpoint::connect(cfg);
        let mut b = Endpoint::listen(cfg);
        // Establish first.
        pump(&mut a, &mut b, t(0), |_| false);
        a.send(b"A".to_vec());
        a.send(b"B".to_vec());
        let s1 = a.poll_transmit(t(1)).unwrap();
        let s2 = a.poll_transmit(t(1)).unwrap();
        // Deliver in reverse order.
        let ev_first = b.on_segment(&s2, t(2)).unwrap();
        assert!(ev_first
            .iter()
            .all(|e| !matches!(e, ChannelEvent::Delivered(_))));
        let ev_second = b.on_segment(&s1, t(2)).unwrap();
        let msgs: Vec<&[u8]> = ev_second
            .iter()
            .filter_map(|e| match e {
                ChannelEvent::Delivered(m) => Some(m.as_slice()),
                _ => None,
            })
            .collect();
        assert_eq!(msgs, vec![b"A".as_slice(), b"B".as_slice()]);
    }

    #[test]
    fn window_limits_in_flight() {
        let cfg = ChannelConfig {
            rto: SimDuration::from_millis(100),
            window: 2,
        };
        let mut a = Endpoint::connect(cfg);
        let mut b = Endpoint::listen(cfg);
        pump(&mut a, &mut b, t(0), |_| false);
        for i in 0..5u8 {
            a.send(vec![i]);
        }
        // Without ACKs coming back, only `window` data segments emerge.
        let mut sent = 0;
        while let Some(_seg) = a.poll_transmit(t(1)) {
            sent += 1;
            assert!(sent <= 2, "window must cap in-flight segments");
        }
        assert_eq!(sent, 2);
    }

    #[test]
    fn fin_delivered_after_data() {
        let mut a = Endpoint::connect(ChannelConfig::default());
        let mut b = Endpoint::listen(ChannelConfig::default());
        a.send(b"last-words".to_vec());
        a.close();
        let (_, ev_b) = pump(&mut a, &mut b, t(0), |_| false);
        let kinds: Vec<u8> = ev_b
            .iter()
            .map(|e| match e {
                ChannelEvent::Connected => 0,
                ChannelEvent::Delivered(_) => 1,
                ChannelEvent::PeerClosed => 2,
            })
            .collect();
        assert_eq!(kinds, vec![0, 1, 2]);
        assert_eq!(b.state(), ChannelState::Closed);
    }

    #[test]
    fn next_wakeup_tracks_oldest_unacked() {
        let cfg = ChannelConfig {
            rto: SimDuration::from_millis(100),
            window: 8,
        };
        let mut a = Endpoint::connect(cfg);
        assert_eq!(a.next_wakeup(), None, "nothing sent yet");
        let _syn = a.poll_transmit(t(5)).unwrap();
        assert_eq!(a.next_wakeup(), Some(t(105)));
    }

    #[test]
    fn malformed_segments_rejected() {
        let mut a = Endpoint::listen(ChannelConfig::default());
        assert!(a.on_segment(&[0u8; 5], t(0)).is_err());
        // Length field larger than buffer.
        let mut seg = encode_segment(FLAG_DATA, 0, 0, b"xy");
        seg[18] = 200;
        assert!(a.on_segment(&seg, t(0)).is_err());
    }

    #[test]
    fn reconnect_against_stale_endpoint_restarts_cleanly() {
        // Establish and exchange data, then the client resets (fresh
        // connect endpoint, the BGP transport-restart path) while the
        // server still holds the old connection.
        let mut a = Endpoint::connect(ChannelConfig::default());
        let mut b = Endpoint::listen(ChannelConfig::default());
        a.send(b"old-epoch".to_vec());
        pump(&mut a, &mut b, t(0), |_| false);
        assert_eq!(b.state(), ChannelState::Established);

        // A stale pure ACK from the old server must NOT complete a new
        // opener's handshake (the old failure mode: Connected fired,
        // then every new-epoch message died as a "duplicate").
        let mut a2 = Endpoint::connect(ChannelConfig::default());
        let _syn = a2.poll_transmit(t(1000)).unwrap();
        let stale_ack = encode_segment(FLAG_ACK, 0, 42, &[]);
        let ev = a2.on_segment(&stale_ack, t(1001)).unwrap();
        assert!(
            !ev.contains(&ChannelEvent::Connected),
            "pure ACK must not complete the open"
        );
        assert_eq!(a2.state(), ChannelState::SynSent);

        // The new SYN reaching the stale established server kills the
        // old connection (PeerClosed) instead of being "re-ACKed".
        let syn = a2.poll_transmit(t(1200)).unwrap();
        let ev = b.on_segment(&syn, t(1201)).unwrap();
        assert_eq!(ev, vec![ChannelEvent::PeerClosed]);
        assert_eq!(b.state(), ChannelState::Closed);

        // The server's owner resets to a fresh listener; the opener's
        // SYN retransmission then completes a clean new connection that
        // really delivers data.
        let mut b2 = Endpoint::listen(ChannelConfig::default());
        a2.send(b"new-epoch".to_vec());
        let (ev_a2, ev_b2) = pump(&mut a2, &mut b2, t(1500), |_| false);
        assert!(ev_a2.contains(&ChannelEvent::Connected));
        assert!(ev_b2.contains(&ChannelEvent::Connected));
        assert!(ev_b2.contains(&ChannelEvent::Delivered(b"new-epoch".to_vec())));
    }

    #[test]
    fn take_buffer_recycles_acked_buffers() {
        let mut a = Endpoint::connect(ChannelConfig::default());
        let mut b = Endpoint::listen(ChannelConfig::default());
        pump(&mut a, &mut b, t(0), |_| false);
        // First batch populates the pool on ACK; the second drains it.
        for round in 0..2u64 {
            for i in 0..5u8 {
                let mut buf = a.take_buffer();
                buf.extend_from_slice(&[i, i, i]);
                a.send(buf);
            }
            let (_, ev_b) = pump(&mut a, &mut b, t(1 + round), |_| false);
            let got: Vec<u8> = ev_b
                .iter()
                .filter_map(|e| match e {
                    ChannelEvent::Delivered(m) => Some(m[0]),
                    _ => None,
                })
                .collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        }
        assert_eq!(a.backlog(), 0);
        assert_eq!(a.free.len(), 5, "acked buffers returned to the pool");
    }

    #[test]
    fn heavy_loss_eventually_delivers_everything() {
        // Deterministic pseudo-random 40% loss; the channel must still
        // deliver all 50 messages in order.
        let cfg = ChannelConfig {
            rto: SimDuration::from_millis(50),
            window: 8,
        };
        let mut a = Endpoint::connect(cfg);
        let mut b = Endpoint::listen(cfg);
        for i in 0..50u8 {
            a.send(vec![i]);
        }
        let mut rng_state = 12345u64;
        let mut delivered = Vec::new();
        for round in 0..200u64 {
            let (_, ev_b) = pump(&mut a, &mut b, t(round * 60), |_| {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (rng_state >> 33) % 10 < 4
            });
            delivered.extend(ev_b.iter().filter_map(|e| match e {
                ChannelEvent::Delivered(m) => Some(m[0]),
                _ => None,
            }));
            if delivered.len() == 50 {
                break;
            }
        }
        assert_eq!(delivered, (0..50).collect::<Vec<u8>>());
    }
}
