//! The internet checksum (RFC 1071), used by IPv4 headers and UDP.

use std::net::Ipv4Addr;

/// One's-complement sum of 16-bit words, with odd trailing byte padded
/// with zero, returned *before* final complement.
fn sum(data: &[u8], mut acc: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// Compute the internet checksum of `data` (e.g. an IPv4 header with its
/// checksum field zeroed).
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum(data, 0))
}

/// Verify data that *includes* its checksum field: valid iff the folded
/// sum is `0xffff`.
pub fn is_valid(data: &[u8]) -> bool {
    fold(sum(data, 0)) == 0xffff
}

/// Folded (uncomplemented) one's-complement sum over the IPv4
/// pseudo-header plus the UDP segment. For a segment that *includes* a
/// correct checksum field this returns `0xffff` — the validation form.
pub fn udp_checksum_raw(src: Ipv4Addr, dst: Ipv4Addr, segment: &[u8]) -> u16 {
    let mut acc = 0u32;
    acc = sum(&src.octets(), acc);
    acc = sum(&dst.octets(), acc);
    acc += 17; // protocol = UDP
    acc += segment.len() as u32;
    acc = sum(segment, acc);
    fold(acc)
}

/// UDP checksum over the IPv4 pseudo-header plus the UDP header+payload
/// (`segment`, with its checksum field zeroed). Per RFC 768 a computed
/// value of zero is transmitted as `0xffff`.
pub fn udp_checksum(src: Ipv4Addr, dst: Ipv4Addr, segment: &[u8]) -> u16 {
    let c = !udp_checksum_raw(src, dst, segment);
    if c == 0 {
        0xffff
    } else {
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example from RFC 1071 §3: the byte sequence below has a
        // one's complement sum of 0xddf2, so checksum = !0xddf2 = 0x220d.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn verify_accepts_own_output() {
        let mut data = vec![
            0x45u8, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0, 10, 0, 0, 1, 10, 0,
            0, 2,
        ];
        let c = checksum(&data);
        data[10] = (c >> 8) as u8;
        data[11] = c as u8;
        assert!(is_valid(&data));
        // Corrupt one byte: must fail.
        data[0] ^= 0x01;
        assert!(!is_valid(&data));
    }

    #[test]
    fn odd_length_padded() {
        let data = [0xabu8, 0xcd, 0xef];
        // Manual: 0xabcd + 0xef00 = 0x19acd -> fold 0x9ace -> !0x9ace.
        assert_eq!(checksum(&data), !0x9ace);
    }

    #[test]
    fn udp_zero_maps_to_ffff() {
        // Find any payload whose checksum would be zero is hard; instead
        // assert the function never returns 0 over a sweep.
        for b in 0..=255u8 {
            let seg = [b, 0, 0, b];
            let c = udp_checksum(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), &seg);
            assert_ne!(c, 0);
        }
    }

    #[test]
    fn empty_data() {
        assert_eq!(checksum(&[]), 0xffff);
    }
}
