//! [`Frame`] — the shared, cheaply-clonable Ethernet frame buffer.
//!
//! Every frame in the simulator used to be a bare `Vec<u8>`: flooding a
//! switch port deep-copied the bytes per port, and the event queue moved
//! 24-byte vector headers around. `Frame` is a refcounted buffer with
//! copy-on-write mutation:
//!
//! * `clone()` bumps a reference count — flooding N ports or fanning a
//!   probe template out per tick shares one allocation;
//! * [`Frame::make_mut`] hands out `&mut Vec<u8>`, cloning the bytes
//!   first only when another holder still references them (the
//!   in-flight copy of a probe whose template is being re-stamped, a
//!   flooded sibling being MAC-rewritten);
//! * the payload inside the event queue is a single pointer;
//! * retired buffers are recycled through a bounded thread-local pool,
//!   so steady-state forwarding (probe template shared → router
//!   copy-on-write → sink read → drop) performs **zero allocations**
//!   per packet: the copy-on-write pops the `Arc` the previous packet
//!   returned.
//!
//! `Deref<Target = [u8]>` keeps every parser call site (`parse(&frame)`)
//! untouched.

use std::cell::RefCell;
use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cap on recycled buffers per thread (steady-state forwarding needs a
/// handful; the cap bounds memory after bursts).
const POOL_CAP: usize = 64;

/// Source of per-thread pool identities. Each thread that touches a
/// frame claims one token lazily; a buffer records the token of the
/// thread that allocated it.
static NEXT_THREAD_TOKEN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's pool identity (see [`NEXT_THREAD_TOKEN`]).
    static THREAD_TOKEN: u64 = NEXT_THREAD_TOKEN.fetch_add(1, Ordering::Relaxed);

    /// Retired sole-holder frames, control block and byte buffer both
    /// intact, ready to back the next copy-on-write without touching
    /// the allocator. Strictly per-thread: only buffers whose `origin`
    /// matches this thread ever enter (the sharded kernel moves frames
    /// across shard threads, and a buffer freed on a foreign thread is
    /// simply dropped).
    static POOL: RefCell<Vec<Arc<PooledBuf>>> = const { RefCell::new(Vec::new()) };
}

#[inline]
fn thread_token() -> u64 {
    THREAD_TOKEN.with(|t| *t)
}

/// A frame buffer plus the pool identity of the thread that allocated
/// it. `origin` is metadata for the recycler only — frame equality and
/// hashing see just the bytes.
struct PooledBuf {
    origin: u64,
    bytes: Vec<u8>,
}

impl PooledBuf {
    fn new(bytes: Vec<u8>) -> Arc<PooledBuf> {
        Arc::new(PooledBuf {
            origin: thread_token(),
            bytes,
        })
    }
}

/// A shared immutable-until-written frame buffer.
///
/// The inner `Option` is an implementation detail of buffer recycling
/// (`Drop` moves the `Arc` into the pool); it is `Some` at every other
/// moment of the frame's life.
#[derive(Clone)]
pub struct Frame(Option<Arc<PooledBuf>>);

impl Frame {
    /// Wrap an encoded frame.
    pub fn new(bytes: Vec<u8>) -> Frame {
        Frame(Some(PooledBuf::new(bytes)))
    }

    #[inline]
    fn arc(&self) -> &Arc<PooledBuf> {
        self.0.as_ref().expect("frame already retired")
    }

    /// Mutable access for in-place patching (MAC rewrite, TTL decrement,
    /// sequence stamping). O(1) when this is the only holder; clones the
    /// bytes first (into a recycled buffer when one is free) when the
    /// buffer is shared, so no other holder ever observes the mutation.
    pub fn make_mut(&mut self) -> &mut Vec<u8> {
        // No weak refs exist anywhere in the workspace, so strong_count
        // is the whole sharing story.
        if Arc::strong_count(self.arc()) > 1 {
            // Copy-on-write backed by the recycle pool: pooled arcs are
            // sole-holder by construction, so `get_mut` succeeds.
            let mut arc = POOL
                .with(|p| p.borrow_mut().pop())
                .unwrap_or_else(|| PooledBuf::new(Vec::new()));
            let buf = Arc::get_mut(&mut arc).expect("pooled arc is sole-holder");
            buf.bytes.clear();
            buf.bytes.extend_from_slice(&self.arc().bytes);
            self.0 = Some(arc);
        }
        let buf = Arc::get_mut(self.0.as_mut().expect("frame already retired"))
            .expect("sole holder after copy-on-write");
        &mut buf.bytes
    }

    /// Copy out the bytes (interop with owned-`Vec<u8>` APIs such as
    /// control-message payloads).
    pub fn to_vec(&self) -> Vec<u8> {
        self.arc().bytes.clone()
    }

    /// Number of holders sharing this buffer (diagnostics/tests).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(self.arc())
    }
}

/// Buffers parked in *this thread's* recycle pool (diagnostics/tests).
pub fn pool_len() -> usize {
    POOL.with(|p| p.borrow().len())
}

impl PartialEq for Frame {
    fn eq(&self, other: &Frame) -> bool {
        // Bytes only: the recycler's origin tag is not frame identity.
        self.arc().bytes == other.arc().bytes
    }
}

impl Eq for Frame {}

impl Drop for Frame {
    fn drop(&mut self) {
        // Last holder: retire the whole Arc (control block + bytes)
        // into the pool instead of freeing it — but only into the pool
        // of the thread that allocated it. A frame that crossed a
        // shard boundary and died on a foreign thread is freed
        // normally; recycling it there would let one thread's pool
        // hand out another thread's buffers.
        if let Some(arc) = self.0.take() {
            if Arc::strong_count(&arc) == 1
                && arc.bytes.capacity() > 0
                && arc.origin == thread_token()
            {
                POOL.with(|p| {
                    let mut p = p.borrow_mut();
                    if p.len() < POOL_CAP {
                        p.push(arc);
                    }
                });
            }
        }
    }
}

impl Deref for Frame {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.arc().bytes.as_slice()
    }
}

impl AsRef<[u8]> for Frame {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.arc().bytes.as_slice()
    }
}

impl From<Vec<u8>> for Frame {
    fn from(bytes: Vec<u8>) -> Frame {
        Frame::new(bytes)
    }
}

impl From<&[u8]> for Frame {
    fn from(bytes: &[u8]) -> Frame {
        Frame::new(bytes.to_vec())
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Frame[{}; rc={}]",
            self.arc().bytes.len(),
            self.ref_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = Frame::new(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a.ref_count(), 2);
        assert_eq!(&*a, &*b);
        assert_eq!(a.as_ptr(), b.as_ptr(), "no copy on clone");
    }

    #[test]
    fn make_mut_is_in_place_for_sole_holder() {
        let mut a = Frame::new(vec![1, 2, 3]);
        let p = a.as_ptr();
        a.make_mut()[0] = 9;
        assert_eq!(a.as_ptr(), p, "no reallocation when unshared");
        assert_eq!(&*a, &[9, 2, 3]);
    }

    #[test]
    fn make_mut_copies_on_write_when_shared() {
        let mut a = Frame::new(vec![1, 2, 3]);
        let b = a.clone();
        a.make_mut()[0] = 9;
        assert_eq!(&*a, &[9, 2, 3]);
        assert_eq!(&*b, &[1, 2, 3], "other holder untouched");
        assert_eq!(a.ref_count(), 1);
        assert_eq!(b.ref_count(), 1);
    }

    #[test]
    fn dropped_buffers_are_recycled_into_cow() {
        // Dropping a sole-holder frame parks its buffer in the
        // thread-local pool; the next copy-on-write reuses it instead
        // of allocating.
        let recycled_ptr = {
            let f = Frame::new(vec![7u8; 64]);
            f.as_ptr()
        }; // dropped -> pooled
        let mut a = Frame::new(vec![1, 2, 3]);
        let _b = a.clone(); // force the CoW path
        a.make_mut()[0] = 9;
        assert_eq!(a.as_ptr(), recycled_ptr, "CoW popped the pooled buffer");
        assert_eq!(&*a, &[9, 2, 3]);
    }

    #[test]
    fn shared_frames_are_not_pooled_on_drop() {
        // Dropping one of two holders must leave the survivor intact.
        let a = Frame::new(vec![5u8; 16]);
        let b = a.clone();
        drop(a);
        assert_eq!(b.ref_count(), 1);
        assert_eq!(&*b, &[5u8; 16]);
    }

    #[test]
    fn pool_reuse_never_crosses_threads() {
        // A buffer allocated here and dropped on another thread must
        // not seed that thread's pool; the foreign thread's own
        // buffers still recycle normally. Each closure runs on a
        // fresh thread whose pool starts empty, so pool_len() counts
        // are exact.
        let foreign = Frame::new(vec![3u8; 32]);
        std::thread::spawn(move || {
            assert_eq!(pool_len(), 0, "fresh thread, empty pool");
            drop(foreign);
            assert_eq!(pool_len(), 0, "foreign-origin buffer freed, not pooled");
            let local = Frame::new(vec![1, 2, 3]);
            drop(local);
            assert_eq!(pool_len(), 1, "own buffer recycles as before");
        })
        .join()
        .unwrap();

        // A frame that round-trips (created here, visits another
        // thread, comes home) is still recyclable on its origin.
        let here = Frame::new(vec![9u8; 16]);
        let here = std::thread::spawn(move || here).join().unwrap();
        let before = pool_len();
        drop(here);
        assert_eq!(pool_len(), before + 1, "round-tripped buffer pools at home");
    }

    #[test]
    fn deref_feeds_slice_apis() {
        let f = Frame::from(vec![0u8; 64]);
        assert_eq!(f.len(), 64);
        assert!(!f.is_empty());
        assert_eq!(f.to_vec().len(), 64);
        fn takes_slice(s: &[u8]) -> usize {
            s.len()
        }
        assert_eq!(takes_slice(&f), 64);
    }
}
