//! [`Frame`] — the shared, cheaply-clonable Ethernet frame buffer.
//!
//! Every frame in the simulator used to be a bare `Vec<u8>`: flooding a
//! switch port deep-copied the bytes per port, and the event queue moved
//! 24-byte vector headers around. `Frame` is a refcounted buffer with
//! copy-on-write mutation:
//!
//! * `clone()` bumps a reference count — flooding N ports or fanning a
//!   probe template out per tick shares one allocation;
//! * [`Frame::make_mut`] hands out `&mut Vec<u8>`, cloning the bytes
//!   first only when another holder still references them (the
//!   in-flight copy of a probe whose template is being re-stamped, a
//!   flooded sibling being MAC-rewritten);
//! * the payload inside the event queue is a single pointer;
//! * retired buffers are recycled through a bounded thread-local pool,
//!   so steady-state forwarding (probe template shared → router
//!   copy-on-write → sink read → drop) performs **zero allocations**
//!   per packet: the copy-on-write pops the `Arc` the previous packet
//!   returned.
//!
//! `Deref<Target = [u8]>` keeps every parser call site (`parse(&frame)`)
//! untouched.

use std::cell::RefCell;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cap on recycled buffers per thread (steady-state forwarding needs a
/// handful; the cap bounds memory after bursts).
const POOL_CAP: usize = 64;

thread_local! {
    /// Retired sole-holder frames, control block and byte buffer both
    /// intact, ready to back the next copy-on-write without touching
    /// the allocator. Per-thread because each simulation world runs
    /// single-threaded.
    static POOL: RefCell<Vec<Arc<Vec<u8>>>> = const { RefCell::new(Vec::new()) };
}

/// A shared immutable-until-written frame buffer.
///
/// The inner `Option` is an implementation detail of buffer recycling
/// (`Drop` moves the `Arc` into the pool); it is `Some` at every other
/// moment of the frame's life.
#[derive(Clone, PartialEq, Eq)]
pub struct Frame(Option<Arc<Vec<u8>>>);

impl Frame {
    /// Wrap an encoded frame.
    pub fn new(bytes: Vec<u8>) -> Frame {
        Frame(Some(Arc::new(bytes)))
    }

    #[inline]
    fn arc(&self) -> &Arc<Vec<u8>> {
        self.0.as_ref().expect("frame already retired")
    }

    /// Mutable access for in-place patching (MAC rewrite, TTL decrement,
    /// sequence stamping). O(1) when this is the only holder; clones the
    /// bytes first (into a recycled buffer when one is free) when the
    /// buffer is shared, so no other holder ever observes the mutation.
    pub fn make_mut(&mut self) -> &mut Vec<u8> {
        // No weak refs exist anywhere in the workspace, so strong_count
        // is the whole sharing story.
        if Arc::strong_count(self.arc()) > 1 {
            // Copy-on-write backed by the recycle pool: pooled arcs are
            // sole-holder by construction, so `get_mut` succeeds.
            let mut arc = POOL
                .with(|p| p.borrow_mut().pop())
                .unwrap_or_else(|| Arc::new(Vec::new()));
            let buf = Arc::get_mut(&mut arc).expect("pooled arc is sole-holder");
            buf.clear();
            buf.extend_from_slice(self.arc());
            self.0 = Some(arc);
        }
        Arc::get_mut(self.0.as_mut().expect("frame already retired"))
            .expect("sole holder after copy-on-write")
    }

    /// Copy out the bytes (interop with owned-`Vec<u8>` APIs such as
    /// control-message payloads).
    pub fn to_vec(&self) -> Vec<u8> {
        self.arc().as_ref().clone()
    }

    /// Number of holders sharing this buffer (diagnostics/tests).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(self.arc())
    }
}

impl Drop for Frame {
    fn drop(&mut self) {
        // Last holder: retire the whole Arc (control block + bytes)
        // into the pool instead of freeing it.
        if let Some(arc) = self.0.take() {
            if Arc::strong_count(&arc) == 1 && arc.capacity() > 0 {
                POOL.with(|p| {
                    let mut p = p.borrow_mut();
                    if p.len() < POOL_CAP {
                        p.push(arc);
                    }
                });
            }
        }
    }
}

impl Deref for Frame {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.arc().as_slice()
    }
}

impl AsRef<[u8]> for Frame {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.arc().as_slice()
    }
}

impl From<Vec<u8>> for Frame {
    fn from(bytes: Vec<u8>) -> Frame {
        Frame::new(bytes)
    }
}

impl From<&[u8]> for Frame {
    fn from(bytes: &[u8]) -> Frame {
        Frame::new(bytes.to_vec())
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frame[{}; rc={}]", self.arc().len(), self.ref_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = Frame::new(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a.ref_count(), 2);
        assert_eq!(&*a, &*b);
        assert_eq!(a.as_ptr(), b.as_ptr(), "no copy on clone");
    }

    #[test]
    fn make_mut_is_in_place_for_sole_holder() {
        let mut a = Frame::new(vec![1, 2, 3]);
        let p = a.as_ptr();
        a.make_mut()[0] = 9;
        assert_eq!(a.as_ptr(), p, "no reallocation when unshared");
        assert_eq!(&*a, &[9, 2, 3]);
    }

    #[test]
    fn make_mut_copies_on_write_when_shared() {
        let mut a = Frame::new(vec![1, 2, 3]);
        let b = a.clone();
        a.make_mut()[0] = 9;
        assert_eq!(&*a, &[9, 2, 3]);
        assert_eq!(&*b, &[1, 2, 3], "other holder untouched");
        assert_eq!(a.ref_count(), 1);
        assert_eq!(b.ref_count(), 1);
    }

    #[test]
    fn dropped_buffers_are_recycled_into_cow() {
        // Dropping a sole-holder frame parks its buffer in the
        // thread-local pool; the next copy-on-write reuses it instead
        // of allocating.
        let recycled_ptr = {
            let f = Frame::new(vec![7u8; 64]);
            f.as_ptr()
        }; // dropped -> pooled
        let mut a = Frame::new(vec![1, 2, 3]);
        let _b = a.clone(); // force the CoW path
        a.make_mut()[0] = 9;
        assert_eq!(a.as_ptr(), recycled_ptr, "CoW popped the pooled buffer");
        assert_eq!(&*a, &[9, 2, 3]);
    }

    #[test]
    fn shared_frames_are_not_pooled_on_drop() {
        // Dropping one of two holders must leave the survivor intact.
        let a = Frame::new(vec![5u8; 16]);
        let b = a.clone();
        drop(a);
        assert_eq!(b.ref_count(), 1);
        assert_eq!(&*b, &[5u8; 16]);
    }

    #[test]
    fn deref_feeds_slice_apis() {
        let f = Frame::from(vec![0u8; 64]);
        assert_eq!(f.len(), 64);
        assert!(!f.is_empty());
        assert_eq!(f.to_vec().len(), 64);
        fn takes_slice(s: &[u8]) -> usize {
            s.len()
        }
        assert_eq!(takes_slice(&f), 64);
    }
}
