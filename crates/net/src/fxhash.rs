//! A fast, deterministic hasher for the simulator's hot-path maps.
//!
//! `std`'s default `HashMap` hasher (SipHash, randomly seeded per
//! process) costs tens of nanoseconds per lookup and gives every run a
//! different iteration order. The data plane does multiple map lookups
//! *per packet* (router flow cache, sink CAM, ARP cache, switch L2
//! table) on keys an adversary does not control — IPv4 addresses and
//! MACs of a closed simulation — so HashDoS resistance buys nothing
//! here. This is the classic multiply-rotate construction (rustc's
//! `FxHasher`): a few instructions per word, fixed seed, so identical
//! inputs hash identically in every process.

// sc-check: allow(no-default-hasher) -- definition site: these imports exist to pin an explicit FxHasher onto std's map types
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (high-entropy odd number; same spirit as
/// Fibonacci hashing's 2^64/φ).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add(u64::from(u32::from_le_bytes(
                bytes[..4].try_into().unwrap(),
            )));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// A `HashMap` with the deterministic fast hasher.
// sc-check: allow(no-default-hasher) -- this alias IS the deterministic replacement the rule points everyone at
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` with the deterministic fast hasher.
// sc-check: allow(no-default-hasher) -- this alias IS the deterministic replacement the rule points everyone at
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn identical_inputs_hash_identically() {
        let h = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(h(b"10.0.0.1"), h(b"10.0.0.1"));
        assert_ne!(h(b"10.0.0.1"), h(b"10.0.0.2"));
    }

    #[test]
    fn map_works_with_simulator_keys() {
        let mut m: FxHashMap<Ipv4Addr, usize> = FxHashMap::default();
        for i in 0..100u8 {
            m.insert(Ipv4Addr::new(10, 0, i, 1), i as usize);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&Ipv4Addr::new(10, 0, 42, 1)], 42);
    }

    #[test]
    fn word_and_byte_paths_mix_lengths() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14]);
        assert_ne!(a, h.finish());
    }
}
