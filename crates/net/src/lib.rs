//! Base networking types and wire formats for the supercharged-router
//! workspace.
//!
//! This crate is the bottom of the dependency DAG. It provides:
//!
//! * [`time`] — virtual time ([`SimTime`], [`SimDuration`]) shared by the
//!   whole workspace. The discrete-event simulator, every protocol state
//!   machine, and every measurement use these types, so they live here
//!   rather than in the simulator crate.
//! * [`mac`] — Ethernet MAC addresses, including the locally-administered
//!   range used for the paper's *virtual MAC* (VMAC) tags.
//! * [`frame`] — the refcounted copy-on-write frame buffer ([`Frame`])
//!   every simulated packet travels in.
//! * [`fxhash`] — the deterministic fast hasher behind every hot-path
//!   map (flow cache, sink CAM, ARP cache, switch L2 table).
//! * [`prefix`] — IPv4 CIDR prefixes with canonicalization.
//! * [`trie`] — a binary radix trie implementing longest-prefix match, the
//!   data structure backing every RIB/FIB in the workspace.
//! * [`wire`] — parse/emit for Ethernet II, ARP, IPv4 and UDP, in the
//!   two-level style of `smoltcp`: raw accessors over byte slices plus a
//!   high-level `Repr` with `parse`/`emit`.
//! * [`checksum`] — the internet checksum (RFC 1071).
//! * [`channel`] — a poll-based reliable, in-order message transport state
//!   machine (a deliberately simplified TCP; see `DESIGN.md` §2).
//! * [`metrics`] — deterministic counters and log-linear histograms (the
//!   metrics half of sc-trace); lives here so every layer can record.
//!
//! Everything here is deterministic and allocation-conscious; nothing
//! performs I/O.

pub mod channel;
pub mod checksum;
pub mod frame;
pub mod fxhash;
pub mod mac;
pub mod metrics;
pub mod prefix;
pub mod time;
pub mod trie;
pub mod wire;

pub use frame::Frame;
pub use fxhash::{FxHashMap, FxHashSet};
pub use mac::MacAddr;
pub use prefix::{Ipv4Prefix, PrefixParseError};
pub use time::{SimDuration, SimTime};
pub use trie::PrefixTrie;

/// Re-export of the standard IPv4 address type used throughout the
/// workspace (we do not wrap it; `std`'s type is already exactly right).
pub use std::net::Ipv4Addr;
