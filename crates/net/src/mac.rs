//! Ethernet MAC addresses.
//!
//! The supercharger tags traffic with *virtual* MAC addresses (VMACs): the
//! router writes the VMAC of a backup-group into outgoing frames and the
//! SDN switch matches on it. VMACs are allocated from the
//! locally-administered, unicast range (`x2:xx:...`), which is guaranteed
//! never to collide with burned-in hardware addresses.

use std::fmt;
use std::str::FromStr;

/// A 48-bit Ethernet MAC address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address (invalid as a source; used as "unset").
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Construct from the six octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8) -> Self {
        MacAddr([a, b, c, d, e, f])
    }

    /// The raw octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// True if the group bit (I/G, least-significant bit of the first
    /// octet) is set — broadcast or multicast.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for unicast (neither broadcast nor multicast).
    pub fn is_unicast(self) -> bool {
        !self.is_multicast()
    }

    /// True if the locally-administered bit (U/L, second-least-significant
    /// bit of the first octet) is set. All VMACs are locally administered.
    pub fn is_locally_administered(self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Build the `index`-th virtual MAC: locally-administered unicast,
    /// `02:5c:` ("sc") prefix, with the index in the low 32 bits.
    ///
    /// This is the allocation scheme the supercharger's VMAC pool uses;
    /// it supports 2^32 distinct backup-groups, far more than the
    /// `n(n-1)` any real deployment needs.
    pub const fn virtual_mac(index: u32) -> MacAddr {
        let i = index.to_be_bytes();
        MacAddr([0x02, 0x5c, i[0], i[1], i[2], i[3]])
    }

    /// If this address is a VMAC produced by [`MacAddr::virtual_mac`],
    /// return its index.
    pub fn virtual_index(self) -> Option<u32> {
        if self.0[0] == 0x02 && self.0[1] == 0x5c {
            Some(u32::from_be_bytes([
                self.0[2], self.0[3], self.0[4], self.0[5],
            ]))
        } else {
            None
        }
    }

    /// Parse from a 6-byte slice.
    pub fn from_bytes(b: &[u8]) -> Option<MacAddr> {
        if b.len() == 6 {
            let mut o = [0u8; 6];
            o.copy_from_slice(b);
            Some(MacAddr(o))
        } else {
            None
        }
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error parsing a textual MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacParseError;

impl fmt::Display for MacParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax (expected aa:bb:cc:dd:ee:ff)")
    }
}

impl std::error::Error for MacParseError {}

impl FromStr for MacAddr {
    type Err = MacParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for o in octets.iter_mut() {
            let part = parts.next().ok_or(MacParseError)?;
            if part.len() != 2 {
                return Err(MacParseError);
            }
            *o = u8::from_str_radix(part, 16).map_err(|_| MacParseError)?;
        }
        if parts.next().is_some() {
            return Err(MacParseError);
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let m = MacAddr::new(0x01, 0xaa, 0x00, 0xff, 0x02, 0xbb);
        assert_eq!(m.to_string(), "01:aa:00:ff:02:bb");
        assert_eq!("01:aa:00:ff:02:bb".parse::<MacAddr>().unwrap(), m);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("01:aa".parse::<MacAddr>().is_err());
        assert!("01:aa:00:ff:02:bb:cc".parse::<MacAddr>().is_err());
        assert!("01:aa:00:ff:02:zz".parse::<MacAddr>().is_err());
        assert!("1:aa:00:ff:02:bb".parse::<MacAddr>().is_err());
        assert!("".parse::<MacAddr>().is_err());
    }

    #[test]
    fn broadcast_and_multicast_bits() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::BROADCAST.is_unicast());
        let mcast = MacAddr::new(0x01, 0x00, 0x5e, 0x00, 0x00, 0x01);
        assert!(mcast.is_multicast());
        assert!(!mcast.is_broadcast());
        let ucast = MacAddr::new(0x00, 0x11, 0x22, 0x33, 0x44, 0x55);
        assert!(ucast.is_unicast());
    }

    #[test]
    fn virtual_mac_scheme() {
        let v0 = MacAddr::virtual_mac(0);
        let v1 = MacAddr::virtual_mac(1);
        let vbig = MacAddr::virtual_mac(0xdead_beef);
        assert_ne!(v0, v1);
        assert!(v0.is_locally_administered());
        assert!(v0.is_unicast());
        assert_eq!(v0.virtual_index(), Some(0));
        assert_eq!(v1.virtual_index(), Some(1));
        assert_eq!(vbig.virtual_index(), Some(0xdead_beef));
        // A hardware-looking address is not a VMAC.
        assert_eq!(
            MacAddr::new(0x00, 0x1b, 0x21, 0x00, 0x00, 0x01).virtual_index(),
            None
        );
    }

    #[test]
    fn virtual_macs_are_dense_and_distinct() {
        let macs: Vec<MacAddr> = (0..1000).map(MacAddr::virtual_mac).collect();
        let mut dedup = macs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), macs.len());
    }

    #[test]
    fn from_bytes_checks_length() {
        assert!(MacAddr::from_bytes(&[1, 2, 3, 4, 5, 6]).is_some());
        assert!(MacAddr::from_bytes(&[1, 2, 3]).is_none());
        assert!(MacAddr::from_bytes(&[0; 7]).is_none());
    }
}
