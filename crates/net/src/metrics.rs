//! Deterministic counters and log-linear histograms — the metrics half
//! of the sc-trace observability subsystem.
//!
//! Everything here is a pure function of what was recorded: names are
//! `&'static str`, storage is `BTreeMap` (iteration order is name
//! order, never hasher order), and merging two registries is plain
//! addition — so per-shard and per-worker registries fold into one
//! total that is independent of thread scheduling. A disabled registry
//! reduces every operation to one branch, keeping instrumented hot
//! paths free when observability is off.
//!
//! Histogram buckets are log-linear (HDR-style): exact below
//! [`LINEAR_MAX`], then [`SUB_BUCKETS`] linear sub-buckets per power of
//! two. Relative quantile error is bounded by `1/SUB_BUCKETS` across
//! the whole `u64` range, with a fixed 976-slot footprint.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Values below this are counted exactly (one bucket per value).
pub const LINEAR_MAX: u64 = 16;
/// Linear sub-buckets per power of two above [`LINEAR_MAX`].
pub const SUB_BUCKETS: u64 = 16;
/// Total bucket count: 16 exact + 60 octaves × 16 sub-buckets.
pub const N_BUCKETS: usize = (LINEAR_MAX + (63 - 3) * SUB_BUCKETS) as usize;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    // top >= 4 because v >= 16; each octave contributes SUB_BUCKETS
    // buckets indexed by the 4 bits below the leading one.
    let top = 63 - v.leading_zeros() as u64;
    (LINEAR_MAX + (top - 4) * SUB_BUCKETS + ((v >> (top - 4)) & (SUB_BUCKETS - 1))) as usize
}

/// The smallest value mapping to bucket `i` (inverse of [`bucket_of`];
/// reports quote this as the bucket's representative).
pub fn bucket_lo(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR_MAX {
        return i;
    }
    let octave = (i - LINEAR_MAX) / SUB_BUCKETS;
    let sub = (i - LINEAR_MAX) % SUB_BUCKETS;
    (1 << (octave + 4)) + (sub << octave)
}

/// A log-linear histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// The lower bound of the bucket holding quantile `q` (in permille,
    /// e.g. 500 = median, 990 = p99). Zero on an empty histogram.
    pub fn quantile_permille(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the q-th permille sample, 1-based, clamped into range.
        let rank = ((self.count * q).div_ceil(1000)).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lo(i);
            }
        }
        self.max
    }

    /// Additive merge (bucket-wise): the result is independent of which
    /// registry observed which sample.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `(bucket_lo, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), c))
    }
}

/// A registry of named counters and histograms.
///
/// Disabled by default: every record call is one branch until
/// [`Registry::enable`] — instrumentation stays in place at zero cost
/// on uninstrumented runs (the perf gates prove the bound).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    enabled: bool,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// An enabled registry (for per-shard scratch registries mirroring
    /// an enabled world registry).
    pub fn enabled() -> Registry {
        Registry {
            enabled: true,
            ..Registry::default()
        }
    }

    #[inline]
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    #[inline]
    pub fn add(&mut self, name: &'static str, delta: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry(name).or_insert(0) += delta;
    }

    #[inline]
    pub fn observe(&mut self, name: &'static str, v: u64) {
        if !self.enabled {
            return;
        }
        self.histograms.entry(name).or_default().observe(v);
    }

    /// A counter's value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Additive merge: counters add, histograms add bucket-wise. The
    /// total is the same whatever order partial registries fold in —
    /// the determinism contract for suite workers and kernel shards.
    pub fn merge(&mut self, other: &Registry) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
    }

    /// Drop every recorded value, keeping the enabled flag (per-window
    /// scratch reuse).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }

    /// Byte-reproducible JSON dump: names sorted, integers only.
    /// Histograms quote count/sum/min/max plus p50/p90/p99 bucket
    /// floors and the non-empty buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{k}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.quantile_permille(500),
                h.quantile_permille(900),
                h.quantile_permille(990),
            );
            for (j, (lo, c)) in h.nonzero_buckets().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}\n");
        out
    }

    /// Human-readable dump for the `sc-bench trace` CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k:<48} {v}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{k:<48} n={} sum={} min={} p50={} p99={} max={}",
                h.count(),
                h.sum(),
                h.min(),
                h.quantile_permille(500),
                h.quantile_permille(990),
                h.max(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_exact_then_log_linear() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_lo(v as usize), v);
        }
        // bucket_lo is the smallest member of its bucket, and buckets
        // partition the range in order.
        for i in 0..N_BUCKETS {
            let lo = bucket_lo(i);
            assert_eq!(bucket_of(lo), i, "lo of bucket {i}");
            if i > 0 {
                assert!(bucket_lo(i - 1) < lo);
            }
        }
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn relative_error_bounded() {
        for v in [17u64, 100, 999, 123_456, u64::MAX / 3] {
            let lo = bucket_lo(bucket_of(v));
            assert!(lo <= v);
            // Bucket width is lo/SUB_BUCKETS at most (one sub-bucket).
            assert!(v - lo <= lo / 8, "{v} vs {lo}");
        }
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = Registry::default();
        r.inc("x");
        r.observe("h", 3);
        assert_eq!(r.counter("x"), 0);
        assert!(r.histogram("h").is_none());
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |vals: &[u64]| {
            let mut r = Registry::enabled();
            for &v in vals {
                r.inc("events");
                r.observe("depth", v);
            }
            r
        };
        let (a, b, c) = (mk(&[1, 5, 900]), mk(&[2]), mk(&[70_000, 3]));
        let mut ab = a.clone();
        ab.merge(&b);
        ab.merge(&c);
        let mut cb = c.clone();
        cb.merge(&b);
        cb.merge(&a);
        assert_eq!(ab, cb);
        assert_eq!(ab.counter("events"), 6);
        assert_eq!(ab.to_json(), cb.to_json());
    }

    #[test]
    fn quantiles_from_buckets() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        let p50 = h.quantile_permille(500);
        assert!((44..=50).contains(&p50), "{p50}");
        assert!(h.quantile_permille(1000) >= 96);
    }
}
