//! IPv4 CIDR prefixes.
//!
//! A full Internet table is ~512k of these (the paper's workload); they
//! are the keys of every RIB and FIB in the workspace. The type is a
//! compact `(u32, u8)` pair and is always held in *canonical* form: host
//! bits below the mask are zero, so `Eq`/`Ord`/`Hash` behave as set
//! identity.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 prefix in canonical (masked) form.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Prefix {
    bits: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// `0.0.0.0/0` — the default route.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix { bits: 0, len: 0 };

    /// Build a prefix, masking off host bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        let raw = u32::from(addr);
        Ipv4Prefix {
            bits: raw & mask(len),
            len,
        }
    }

    /// Build a /32 host route.
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Prefix {
            bits: u32::from(addr),
            len: 32,
        }
    }

    /// The network address.
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// The prefix length (mask bits — "empty" is not a meaningful
    /// notion for a prefix, hence no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// The raw network bits (host bits zero).
    pub fn raw_bits(self) -> u32 {
        self.bits
    }

    /// The netmask as an address (e.g. `255.255.255.0` for /24).
    pub fn netmask(self) -> Ipv4Addr {
        Ipv4Addr::from(mask(self.len))
    }

    /// True if `addr` falls inside this prefix.
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & mask(self.len) == self.bits
    }

    /// True if `other` is fully covered by `self` (i.e. `self` is a
    /// supernet of — or equal to — `other`).
    pub fn covers(self, other: Ipv4Prefix) -> bool {
        self.len <= other.len && (other.bits & mask(self.len)) == self.bits
    }

    /// True if the two prefixes share any address.
    pub fn overlaps(self, other: Ipv4Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The value of bit `i` (0 = most significant). Used by the radix trie.
    ///
    /// # Panics
    /// Panics if `i >= 32`.
    pub fn bit(self, i: u8) -> bool {
        assert!(i < 32);
        self.bits & (1u32 << (31 - i)) != 0
    }

    /// The first usable-looking host inside the prefix (network address
    /// +1 for prefixes shorter than /31, the network address itself
    /// otherwise). The traffic generator uses this to pick a concrete
    /// destination IP inside a monitored prefix.
    pub fn sample_host(self) -> Ipv4Addr {
        if self.len >= 31 {
            self.network()
        } else {
            Ipv4Addr::from(self.bits | 1)
        }
    }

    /// Number of addresses covered (saturating at `u64::MAX` is
    /// unnecessary: 2^32 fits in u64).
    pub fn size(self) -> u64 {
        1u64 << (32 - self.len as u32)
    }
}

/// The 32-bit netmask for a prefix length.
fn mask(len: u8) -> u32 {
    debug_assert!(len <= 32);
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error parsing a textual prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// Missing `/` separator.
    MissingSlash,
    /// The address part did not parse.
    BadAddress,
    /// The length part did not parse or exceeded 32.
    BadLength,
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixParseError::MissingSlash => write!(f, "missing '/' in prefix"),
            PrefixParseError::BadAddress => write!(f, "invalid IPv4 address in prefix"),
            PrefixParseError::BadLength => write!(f, "invalid prefix length (0-32)"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Ipv4Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(PrefixParseError::MissingSlash)?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| PrefixParseError::BadAddress)?;
        let len: u8 = len.parse().map_err(|_| PrefixParseError::BadLength)?;
        if len > 32 {
            return Err(PrefixParseError::BadLength);
        }
        Ok(Ipv4Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalizes_host_bits() {
        let a = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        let b = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16);
        assert_eq!(a, b);
        assert_eq!(a.network(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(a.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(p("1.0.0.0/24").to_string(), "1.0.0.0/24");
        assert_eq!(p("0.0.0.0/0"), Ipv4Prefix::DEFAULT);
        assert_eq!(p("203.0.113.7/32").len(), 32);
        assert!("1.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("1.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("1.0.0.x/8".parse::<Ipv4Prefix>().is_err());
        assert!("1.0.0.0/x".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn contains_respects_mask() {
        let pfx = p("192.168.4.0/22");
        assert!(pfx.contains(Ipv4Addr::new(192, 168, 4, 1)));
        assert!(pfx.contains(Ipv4Addr::new(192, 168, 7, 255)));
        assert!(!pfx.contains(Ipv4Addr::new(192, 168, 8, 0)));
        assert!(Ipv4Prefix::DEFAULT.contains(Ipv4Addr::new(8, 8, 8, 8)));
    }

    #[test]
    fn covers_and_overlaps() {
        let wide = p("10.0.0.0/8");
        let narrow = p("10.1.0.0/16");
        let other = p("11.0.0.0/8");
        assert!(wide.covers(narrow));
        assert!(!narrow.covers(wide));
        assert!(wide.covers(wide));
        assert!(wide.overlaps(narrow));
        assert!(narrow.overlaps(wide));
        assert!(!wide.overlaps(other));
    }

    #[test]
    fn bit_indexing_is_msb_first() {
        let pfx = p("128.0.0.0/1");
        assert!(pfx.bit(0));
        let pfx = p("64.0.0.0/2");
        assert!(!pfx.bit(0));
        assert!(pfx.bit(1));
    }

    #[test]
    fn netmask_values() {
        assert_eq!(p("10.0.0.0/8").netmask(), Ipv4Addr::new(255, 0, 0, 0));
        assert_eq!(p("10.0.0.0/24").netmask(), Ipv4Addr::new(255, 255, 255, 0));
        assert_eq!(p("0.0.0.0/0").netmask(), Ipv4Addr::new(0, 0, 0, 0));
        assert_eq!(p("1.2.3.4/32").netmask(), Ipv4Addr::new(255, 255, 255, 255));
    }

    #[test]
    fn sample_host_is_inside() {
        for s in ["1.0.0.0/24", "10.0.0.0/8", "1.2.3.4/32", "1.2.3.4/31"] {
            let pfx = p(s);
            assert!(pfx.contains(pfx.sample_host()), "{s}");
        }
        assert_eq!(p("1.0.0.0/24").sample_host(), Ipv4Addr::new(1, 0, 0, 1));
    }

    #[test]
    fn size_counts_addresses() {
        assert_eq!(p("1.2.3.4/32").size(), 1);
        assert_eq!(p("1.0.0.0/24").size(), 256);
        assert_eq!(p("0.0.0.0/0").size(), 1u64 << 32);
    }

    #[test]
    fn ordering_is_stable_for_fib_walks() {
        // The router walks its FIB in trie (sorted) order; the Ord impl
        // must sort by network bits then length.
        let mut v = vec![p("2.0.0.0/8"), p("1.0.0.0/24"), p("1.0.0.0/16")];
        v.sort();
        assert_eq!(v, vec![p("1.0.0.0/16"), p("1.0.0.0/24"), p("2.0.0.0/8")]);
    }
}
