//! Virtual time for the discrete-event world.
//!
//! All timing in the workspace — link latencies, BFD detection intervals,
//! FIB-walk entry costs, inter-packet gaps — is expressed in these types.
//! The unit is the nanosecond, held in a `u64`: enough for ~584 years of
//! virtual time, far beyond any experiment.
//!
//! [`SimTime`] is an absolute instant (nanoseconds since the start of the
//! simulation); [`SimDuration`] is a span. The API mirrors
//! `std::time::{Instant, Duration}` where it makes sense, but both types
//! are plain `Copy` integers with total ordering, which is what a
//! deterministic event queue needs.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant (used as an "infinitely far"
    /// sentinel for timer bookkeeping).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float (for reporting only —
    /// never feed floats back into the event queue).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; a deterministic simulator
    /// never observes time running backwards, so this is a logic error.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::duration_since: earlier is later than self"),
        )
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond. Intended for configuration parsing, not for arithmetic
    /// inside the simulator.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor.
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Round this duration *up* to the nearest multiple of `quantum`.
    ///
    /// The FPGA-based monitor of the paper measures with 70 µs precision;
    /// the traffic sink uses this to model that quantization.
    pub fn quantize_up(self, quantum: SimDuration) -> SimDuration {
        if quantum.0 == 0 {
            return self;
        }
        let rem = self.0 % quantum.0;
        if rem == 0 {
            self
        } else {
            SimDuration(self.0 - rem + quantum.0)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Human-readable rendering of a nanosecond count, picking the largest
/// unit that keeps at least one integer digit.
fn format_ns(ns: u64) -> String {
    if ns == 0 {
        "0ns".to_string()
    } else if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(100);
        let d = SimDuration::from_millis(50);
        assert_eq!((t + d).as_millis(), 150);
        assert_eq!((t - d).as_millis(), 50);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.duration_since(SimTime::ZERO).as_millis(), 100);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_millis(10)
        );
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn duration_since_panics_when_backwards() {
        let _ = SimTime::from_millis(1).duration_since(SimTime::from_millis(2));
    }

    #[test]
    fn quantize_up_rounds_to_monitor_precision() {
        let q = SimDuration::from_micros(70);
        assert_eq!(SimDuration::from_micros(0).quantize_up(q).as_micros(), 0);
        assert_eq!(SimDuration::from_micros(1).quantize_up(q).as_micros(), 70);
        assert_eq!(SimDuration::from_micros(70).quantize_up(q).as_micros(), 70);
        assert_eq!(SimDuration::from_micros(71).quantize_up(q).as_micros(), 140);
        // Zero quantum means "no quantization".
        assert_eq!(
            SimDuration::from_micros(33).quantize_up(SimDuration::ZERO),
            SimDuration::from_micros(33)
        );
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_millis(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_millis(3));
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(70).to_string(), "70.000us");
        assert_eq!(SimDuration::from_millis(150).to_string(), "150.000ms");
        assert_eq!(SimDuration::from_secs(141).to_string(), "141.000s");
    }

    #[test]
    fn mul_div() {
        let d = SimDuration::from_micros(281);
        assert_eq!((d * 500_000).as_millis(), 140_500);
        assert_eq!((d / 281).as_micros(), 1);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.150).as_millis(), 150);
        assert_eq!(SimDuration::from_secs_f64(0.0).as_nanos(), 0);
    }
}
