//! A path-compressed binary radix trie over [`Ipv4Prefix`] keys.
//!
//! This is the structure behind every RIB and FIB in the workspace: the
//! router's forwarding table, the controller's routing table, and the
//! traffic sink's expected-destination CAM. It supports exact-match
//! insert/remove/get, **longest-prefix match** on addresses, and ordered
//! iteration (the order in which the legacy router walks its FIB during
//! convergence).
//!
//! Nodes live in a `Vec` arena addressed by `u32` indices with a free
//! list, so a 512k-entry full table costs a few tens of megabytes and no
//! per-node allocations.

use crate::prefix::Ipv4Prefix;
use std::net::Ipv4Addr;

const NO_NODE: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node<T> {
    /// The key bits accumulated on the path down to (and including) this
    /// node. Inner (split) nodes may carry no value.
    prefix: Ipv4Prefix,
    value: Option<T>,
    /// Child whose next bit after `prefix.len()` is 0 / 1.
    left: u32,
    right: u32,
}

/// A map from IPv4 prefixes to `T` with longest-prefix-match lookup.
#[derive(Clone, Debug)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NO_NODE,
            len: 0,
        }
    }

    /// Number of stored (prefix, value) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NO_NODE;
        self.len = 0;
    }

    fn alloc(&mut self, node: Node<T>) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx < NO_NODE, "trie node arena exhausted");
            self.nodes.push(node);
            idx
        }
    }

    /// Insert `value` under `prefix`, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: T) -> Option<T> {
        self.insert_at(prefix, value).1
    }

    /// [`PrefixTrie::insert`] that also reports the arena index of the
    /// node now holding `prefix` — the single-traversal building block
    /// behind [`PrefixTrie::get_mut_or_insert_with`].
    fn insert_at(&mut self, prefix: Ipv4Prefix, value: T) -> (u32, Option<T>) {
        if self.root == NO_NODE {
            self.root = self.alloc(Node {
                prefix,
                value: Some(value),
                left: NO_NODE,
                right: NO_NODE,
            });
            self.len += 1;
            return (self.root, None);
        }

        let mut cur = self.root;
        loop {
            let cur_prefix = self.nodes[cur as usize].prefix;
            let common = common_prefix_len(prefix, cur_prefix);

            if common < cur_prefix.len() {
                // The new key diverges inside this node's edge: split.
                let split_prefix = Ipv4Prefix::new(Ipv4Addr::from(prefix.raw_bits()), common);
                // Which side does the existing node go to?
                let cur_bit = cur_prefix.bit(common);
                let old_node = cur;
                let split = self.alloc(Node {
                    prefix: split_prefix,
                    value: None,
                    left: NO_NODE,
                    right: NO_NODE,
                });
                // Move the old node's slot content under the split node.
                // `split` replaces `old_node` in the parent, so swap their
                // arena positions to avoid tracking parents.
                self.nodes.swap(old_node as usize, split as usize);
                // After the swap: `old_node` slot holds the split node,
                // `split` slot holds the original node.
                if cur_bit {
                    self.nodes[old_node as usize].right = split;
                } else {
                    self.nodes[old_node as usize].left = split;
                }
                let split_node_idx = old_node;

                if common == prefix.len() {
                    // The new prefix *is* the split point.
                    self.nodes[split_node_idx as usize].value = Some(value);
                    self.len += 1;
                    return (split_node_idx, None);
                }
                // Attach a fresh leaf for the new prefix on the other side.
                let leaf = self.alloc(Node {
                    prefix,
                    value: Some(value),
                    left: NO_NODE,
                    right: NO_NODE,
                });
                if prefix.bit(common) {
                    debug_assert!(!cur_bit);
                    self.nodes[split_node_idx as usize].right = leaf;
                } else {
                    debug_assert!(cur_bit);
                    self.nodes[split_node_idx as usize].left = leaf;
                }
                self.len += 1;
                return (leaf, None);
            }

            // cur_prefix is fully a prefix of the new key.
            if prefix.len() == cur_prefix.len() {
                // Exact node.
                let slot = &mut self.nodes[cur as usize].value;
                let old = slot.replace(value);
                if old.is_none() {
                    self.len += 1;
                }
                return (cur, old);
            }

            // Descend.
            let bit = prefix.bit(cur_prefix.len());
            let child = if bit {
                self.nodes[cur as usize].right
            } else {
                self.nodes[cur as usize].left
            };
            if child == NO_NODE {
                let leaf = self.alloc(Node {
                    prefix,
                    value: Some(value),
                    left: NO_NODE,
                    right: NO_NODE,
                });
                if bit {
                    self.nodes[cur as usize].right = leaf;
                } else {
                    self.nodes[cur as usize].left = leaf;
                }
                self.len += 1;
                return (leaf, None);
            }
            cur = child;
        }
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Ipv4Prefix) -> Option<&T> {
        let idx = self.find_exact(prefix)?;
        self.nodes[idx as usize].value.as_ref()
    }

    /// Exact-match mutable lookup.
    pub fn get_mut(&mut self, prefix: Ipv4Prefix) -> Option<&mut T> {
        let idx = self.find_exact(prefix)?;
        self.nodes[idx as usize].value.as_mut()
    }

    /// Mutable access to the entry for `prefix`, inserting
    /// `default()` first if absent — one traversal on a hit, one
    /// insert traversal on a miss (the `get_mut` miss + `insert`
    /// pattern bulk RIB loads used to pay is folded into
    /// [`PrefixTrie::insert_at`], which reports the landing node).
    pub fn get_mut_or_insert_with(
        &mut self,
        prefix: Ipv4Prefix,
        default: impl FnOnce() -> T,
    ) -> &mut T {
        let idx = match self.find_exact(prefix) {
            Some(idx) => {
                let slot = &mut self.nodes[idx as usize].value;
                if slot.is_none() {
                    // Interior split node: claim it.
                    *slot = Some(default());
                    self.len += 1;
                }
                idx
            }
            None => self.insert_at(prefix, default()).0,
        };
        self.nodes[idx as usize]
            .value
            .as_mut()
            .expect("just filled")
    }

    /// True if the exact prefix is stored.
    pub fn contains_prefix(&self, prefix: Ipv4Prefix) -> bool {
        self.get(prefix).is_some()
    }

    fn find_exact(&self, prefix: Ipv4Prefix) -> Option<u32> {
        let mut cur = self.root;
        while cur != NO_NODE {
            let node = &self.nodes[cur as usize];
            let np = node.prefix;
            if !np.covers(prefix) {
                return None;
            }
            if np.len() == prefix.len() {
                return Some(cur);
            }
            cur = if prefix.bit(np.len()) {
                node.right
            } else {
                node.left
            };
        }
        None
    }

    /// Longest-prefix match: the most specific stored prefix containing
    /// `addr`, with its value.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(Ipv4Prefix, &T)> {
        let key = Ipv4Prefix::host(addr);
        let mut best: Option<(Ipv4Prefix, &T)> = None;
        let mut cur = self.root;
        while cur != NO_NODE {
            let node = &self.nodes[cur as usize];
            let np = node.prefix;
            if !np.covers(key) {
                break;
            }
            if let Some(v) = &node.value {
                best = Some((np, v));
            }
            if np.len() == 32 {
                break;
            }
            cur = if key.bit(np.len()) {
                node.right
            } else {
                node.left
            };
        }
        best
    }

    /// All stored prefixes containing `addr`, shortest first (for
    /// diagnostics and tests).
    pub fn matches(&self, addr: Ipv4Addr) -> Vec<(Ipv4Prefix, &T)> {
        let key = Ipv4Prefix::host(addr);
        let mut out = Vec::new();
        let mut cur = self.root;
        while cur != NO_NODE {
            let node = &self.nodes[cur as usize];
            let np = node.prefix;
            if !np.covers(key) {
                break;
            }
            if let Some(v) = &node.value {
                out.push((np, v));
            }
            if np.len() == 32 {
                break;
            }
            cur = if key.bit(np.len()) {
                node.right
            } else {
                node.left
            };
        }
        out
    }

    /// Remove a prefix, returning its value. Prunes and re-merges nodes so
    /// the structure stays compact under churn.
    pub fn remove(&mut self, prefix: Ipv4Prefix) -> Option<T> {
        // Walk down, remembering the path for pruning.
        let mut path: Vec<u32> = Vec::with_capacity(8);
        let mut cur = self.root;
        loop {
            if cur == NO_NODE {
                return None;
            }
            let node = &self.nodes[cur as usize];
            let np = node.prefix;
            if !np.covers(prefix) {
                return None;
            }
            if np.len() == prefix.len() {
                break;
            }
            path.push(cur);
            cur = if prefix.bit(np.len()) {
                node.right
            } else {
                node.left
            };
        }
        let value = self.nodes[cur as usize].value.take()?;
        self.len -= 1;
        self.prune(cur, &path);
        Some(value)
    }

    /// Remove node `idx` if it has become useless (no value), merging
    /// single-child pass-through nodes upward along `path`.
    fn prune(&mut self, idx: u32, path: &[u32]) {
        let mut idx = idx;
        let mut path_end = path.len();
        loop {
            let node = &self.nodes[idx as usize];
            if node.value.is_some() {
                return;
            }
            let (l, r) = (node.left, node.right);
            let replacement = match (l != NO_NODE, r != NO_NODE) {
                (true, true) => return, // genuine split point, keep
                (true, false) => l,
                (false, true) => r,
                (false, false) => NO_NODE,
            };
            // Unlink idx from its parent (or root), replacing with child.
            let parent = if path_end == 0 {
                None
            } else {
                Some(path[path_end - 1])
            };
            match parent {
                None => {
                    self.root = replacement;
                    self.free.push(idx);
                    return;
                }
                Some(p) => {
                    let pnode = &mut self.nodes[p as usize];
                    if pnode.left == idx {
                        pnode.left = replacement;
                    } else {
                        debug_assert_eq!(pnode.right, idx);
                        pnode.right = replacement;
                    }
                    self.free.push(idx);
                    // The parent may itself have become a valueless
                    // pass-through node.
                    idx = p;
                    path_end -= 1;
                }
            }
        }
    }

    /// Iterate entries in ascending `(network bits, length)` order — the
    /// order in which the modeled router walks its FIB.
    pub fn iter(&self) -> Iter<'_, T> {
        let mut stack = Vec::new();
        if self.root != NO_NODE {
            stack.push(self.root);
        }
        Iter { trie: self, stack }
    }

    /// Iterate just the stored prefixes, in order.
    pub fn keys(&self) -> impl Iterator<Item = Ipv4Prefix> + '_ {
        self.iter().map(|(p, _)| p)
    }

    /// Apply `f` to every value (iteration order as [`PrefixTrie::iter`]).
    pub fn for_each_mut(&mut self, mut f: impl FnMut(Ipv4Prefix, &mut T)) {
        let mut stack = Vec::new();
        if self.root != NO_NODE {
            stack.push(self.root);
        }
        while let Some(idx) = stack.pop() {
            let (l, r) = {
                let n = &self.nodes[idx as usize];
                (n.left, n.right)
            };
            // Visit own value, then left subtree, then right: push right
            // first so left pops first.
            let node = &mut self.nodes[idx as usize];
            let prefix = node.prefix;
            if let Some(v) = node.value.as_mut() {
                f(prefix, v);
            }
            if r != NO_NODE {
                stack.push(r);
            }
            if l != NO_NODE {
                stack.push(l);
            }
        }
    }
}

/// Ordered iterator over trie entries.
pub struct Iter<'a, T> {
    trie: &'a PrefixTrie<T>,
    stack: Vec<u32>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (Ipv4Prefix, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(idx) = self.stack.pop() {
            let node = &self.trie.nodes[idx as usize];
            // Pre-order: a node's own prefix sorts before both subtrees
            // (same leading bits, shorter length) and the left subtree's
            // bits sort below the right's.
            if node.right != NO_NODE {
                self.stack.push(node.right);
            }
            if node.left != NO_NODE {
                self.stack.push(node.left);
            }
            if let Some(v) = &node.value {
                return Some((node.prefix, v));
            }
        }
        None
    }
}

impl<'a, T> IntoIterator for &'a PrefixTrie<T> {
    type Item = (Ipv4Prefix, &'a T);
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T> FromIterator<(Ipv4Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Ipv4Prefix, T)>>(iter: I) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

/// Length of the common prefix of two prefixes, capped at both lengths.
fn common_prefix_len(a: Ipv4Prefix, b: Ipv4Prefix) -> u8 {
    let diff = a.raw_bits() ^ b.raw_bits();
    let common = diff.leading_zeros() as u8;
    common.min(a.len()).min(b.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_exact() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/16"), 2), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 3), Some(1));
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&3));
        assert_eq!(t.get(p("10.0.0.0/16")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/24")), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn longest_prefix_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        t.insert(p("10.1.2.0/24"), "twentyfour");

        let lookup = |a: [u8; 4]| t.lookup(Ipv4Addr::from(a)).map(|(_, v)| *v);
        assert_eq!(lookup([10, 1, 2, 3]), Some("twentyfour"));
        assert_eq!(lookup([10, 1, 9, 9]), Some("sixteen"));
        assert_eq!(lookup([10, 200, 0, 1]), Some("eight"));
        assert_eq!(lookup([192, 168, 0, 1]), Some("default"));
    }

    #[test]
    fn lookup_on_empty_and_miss() {
        let t: PrefixTrie<u32> = PrefixTrie::new();
        assert!(t.lookup(Ipv4Addr::new(1, 2, 3, 4)).is_none());

        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert!(t.lookup(Ipv4Addr::new(11, 0, 0, 1)).is_none());
    }

    #[test]
    fn split_nodes_hold_no_phantom_values() {
        let mut t = PrefixTrie::new();
        // 10.0.0.0/8 and 10.128.0.0/9 share a /8 split... insert siblings
        // that force an inner split node at /15.
        t.insert(p("10.2.0.0/16"), 1);
        t.insert(p("10.3.0.0/16"), 2);
        assert_eq!(t.len(), 2);
        // The split point /15 must not match.
        assert_eq!(t.get(p("10.2.0.0/15")), None);
        assert_eq!(
            t.lookup(Ipv4Addr::new(10, 2, 0, 1)).map(|(pf, v)| (pf, *v)),
            Some((p("10.2.0.0/16"), 1))
        );
        assert_eq!(
            t.lookup(Ipv4Addr::new(10, 3, 0, 1)).map(|(pf, v)| (pf, *v)),
            Some((p("10.3.0.0/16"), 2))
        );
        assert!(t.lookup(Ipv4Addr::new(10, 4, 0, 1)).is_none());
    }

    #[test]
    fn remove_and_prune() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.2.0.0/16"), 1);
        t.insert(p("10.3.0.0/16"), 2);
        t.insert(p("10.0.0.0/8"), 0);
        assert_eq!(t.remove(p("10.2.0.0/16")), Some(1));
        assert_eq!(t.remove(p("10.2.0.0/16")), None);
        assert_eq!(t.len(), 2);
        assert!(t.lookup(Ipv4Addr::new(10, 2, 0, 1)).is_some()); // /8 still covers
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(0));
        assert_eq!(t.remove(p("10.3.0.0/16")), Some(2));
        assert!(t.is_empty());
        assert!(t.lookup(Ipv4Addr::new(10, 3, 0, 1)).is_none());
        // Arena fully recycled: inserting again must not grow unboundedly.
        let before = t.nodes.len();
        t.insert(p("10.2.0.0/16"), 9);
        assert!(t.nodes.len() <= before.max(1));
    }

    #[test]
    fn removing_inner_value_keeps_children() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 0);
        t.insert(p("10.2.0.0/16"), 1);
        t.insert(p("10.3.0.0/16"), 2);
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(p("10.2.0.0/16")), Some(&1));
        assert_eq!(t.get(p("10.3.0.0/16")), Some(&2));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut t = PrefixTrie::new();
        let prefixes = [
            "99.0.0.0/8",
            "1.0.0.0/24",
            "1.0.0.0/16",
            "1.0.1.0/24",
            "0.0.0.0/0",
            "128.0.0.0/1",
        ];
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p(s), i);
        }
        let keys: Vec<Ipv4Prefix> = t.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), prefixes.len());
        assert_eq!(keys[0], p("0.0.0.0/0"));
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv4Prefix::DEFAULT, 42);
        assert_eq!(
            t.lookup(Ipv4Addr::new(0, 0, 0, 0)).map(|(_, v)| *v),
            Some(42)
        );
        assert_eq!(
            t.lookup(Ipv4Addr::new(255, 255, 255, 255)).map(|(_, v)| *v),
            Some(42)
        );
    }

    #[test]
    fn matches_returns_all_covering() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        t.insert(p("11.0.0.0/8"), 3);
        let m: Vec<u32> = t
            .matches(Ipv4Addr::new(10, 1, 2, 3))
            .into_iter()
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(m, vec![0, 1, 2]);
    }

    #[test]
    fn for_each_mut_visits_all() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 10);
        t.insert(p("20.0.0.0/8"), 100);
        t.for_each_mut(|_, v| *v *= 2);
        let sum: u32 = t.iter().map(|(_, v)| *v).sum();
        assert_eq!(sum, 222);
    }

    #[test]
    fn host_routes_at_32_bits() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), 1);
        t.insert(p("1.2.3.5/32"), 2);
        t.insert(p("1.2.3.0/24"), 0);
        assert_eq!(
            t.lookup(Ipv4Addr::new(1, 2, 3, 4)).map(|(_, v)| *v),
            Some(1)
        );
        assert_eq!(
            t.lookup(Ipv4Addr::new(1, 2, 3, 5)).map(|(_, v)| *v),
            Some(2)
        );
        assert_eq!(
            t.lookup(Ipv4Addr::new(1, 2, 3, 6)).map(|(_, v)| *v),
            Some(0)
        );
    }

    /// Differential test against a naive model on a deterministic
    /// pseudo-random workload (the proptest version lives in
    /// `tests/trie_model.rs` of this crate).
    #[test]
    fn differential_against_btreemap_model() {
        let mut model: BTreeMap<Ipv4Prefix, u64> = BTreeMap::new();
        let mut t = PrefixTrie::new();
        // Simple deterministic LCG so the test needs no rand dependency.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for i in 0..4000u64 {
            let r = next();
            let addr = Ipv4Addr::from((r >> 16) as u32);
            let len = (r % 33) as u8;
            let pfx = Ipv4Prefix::new(addr, len);
            match r % 3 {
                0 | 1 => {
                    assert_eq!(t.insert(pfx, i), model.insert(pfx, i), "insert {pfx}");
                }
                _ => {
                    assert_eq!(t.remove(pfx), model.remove(&pfx), "remove {pfx}");
                }
            }
            assert_eq!(t.len(), model.len());
        }
        // Compare LPM on a batch of addresses.
        for _ in 0..2000 {
            let addr = Ipv4Addr::from(next() as u32);
            let expect = model
                .iter()
                .filter(|(pfx, _)| pfx.contains(addr))
                .max_by_key(|(pfx, _)| pfx.len())
                .map(|(pfx, v)| (*pfx, *v));
            let got = t.lookup(addr).map(|(pfx, v)| (pfx, *v));
            assert_eq!(got, expect, "lpm {addr}");
        }
        // Ordered iteration equals the model's.
        let got: Vec<_> = t.iter().map(|(pfx, v)| (pfx, *v)).collect();
        let expect: Vec<_> = model.iter().map(|(pfx, v)| (*pfx, *v)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn full_table_scale_smoke() {
        // 100k synthetic /24s: insert, LPM, iterate — exercises arena
        // growth and ordered-walk performance assumptions.
        let mut t = PrefixTrie::new();
        for i in 0..100_000u32 {
            let base = 0x0100_0000u32 + (i << 8); // 1.0.0.0 onward, /24 apart
            t.insert(Ipv4Prefix::new(Ipv4Addr::from(base), 24), i);
        }
        assert_eq!(t.len(), 100_000);
        let (pfx, v) = t.lookup(Ipv4Addr::from(0x0100_0001u32)).unwrap();
        assert_eq!((pfx.len(), *v), (24, 0));
        assert_eq!(t.iter().count(), 100_000);
        let first = t.iter().next().unwrap().0;
        assert_eq!(first, Ipv4Prefix::new(Ipv4Addr::new(1, 0, 0, 0), 24));
    }
}
