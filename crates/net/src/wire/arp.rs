//! ARP (RFC 826) for IPv4-over-Ethernet.
//!
//! ARP is the provisioning trick at the heart of the paper: the router
//! resolves each *virtual* next-hop IP with an ARP request, and the
//! supercharger's ARP responder answers with the backup-group's VMAC.
//! That single reply is what turns the router's flat FIB into the first
//! stage of a hierarchical FIB.

use super::{be16, need, WireError};
use crate::mac::MacAddr;
use std::net::Ipv4Addr;

/// Fixed size of an IPv4-over-Ethernet ARP packet.
pub const PACKET_LEN: usize = 28;

/// ARP operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArpOp {
    Request,
    Reply,
}

impl ArpOp {
    fn from_u16(v: u16) -> Result<ArpOp, WireError> {
        match v {
            1 => Ok(ArpOp::Request),
            2 => Ok(ArpOp::Reply),
            _ => Err(WireError::BadField("arp operation")),
        }
    }

    fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }
}

/// Parsed ARP packet (IPv4 over Ethernet only).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArpRepr {
    pub op: ArpOp,
    pub sender_mac: MacAddr,
    pub sender_ip: Ipv4Addr,
    pub target_mac: MacAddr,
    pub target_ip: Ipv4Addr,
}

impl ArpRepr {
    /// Build the standard "who-has `target_ip`? tell `sender`" request.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> ArpRepr {
        ArpRepr {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Build the reply to `request`, announcing `our_mac` for the
    /// requested IP.
    pub fn reply_to(request: &ArpRepr, our_mac: MacAddr) -> ArpRepr {
        ArpRepr {
            op: ArpOp::Reply,
            sender_mac: our_mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Parse an ARP packet. Only Ethernet/IPv4 (htype 1, ptype 0x0800,
    /// hlen 6, plen 4) is supported; anything else is `Unsupported`.
    pub fn parse(buf: &[u8]) -> Result<ArpRepr, WireError> {
        need(buf, PACKET_LEN)?;
        if be16(buf, 0) != 1 {
            return Err(WireError::Unsupported("arp hardware type"));
        }
        if be16(buf, 2) != 0x0800 {
            return Err(WireError::Unsupported("arp protocol type"));
        }
        if buf[4] != 6 || buf[5] != 4 {
            return Err(WireError::Unsupported("arp address lengths"));
        }
        let op = ArpOp::from_u16(be16(buf, 6))?;
        Ok(ArpRepr {
            op,
            sender_mac: MacAddr::from_bytes(&buf[8..14]).unwrap(),
            sender_ip: Ipv4Addr::new(buf[14], buf[15], buf[16], buf[17]),
            target_mac: MacAddr::from_bytes(&buf[18..24]).unwrap(),
            target_ip: Ipv4Addr::new(buf[24], buf[25], buf[26], buf[27]),
        })
    }

    /// Serialize to the 28-byte wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = vec![0u8; PACKET_LEN];
        buf[0..2].copy_from_slice(&1u16.to_be_bytes()); // htype: Ethernet
        buf[2..4].copy_from_slice(&0x0800u16.to_be_bytes()); // ptype: IPv4
        buf[4] = 6;
        buf[5] = 4;
        buf[6..8].copy_from_slice(&self.op.to_u16().to_be_bytes());
        buf[8..14].copy_from_slice(&self.sender_mac.octets());
        buf[14..18].copy_from_slice(&self.sender_ip.octets());
        buf[18..24].copy_from_slice(&self.target_mac.octets());
        buf[24..28].copy_from_slice(&self.target_ip.octets());
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_reply_roundtrip() {
        let req = ArpRepr::request(
            MacAddr::new(0, 1, 2, 3, 4, 5),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 200, 0, 1), // a VNH
        );
        let bytes = req.to_bytes();
        assert_eq!(bytes.len(), PACKET_LEN);
        let parsed = ArpRepr::parse(&bytes).unwrap();
        assert_eq!(parsed, req);

        let vmac = MacAddr::virtual_mac(3);
        let rep = ArpRepr::reply_to(&parsed, vmac);
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_mac, vmac);
        assert_eq!(rep.sender_ip, req.target_ip);
        assert_eq!(rep.target_mac, req.sender_mac);
        assert_eq!(rep.target_ip, req.sender_ip);
        let rep2 = ArpRepr::parse(&rep.to_bytes()).unwrap();
        assert_eq!(rep2, rep);
    }

    #[test]
    fn rejects_non_ethernet_ipv4() {
        let mut b = ArpRepr::request(MacAddr::ZERO, Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED)
            .to_bytes();
        b[1] = 6; // htype = IEEE 802
        assert_eq!(
            ArpRepr::parse(&b),
            Err(WireError::Unsupported("arp hardware type"))
        );

        let mut b2 = ArpRepr::request(MacAddr::ZERO, Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED)
            .to_bytes();
        b2[3] = 0xdd; // ptype junk
        assert!(ArpRepr::parse(&b2).is_err());

        let mut b3 = ArpRepr::request(MacAddr::ZERO, Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED)
            .to_bytes();
        b3[7] = 9; // bad op
        assert_eq!(
            ArpRepr::parse(&b3),
            Err(WireError::BadField("arp operation"))
        );
    }

    #[test]
    fn truncated_rejected() {
        let b = ArpRepr::request(MacAddr::ZERO, Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED)
            .to_bytes();
        for cut in [0, 1, 8, 27] {
            assert!(ArpRepr::parse(&b[..cut]).is_err(), "cut={cut}");
        }
    }
}
