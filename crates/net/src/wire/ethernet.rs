//! Ethernet II frames.
//!
//! Every frame crossing a simulated link is a real encoded Ethernet II
//! frame: `dst(6) src(6) ethertype(2) payload`. The supercharged data
//! path works *because* the router writes a VMAC into `dst` and the
//! switch matches and rewrites it — so the frame encoding is load-bearing
//! for the whole reproduction, not decoration.

use super::{be16, need, put16, WireError};
use crate::mac::MacAddr;
use std::fmt;

/// Minimum Ethernet II header length (we do not model the FCS trailer;
/// link-level corruption is injected at the simulator instead).
pub const HEADER_LEN: usize = 14;

/// The EtherType values used in this workspace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EtherType {
    Ipv4,
    Arp,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }

    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtherType::Ipv4 => write!(f, "IPv4"),
            EtherType::Arp => write!(f, "ARP"),
            EtherType::Other(v) => write!(f, "0x{v:04x}"),
        }
    }
}

/// Parsed Ethernet II header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EthernetRepr {
    pub dst: MacAddr,
    pub src: MacAddr,
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Parse a frame, returning the header and the payload slice.
    pub fn parse(frame: &[u8]) -> Result<(EthernetRepr, &[u8]), WireError> {
        need(frame, HEADER_LEN)?;
        let dst = MacAddr::from_bytes(&frame[0..6]).unwrap();
        let src = MacAddr::from_bytes(&frame[6..12]).unwrap();
        let ethertype = EtherType::from_u16(be16(frame, 12));
        Ok((
            EthernetRepr {
                dst,
                src,
                ethertype,
            },
            &frame[HEADER_LEN..],
        ))
    }

    /// Serialize header + payload into a fresh frame buffer.
    pub fn to_frame(&self, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
        buf.extend_from_slice(&self.dst.octets());
        buf.extend_from_slice(&self.src.octets());
        let mut ty = [0u8; 2];
        put16(&mut ty, 0, self.ethertype.to_u16());
        buf.extend_from_slice(&ty);
        buf.extend_from_slice(payload);
        buf
    }

    /// Rewrite the destination MAC of an already-encoded frame in place.
    ///
    /// This is the switch's `set_dst_mac` action: it must not re-parse or
    /// re-serialize the rest of the frame.
    pub fn rewrite_dst(frame: &mut [u8], dst: MacAddr) -> Result<(), WireError> {
        need(frame, HEADER_LEN)?;
        frame[0..6].copy_from_slice(&dst.octets());
        Ok(())
    }

    /// Rewrite the source MAC of an already-encoded frame in place.
    pub fn rewrite_src(frame: &mut [u8], src: MacAddr) -> Result<(), WireError> {
        need(frame, HEADER_LEN)?;
        frame[6..12].copy_from_slice(&src.octets());
        Ok(())
    }

    /// Peek at the destination MAC without a full parse (hot path of the
    /// switch pipeline).
    pub fn peek_dst(frame: &[u8]) -> Result<MacAddr, WireError> {
        need(frame, HEADER_LEN)?;
        Ok(MacAddr::from_bytes(&frame[0..6]).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EthernetRepr {
        EthernetRepr {
            dst: MacAddr::new(0x02, 0x5c, 0, 0, 0, 1),
            src: MacAddr::new(0x00, 0x1b, 0x21, 0xaa, 0xbb, 0xcc),
            ethertype: EtherType::Ipv4,
        }
    }

    #[test]
    fn roundtrip() {
        let repr = sample();
        let frame = repr.to_frame(b"hello");
        let (parsed, payload) = EthernetRepr::parse(&frame).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn truncated_rejected() {
        let frame = sample().to_frame(b"");
        assert!(EthernetRepr::parse(&frame[..13]).is_err());
        assert!(EthernetRepr::parse(&[]).is_err());
        // Exactly the header with empty payload is fine.
        let (_, payload) = EthernetRepr::parse(&frame).unwrap();
        assert!(payload.is_empty());
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from_u16(0x86dd), EtherType::Other(0x86dd));
        assert_eq!(EtherType::Other(0x1234).to_u16(), 0x1234);
        assert_eq!(EtherType::Ipv4.to_u16(), 0x0800);
    }

    #[test]
    fn rewrite_dst_in_place_preserves_rest() {
        let repr = sample();
        let mut frame = repr.to_frame(b"payload");
        let vmac = MacAddr::virtual_mac(7);
        EthernetRepr::rewrite_dst(&mut frame, vmac).unwrap();
        let (parsed, payload) = EthernetRepr::parse(&frame).unwrap();
        assert_eq!(parsed.dst, vmac);
        assert_eq!(parsed.src, repr.src);
        assert_eq!(parsed.ethertype, repr.ethertype);
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn peek_dst_matches_parse() {
        let frame = sample().to_frame(&[0u8; 46]);
        assert_eq!(EthernetRepr::peek_dst(&frame).unwrap(), sample().dst);
        assert!(EthernetRepr::peek_dst(&frame[..5]).is_err());
    }
}
