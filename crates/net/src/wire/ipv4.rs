//! IPv4 headers (RFC 791), without options.
//!
//! The router's data plane parses these to do its longest-prefix match and
//! TTL handling; the traffic generator emits them for every probe packet.
//! Header checksums are always generated and validated (a corrupted frame
//! injected by the simulator's fault injection must be *detected*, not
//! silently forwarded).

use super::{be16, need, put16, WireError};
use crate::checksum;
use std::net::Ipv4Addr;

/// Length of an IPv4 header without options.
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers used in this workspace.
pub mod protocol {
    pub const ICMP: u8 = 1;
    pub const TCP: u8 = 6;
    pub const UDP: u8 = 17;
}

/// Parsed IPv4 header (options unsupported by design — the paper's data
/// plane never generates them, and real routers punt optioned packets to
/// the slow path anyway).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ipv4Repr {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub protocol: u8,
    pub ttl: u8,
    /// DSCP/ECN byte, preserved verbatim.
    pub tos: u8,
    /// Identification field (used by the traffic generator to carry a
    /// per-flow sequence number, like the FPGA source does).
    pub ident: u16,
}

impl Ipv4Repr {
    /// Parse a header, validating version, length fields and checksum.
    /// Returns the header and the payload slice (trimmed to total_length).
    pub fn parse(buf: &[u8]) -> Result<(Ipv4Repr, &[u8]), WireError> {
        need(buf, HEADER_LEN)?;
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(WireError::Unsupported("ip version"));
        }
        let ihl = (buf[0] & 0x0f) as usize * 4;
        if ihl != HEADER_LEN {
            return Err(WireError::Unsupported("ipv4 options"));
        }
        let total_len = be16(buf, 2) as usize;
        if total_len < HEADER_LEN || total_len > buf.len() {
            return Err(WireError::BadLength);
        }
        if !checksum::is_valid(&buf[..HEADER_LEN]) {
            return Err(WireError::BadChecksum("ipv4"));
        }
        let repr = Ipv4Repr {
            tos: buf[1],
            ident: be16(buf, 4),
            ttl: buf[8],
            protocol: buf[9],
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
        };
        Ok((repr, &buf[HEADER_LEN..total_len]))
    }

    /// Serialize header + payload into a packet, computing the checksum.
    pub fn to_packet(&self, payload: &[u8]) -> Vec<u8> {
        let total = HEADER_LEN + payload.len();
        assert!(total <= u16::MAX as usize, "ipv4 packet too large");
        let mut buf = vec![0u8; total];
        buf[0] = 0x45; // version 4, IHL 5
        buf[1] = self.tos;
        put16(&mut buf, 2, total as u16);
        put16(&mut buf, 4, self.ident);
        // flags/fragment offset: DF set, never fragmented in this model.
        put16(&mut buf, 6, 0x4000);
        buf[8] = self.ttl;
        buf[9] = self.protocol;
        buf[12..16].copy_from_slice(&self.src.octets());
        buf[16..20].copy_from_slice(&self.dst.octets());
        let c = checksum::checksum(&buf[..HEADER_LEN]);
        put16(&mut buf, 10, c);
        buf[HEADER_LEN..].copy_from_slice(payload);
        buf
    }

    /// Decrement the TTL of an already-encoded packet in place,
    /// incrementally updating the checksum (RFC 1624). Returns the new
    /// TTL, or an error if the packet is malformed or the TTL was already
    /// zero (caller should drop and, in a full router, emit ICMP time
    /// exceeded).
    pub fn decrement_ttl(packet: &mut [u8]) -> Result<u8, WireError> {
        need(packet, HEADER_LEN)?;
        let ttl = packet[8];
        if ttl == 0 {
            return Err(WireError::BadField("ttl already zero"));
        }
        packet[8] = ttl - 1;
        // RFC 1624 incremental update: HC' = ~(~HC + ~m + m').
        let old = be16(packet, 10);
        let m = u16::from_be_bytes([ttl, packet[9]]);
        let m_new = u16::from_be_bytes([ttl - 1, packet[9]]);
        let mut acc = (!old as u32) + (!m as u32) + m_new as u32;
        while acc > 0xffff {
            acc = (acc & 0xffff) + (acc >> 16);
        }
        put16(packet, 10, !(acc as u16));
        Ok(ttl - 1)
    }

    /// Peek at the destination address without validating the checksum
    /// (the switch's L3 match fields; hot path).
    pub fn peek_dst(packet: &[u8]) -> Result<Ipv4Addr, WireError> {
        need(packet, HEADER_LEN)?;
        Ok(Ipv4Addr::new(
            packet[16], packet[17], packet[18], packet[19],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Repr {
        Ipv4Repr {
            src: Ipv4Addr::new(203, 0, 113, 10),
            dst: Ipv4Addr::new(1, 0, 0, 1),
            protocol: protocol::UDP,
            ttl: 64,
            tos: 0,
            ident: 0x1234,
        }
    }

    #[test]
    fn roundtrip() {
        let repr = sample();
        let pkt = repr.to_packet(b"data!");
        let (parsed, payload) = Ipv4Repr::parse(&pkt).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(payload, b"data!");
    }

    #[test]
    fn checksum_validated() {
        let mut pkt = sample().to_packet(b"x");
        pkt[8] ^= 0xff; // corrupt TTL without fixing checksum
        assert_eq!(Ipv4Repr::parse(&pkt), Err(WireError::BadChecksum("ipv4")));
    }

    #[test]
    fn version_and_options_rejected() {
        let mut pkt = sample().to_packet(b"");
        pkt[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Repr::parse(&pkt),
            Err(WireError::Unsupported("ip version"))
        );
        let mut pkt = sample().to_packet(b"");
        pkt[0] = 0x46; // IHL 6 => options present
        assert_eq!(
            Ipv4Repr::parse(&pkt),
            Err(WireError::Unsupported("ipv4 options"))
        );
    }

    #[test]
    fn total_length_respected() {
        let repr = sample();
        let pkt = repr.to_packet(b"abcdef");
        // Frame padded past total_length (Ethernet min-size padding):
        // payload must be trimmed to the header's total_length.
        let mut padded = pkt.clone();
        padded.extend_from_slice(&[0u8; 20]);
        let (_, payload) = Ipv4Repr::parse(&padded).unwrap();
        assert_eq!(payload, b"abcdef");
        // Truncated below total_length: error.
        assert!(Ipv4Repr::parse(&pkt[..pkt.len() - 1]).is_err());
    }

    #[test]
    fn ttl_decrement_keeps_checksum_valid() {
        let mut pkt = sample().to_packet(b"payload");
        for expected in (0..64u8).rev() {
            let got = Ipv4Repr::decrement_ttl(&mut pkt).unwrap();
            assert_eq!(got, expected);
            let (parsed, _) = Ipv4Repr::parse(&pkt).expect("checksum must stay valid");
            assert_eq!(parsed.ttl, expected);
        }
        // TTL now 0: further decrement refused.
        assert!(Ipv4Repr::decrement_ttl(&mut pkt).is_err());
    }

    #[test]
    fn peek_dst_fast_path() {
        let pkt = sample().to_packet(b"");
        assert_eq!(Ipv4Repr::peek_dst(&pkt).unwrap(), Ipv4Addr::new(1, 0, 0, 1));
        assert!(Ipv4Repr::peek_dst(&pkt[..10]).is_err());
    }
}
