//! Wire formats: Ethernet II, ARP, IPv4 and UDP.
//!
//! Following the layering the networking guides recommend (smoltcp's
//! packet/repr split), each protocol offers:
//!
//! * a `Repr` struct — the parsed, validated, high-level representation;
//! * `Repr::parse(&[u8]) -> Result<(Repr, payload), WireError>`;
//! * `Repr::emit(&mut Vec<u8>)` / `Repr::to_bytes(payload)` to serialize.
//!
//! All multi-byte fields are network byte order. Parsers never panic on
//! malformed input — every length and field is checked and reported via
//! [`WireError`].

pub mod arp;
pub mod ethernet;
pub mod ipv4;
pub mod stack;
pub mod udp;

pub use arp::{ArpOp, ArpRepr};
pub use ethernet::{EtherType, EthernetRepr};
pub use ipv4::Ipv4Repr;
pub use stack::{open_udp_frame, peek_udp_frame, udp_frame, UdpDatagram, UdpEndpoints};
pub use udp::UdpRepr;

use std::fmt;

/// Errors raised while parsing any wire format in this module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header.
    Truncated { needed: usize, got: usize },
    /// A length field disagrees with the buffer.
    BadLength,
    /// A version/hardware-type/etc. field has an unsupported value.
    Unsupported(&'static str),
    /// A checksum failed verification.
    BadChecksum(&'static str),
    /// A field holds a value that is syntactically valid but semantically
    /// not allowed (e.g. ARP op 0).
    BadField(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated packet: need {needed} bytes, got {got}")
            }
            WireError::BadLength => write!(f, "length field inconsistent with buffer"),
            WireError::Unsupported(what) => write!(f, "unsupported {what}"),
            WireError::BadChecksum(proto) => write!(f, "bad {proto} checksum"),
            WireError::BadField(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Check that `buf` holds at least `needed` bytes (shared by all wire
/// parsers in the workspace).
pub fn need(buf: &[u8], needed: usize) -> Result<(), WireError> {
    if buf.len() < needed {
        Err(WireError::Truncated {
            needed,
            got: buf.len(),
        })
    } else {
        Ok(())
    }
}

/// Read helpers over big-endian byte slices. All callers must have
/// validated lengths with [`need`] first; these panic on logic errors,
/// never on attacker-controlled lengths.
pub fn be16(buf: &[u8], at: usize) -> u16 {
    u16::from_be_bytes([buf[at], buf[at + 1]])
}

pub fn be32(buf: &[u8], at: usize) -> u32 {
    u32::from_be_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

pub fn put16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_be_bytes());
}

pub fn put32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn need_reports_sizes() {
        let buf = [0u8; 3];
        assert_eq!(
            need(&buf, 5),
            Err(WireError::Truncated { needed: 5, got: 3 })
        );
        assert_eq!(need(&buf, 3), Ok(()));
    }

    #[test]
    fn endian_helpers_roundtrip() {
        let mut buf = [0u8; 8];
        put16(&mut buf, 1, 0xabcd);
        put32(&mut buf, 3, 0xdead_beef);
        assert_eq!(be16(&buf, 1), 0xabcd);
        assert_eq!(be32(&buf, 3), 0xdead_beef);
    }

    #[test]
    fn error_display_is_informative() {
        let e = WireError::Truncated { needed: 20, got: 7 };
        assert!(e.to_string().contains("20"));
        assert!(e.to_string().contains("7"));
        assert!(WireError::BadChecksum("ipv4").to_string().contains("ipv4"));
    }
}
