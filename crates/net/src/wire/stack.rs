//! Convenience encap/decap for the Ethernet/IPv4/UDP stack.
//!
//! Every control-plane node (router, controller, BFD agent) exchanges UDP
//! datagrams; these helpers build and open the full frame in one call so
//! the per-node code stays focused on its protocol logic.

use super::ethernet::{EtherType, EthernetRepr};
use super::ipv4::{protocol, Ipv4Repr};
use super::udp::UdpRepr;
use super::WireError;
use crate::mac::MacAddr;
use std::net::Ipv4Addr;

/// Addressing for one UDP endpoint pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UdpEndpoints {
    pub src_mac: MacAddr,
    pub dst_mac: MacAddr,
    pub src_ip: Ipv4Addr,
    pub dst_ip: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
}

impl UdpEndpoints {
    /// The reverse direction (for replies).
    pub fn flipped(self) -> UdpEndpoints {
        UdpEndpoints {
            src_mac: self.dst_mac,
            dst_mac: self.src_mac,
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }
}

/// A fully decapsulated UDP datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UdpDatagram {
    pub eth: EthernetRepr,
    pub ip: Ipv4Repr,
    pub udp: UdpRepr,
    pub payload: Vec<u8>,
}

/// Build an Ethernet/IPv4/UDP frame around `payload`.
pub fn udp_frame(ep: UdpEndpoints, ttl: u8, payload: &[u8]) -> Vec<u8> {
    let udp = UdpRepr {
        src_port: ep.src_port,
        dst_port: ep.dst_port,
    };
    let segment = udp.to_segment(ep.src_ip, ep.dst_ip, payload);
    let ip = Ipv4Repr {
        src: ep.src_ip,
        dst: ep.dst_ip,
        protocol: protocol::UDP,
        ttl,
        tos: 0,
        ident: 0,
    };
    let packet = ip.to_packet(&segment);
    EthernetRepr {
        dst: ep.dst_mac,
        src: ep.src_mac,
        ethertype: EtherType::Ipv4,
    }
    .to_frame(&packet)
}

/// The borrowed view [`peek_udp_frame`] returns: the three parsed
/// header layers plus the payload slice, no copies.
pub type UdpView<'a> = (EthernetRepr, Ipv4Repr, UdpRepr, &'a [u8]);

/// Parse the Ethernet/IPv4/UDP layers of a frame *without copying the
/// payload* — identical validation to [`open_udp_frame`], returned by
/// borrow. Hot-path receivers that only need addressing (the traffic
/// sink's CAM match) use this; control-plane code that hands the
/// payload onward keeps the owned [`open_udp_frame`].
pub fn peek_udp_frame(frame: &[u8]) -> Result<Option<UdpView<'_>>, WireError> {
    let (eth, eth_payload) = EthernetRepr::parse(frame)?;
    if eth.ethertype != EtherType::Ipv4 {
        return Ok(None);
    }
    let (ip, ip_payload) = Ipv4Repr::parse(eth_payload)?;
    if ip.protocol != protocol::UDP {
        return Ok(None);
    }
    let (udp, payload) = UdpRepr::parse(ip.src, ip.dst, ip_payload)?;
    Ok(Some((eth, ip, udp, payload)))
}

/// Open a frame expected to be Ethernet/IPv4/UDP; validates all layers.
/// Returns `Ok(None)` if the frame is well-formed but *not* UDP-over-IPv4
/// (e.g. ARP), so callers can fall through to other handlers.
pub fn open_udp_frame(frame: &[u8]) -> Result<Option<UdpDatagram>, WireError> {
    Ok(
        peek_udp_frame(frame)?.map(|(eth, ip, udp, payload)| UdpDatagram {
            eth,
            ip,
            udp,
            payload: payload.to_vec(),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoints() -> UdpEndpoints {
        UdpEndpoints {
            src_mac: MacAddr::new(0, 0, 0, 0, 0, 1),
            dst_mac: MacAddr::new(0, 0, 0, 0, 0, 2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 179,
            dst_port: 40000,
        }
    }

    #[test]
    fn roundtrip() {
        let ep = endpoints();
        let frame = udp_frame(ep, 64, b"bgp-update-bytes");
        let d = open_udp_frame(&frame).unwrap().unwrap();
        assert_eq!(d.payload, b"bgp-update-bytes");
        assert_eq!(d.udp.src_port, 179);
        assert_eq!(d.udp.dst_port, 40000);
        assert_eq!(d.ip.src, ep.src_ip);
        assert_eq!(d.eth.dst, ep.dst_mac);
    }

    #[test]
    fn flipped_reverses_everything() {
        let ep = endpoints();
        let f = ep.flipped();
        assert_eq!(f.src_mac, ep.dst_mac);
        assert_eq!(f.dst_ip, ep.src_ip);
        assert_eq!(f.src_port, ep.dst_port);
        assert_eq!(f.flipped(), ep);
    }

    #[test]
    fn non_udp_passes_through_as_none() {
        // An ARP frame is not an error, just "not ours".
        let arp = crate::wire::arp::ArpRepr::request(
            MacAddr::new(0, 0, 0, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let frame = EthernetRepr {
            dst: MacAddr::BROADCAST,
            src: MacAddr::new(0, 0, 0, 0, 0, 1),
            ethertype: EtherType::Arp,
        }
        .to_frame(&arp.to_bytes());
        assert_eq!(open_udp_frame(&frame).unwrap(), None);
    }

    #[test]
    fn corrupted_frame_is_an_error() {
        let mut frame = udp_frame(endpoints(), 64, b"data");
        let n = frame.len();
        frame[n - 1] ^= 0xff; // flip payload byte -> UDP checksum fails
        assert!(open_udp_frame(&frame).is_err());
    }
}
