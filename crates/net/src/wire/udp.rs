//! UDP (RFC 768).
//!
//! Carries the measurement traffic (64-byte probe packets, as generated
//! by the paper's FPGA source), BFD control packets (RFC 5881 port 3784),
//! and the reliable-transport segments of BGP and OpenFlow sessions.

use super::{be16, need, put16, WireError};
use crate::checksum;
use std::net::Ipv4Addr;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// Well-known ports used inside the simulation.
pub mod port {
    /// BFD single-hop control (RFC 5881).
    pub const BFD_CONTROL: u16 = 3784;
    /// BGP sessions (over the reliable channel).
    pub const BGP: u16 = 179;
    /// OpenFlow control channel (over the reliable channel).
    pub const OPENFLOW: u16 = 6653;
    /// The supercharger's REST-like controller API.
    pub const CONTROLLER_API: u16 = 8080;
    /// Measurement traffic destination port.
    pub const PROBE: u16 = 7;
}

/// Parsed UDP header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UdpRepr {
    pub src_port: u16,
    pub dst_port: u16,
}

impl UdpRepr {
    /// Parse a UDP segment, verifying length and (if non-zero) checksum
    /// against the IPv4 pseudo-header. Returns header and payload.
    pub fn parse(src: Ipv4Addr, dst: Ipv4Addr, buf: &[u8]) -> Result<(UdpRepr, &[u8]), WireError> {
        need(buf, HEADER_LEN)?;
        let len = be16(buf, 4) as usize;
        if len < HEADER_LEN || len > buf.len() {
            return Err(WireError::BadLength);
        }
        let cksum = be16(buf, 6);
        if cksum != 0 && checksum::udp_checksum_raw(src, dst, &buf[..len]) != 0xffff {
            return Err(WireError::BadChecksum("udp"));
        }
        Ok((
            UdpRepr {
                src_port: be16(buf, 0),
                dst_port: be16(buf, 2),
            },
            &buf[HEADER_LEN..len],
        ))
    }

    /// Serialize header + payload with checksum computed over the IPv4
    /// pseudo-header.
    pub fn to_segment(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let len = HEADER_LEN + payload.len();
        assert!(len <= u16::MAX as usize, "udp segment too large");
        let mut buf = vec![0u8; len];
        put16(&mut buf, 0, self.src_port);
        put16(&mut buf, 2, self.dst_port);
        put16(&mut buf, 4, len as u16);
        buf[HEADER_LEN..].copy_from_slice(payload);
        let c = checksum::udp_checksum(src, dst, &buf);
        put16(&mut buf, 6, c);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn roundtrip() {
        let repr = UdpRepr {
            src_port: 49152,
            dst_port: port::PROBE,
        };
        let seg = repr.to_segment(SRC, DST, b"probe-payload");
        let (parsed, payload) = UdpRepr::parse(SRC, DST, &seg).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(payload, b"probe-payload");
    }

    #[test]
    fn checksum_detects_corruption() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let mut seg = repr.to_segment(SRC, DST, b"abcd");
        seg[9] ^= 0x40;
        assert_eq!(
            UdpRepr::parse(SRC, DST, &seg),
            Err(WireError::BadChecksum("udp"))
        );
        // Wrong pseudo-header (spoofed src) also fails.
        let seg2 = repr.to_segment(SRC, DST, b"abcd");
        assert!(UdpRepr::parse(Ipv4Addr::new(9, 9, 9, 9), DST, &seg2).is_err());
    }

    #[test]
    fn zero_checksum_skips_validation() {
        let repr = UdpRepr {
            src_port: 5,
            dst_port: 6,
        };
        let mut seg = repr.to_segment(SRC, DST, b"x");
        seg[6] = 0;
        seg[7] = 0;
        let (parsed, payload) = UdpRepr::parse(SRC, DST, &seg).unwrap();
        assert_eq!(parsed.src_port, 5);
        assert_eq!(payload, b"x");
    }

    #[test]
    fn length_field_respected() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let seg = repr.to_segment(SRC, DST, b"abcdef");
        assert!(UdpRepr::parse(SRC, DST, &seg[..seg.len() - 1]).is_err());
        assert!(UdpRepr::parse(SRC, DST, &seg[..4]).is_err());
    }
}
