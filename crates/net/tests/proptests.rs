//! Property tests for the base crate: the trie against a naive model,
//! parse∘emit identity for every wire format, and channel delivery
//! under arbitrary loss.

use proptest::collection::vec;
use proptest::prelude::*;
use sc_net::channel::{ChannelConfig, ChannelEvent, Endpoint};
use sc_net::wire::{
    open_udp_frame, udp_frame, ArpOp, ArpRepr, EtherType, EthernetRepr, Ipv4Repr, UdpEndpoints,
    UdpRepr,
};
use sc_net::{Ipv4Prefix, MacAddr, PrefixTrie, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(Ipv4Addr::from(addr), len))
}

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

proptest! {
    /// Trie ≡ BTreeMap model under arbitrary insert/remove interleaving,
    /// for exact match, LPM, and ordered iteration.
    #[test]
    fn trie_matches_model(
        ops in vec((arb_prefix(), any::<bool>(), any::<u16>()), 1..200),
        lookups in vec(arb_ip(), 1..50),
    ) {
        let mut trie = PrefixTrie::new();
        let mut model: BTreeMap<Ipv4Prefix, u16> = BTreeMap::new();
        for (pfx, insert, val) in ops {
            if insert {
                prop_assert_eq!(trie.insert(pfx, val), model.insert(pfx, val));
            } else {
                prop_assert_eq!(trie.remove(pfx), model.remove(&pfx));
            }
            prop_assert_eq!(trie.len(), model.len());
        }
        for ip in lookups {
            let expect = model
                .iter()
                .filter(|(p, _)| p.contains(ip))
                .max_by_key(|(p, _)| p.len())
                .map(|(p, v)| (*p, *v));
            prop_assert_eq!(trie.lookup(ip).map(|(p, v)| (p, *v)), expect);
        }
        let got: Vec<_> = trie.iter().map(|(p, v)| (p, *v)).collect();
        let want: Vec<_> = model.iter().map(|(p, v)| (*p, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Ethernet parse∘emit identity, and rewrite touches only dst.
    #[test]
    fn ethernet_roundtrip(dst in arb_mac(), src in arb_mac(), ty in any::<u16>(),
                          payload in vec(any::<u8>(), 0..256), new_dst in arb_mac()) {
        let repr = EthernetRepr { dst, src, ethertype: EtherType::from_u16(ty) };
        let mut frame = repr.to_frame(&payload);
        let (parsed, pl) = EthernetRepr::parse(&frame).unwrap();
        prop_assert_eq!(parsed, repr);
        prop_assert_eq!(pl, &payload[..]);
        EthernetRepr::rewrite_dst(&mut frame, new_dst).unwrap();
        let (parsed2, pl2) = EthernetRepr::parse(&frame).unwrap();
        prop_assert_eq!(parsed2.dst, new_dst);
        prop_assert_eq!(parsed2.src, src);
        prop_assert_eq!(pl2, &payload[..]);
    }

    /// ARP parse∘emit identity over arbitrary field values.
    #[test]
    fn arp_roundtrip(smac in arb_mac(), sip in arb_ip(), tmac in arb_mac(),
                     tip in arb_ip(), reply in any::<bool>()) {
        let repr = ArpRepr {
            op: if reply { ArpOp::Reply } else { ArpOp::Request },
            sender_mac: smac,
            sender_ip: sip,
            target_mac: tmac,
            target_ip: tip,
        };
        prop_assert_eq!(ArpRepr::parse(&repr.to_bytes()).unwrap(), repr);
    }

    /// IPv4 parse∘emit identity; corrupting any single byte of the
    /// header must be detected (checksum or field validation).
    #[test]
    fn ipv4_roundtrip_and_detection(
        src in arb_ip(), dst in arb_ip(), proto in any::<u8>(), ttl in 1u8..255,
        tos in any::<u8>(), ident in any::<u16>(),
        payload in vec(any::<u8>(), 0..64),
        corrupt_at in 0usize..20, corrupt_bit in 0u8..8,
    ) {
        let repr = Ipv4Repr { src, dst, protocol: proto, ttl, tos, ident };
        let pkt = repr.to_packet(&payload);
        let (parsed, pl) = Ipv4Repr::parse(&pkt).unwrap();
        prop_assert_eq!(parsed, repr);
        prop_assert_eq!(pl, &payload[..]);

        let mut bad = pkt.clone();
        bad[corrupt_at] ^= 1 << corrupt_bit;
        if bad != pkt {
            prop_assert!(Ipv4Repr::parse(&bad).is_err(),
                "single-bit header corruption at {corrupt_at} must be detected");
        }
    }

    /// UDP parse∘emit identity with pseudo-header checksum.
    #[test]
    fn udp_roundtrip(src in arb_ip(), dst in arb_ip(), sp in any::<u16>(),
                     dp in any::<u16>(), payload in vec(any::<u8>(), 0..128)) {
        let repr = UdpRepr { src_port: sp, dst_port: dp };
        let seg = repr.to_segment(src, dst, &payload);
        let (parsed, pl) = UdpRepr::parse(src, dst, &seg).unwrap();
        prop_assert_eq!(parsed, repr);
        prop_assert_eq!(pl, &payload[..]);
    }

    /// Full-stack encap/decap identity.
    #[test]
    fn stack_roundtrip(smac in arb_mac(), dmac in arb_mac(), sip in arb_ip(),
                       dip in arb_ip(), sp in any::<u16>(), dp in any::<u16>(),
                       payload in vec(any::<u8>(), 0..64)) {
        let ep = UdpEndpoints {
            src_mac: smac, dst_mac: dmac, src_ip: sip, dst_ip: dip,
            src_port: sp, dst_port: dp,
        };
        let frame = udp_frame(ep, 64, &payload);
        let d = open_udp_frame(&frame).unwrap().unwrap();
        prop_assert_eq!(d.payload, payload);
        prop_assert_eq!(d.ip.src, sip);
        prop_assert_eq!(d.udp.dst_port, dp);
        prop_assert_eq!(d.eth.src, smac);
    }

    /// The reliable channel delivers every message exactly once, in
    /// order, under an arbitrary loss pattern (as long as loss is not
    /// total) — the property BGP and OpenFlow sessions rely on.
    #[test]
    fn channel_delivers_in_order_under_loss(
        msgs in vec(vec(any::<u8>(), 0..32), 1..40),
        loss_pattern in vec(any::<bool>(), 64),
    ) {
        let cfg = ChannelConfig { rto: SimDuration::from_millis(50), window: 8 };
        let mut a = Endpoint::connect(cfg);
        let mut b = Endpoint::listen(cfg);
        for m in &msgs {
            a.send(m.clone());
        }
        let mut delivered: Vec<Vec<u8>> = Vec::new();
        let mut drop_idx = 0usize;
        'outer: for round in 0..400u64 {
            let now = SimTime::from_millis(round * 60);
            loop {
                let mut progressed = false;
                while let Some(seg) = a.poll_transmit(now) {
                    progressed = true;
                    let lose = loss_pattern[drop_idx % loss_pattern.len()];
                    drop_idx += 1;
                    // Never lose everything: deliver every 3rd regardless.
                    if !lose || drop_idx.is_multiple_of(3) {
                        for ev in b.on_segment(&seg, now).unwrap() {
                            if let ChannelEvent::Delivered(m) = ev {
                                delivered.push(m);
                            }
                        }
                    }
                }
                while let Some(seg) = b.poll_transmit(now) {
                    progressed = true;
                    let lose = loss_pattern[drop_idx % loss_pattern.len()];
                    drop_idx += 1;
                    if !lose || drop_idx.is_multiple_of(3) {
                        let _ = a.on_segment(&seg, now).unwrap();
                    }
                }
                if !progressed {
                    break;
                }
            }
            if delivered.len() == msgs.len() {
                break 'outer;
            }
        }
        prop_assert_eq!(delivered, msgs);
    }

    /// The full corruption path over the wire stack: flip any single
    /// bit of a UDP frame carrying a channel segment. The receiver
    /// either rejects the frame (IPv4/UDP checksum, ethertype
    /// validation, addressing mismatch — the drop is repaired by the
    /// RTO retransmit) or, when the flip lands in bytes the checksums
    /// do not cover (MAC fields, padding), delivers the payload intact.
    /// A corrupted payload must never surface as a delivery.
    #[test]
    fn single_bit_corruption_never_corrupts_delivery(
        payload in vec(any::<u8>(), 1..64),
        corrupt_bit in any::<u16>(),
    ) {
        let ep = UdpEndpoints {
            src_mac: MacAddr([2, 0, 0, 0, 0, 1]),
            dst_mac: MacAddr([2, 0, 0, 0, 0, 2]),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 40000,
            dst_port: 179,
        };
        let cfg = ChannelConfig { rto: SimDuration::from_millis(50), window: 8 };
        let mut a = Endpoint::connect(cfg);
        let mut b = Endpoint::listen(cfg);
        a.send(payload.clone());

        let mut delivered: Vec<Vec<u8>> = Vec::new();
        let mut first = true;
        for round in 0..20u64 {
            let now = SimTime::from_millis(round * 60);
            while let Some(seg) = a.poll_transmit(now) {
                let mut frame = udp_frame(ep, 64, &seg);
                if first {
                    // Corrupt exactly one bit of the first frame on the
                    // wire, position chosen by the fuzzer.
                    first = false;
                    let idx = corrupt_bit as usize % (frame.len() * 8);
                    frame[idx / 8] ^= 1 << (idx % 8);
                }
                // The receive pipeline a node runs: parse (checksums
                // validate here), then check addressing, then hand the
                // segment to the channel (which drops malformed ones).
                match open_udp_frame(&frame) {
                    Ok(Some(d))
                        if d.udp.dst_port == ep.dst_port
                            && d.udp.src_port == ep.src_port
                            && d.ip.src == ep.src_ip
                            && d.ip.dst == ep.dst_ip =>
                    {
                        for ev in b.on_segment(&d.payload, now).unwrap_or_default() {
                            if let ChannelEvent::Delivered(m) = ev {
                                delivered.push(m);
                            }
                        }
                    }
                    // Checksum failure, foreign ethertype, or misrouted
                    // datagram: dropped on the floor, like real hardware.
                    _ => {}
                }
            }
            while let Some(seg) = b.poll_transmit(now) {
                let _ = a.on_segment(&seg, now).unwrap_or_default();
            }
            if !delivered.is_empty() {
                break;
            }
        }
        prop_assert_eq!(delivered, vec![payload]);
    }

    /// Quantization never shrinks a duration and always lands on a
    /// multiple of the quantum.
    #[test]
    fn quantize_up_properties(ns in any::<u32>(), quantum_us in 1u64..1000) {
        let d = SimDuration::from_nanos(ns as u64);
        let q = SimDuration::from_micros(quantum_us);
        let out = d.quantize_up(q);
        prop_assert!(out >= d);
        prop_assert_eq!(out.as_nanos() % q.as_nanos(), 0);
        prop_assert!(out - d < q);
    }
}

/// The canonical corruption narrative, step by step: a payload byte of
/// an in-flight segment is damaged, the UDP pseudo-header checksum
/// rejects the frame at parse time, the segment is therefore never fed
/// to the channel, and the sender's RTO retransmission delivers the
/// message intact on the next round.
#[test]
fn payload_corruption_is_detected_dropped_and_repaired_by_retransmit() {
    let ep = UdpEndpoints {
        src_mac: MacAddr([2, 0, 0, 0, 0, 1]),
        dst_mac: MacAddr([2, 0, 0, 0, 0, 2]),
        src_ip: Ipv4Addr::new(10, 0, 0, 1),
        dst_ip: Ipv4Addr::new(10, 0, 0, 2),
        src_port: 40000,
        dst_port: 179,
    };
    let cfg = ChannelConfig {
        rto: SimDuration::from_millis(50),
        window: 8,
    };
    let mut a = Endpoint::connect(cfg);
    let mut b = Endpoint::listen(cfg);
    a.send(b"flow-mod batch 7".to_vec());

    // First transmission: corrupt a byte *inside the UDP payload*
    // (eth 14 + ip 20 + udp 8 = offset 42 onward) — the checksum must
    // catch it and the parse must fail.
    let t0 = SimTime::from_millis(0);
    let seg = a.poll_transmit(t0).expect("segment due");
    let mut frame = udp_frame(ep, 64, &seg);
    frame[42] ^= 0x10;
    assert!(
        open_udp_frame(&frame).is_err(),
        "corrupted payload must fail the UDP checksum"
    );
    // Nothing reached the receiver; drain the rest of the first flight
    // cleanly (flow control may have split the handshake across
    // segments) without delivering — the damaged segment is simply gone.
    while a.poll_transmit(t0).is_some() {}

    // Past the RTO the sender retransmits; this time the wire is clean
    // and the message arrives exactly once, intact.
    let t1 = t0 + SimDuration::from_millis(120);
    let mut delivered = Vec::new();
    for _ in 0..4 {
        while let Some(seg) = a.poll_transmit(t1) {
            let d = open_udp_frame(&udp_frame(ep, 64, &seg))
                .unwrap()
                .expect("clean frame parses");
            for ev in b.on_segment(&d.payload, t1).unwrap() {
                if let ChannelEvent::Delivered(m) = ev {
                    delivered.push(m);
                }
            }
        }
        while let Some(seg) = b.poll_transmit(t1) {
            let _ = a.on_segment(&seg, t1).unwrap();
        }
    }
    assert_eq!(delivered, vec![b"flow-mod batch 7".to_vec()]);
}
