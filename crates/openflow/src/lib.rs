//! An OpenFlow-like SDN switch substrate.
//!
//! The paper's data-plane trick needs exactly one switch capability: match
//! on a destination MAC (the VMAC tag written by the router) and rewrite
//! it to the real next-hop's MAC while forwarding out the right port.
//! This crate provides that as a faithful-in-spirit OpenFlow subset:
//!
//! * [`types`] — match structure (in-port, L2, EtherType, L3 prefixes,
//!   L4 ports), actions (set-src/dst MAC, output, flood, controller),
//!   and the packet [`types::FlowKey`] extracted by the pipeline;
//! * [`table`] — the priority-ordered flow table with add/modify/delete
//!   semantics and per-entry counters;
//! * [`msg`] — the control-channel protocol (HELLO, FEATURES, FLOW_MOD,
//!   PACKET_IN/OUT, PORT_STATUS, BARRIER, ECHO, STATS) with a compact
//!   binary encoding (version byte, type, length, xid);
//! * [`switch`] — the switch as a simulation node: hardware flow-install
//!   latency (the HP E3800's TCAM programming time is part of the
//!   paper's 150 ms budget), an L2-learning fallback for table misses
//!   (hybrid mode, like the paper's switch), carrier-change PORT_STATUS
//!   notifications, and barriers that wait for pending installs.
//!
//! The control channel runs over the workspace's reliable transport; the
//! wire encoding here is *not* byte-compatible with OpenFlow 1.0 (that
//! would buy nothing for the reproduction) but carries the same message
//! set with the same semantics.

pub mod msg;
pub mod switch;
pub mod table;
pub mod types;

pub use msg::OfMessage;
pub use switch::{OfSwitch, SwitchConfig, TableMiss};
pub use table::{FlowEntry, FlowStats, FlowTable};
pub use types::{Action, FlowKey, FlowMatch};
