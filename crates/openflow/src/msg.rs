//! The switch↔controller control protocol.
//!
//! Same message set and semantics as the OpenFlow 1.0 subset the paper
//! uses (HELLO, FEATURES, FLOW_MOD, PACKET_IN/OUT, PORT_STATUS, BARRIER,
//! ECHO, flow STATS), with a compact binary encoding:
//!
//! ```text
//! version(1)=1 | type(1) | length(2) | xid(4) | body...
//! ```
//!
//! Each message is carried as one reliable-channel message, so no
//! streaming reassembly is needed.

use crate::types::{Action, FlowMatch};
use sc_net::wire::{be16, be32, need, WireError};
use sc_net::{Ipv4Prefix, MacAddr};
use std::net::Ipv4Addr;

/// Protocol version byte.
pub const VERSION: u8 = 1;
/// Fixed header length.
pub const HEADER_LEN: usize = 8;

const T_HELLO: u8 = 0;
const T_ECHO_REQ: u8 = 1;
const T_ECHO_REP: u8 = 2;
const T_FEATURES_REQ: u8 = 3;
const T_FEATURES_REP: u8 = 4;
const T_FLOW_MOD: u8 = 5;
const T_PACKET_IN: u8 = 6;
const T_PACKET_OUT: u8 = 7;
const T_PORT_STATUS: u8 = 8;
const T_BARRIER_REQ: u8 = 9;
const T_BARRIER_REP: u8 = 10;
const T_STATS_REQ: u8 = 11;
const T_STATS_REP: u8 = 12;

/// FLOW_MOD commands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowModCommand {
    Add = 0,
    Modify = 1,
    Delete = 2,
}

impl FlowModCommand {
    fn from_u8(v: u8) -> Result<FlowModCommand, WireError> {
        match v {
            0 => Ok(FlowModCommand::Add),
            1 => Ok(FlowModCommand::Modify),
            2 => Ok(FlowModCommand::Delete),
            _ => Err(WireError::BadField("flow_mod command")),
        }
    }
}

/// One row of a flow-stats reply.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlowStatsRow {
    pub priority: u16,
    pub cookie: u64,
    pub packets: u64,
    pub bytes: u64,
}

/// Control-channel messages.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OfMessage {
    Hello,
    EchoRequest(Vec<u8>),
    EchoReply(Vec<u8>),
    FeaturesRequest,
    FeaturesReply {
        datapath_id: u64,
        n_ports: u16,
    },
    FlowMod {
        command: FlowModCommand,
        priority: u16,
        cookie: u64,
        matcher: FlowMatch,
        actions: Vec<Action>,
    },
    PacketIn {
        in_port: u16,
        frame: Vec<u8>,
    },
    PacketOut {
        actions: Vec<Action>,
        frame: Vec<u8>,
    },
    PortStatus {
        port: u16,
        up: bool,
    },
    /// Fence: the switch replies once every earlier flow-mod has been
    /// applied. The token round-trips so the controller can match acks
    /// to pending batches cumulatively (a reply acks every batch with a
    /// token ≤ the replied one).
    BarrierRequest {
        token: u64,
    },
    BarrierReply {
        token: u64,
    },
    StatsRequest,
    StatsReply {
        lookups: u64,
        misses: u64,
        flows: Vec<FlowStatsRow>,
    },
}

fn put_mac(out: &mut Vec<u8>, m: MacAddr) {
    out.extend_from_slice(&m.octets());
}

fn put_prefix(out: &mut Vec<u8>, p: Ipv4Prefix) {
    out.extend_from_slice(&p.network().octets());
    out.push(p.len());
}

fn get_mac(buf: &[u8], at: usize) -> MacAddr {
    MacAddr::from_bytes(&buf[at..at + 6]).unwrap()
}

fn get_prefix(buf: &[u8], at: usize) -> Result<Ipv4Prefix, WireError> {
    let len = buf[at + 4];
    if len > 32 {
        return Err(WireError::BadField("prefix length"));
    }
    Ok(Ipv4Prefix::new(
        Ipv4Addr::new(buf[at], buf[at + 1], buf[at + 2], buf[at + 3]),
        len,
    ))
}

fn encode_match(m: &FlowMatch, out: &mut Vec<u8>) {
    let mut bitmap = 0u8;
    let fields: [bool; 8] = [
        m.in_port.is_some(),
        m.eth_src.is_some(),
        m.eth_dst.is_some(),
        m.eth_type.is_some(),
        m.ip_src.is_some(),
        m.ip_dst.is_some(),
        m.udp_src.is_some(),
        m.udp_dst.is_some(),
    ];
    for (i, present) in fields.iter().enumerate() {
        if *present {
            bitmap |= 1 << i;
        }
    }
    out.push(bitmap);
    if let Some(p) = m.in_port {
        out.extend_from_slice(&p.to_be_bytes());
    }
    if let Some(mac) = m.eth_src {
        put_mac(out, mac);
    }
    if let Some(mac) = m.eth_dst {
        put_mac(out, mac);
    }
    if let Some(t) = m.eth_type {
        out.extend_from_slice(&t.to_be_bytes());
    }
    if let Some(p) = m.ip_src {
        put_prefix(out, p);
    }
    if let Some(p) = m.ip_dst {
        put_prefix(out, p);
    }
    if let Some(p) = m.udp_src {
        out.extend_from_slice(&p.to_be_bytes());
    }
    if let Some(p) = m.udp_dst {
        out.extend_from_slice(&p.to_be_bytes());
    }
}

fn decode_match(buf: &[u8]) -> Result<(FlowMatch, usize), WireError> {
    need(buf, 1)?;
    let bitmap = buf[0];
    let mut at = 1usize;
    let mut m = FlowMatch::default();
    if bitmap & 0x01 != 0 {
        need(buf, at + 2)?;
        m.in_port = Some(be16(buf, at));
        at += 2;
    }
    if bitmap & 0x02 != 0 {
        need(buf, at + 6)?;
        m.eth_src = Some(get_mac(buf, at));
        at += 6;
    }
    if bitmap & 0x04 != 0 {
        need(buf, at + 6)?;
        m.eth_dst = Some(get_mac(buf, at));
        at += 6;
    }
    if bitmap & 0x08 != 0 {
        need(buf, at + 2)?;
        m.eth_type = Some(be16(buf, at));
        at += 2;
    }
    if bitmap & 0x10 != 0 {
        need(buf, at + 5)?;
        m.ip_src = Some(get_prefix(buf, at)?);
        at += 5;
    }
    if bitmap & 0x20 != 0 {
        need(buf, at + 5)?;
        m.ip_dst = Some(get_prefix(buf, at)?);
        at += 5;
    }
    if bitmap & 0x40 != 0 {
        need(buf, at + 2)?;
        m.udp_src = Some(be16(buf, at));
        at += 2;
    }
    if bitmap & 0x80 != 0 {
        need(buf, at + 2)?;
        m.udp_dst = Some(be16(buf, at));
        at += 2;
    }
    Ok((m, at))
}

fn encode_actions(actions: &[Action], out: &mut Vec<u8>) {
    assert!(actions.len() <= 255);
    out.push(actions.len() as u8);
    for a in actions {
        match a {
            Action::SetDstMac(m) => {
                out.push(1);
                put_mac(out, *m);
            }
            Action::SetSrcMac(m) => {
                out.push(2);
                put_mac(out, *m);
            }
            Action::Output(p) => {
                out.push(3);
                out.extend_from_slice(&p.to_be_bytes());
            }
            Action::Flood => out.push(4),
            Action::ToController => out.push(5),
            Action::Drop => out.push(6),
        }
    }
}

fn decode_actions(buf: &[u8]) -> Result<(Vec<Action>, usize), WireError> {
    need(buf, 1)?;
    let count = buf[0] as usize;
    let mut at = 1usize;
    let mut actions = Vec::with_capacity(count);
    for _ in 0..count {
        need(buf, at + 1)?;
        let tag = buf[at];
        at += 1;
        let a = match tag {
            1 => {
                need(buf, at + 6)?;
                let m = get_mac(buf, at);
                at += 6;
                Action::SetDstMac(m)
            }
            2 => {
                need(buf, at + 6)?;
                let m = get_mac(buf, at);
                at += 6;
                Action::SetSrcMac(m)
            }
            3 => {
                need(buf, at + 2)?;
                let p = be16(buf, at);
                at += 2;
                Action::Output(p)
            }
            4 => Action::Flood,
            5 => Action::ToController,
            6 => Action::Drop,
            _ => return Err(WireError::BadField("action tag")),
        };
        actions.push(a);
    }
    Ok((actions, at))
}

impl OfMessage {
    fn type_code(&self) -> u8 {
        match self {
            OfMessage::Hello => T_HELLO,
            OfMessage::EchoRequest(_) => T_ECHO_REQ,
            OfMessage::EchoReply(_) => T_ECHO_REP,
            OfMessage::FeaturesRequest => T_FEATURES_REQ,
            OfMessage::FeaturesReply { .. } => T_FEATURES_REP,
            OfMessage::FlowMod { .. } => T_FLOW_MOD,
            OfMessage::PacketIn { .. } => T_PACKET_IN,
            OfMessage::PacketOut { .. } => T_PACKET_OUT,
            OfMessage::PortStatus { .. } => T_PORT_STATUS,
            OfMessage::BarrierRequest { .. } => T_BARRIER_REQ,
            OfMessage::BarrierReply { .. } => T_BARRIER_REP,
            OfMessage::StatsRequest => T_STATS_REQ,
            OfMessage::StatsReply { .. } => T_STATS_REP,
        }
    }

    /// Serialize with the given transaction id.
    pub fn encode(&self, xid: u32) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            OfMessage::Hello | OfMessage::FeaturesRequest | OfMessage::StatsRequest => {}
            OfMessage::BarrierRequest { token } | OfMessage::BarrierReply { token } => {
                body.extend_from_slice(&token.to_be_bytes());
            }
            OfMessage::EchoRequest(d) | OfMessage::EchoReply(d) => {
                body.extend_from_slice(d);
            }
            OfMessage::FeaturesReply {
                datapath_id,
                n_ports,
            } => {
                body.extend_from_slice(&datapath_id.to_be_bytes());
                body.extend_from_slice(&n_ports.to_be_bytes());
            }
            OfMessage::FlowMod {
                command,
                priority,
                cookie,
                matcher,
                actions,
            } => {
                body.push(*command as u8);
                body.extend_from_slice(&priority.to_be_bytes());
                body.extend_from_slice(&cookie.to_be_bytes());
                encode_match(matcher, &mut body);
                encode_actions(actions, &mut body);
            }
            OfMessage::PacketIn { in_port, frame } => {
                body.extend_from_slice(&in_port.to_be_bytes());
                body.extend_from_slice(frame);
            }
            OfMessage::PacketOut { actions, frame } => {
                encode_actions(actions, &mut body);
                body.extend_from_slice(frame);
            }
            OfMessage::PortStatus { port, up } => {
                body.extend_from_slice(&port.to_be_bytes());
                body.push(*up as u8);
            }
            OfMessage::StatsReply {
                lookups,
                misses,
                flows,
            } => {
                body.extend_from_slice(&lookups.to_be_bytes());
                body.extend_from_slice(&misses.to_be_bytes());
                body.extend_from_slice(&(flows.len() as u32).to_be_bytes());
                for f in flows {
                    body.extend_from_slice(&f.priority.to_be_bytes());
                    body.extend_from_slice(&f.cookie.to_be_bytes());
                    body.extend_from_slice(&f.packets.to_be_bytes());
                    body.extend_from_slice(&f.bytes.to_be_bytes());
                }
            }
        }
        let total = HEADER_LEN + body.len();
        assert!(total <= u16::MAX as usize, "of message too large");
        let mut out = Vec::with_capacity(total);
        out.push(VERSION);
        out.push(self.type_code());
        out.extend_from_slice(&(total as u16).to_be_bytes());
        out.extend_from_slice(&xid.to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parse one message; returns `(xid, message)`.
    pub fn decode(buf: &[u8]) -> Result<(u32, OfMessage), WireError> {
        need(buf, HEADER_LEN)?;
        if buf[0] != VERSION {
            return Err(WireError::Unsupported("of version"));
        }
        let len = be16(buf, 2) as usize;
        if len != buf.len() || len < HEADER_LEN {
            return Err(WireError::BadLength);
        }
        let xid = be32(buf, 4);
        let body = &buf[HEADER_LEN..];
        let msg = match buf[1] {
            T_HELLO => OfMessage::Hello,
            T_ECHO_REQ => OfMessage::EchoRequest(body.to_vec()),
            T_ECHO_REP => OfMessage::EchoReply(body.to_vec()),
            T_FEATURES_REQ => OfMessage::FeaturesRequest,
            T_FEATURES_REP => {
                need(body, 10)?;
                OfMessage::FeaturesReply {
                    datapath_id: u64::from_be_bytes(body[0..8].try_into().unwrap()),
                    n_ports: be16(body, 8),
                }
            }
            T_FLOW_MOD => {
                need(body, 11)?;
                let command = FlowModCommand::from_u8(body[0])?;
                let priority = be16(body, 1);
                let cookie = u64::from_be_bytes(body[3..11].try_into().unwrap());
                let (matcher, n) = decode_match(&body[11..])?;
                let (actions, m) = decode_actions(&body[11 + n..])?;
                if 11 + n + m != body.len() {
                    return Err(WireError::BadLength);
                }
                OfMessage::FlowMod {
                    command,
                    priority,
                    cookie,
                    matcher,
                    actions,
                }
            }
            T_PACKET_IN => {
                need(body, 2)?;
                OfMessage::PacketIn {
                    in_port: be16(body, 0),
                    frame: body[2..].to_vec(),
                }
            }
            T_PACKET_OUT => {
                let (actions, n) = decode_actions(body)?;
                OfMessage::PacketOut {
                    actions,
                    frame: body[n..].to_vec(),
                }
            }
            T_PORT_STATUS => {
                need(body, 3)?;
                OfMessage::PortStatus {
                    port: be16(body, 0),
                    up: body[2] != 0,
                }
            }
            T_BARRIER_REQ => {
                need(body, 8)?;
                OfMessage::BarrierRequest {
                    token: u64::from_be_bytes(body[0..8].try_into().unwrap()),
                }
            }
            T_BARRIER_REP => {
                need(body, 8)?;
                OfMessage::BarrierReply {
                    token: u64::from_be_bytes(body[0..8].try_into().unwrap()),
                }
            }
            T_STATS_REQ => OfMessage::StatsRequest,
            T_STATS_REP => {
                need(body, 20)?;
                let lookups = u64::from_be_bytes(body[0..8].try_into().unwrap());
                let misses = u64::from_be_bytes(body[8..16].try_into().unwrap());
                let count = be32(body, 16) as usize;
                need(body, 20 + count * 26)?;
                let mut flows = Vec::with_capacity(count);
                for i in 0..count {
                    let at = 20 + i * 26;
                    flows.push(FlowStatsRow {
                        priority: be16(body, at),
                        cookie: u64::from_be_bytes(body[at + 2..at + 10].try_into().unwrap()),
                        packets: u64::from_be_bytes(body[at + 10..at + 18].try_into().unwrap()),
                        bytes: u64::from_be_bytes(body[at + 18..at + 26].try_into().unwrap()),
                    });
                }
                OfMessage::StatsReply {
                    lookups,
                    misses,
                    flows,
                }
            }
            _ => return Err(WireError::BadField("of message type")),
        };
        Ok((xid, msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: OfMessage) {
        let enc = m.encode(0x1234_5678);
        let (xid, dec) = OfMessage::decode(&enc).unwrap();
        assert_eq!(xid, 0x1234_5678);
        assert_eq!(dec, m);
    }

    #[test]
    fn roundtrip_simple_messages() {
        roundtrip(OfMessage::Hello);
        roundtrip(OfMessage::FeaturesRequest);
        roundtrip(OfMessage::FeaturesReply {
            datapath_id: 0xdead_beef_0bad_cafe,
            n_ports: 18,
        });
        roundtrip(OfMessage::BarrierRequest { token: 7 });
        roundtrip(OfMessage::BarrierReply { token: u64::MAX });
        roundtrip(OfMessage::StatsRequest);
        roundtrip(OfMessage::EchoRequest(vec![1, 2, 3]));
        roundtrip(OfMessage::EchoReply(vec![]));
        roundtrip(OfMessage::PortStatus { port: 7, up: false });
    }

    #[test]
    fn roundtrip_flow_mod_supercharger_rule() {
        // The paper's Listing 2 rule: match VMAC, rewrite to backup MAC,
        // output on the backup's port.
        roundtrip(OfMessage::FlowMod {
            command: FlowModCommand::Modify,
            priority: 100,
            cookie: 0x5c,
            matcher: FlowMatch::dst_mac(MacAddr::virtual_mac(3)),
            actions: vec![
                Action::SetDstMac(MacAddr::new(0x02, 0xbb, 0, 0, 0, 1)),
                Action::Output(2),
            ],
        });
    }

    #[test]
    fn roundtrip_flow_mod_full_match() {
        roundtrip(OfMessage::FlowMod {
            command: FlowModCommand::Add,
            priority: 65535,
            cookie: u64::MAX,
            matcher: FlowMatch {
                in_port: Some(3),
                eth_src: Some(MacAddr::new(1, 2, 3, 4, 5, 6)),
                eth_dst: Some(MacAddr::BROADCAST),
                eth_type: Some(0x0800),
                ip_src: Some("10.0.0.0/8".parse().unwrap()),
                ip_dst: Some("1.2.3.4/32".parse().unwrap()),
                udp_src: Some(1000),
                udp_dst: Some(2000),
            },
            actions: vec![Action::Flood, Action::ToController, Action::Drop],
        });
    }

    #[test]
    fn roundtrip_packet_in_out() {
        roundtrip(OfMessage::PacketIn {
            in_port: 4,
            frame: vec![0xca; 64],
        });
        roundtrip(OfMessage::PacketOut {
            actions: vec![Action::Output(1)],
            frame: vec![0xfe; 128],
        });
    }

    #[test]
    fn roundtrip_stats_reply() {
        roundtrip(OfMessage::StatsReply {
            lookups: 1_000_000,
            misses: 17,
            flows: vec![
                FlowStatsRow {
                    priority: 100,
                    cookie: 1,
                    packets: 500,
                    bytes: 32_000,
                },
                FlowStatsRow {
                    priority: 90,
                    cookie: 2,
                    packets: 0,
                    bytes: 0,
                },
            ],
        });
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(OfMessage::decode(&[]).is_err());
        let mut enc = OfMessage::Hello.encode(1);
        enc[0] = 9; // bad version
        assert!(OfMessage::decode(&enc).is_err());
        let mut enc = OfMessage::Hello.encode(1);
        enc[1] = 99; // bad type
        assert!(OfMessage::decode(&enc).is_err());
        let mut enc = OfMessage::Hello.encode(1);
        enc[3] = 200; // bad length
        assert!(OfMessage::decode(&enc).is_err());
        // FlowMod with trailing garbage.
        let mut fm = OfMessage::FlowMod {
            command: FlowModCommand::Add,
            priority: 1,
            cookie: 0,
            matcher: FlowMatch::any(),
            actions: vec![],
        }
        .encode(1);
        fm.push(0xff);
        fm[3] += 1;
        assert!(OfMessage::decode(&fm).is_err());
    }
}
