//! The SDN switch as a simulation node.
//!
//! Models the paper's HP E3800 in hybrid mode:
//!
//! * a hardware flow table (priority match + rewrite actions) with
//!   realistic **install latency** — programming a TCAM entry is not
//!   free, and this cost is part of the supercharged router's 150 ms
//!   convergence budget (see `sc-router::calibration`);
//! * an **L2-learning fallback** for table-miss frames, so ordinary
//!   traffic (BGP sessions, probe packets toward the router) is switched
//!   like on any Ethernet switch;
//! * a reliable **control channel** carrying [`OfMessage`]s: FLOW_MOD
//!   (queued behind the install latency), BARRIER (completes only after
//!   the installs that preceded it), PACKET_IN/OUT (the controller's ARP
//!   resolver path), PORT_STATUS on carrier changes, FEATURES, ECHO and
//!   STATS.

use crate::msg::{FlowModCommand, FlowStatsRow, OfMessage};
use crate::table::{FlowEntry, FlowStats, FlowTable};
use crate::types::{Action, FlowKey, FlowMatch};
use sc_net::channel::ChannelEvent;
use sc_net::wire::{open_udp_frame, EthernetRepr};
use sc_net::{Frame, FxHashMap, MacAddr, SimDuration, SimTime};
use sc_sim::{ChannelPort, Ctx, Node, PortId, TimerToken};
use std::any::Any;
use std::collections::VecDeque;

/// Timer token for the flow-install completion queue.
const TIMER_INSTALL: TimerToken = TimerToken(2);
/// Timer tokens for controller channels: BASE + index.
const TIMER_CHANNEL_BASE: u64 = 10;
/// Timer tokens for controller liveness deadlines: BASE + index.
const TIMER_DEADLINE_BASE: u64 = 1000;

/// What to do with a frame no flow entry matches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TableMiss {
    /// Drop silently (pure OpenFlow switch without a default rule).
    Drop,
    /// Flood out every data port except the ingress.
    Flood,
    /// Behave like a learning L2 switch (the paper's hybrid mode).
    L2Learn,
    /// Punt to the controller as PACKET_IN.
    PacketIn,
}

/// Static switch configuration.
#[derive(Clone, Debug)]
pub struct SwitchConfig {
    pub name: String,
    pub datapath_id: u64,
    /// Install latency for the first FLOW_MOD of a burst (TCAM program
    /// setup).
    pub install_base: SimDuration,
    /// Install latency for each subsequent back-to-back FLOW_MOD.
    pub install_per_rule: SimDuration,
    pub table_miss: TableMiss,
    /// Controller liveness deadline: if a controller channel stays
    /// silent this long after having spoken, the switch declares that
    /// controller dead, resets the channel back to listening, and keeps
    /// its installed rules (fail-secure). `None` disables the watchdog.
    pub controller_deadline: Option<SimDuration>,
}

impl SwitchConfig {
    /// The paper's calibration for an HP E3800-class switch.
    pub fn paper_defaults(name: &str) -> SwitchConfig {
        SwitchConfig {
            name: name.to_string(),
            datapath_id: 0xe3800,
            install_base: SimDuration::from_millis(15),
            install_per_rule: SimDuration::from_millis(2),
            table_miss: TableMiss::L2Learn,
            controller_deadline: None,
        }
    }
}

/// Data-plane counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SwitchStats {
    pub frames_in: u64,
    pub frames_out: u64,
    pub flooded: u64,
    pub dropped: u64,
    pub packet_ins: u64,
    pub flow_mods_applied: u64,
    /// Controllers declared dead (deadline miss or channel reset by a
    /// restarted peer).
    pub controller_deaths: u64,
    /// FLOW_MODs discarded by the scripted chaos budget
    /// ([`OfSwitch::set_drop_flowmods`]).
    pub chaos_dropped_mods: u64,
}

/// A queued hardware operation (FLOW_MOD waiting for TCAM programming,
/// or a barrier fencing the operations before it).
#[derive(Debug)]
enum PendingOp {
    Install {
        done_at: SimTime,
        command: FlowModCommand,
        priority: u16,
        cookie: u64,
        matcher: FlowMatch,
        actions: Vec<Action>,
    },
    Barrier {
        done_at: SimTime,
        xid: u32,
        token: u64,
        controller: usize,
    },
}

impl PendingOp {
    fn done_at(&self) -> SimTime {
        match self {
            PendingOp::Install { done_at, .. } | PendingOp::Barrier { done_at, .. } => *done_at,
        }
    }
}

/// The switch node.
pub struct OfSwitch {
    cfg: SwitchConfig,
    table: FlowTable,
    l2: FxHashMap<MacAddr, PortId>,
    data_ports: Vec<PortId>,
    /// Control channels — redundant controllers each get one (§3 of the
    /// paper: data-plane reliability via redundant switches, control
    /// reliability via redundant controllers).
    controllers: Vec<ChannelPort>,
    /// Per-controller liveness: has this channel ever spoken, and when
    /// was it last heard from (any datagram counts — data, ack or
    /// keepalive all prove the peer's process is alive).
    ctrl_live: Vec<bool>,
    last_heard: Vec<SimTime>,
    deadline_armed: Vec<bool>,
    /// Scripted chaos: discard this many incoming FLOW_MODs (and any
    /// barriers that arrive while the budget is open, so the loss is
    /// not silently acked).
    drop_flowmods: u32,
    pending: VecDeque<PendingOp>,
    install_busy_until: SimTime,
    install_timer_armed: Option<SimTime>,
    xid_counter: u32,
    pub stats: SwitchStats,
}

impl OfSwitch {
    pub fn new(cfg: SwitchConfig) -> OfSwitch {
        OfSwitch {
            cfg,
            table: FlowTable::new(),
            l2: FxHashMap::default(),
            data_ports: Vec::new(),
            controllers: Vec::new(),
            ctrl_live: Vec::new(),
            last_heard: Vec::new(),
            deadline_armed: Vec::new(),
            drop_flowmods: 0,
            pending: VecDeque::new(),
            install_busy_until: SimTime::ZERO,
            install_timer_armed: None,
            xid_counter: 1,
            stats: SwitchStats::default(),
        }
    }

    /// Register a port as a data port (done by the topology builder after
    /// `World::connect`).
    pub fn register_data_port(&mut self, port: PortId) {
        if !self.data_ports.contains(&port) {
            self.data_ports.push(port);
        }
    }

    /// Attach a controller's reliable channel (listening side; the
    /// controller initiates). May be called multiple times for
    /// redundant controllers.
    pub fn attach_controller(&mut self, mut chan: ChannelPort) {
        chan.timer = TimerToken(TIMER_CHANNEL_BASE + self.controllers.len() as u64);
        self.controllers.push(chan);
        self.ctrl_live.push(false);
        self.last_heard.push(SimTime::ZERO);
        self.deadline_armed.push(false);
    }

    /// Scripted chaos: silently discard the next `count` FLOW_MODs.
    pub fn set_drop_flowmods(&mut self, count: u32) {
        self.drop_flowmods = count;
    }

    /// Whether controller `idx` is currently considered alive.
    pub fn controller_live(&self, idx: usize) -> bool {
        self.ctrl_live.get(idx).copied().unwrap_or(false)
    }

    /// Read-only view of the flow table (for tests/experiments).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// The learned L2 table (for tests).
    pub fn l2_table(&self) -> &FxHashMap<MacAddr, PortId> {
        &self.l2
    }

    /// The registered data ports, in registration order — the flood
    /// domain observers need to replay the table-miss broadcast.
    pub fn data_ports(&self) -> &[PortId] {
        &self.data_ports
    }

    /// Number of hardware operations still pending.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    fn next_xid(&mut self) -> u32 {
        self.xid_counter += 1;
        self.xid_counter
    }

    /// Asynchronous switch-to-controller notifications go to *every*
    /// attached controller (PACKET_IN, PORT_STATUS).
    fn send_to_controllers(&mut self, ctx: &mut Ctx, msg: OfMessage) {
        let xid = self.next_xid();
        for chan in &mut self.controllers {
            chan.send(msg.encode(xid));
            chan.flush(ctx);
        }
    }

    /// Replies go only to the controller that asked.
    fn reply_to_controller(&mut self, ctx: &mut Ctx, idx: usize, xid: u32, msg: OfMessage) {
        if let Some(chan) = self.controllers.get_mut(idx) {
            chan.send(msg.encode(xid));
            chan.flush(ctx);
        }
    }

    /// Process a control message from controller `idx`.
    fn on_control(&mut self, ctx: &mut Ctx, idx: usize, xid: u32, msg: OfMessage) {
        if self.drop_flowmods > 0 {
            match msg {
                OfMessage::FlowMod { .. } => {
                    // Chaos budget: eat the mod. Only FLOW_MODs consume
                    // the budget; fencing barriers are swallowed too so
                    // the controller sees a missing ack, not a lie.
                    self.drop_flowmods -= 1;
                    self.stats.chaos_dropped_mods += 1;
                    return;
                }
                OfMessage::BarrierRequest { .. } => return,
                _ => {}
            }
        }
        match msg {
            OfMessage::Hello => {
                self.reply_to_controller(ctx, idx, xid, OfMessage::Hello);
            }
            OfMessage::EchoRequest(d) => {
                self.reply_to_controller(ctx, idx, xid, OfMessage::EchoReply(d));
            }
            OfMessage::FeaturesRequest => {
                let reply = OfMessage::FeaturesReply {
                    datapath_id: self.cfg.datapath_id,
                    n_ports: self.data_ports.len() as u16,
                };
                self.reply_to_controller(ctx, idx, xid, reply);
            }
            OfMessage::FlowMod {
                command,
                priority,
                cookie,
                matcher,
                actions,
            } => {
                // Queue behind the TCAM programming latency. The first
                // rule of a burst pays the base latency; back-to-back
                // rules pipeline at the per-rule cost.
                let now = ctx.now();
                let start = self.install_busy_until.max(now);
                let cost = if start == now && self.pending.is_empty() {
                    self.cfg.install_base
                } else {
                    self.cfg.install_per_rule
                };
                let done_at = start + cost;
                self.install_busy_until = done_at;
                self.pending.push_back(PendingOp::Install {
                    done_at,
                    command,
                    priority,
                    cookie,
                    matcher,
                    actions,
                });
                self.arm_install_timer(ctx);
            }
            OfMessage::BarrierRequest { token } => {
                let done_at = self.install_busy_until.max(ctx.now());
                self.pending.push_back(PendingOp::Barrier {
                    done_at,
                    xid,
                    token,
                    controller: idx,
                });
                self.arm_install_timer(ctx);
            }
            OfMessage::PacketOut { actions, frame } => {
                // Controller-injected frame (e.g. an ARP reply). No
                // ingress port; flood excludes nothing but the controller
                // channel.
                self.execute_actions(ctx, None, &actions, frame.into());
            }
            OfMessage::StatsRequest => {
                let flows = self
                    .table
                    .entries()
                    .iter()
                    .map(|e| FlowStatsRow {
                        priority: e.priority,
                        cookie: e.cookie,
                        packets: e.stats.packets,
                        bytes: e.stats.bytes,
                    })
                    .collect();
                let reply = OfMessage::StatsReply {
                    lookups: self.table.lookups,
                    misses: self.table.misses,
                    flows,
                };
                self.reply_to_controller(ctx, idx, xid, reply);
            }
            // Switch-to-controller messages arriving at the switch are
            // protocol errors; ignore them rather than crash the lab.
            OfMessage::FeaturesReply { .. }
            | OfMessage::PacketIn { .. }
            | OfMessage::PortStatus { .. }
            | OfMessage::BarrierReply { .. }
            | OfMessage::StatsReply { .. }
            | OfMessage::EchoReply(_) => {}
        }
    }

    /// Arm the liveness watchdog for controller `idx` (one outstanding
    /// timer per channel; re-armed from its own expiry while traffic
    /// keeps arriving).
    fn arm_deadline(&mut self, ctx: &mut Ctx, idx: usize) {
        let Some(deadline) = self.cfg.controller_deadline else {
            return;
        };
        if !self.deadline_armed[idx] {
            self.deadline_armed[idx] = true;
            ctx.set_timer_at(
                self.last_heard[idx] + deadline,
                TimerToken(TIMER_DEADLINE_BASE + idx as u64),
            );
        }
    }

    fn check_deadline(&mut self, ctx: &mut Ctx, idx: usize) {
        let Some(deadline) = self.cfg.controller_deadline else {
            return;
        };
        if idx >= self.controllers.len() {
            return;
        }
        self.deadline_armed[idx] = false;
        if !self.ctrl_live[idx] {
            return;
        }
        let due = self.last_heard[idx] + deadline;
        if due <= ctx.now() {
            // Silent past the deadline: the controller is gone. Keep the
            // installed rules (fail-secure — the data plane must not
            // blink) but stop believing in FlowModify service.
            self.mark_controller_dead(idx);
        } else {
            self.deadline_armed[idx] = true;
            ctx.set_timer_at(due, TimerToken(TIMER_DEADLINE_BASE + idx as u64));
        }
    }

    fn mark_controller_dead(&mut self, idx: usize) {
        if self.ctrl_live[idx] {
            self.ctrl_live[idx] = false;
            self.stats.controller_deaths += 1;
        }
        // Back to listening: a restarted controller re-handshakes from
        // scratch. Undelivered queue state from the old incarnation is
        // discarded with the endpoint.
        self.controllers[idx].reset();
    }

    fn arm_install_timer(&mut self, ctx: &mut Ctx) {
        if let Some(front) = self.pending.front() {
            let at = front.done_at();
            if self.install_timer_armed != Some(at) {
                self.install_timer_armed = Some(at);
                ctx.set_timer_at(at, TIMER_INSTALL);
            }
        }
    }

    fn drain_installs(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        while let Some(front) = self.pending.front() {
            if front.done_at() > now {
                break;
            }
            match self.pending.pop_front().unwrap() {
                PendingOp::Install {
                    command,
                    priority,
                    cookie,
                    matcher,
                    actions,
                    ..
                } => {
                    self.stats.flow_mods_applied += 1;
                    match command {
                        FlowModCommand::Add => self.table.add(FlowEntry {
                            priority,
                            cookie,
                            matcher,
                            actions,
                            stats: FlowStats::default(),
                        }),
                        FlowModCommand::Modify => {
                            // Modify-or-add: the controller's failover
                            // path must work even if the add was lost.
                            if self.table.modify(priority, &matcher, actions.clone()) == 0 {
                                self.table.add(FlowEntry {
                                    priority,
                                    cookie,
                                    matcher,
                                    actions,
                                    stats: FlowStats::default(),
                                });
                            }
                        }
                        FlowModCommand::Delete => {
                            self.table.delete(Some(priority), &matcher);
                        }
                    }
                }
                PendingOp::Barrier {
                    xid,
                    token,
                    controller,
                    ..
                } => {
                    self.reply_to_controller(
                        ctx,
                        controller,
                        xid,
                        OfMessage::BarrierReply { token },
                    );
                }
            }
        }
        self.install_timer_armed = None;
        self.arm_install_timer(ctx);
    }

    /// Run the data-plane pipeline on a frame.
    fn forward(&mut self, ctx: &mut Ctx, in_port: PortId, frame: Frame) {
        self.stats.frames_in += 1;
        let Some(key) = FlowKey::extract(in_port.0 as u16, &frame) else {
            self.stats.dropped += 1;
            return;
        };
        // Hybrid mode learns source MACs from every frame.
        if self.cfg.table_miss == TableMiss::L2Learn && key.eth_src.is_unicast() {
            self.l2.insert(key.eth_src, in_port);
        }
        if let Some(entry) = self.table.lookup(&key, frame.len()) {
            let actions = entry.actions.clone();
            self.execute_actions(ctx, Some(in_port), &actions, frame);
            return;
        }
        // Table miss.
        match self.cfg.table_miss {
            TableMiss::Drop => {
                self.stats.dropped += 1;
            }
            TableMiss::Flood => {
                self.flood(ctx, Some(in_port), frame);
            }
            TableMiss::L2Learn => {
                if key.eth_dst.is_unicast() {
                    if let Some(&out) = self.l2.get(&key.eth_dst) {
                        if out != in_port {
                            self.stats.frames_out += 1;
                            ctx.send_frame(out, frame);
                        } else {
                            self.stats.dropped += 1;
                        }
                        return;
                    }
                }
                self.flood(ctx, Some(in_port), frame);
            }
            TableMiss::PacketIn => {
                self.stats.packet_ins += 1;
                let msg = OfMessage::PacketIn {
                    in_port: in_port.0 as u16,
                    frame: frame.to_vec(),
                };
                self.send_to_controllers(ctx, msg);
            }
        }
    }

    fn flood(&mut self, ctx: &mut Ctx, except: Option<PortId>, frame: Frame) {
        self.stats.flooded += 1;
        // Every egress shares one buffer: N ports cost N refcount
        // bumps, not N byte copies.
        for &p in &self.data_ports {
            if Some(p) != except {
                self.stats.frames_out += 1;
                ctx.send_frame(p, frame.clone());
            }
        }
    }

    fn execute_actions(
        &mut self,
        ctx: &mut Ctx,
        in_port: Option<PortId>,
        actions: &[Action],
        mut frame: Frame,
    ) {
        for action in actions {
            match action {
                Action::SetDstMac(m) => {
                    let _ = EthernetRepr::rewrite_dst(frame.make_mut(), *m);
                }
                Action::SetSrcMac(m) => {
                    let _ = EthernetRepr::rewrite_src(frame.make_mut(), *m);
                }
                Action::Output(p) => {
                    self.stats.frames_out += 1;
                    ctx.send_frame(PortId(*p as usize), frame.clone());
                }
                Action::Flood => {
                    self.flood(ctx, in_port, frame.clone());
                }
                Action::ToController => {
                    self.stats.packet_ins += 1;
                    let msg = OfMessage::PacketIn {
                        in_port: in_port.map(|p| p.0 as u16).unwrap_or(u16::MAX),
                        frame: frame.to_vec(),
                    };
                    self.send_to_controllers(ctx, msg);
                }
                Action::Drop => {
                    self.stats.dropped += 1;
                    return;
                }
            }
        }
    }
}

impl Node for OfSwitch {
    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn on_frame(&mut self, ctx: &mut Ctx, port: PortId, frame: Frame) {
        // Control-channel traffic is any UDP datagram matching one of
        // the controller channels' 5-tuples; everything else is data
        // plane.
        if !self.controllers.is_empty() {
            if let Ok(Some(d)) = open_udp_frame(&frame) {
                if let Some(idx) = self.controllers.iter().position(|c| c.matches(&d)) {
                    // Any datagram from the controller — data, ack or
                    // keepalive — proves its process is alive.
                    self.ctrl_live[idx] = true;
                    self.last_heard[idx] = ctx.now();
                    self.arm_deadline(ctx, idx);
                    let chan = &mut self.controllers[idx];
                    let events = chan.on_datagram(&d, ctx.now());
                    chan.flush(ctx);
                    let mut peer_closed = false;
                    for ev in events {
                        match ev {
                            ChannelEvent::Delivered(bytes) => match OfMessage::decode(&bytes) {
                                Ok((xid, msg)) => self.on_control(ctx, idx, xid, msg),
                                Err(_) => { /* malformed control message */ }
                            },
                            ChannelEvent::PeerClosed => peer_closed = true,
                            _ => {}
                        }
                    }
                    if peer_closed {
                        // A fresh SYN hit our established endpoint: the
                        // controller process restarted. Declare the old
                        // incarnation dead and fall back to listening —
                        // the replacement's SYN retransmission completes
                        // the new handshake.
                        self.mark_controller_dead(idx);
                    }
                    self.controllers[idx].flush(ctx);
                    return;
                }
            }
        }
        self.forward(ctx, port, frame);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: TimerToken) {
        match token {
            TIMER_INSTALL => self.drain_installs(ctx),
            TimerToken(t) if t >= TIMER_DEADLINE_BASE => {
                self.check_deadline(ctx, (t - TIMER_DEADLINE_BASE) as usize);
            }
            TimerToken(t) if t >= TIMER_CHANNEL_BASE => {
                let idx = (t - TIMER_CHANNEL_BASE) as usize;
                if let Some(chan) = self.controllers.get_mut(idx) {
                    chan.on_timer(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_link_status(&mut self, ctx: &mut Ctx, port: PortId, up: bool) {
        // Carrier change: purge L2 entries learned on that port and tell
        // the controller (PORT_STATUS) — real switches do both.
        self.l2.retain(|_, &mut p| p != port || up);
        let msg = OfMessage::PortStatus {
            port: port.0 as u16,
            up,
        };
        self.send_to_controllers(ctx, msg);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
