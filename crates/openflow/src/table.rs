//! The flow table: priority-ordered entries with OpenFlow add/modify/
//! delete semantics and per-entry counters.
//!
//! Scale note: a supercharged router needs one entry per backup-group —
//! `n(n-1)` for `n` peers, i.e. double digits in practice — so lookup is
//! a linear scan in priority order, which is also the easiest semantics
//! to make *exactly* deterministic.

use crate::types::{Action, FlowKey, FlowMatch};
use std::fmt;

/// Per-entry counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FlowStats {
    pub packets: u64,
    pub bytes: u64,
}

/// One flow entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowEntry {
    pub priority: u16,
    pub cookie: u64,
    pub matcher: FlowMatch,
    pub actions: Vec<Action>,
    pub stats: FlowStats,
}

impl fmt::Display for FlowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let acts: Vec<String> = self.actions.iter().map(|a| a.to_string()).collect();
        write!(
            f,
            "prio={} cookie={} {} -> [{}]",
            self.priority,
            self.cookie,
            self.matcher,
            acts.join(",")
        )
    }
}

/// The table. Entries are kept sorted by descending priority; among equal
/// priorities, insertion order decides (first match wins).
#[derive(Clone, Debug, Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    pub lookups: u64,
    pub misses: u64,
}

impl FlowTable {
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }

    /// Add an entry. If an entry with the same (priority, match) exists,
    /// it is overwritten (OpenFlow ADD semantics), keeping its counters.
    pub fn add(&mut self, entry: FlowEntry) {
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.priority == entry.priority && e.matcher == entry.matcher)
        {
            let stats = existing.stats;
            *existing = entry;
            existing.stats = stats;
            return;
        }
        // Insert after the last entry with priority >= new priority, so
        // equal priorities keep insertion order.
        let pos = self
            .entries
            .iter()
            .position(|e| e.priority < entry.priority)
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, entry);
    }

    /// Modify the actions of all entries matching (priority, match)
    /// exactly. Returns how many entries changed. Counters survive —
    /// this is the paper's failover operation, and it must not disturb
    /// traffic accounting.
    pub fn modify(&mut self, priority: u16, matcher: &FlowMatch, actions: Vec<Action>) -> usize {
        let mut n = 0;
        for e in &mut self.entries {
            if e.priority == priority && e.matcher == *matcher {
                e.actions = actions.clone();
                n += 1;
            }
        }
        n
    }

    /// Delete all entries whose match equals `matcher` (and priority, if
    /// given). Returns how many were removed.
    pub fn delete(&mut self, priority: Option<u16>, matcher: &FlowMatch) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|e| !(e.matcher == *matcher && priority.is_none_or(|p| e.priority == p)));
        before - self.entries.len()
    }

    /// Delete by cookie (bulk cleanup, e.g. "all supercharger rules").
    pub fn delete_by_cookie(&mut self, cookie: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.cookie != cookie);
        before - self.entries.len()
    }

    /// Look up the highest-priority matching entry for `key`, updating
    /// counters. Returns the actions to execute, or `None` on table miss.
    pub fn lookup(&mut self, key: &FlowKey, frame_len: usize) -> Option<&FlowEntry> {
        self.lookups += 1;
        match self.entries.iter_mut().find(|e| e.matcher.matches(key)) {
            Some(e) => {
                e.stats.packets += 1;
                e.stats.bytes += frame_len as u64;
                Some(&*e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Non-mutating lookup (for assertions in tests).
    pub fn peek(&self, key: &FlowKey) -> Option<&FlowEntry> {
        self.entries.iter().find(|e| e.matcher.matches(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_net::MacAddr;

    fn key(dst: MacAddr) -> FlowKey {
        FlowKey {
            in_port: 1,
            eth_src: MacAddr::new(0, 0, 0, 0, 0, 1),
            eth_dst: dst,
            eth_type: 0x0800,
            ip_src: None,
            ip_dst: None,
            udp_src: None,
            udp_dst: None,
        }
    }

    fn entry(prio: u16, dst: MacAddr, out: u16) -> FlowEntry {
        FlowEntry {
            priority: prio,
            cookie: 0,
            matcher: FlowMatch::dst_mac(dst),
            actions: vec![
                Action::SetDstMac(MacAddr::new(9, 9, 9, 9, 9, 9)),
                Action::Output(out),
            ],
            stats: FlowStats::default(),
        }
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new();
        let vmac = MacAddr::virtual_mac(1);
        t.add(FlowEntry {
            priority: 10,
            ..entry(10, vmac, 1)
        });
        t.add(entry(100, vmac, 2));
        let e = t.lookup(&key(vmac), 64).unwrap();
        assert!(
            e.actions.contains(&Action::Output(2)),
            "higher priority wins"
        );
    }

    #[test]
    fn equal_priority_first_added_wins() {
        let mut t = FlowTable::new();
        let vmac = MacAddr::virtual_mac(1);
        let mut e1 = entry(50, vmac, 1);
        e1.cookie = 111;
        let mut e2 = FlowEntry {
            matcher: FlowMatch::any(),
            ..entry(50, vmac, 2)
        };
        e2.cookie = 222;
        t.add(e1);
        t.add(e2);
        assert_eq!(t.lookup(&key(vmac), 64).unwrap().cookie, 111);
    }

    #[test]
    fn add_overwrites_same_priority_and_match_keeping_stats() {
        let mut t = FlowTable::new();
        let vmac = MacAddr::virtual_mac(1);
        t.add(entry(50, vmac, 1));
        t.lookup(&key(vmac), 100);
        t.add(entry(50, vmac, 7)); // re-add with new actions
        assert_eq!(t.len(), 1);
        let e = t.peek(&key(vmac)).unwrap();
        assert!(e.actions.contains(&Action::Output(7)));
        assert_eq!(e.stats.packets, 1, "counters preserved across overwrite");
    }

    #[test]
    fn modify_rewrites_actions_in_place() {
        // The failover path: modify must change where traffic goes
        // without removing/re-adding (no blackhole window in hardware).
        let mut t = FlowTable::new();
        let vmac = MacAddr::virtual_mac(1);
        t.add(entry(50, vmac, 1));
        t.lookup(&key(vmac), 64);
        let n = t.modify(
            50,
            &FlowMatch::dst_mac(vmac),
            vec![
                Action::SetDstMac(MacAddr::new(2, 2, 2, 2, 2, 2)),
                Action::Output(3),
            ],
        );
        assert_eq!(n, 1);
        let e = t.peek(&key(vmac)).unwrap();
        assert!(e.actions.contains(&Action::Output(3)));
        assert_eq!(e.stats.packets, 1);
        // Modify of a non-existent entry does nothing.
        assert_eq!(t.modify(51, &FlowMatch::dst_mac(vmac), vec![]), 0);
    }

    #[test]
    fn delete_semantics() {
        let mut t = FlowTable::new();
        let v1 = MacAddr::virtual_mac(1);
        let v2 = MacAddr::virtual_mac(2);
        t.add(entry(50, v1, 1));
        t.add(entry(60, v2, 2));
        let mut e3 = entry(70, v2, 3);
        e3.cookie = 42;
        t.add(e3);
        assert_eq!(t.delete(Some(60), &FlowMatch::dst_mac(v2)), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.delete(None, &FlowMatch::dst_mac(v2)), 1);
        assert_eq!(t.delete_by_cookie(42), 0, "already gone");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn miss_counted() {
        let mut t = FlowTable::new();
        assert!(t.lookup(&key(MacAddr::virtual_mac(9)), 64).is_none());
        assert_eq!(t.misses, 1);
        assert_eq!(t.lookups, 1);
    }

    #[test]
    fn counters_accumulate_bytes() {
        let mut t = FlowTable::new();
        let vmac = MacAddr::virtual_mac(1);
        t.add(entry(50, vmac, 1));
        t.lookup(&key(vmac), 64);
        t.lookup(&key(vmac), 100);
        let e = t.peek(&key(vmac)).unwrap();
        assert_eq!(
            e.stats,
            FlowStats {
                packets: 2,
                bytes: 164
            }
        );
    }
}
