//! Match structures, actions, and the extracted packet key.

use sc_net::wire::{EtherType, EthernetRepr, Ipv4Repr, UdpRepr};
use sc_net::{Ipv4Prefix, MacAddr};
use std::fmt;
use std::net::Ipv4Addr;

/// The fields the pipeline extracts from a frame once, then matches
/// against (a software TCAM key).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowKey {
    pub in_port: u16,
    pub eth_src: MacAddr,
    pub eth_dst: MacAddr,
    pub eth_type: u16,
    /// L3/L4 fields when the frame is IPv4 (+UDP).
    pub ip_src: Option<Ipv4Addr>,
    pub ip_dst: Option<Ipv4Addr>,
    pub udp_src: Option<u16>,
    pub udp_dst: Option<u16>,
}

impl FlowKey {
    /// Extract a key from an encoded frame arriving on `in_port`.
    /// Unparseable inner layers simply leave the optional fields unset —
    /// a switch must forward frames it cannot fully parse.
    pub fn extract(in_port: u16, frame: &[u8]) -> Option<FlowKey> {
        let (eth, payload) = EthernetRepr::parse(frame).ok()?;
        let mut key = FlowKey {
            in_port,
            eth_src: eth.src,
            eth_dst: eth.dst,
            eth_type: eth.ethertype.to_u16(),
            ip_src: None,
            ip_dst: None,
            udp_src: None,
            udp_dst: None,
        };
        if eth.ethertype == EtherType::Ipv4 {
            if let Ok((ip, ip_payload)) = Ipv4Repr::parse(payload) {
                key.ip_src = Some(ip.src);
                key.ip_dst = Some(ip.dst);
                if ip.protocol == sc_net::wire::ipv4::protocol::UDP {
                    if let Ok((udp, _)) = UdpRepr::parse(ip.src, ip.dst, ip_payload) {
                        key.udp_src = Some(udp.src_port);
                        key.udp_dst = Some(udp.dst_port);
                    }
                }
            }
        }
        Some(key)
    }
}

/// A flow match: every field is optional (wildcard when `None`); IPv4
/// addresses match by prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct FlowMatch {
    pub in_port: Option<u16>,
    pub eth_src: Option<MacAddr>,
    pub eth_dst: Option<MacAddr>,
    pub eth_type: Option<u16>,
    pub ip_src: Option<Ipv4Prefix>,
    pub ip_dst: Option<Ipv4Prefix>,
    pub udp_src: Option<u16>,
    pub udp_dst: Option<u16>,
}

impl FlowMatch {
    /// Match everything (the table-miss / default entry).
    pub fn any() -> FlowMatch {
        FlowMatch::default()
    }

    /// The supercharger's canonical match: destination MAC equals a VMAC.
    pub fn dst_mac(mac: MacAddr) -> FlowMatch {
        FlowMatch {
            eth_dst: Some(mac),
            ..FlowMatch::default()
        }
    }

    /// Does `key` satisfy this match?
    pub fn matches(&self, key: &FlowKey) -> bool {
        if let Some(p) = self.in_port {
            if key.in_port != p {
                return false;
            }
        }
        if let Some(m) = self.eth_src {
            if key.eth_src != m {
                return false;
            }
        }
        if let Some(m) = self.eth_dst {
            if key.eth_dst != m {
                return false;
            }
        }
        if let Some(t) = self.eth_type {
            if key.eth_type != t {
                return false;
            }
        }
        if let Some(pref) = self.ip_src {
            match key.ip_src {
                Some(ip) if pref.contains(ip) => {}
                _ => return false,
            }
        }
        if let Some(pref) = self.ip_dst {
            match key.ip_dst {
                Some(ip) if pref.contains(ip) => {}
                _ => return false,
            }
        }
        if let Some(p) = self.udp_src {
            if key.udp_src != Some(p) {
                return false;
            }
        }
        if let Some(p) = self.udp_dst {
            if key.udp_dst != Some(p) {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for FlowMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(p) = self.in_port {
            parts.push(format!("in_port={p}"));
        }
        if let Some(m) = self.eth_src {
            parts.push(format!("eth_src={m}"));
        }
        if let Some(m) = self.eth_dst {
            parts.push(format!("eth_dst={m}"));
        }
        if let Some(t) = self.eth_type {
            parts.push(format!("eth_type=0x{t:04x}"));
        }
        if let Some(p) = self.ip_src {
            parts.push(format!("ip_src={p}"));
        }
        if let Some(p) = self.ip_dst {
            parts.push(format!("ip_dst={p}"));
        }
        if let Some(p) = self.udp_src {
            parts.push(format!("udp_src={p}"));
        }
        if let Some(p) = self.udp_dst {
            parts.push(format!("udp_dst={p}"));
        }
        if parts.is_empty() {
            write!(f, "match(*)")
        } else {
            write!(f, "match({})", parts.join(","))
        }
    }
}

/// Actions executed in order on a matched frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Rewrite the destination MAC (the paper's
    /// `modify(dst_mac=get_mac(backup_nh))`).
    SetDstMac(MacAddr),
    /// Rewrite the source MAC.
    SetSrcMac(MacAddr),
    /// Forward out a specific port.
    Output(u16),
    /// Forward out every port except the ingress (and the controller
    /// channel).
    Flood,
    /// Punt the frame to the controller as a PACKET_IN.
    ToController,
    /// Drop explicitly.
    Drop,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::SetDstMac(m) => write!(f, "set_dst_mac({m})"),
            Action::SetSrcMac(m) => write!(f, "set_src_mac({m})"),
            Action::Output(p) => write!(f, "output({p})"),
            Action::Flood => write!(f, "flood"),
            Action::ToController => write!(f, "controller"),
            Action::Drop => write!(f, "drop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_net::wire::{udp_frame, UdpEndpoints};

    fn sample_frame() -> Vec<u8> {
        udp_frame(
            UdpEndpoints {
                src_mac: MacAddr::new(0, 0, 0, 0, 0, 0xaa),
                dst_mac: MacAddr::virtual_mac(3),
                src_ip: Ipv4Addr::new(192, 0, 2, 1),
                dst_ip: Ipv4Addr::new(1, 0, 0, 1),
                src_port: 49152,
                dst_port: 7,
            },
            64,
            b"probe",
        )
    }

    #[test]
    fn key_extraction() {
        let key = FlowKey::extract(4, &sample_frame()).unwrap();
        assert_eq!(key.in_port, 4);
        assert_eq!(key.eth_dst, MacAddr::virtual_mac(3));
        assert_eq!(key.eth_type, 0x0800);
        assert_eq!(key.ip_dst, Some(Ipv4Addr::new(1, 0, 0, 1)));
        assert_eq!(key.udp_dst, Some(7));
    }

    #[test]
    fn key_extraction_non_ip() {
        let eth = EthernetRepr {
            dst: MacAddr::BROADCAST,
            src: MacAddr::new(0, 0, 0, 0, 0, 1),
            ethertype: EtherType::Arp,
        };
        let key = FlowKey::extract(0, &eth.to_frame(&[0u8; 28])).unwrap();
        assert_eq!(key.eth_type, 0x0806);
        assert_eq!(key.ip_dst, None);
        assert_eq!(key.udp_dst, None);
        assert!(FlowKey::extract(0, &[1, 2, 3]).is_none());
    }

    #[test]
    fn wildcard_matches_everything() {
        let key = FlowKey::extract(1, &sample_frame()).unwrap();
        assert!(FlowMatch::any().matches(&key));
    }

    #[test]
    fn dst_mac_match_is_selective() {
        let key = FlowKey::extract(1, &sample_frame()).unwrap();
        assert!(FlowMatch::dst_mac(MacAddr::virtual_mac(3)).matches(&key));
        assert!(!FlowMatch::dst_mac(MacAddr::virtual_mac(4)).matches(&key));
    }

    #[test]
    fn prefix_matching_on_l3() {
        let key = FlowKey::extract(1, &sample_frame()).unwrap();
        let m = FlowMatch {
            ip_dst: Some("1.0.0.0/8".parse().unwrap()),
            ..FlowMatch::default()
        };
        assert!(m.matches(&key));
        let m2 = FlowMatch {
            ip_dst: Some("2.0.0.0/8".parse().unwrap()),
            ..FlowMatch::default()
        };
        assert!(!m2.matches(&key));
        // An L3 match never matches a non-IP frame.
        let arp_key = FlowKey {
            ip_src: None,
            ip_dst: None,
            udp_src: None,
            udp_dst: None,
            eth_type: 0x0806,
            ..key
        };
        assert!(!m.matches(&arp_key));
    }

    #[test]
    fn combined_fields_all_required() {
        let key = FlowKey::extract(2, &sample_frame()).unwrap();
        let m = FlowMatch {
            in_port: Some(2),
            eth_type: Some(0x0800),
            udp_dst: Some(7),
            ..FlowMatch::default()
        };
        assert!(m.matches(&key));
        let wrong_port = FlowMatch {
            in_port: Some(3),
            ..m
        };
        assert!(!wrong_port.matches(&key));
    }

    #[test]
    fn display_renders() {
        let m = FlowMatch::dst_mac(MacAddr::virtual_mac(0));
        assert!(m.to_string().contains("eth_dst=02:5c"));
        assert_eq!(FlowMatch::any().to_string(), "match(*)");
        assert_eq!(Action::Output(3).to_string(), "output(3)");
    }
}
