//! Property tests: control-message parse∘emit identity over arbitrary
//! matches/actions, and flow-table semantics against a naive model.

use proptest::collection::vec;
use proptest::prelude::*;
use sc_net::{Ipv4Prefix, MacAddr};
use sc_openflow::msg::{FlowModCommand, FlowStatsRow, OfMessage};
use sc_openflow::{Action, FlowEntry, FlowKey, FlowMatch, FlowTable};
use std::net::Ipv4Addr;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Ipv4Prefix::new(Ipv4Addr::from(a), l))
}

fn arb_match() -> impl Strategy<Value = FlowMatch> {
    (
        proptest::option::of(any::<u16>()),
        proptest::option::of(arb_mac()),
        proptest::option::of(arb_mac()),
        proptest::option::of(any::<u16>()),
        proptest::option::of(arb_prefix()),
        proptest::option::of(arb_prefix()),
        proptest::option::of(any::<u16>()),
        proptest::option::of(any::<u16>()),
    )
        .prop_map(
            |(in_port, eth_src, eth_dst, eth_type, ip_src, ip_dst, udp_src, udp_dst)| FlowMatch {
                in_port,
                eth_src,
                eth_dst,
                eth_type,
                ip_src,
                ip_dst,
                udp_src,
                udp_dst,
            },
        )
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        arb_mac().prop_map(Action::SetDstMac),
        arb_mac().prop_map(Action::SetSrcMac),
        any::<u16>().prop_map(Action::Output),
        Just(Action::Flood),
        Just(Action::ToController),
        Just(Action::Drop),
    ]
}

fn arb_key() -> impl Strategy<Value = FlowKey> {
    (
        any::<u16>(),
        arb_mac(),
        arb_mac(),
        any::<u16>(),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u16>()),
        proptest::option::of(any::<u16>()),
    )
        .prop_map(|(in_port, s, d, ty, ips, ipd, us, ud)| FlowKey {
            in_port,
            eth_src: s,
            eth_dst: d,
            eth_type: ty,
            ip_src: ips.map(Ipv4Addr::from),
            ip_dst: ipd.map(Ipv4Addr::from),
            udp_src: us,
            udp_dst: ud,
        })
}

proptest! {
    #[test]
    fn flow_mod_roundtrip(
        cmd in 0u8..3, prio in any::<u16>(), cookie in any::<u64>(),
        m in arb_match(), actions in vec(arb_action(), 0..6), xid in any::<u32>(),
    ) {
        let msg = OfMessage::FlowMod {
            command: match cmd { 0 => FlowModCommand::Add, 1 => FlowModCommand::Modify, _ => FlowModCommand::Delete },
            priority: prio,
            cookie,
            matcher: m,
            actions,
        };
        let enc = msg.encode(xid);
        let (x2, dec) = OfMessage::decode(&enc).unwrap();
        prop_assert_eq!(x2, xid);
        prop_assert_eq!(dec, msg);
    }

    #[test]
    fn stats_reply_roundtrip(
        lookups in any::<u64>(), misses in any::<u64>(),
        rows in vec((any::<u16>(), any::<u64>(), any::<u64>(), any::<u64>()), 0..20),
    ) {
        let msg = OfMessage::StatsReply {
            lookups,
            misses,
            flows: rows.into_iter().map(|(priority, cookie, packets, bytes)| FlowStatsRow { priority, cookie, packets, bytes }).collect(),
        };
        let (_, dec) = OfMessage::decode(&msg.encode(7)).unwrap();
        prop_assert_eq!(dec, msg);
    }

    /// The table always returns the highest-priority matching entry
    /// (first-inserted among equals) — checked against brute force.
    #[test]
    fn table_lookup_matches_brute_force(
        entries in vec((any::<u16>(), arb_match(), vec(arb_action(), 0..3)), 0..24),
        keys in vec(arb_key(), 1..16),
    ) {
        let mut table = FlowTable::new();
        let mut model: Vec<FlowEntry> = Vec::new();
        for (i, (priority, matcher, actions)) in entries.into_iter().enumerate() {
            let e = FlowEntry { priority, cookie: i as u64, matcher, actions, stats: Default::default() };
            // Model ADD semantics: overwrite same (priority, match).
            if let Some(existing) = model.iter_mut().find(|x| x.priority == e.priority && x.matcher == e.matcher) {
                let stats = existing.stats;
                *existing = e.clone();
                existing.stats = stats;
            } else {
                model.push(e.clone());
            }
            table.add(e);
        }
        for key in keys {
            let brute = model
                .iter()
                .filter(|e| e.matcher.matches(&key))
                .max_by(|a, b| {
                    a.priority.cmp(&b.priority).then(
                        // earlier-inserted wins among equals: compare by
                        // position, reversed.
                        model.iter().position(|x| std::ptr::eq(x, *b)).cmp(
                            &model.iter().position(|x| std::ptr::eq(x, *a)),
                        ),
                    )
                })
                .map(|e| e.cookie);
            prop_assert_eq!(table.peek(&key).map(|e| e.cookie), brute);
        }
    }

    /// Barrier/ack and echo control messages survive encode→decode for
    /// arbitrary tokens, xids, and echo payloads — the acked
    /// flow-programming path depends on tokens round-tripping exactly.
    #[test]
    fn barrier_and_echo_roundtrip(
        token in any::<u64>(), xid in any::<u32>(),
        echo in vec(any::<u8>(), 0..48),
    ) {
        for msg in [
            OfMessage::BarrierRequest { token },
            OfMessage::BarrierReply { token },
            OfMessage::EchoRequest(echo.clone()),
            OfMessage::EchoReply(echo.clone()),
        ] {
            let enc = msg.encode(xid);
            let (x2, dec) = OfMessage::decode(&enc).unwrap();
            prop_assert_eq!(x2, xid);
            prop_assert_eq!(dec, msg);
        }
    }

    /// A wildcard-only match accepts every key; a fully-specified match
    /// accepts exactly its own key.
    #[test]
    fn match_specificity(key in arb_key()) {
        prop_assert!(FlowMatch::any().matches(&key));
        let exact = FlowMatch {
            in_port: Some(key.in_port),
            eth_src: Some(key.eth_src),
            eth_dst: Some(key.eth_dst),
            eth_type: Some(key.eth_type),
            ip_src: key.ip_src.map(Ipv4Prefix::host),
            ip_dst: key.ip_dst.map(Ipv4Prefix::host),
            udp_src: key.udp_src,
            udp_dst: key.udp_dst,
        };
        prop_assert!(exact.matches(&key));
        let mut other = key;
        other.in_port = key.in_port.wrapping_add(1);
        prop_assert!(!exact.matches(&other));
    }
}
