//! End-to-end switch behavior: L2 learning, the controller handshake,
//! flow installation latency, barriers, PACKET_IN/OUT and failover-style
//! flow modification — all over the real simulated network.

use sc_net::channel::{ChannelConfig, ChannelEvent};
use sc_net::wire::{open_udp_frame, udp_frame, UdpEndpoints};
use sc_net::{MacAddr, SimDuration, SimTime};
use sc_openflow::msg::{FlowModCommand, OfMessage};
use sc_openflow::{Action, FlowMatch, OfSwitch, SwitchConfig, TableMiss};
use sc_sim::{ChannelPort, Ctx, LinkParams, Node, NodeId, PortId, TimerToken, World};
use std::any::Any;
use std::net::Ipv4Addr;

// ---------------------------------------------------------------- stubs

/// A host that sends scripted frames and records everything it receives.
struct Host {
    name: String,
    script: Vec<(SimTime, PortId, Vec<u8>)>,
    received: Vec<(SimTime, Vec<u8>)>,
}

impl Host {
    fn new(name: &str) -> Host {
        Host {
            name: name.into(),
            script: Vec::new(),
            received: Vec::new(),
        }
    }
}

impl Node for Host {
    fn name(&self) -> &str {
        &self.name
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        for (i, (at, _, _)) in self.script.iter().enumerate() {
            ctx.set_timer_at(*at, TimerToken(i as u64 + 100));
        }
    }
    fn on_frame(&mut self, ctx: &mut Ctx, _port: PortId, frame: sc_net::Frame) {
        self.received.push((ctx.now(), frame.to_vec()));
    }
    fn on_timer(&mut self, ctx: &mut Ctx, token: TimerToken) {
        let idx = (token.0 - 100) as usize;
        let (_, port, frame) = self.script[idx].clone();
        ctx.send_frame(port, frame);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A scripted OpenFlow controller stub.
struct StubController {
    name: String,
    chan: Option<ChannelPort>,
    script: Vec<(SimTime, OfMessage)>,
    received: Vec<(SimTime, u32, OfMessage)>,
    xid: u32,
}

impl StubController {
    fn new(name: &str) -> StubController {
        StubController {
            name: name.into(),
            chan: None,
            script: Vec::new(),
            received: Vec::new(),
            xid: 1000,
        }
    }
}

impl Node for StubController {
    fn name(&self) -> &str {
        &self.name
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        for (i, (at, _)) in self.script.iter().enumerate() {
            ctx.set_timer_at(*at, TimerToken(i as u64 + 100));
        }
        if let Some(chan) = &mut self.chan {
            chan.flush(ctx); // kick off the channel handshake
        }
    }
    fn on_frame(&mut self, ctx: &mut Ctx, _port: PortId, frame: sc_net::Frame) {
        let Ok(Some(d)) = open_udp_frame(&frame) else {
            return;
        };
        let chan = self.chan.as_mut().unwrap();
        if !chan.matches(&d) {
            return;
        }
        let now = ctx.now();
        for ev in chan.on_datagram(&d, now) {
            if let ChannelEvent::Delivered(bytes) = ev {
                let (xid, msg) = OfMessage::decode(&bytes).expect("switch sent valid message");
                self.received.push((now, xid, msg));
            }
        }
        chan.flush(ctx);
    }
    fn on_timer(&mut self, ctx: &mut Ctx, token: TimerToken) {
        let chan = self.chan.as_mut().unwrap();
        if token == chan.timer {
            chan.on_timer(ctx);
            return;
        }
        let idx = (token.0 - 100) as usize;
        let msg = self.script[idx].1.clone();
        self.xid += 1;
        let xid = self.xid;
        chan.send(msg.encode(xid));
        chan.flush(ctx);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ------------------------------------------------------------- builders

const SW_MAC: MacAddr = MacAddr([0x00, 0x5c, 0, 0, 0, 0xee]);
const SW_IP: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 1);
const CTRL_MAC: MacAddr = MacAddr([0x00, 0x5c, 0, 0, 0, 0xcc]);
const CTRL_IP: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 2);

struct Lab {
    world: World,
    sw: NodeId,
    ctrl: NodeId,
    host_a: NodeId,
    host_b: NodeId,
    /// Switch-side port numbers.
    sw_port_a: PortId,
    sw_port_b: PortId,
}

fn build(table_miss: TableMiss) -> Lab {
    let mut world = World::new(42);
    let sw = world.add_node(OfSwitch::new(SwitchConfig {
        table_miss,
        ..SwitchConfig::paper_defaults("hp-e3800")
    }));
    let ctrl = world.add_node(StubController::new("floodlight"));
    let host_a = world.add_node(Host::new("host-a"));
    let host_b = world.add_node(Host::new("host-b"));

    let lan = LinkParams::with_latency(SimDuration::from_micros(10));
    let (_, sw_port_a, _) = world.connect(sw, host_a, lan);
    let (_, sw_port_b, _) = world.connect(sw, host_b, lan);
    let (_, sw_port_c, ctrl_port) = world.connect(sw, ctrl, lan);

    let ctrl_addr = UdpEndpoints {
        src_mac: CTRL_MAC,
        dst_mac: SW_MAC,
        src_ip: CTRL_IP,
        dst_ip: SW_IP,
        src_port: 40001,
        dst_port: sc_net::wire::udp::port::OPENFLOW,
    };
    world.node_mut::<StubController>(ctrl).chan = Some(ChannelPort::connect(
        ChannelConfig::default(),
        ctrl_addr,
        ctrl_port,
        TimerToken(1),
    ));
    {
        let sw_node = world.node_mut::<OfSwitch>(sw);
        sw_node.register_data_port(sw_port_a);
        sw_node.register_data_port(sw_port_b);
        sw_node.register_data_port(sw_port_c);
        sw_node.attach_controller(ChannelPort::listen(
            ChannelConfig::default(),
            ctrl_addr.flipped(),
            sw_port_c,
            TimerToken(1),
        ));
    }
    Lab {
        world,
        sw,
        ctrl,
        host_a,
        host_b,
        sw_port_a,
        sw_port_b,
    }
}

const MAC_A: MacAddr = MacAddr([2, 0, 0, 0, 0, 0xa]);
const MAC_B: MacAddr = MacAddr([2, 0, 0, 0, 0, 0xb]);

fn probe_frame(src: MacAddr, dst: MacAddr, marker: u8) -> Vec<u8> {
    udp_frame(
        UdpEndpoints {
            src_mac: src,
            dst_mac: dst,
            src_ip: Ipv4Addr::new(192, 0, 2, 1),
            dst_ip: Ipv4Addr::new(198, 51, 100, 1),
            src_port: 5000,
            dst_port: 7,
        },
        64,
        &[marker; 26],
    )
}

// ----------------------------------------------------------------- tests

#[test]
fn l2_learning_floods_then_forwards() {
    let mut lab = build(TableMiss::L2Learn);
    // A -> B (unknown): flood. B -> A (A now known): direct. A -> B again:
    // direct.
    lab.world.node_mut::<Host>(lab.host_a).script = vec![
        (
            SimTime::from_millis(1),
            PortId(0),
            probe_frame(MAC_A, MAC_B, 1),
        ),
        (
            SimTime::from_millis(3),
            PortId(0),
            probe_frame(MAC_A, MAC_B, 3),
        ),
    ];
    lab.world.node_mut::<Host>(lab.host_b).script = vec![(
        SimTime::from_millis(2),
        PortId(0),
        probe_frame(MAC_B, MAC_A, 2),
    )];
    lab.world.run_until(SimTime::from_millis(10));

    let b = lab.world.node::<Host>(lab.host_b);
    let markers_b: Vec<u8> = b.received.iter().map(|(_, f)| f[f.len() - 1]).collect();
    assert_eq!(markers_b, vec![1, 3], "B saw both frames from A");
    let a = lab.world.node::<Host>(lab.host_a);
    let markers_a: Vec<u8> = a.received.iter().map(|(_, f)| f[f.len() - 1]).collect();
    assert_eq!(markers_a, vec![2]);
    // First frame flooded (B unknown), later ones switched directly.
    let sw = lab.world.node::<OfSwitch>(lab.sw);
    assert_eq!(sw.stats.flooded, 1);
    assert_eq!(sw.l2_table().len(), 2);
}

#[test]
fn controller_handshake_features() {
    let mut lab = build(TableMiss::L2Learn);
    lab.world.node_mut::<StubController>(lab.ctrl).script = vec![
        (SimTime::from_millis(1), OfMessage::Hello),
        (SimTime::from_millis(2), OfMessage::FeaturesRequest),
        (SimTime::from_millis(3), OfMessage::EchoRequest(vec![9, 9])),
    ];
    lab.world.run_until(SimTime::from_millis(20));
    let ctrl = lab.world.node::<StubController>(lab.ctrl);
    let kinds: Vec<&OfMessage> = ctrl.received.iter().map(|(_, _, m)| m).collect();
    assert!(kinds.iter().any(|m| matches!(m, OfMessage::Hello)));
    assert!(kinds.iter().any(|m| matches!(
        m,
        OfMessage::FeaturesReply {
            datapath_id: 0xe3800,
            n_ports: 3
        }
    )));
    assert!(kinds
        .iter()
        .any(|m| matches!(m, OfMessage::EchoReply(d) if d == &vec![9, 9])));
}

#[test]
fn flow_install_latency_gates_rule_application() {
    let mut lab = build(TableMiss::Drop);
    let vmac = MacAddr::virtual_mac(1);
    // Install at t=1ms a rule rewriting VMAC -> MAC_B, output port B.
    lab.world.node_mut::<StubController>(lab.ctrl).script = vec![(
        SimTime::from_millis(1),
        OfMessage::FlowMod {
            command: FlowModCommand::Add,
            priority: 100,
            cookie: 1,
            matcher: FlowMatch::dst_mac(vmac),
            actions: vec![
                Action::SetDstMac(MAC_B),
                Action::Output(lab.sw_port_b.0 as u16),
            ],
        },
    )];
    // Probe before install completes (t=2ms < 1ms + 15ms base) and after.
    lab.world.node_mut::<Host>(lab.host_a).script = vec![
        (
            SimTime::from_millis(2),
            PortId(0),
            probe_frame(MAC_A, vmac, 1),
        ),
        (
            SimTime::from_millis(30),
            PortId(0),
            probe_frame(MAC_A, vmac, 2),
        ),
    ];
    lab.world.run_until(SimTime::from_millis(50));
    let b = lab.world.node::<Host>(lab.host_b);
    assert_eq!(b.received.len(), 1, "only the post-install probe arrives");
    let (t, frame) = &b.received[0];
    assert!(*t >= SimTime::from_millis(30));
    assert_eq!(frame[frame.len() - 1], 2);
    // The VMAC was rewritten to B's real MAC.
    let d = open_udp_frame(frame).unwrap().unwrap();
    assert_eq!(d.eth.dst, MAC_B);
    assert_eq!(lab.world.node::<OfSwitch>(lab.sw).stats.dropped, 1);
}

#[test]
fn modify_redirects_traffic_like_failover() {
    let mut lab = build(TableMiss::Drop);
    let vmac = MacAddr::virtual_mac(7);
    let ctrl = lab.world.node_mut::<StubController>(lab.ctrl);
    ctrl.script = vec![
        (
            SimTime::from_millis(1),
            OfMessage::FlowMod {
                command: FlowModCommand::Add,
                priority: 100,
                cookie: 7,
                matcher: FlowMatch::dst_mac(vmac),
                actions: vec![
                    Action::SetDstMac(MAC_A),
                    Action::Output(lab.sw_port_a.0 as u16),
                ],
            },
        ),
        // Failover at t=50ms: same match, now to B.
        (
            SimTime::from_millis(50),
            OfMessage::FlowMod {
                command: FlowModCommand::Modify,
                priority: 100,
                cookie: 7,
                matcher: FlowMatch::dst_mac(vmac),
                actions: vec![
                    Action::SetDstMac(MAC_B),
                    Action::Output(lab.sw_port_b.0 as u16),
                ],
            },
        ),
    ];
    // host_b probes continuously toward the VMAC.
    let frames: Vec<(SimTime, PortId, Vec<u8>)> = (0..10)
        .map(|i| {
            (
                SimTime::from_millis(20 + i * 10),
                PortId(0),
                probe_frame(MAC_B, vmac, i as u8),
            )
        })
        .collect();
    lab.world.node_mut::<Host>(lab.host_b).script = frames;
    lab.world.run_until(SimTime::from_millis(200));

    let a = lab.world.node::<Host>(lab.host_a);
    let b = lab.world.node::<Host>(lab.host_b);
    assert!(!a.received.is_empty(), "pre-failover traffic went to A");
    assert!(!b.received.is_empty(), "post-failover traffic went to B");
    // All of A's frames arrived before all of B's (single switchover).
    let last_a = a.received.last().unwrap().0;
    let first_b = b.received.first().unwrap().0;
    assert!(
        last_a < first_b,
        "no interleaving across the failover point"
    );
}

#[test]
fn barrier_completes_after_pending_installs() {
    let mut lab = build(TableMiss::Drop);
    let t0 = SimTime::from_millis(1);
    lab.world.node_mut::<StubController>(lab.ctrl).script = vec![
        (
            t0,
            OfMessage::FlowMod {
                command: FlowModCommand::Add,
                priority: 1,
                cookie: 0,
                matcher: FlowMatch::any(),
                actions: vec![Action::Drop],
            },
        ),
        (t0, OfMessage::BarrierRequest { token: 42 }),
    ];
    lab.world.run_until(SimTime::from_millis(100));
    let ctrl = lab.world.node::<StubController>(lab.ctrl);
    let barrier = ctrl
        .received
        .iter()
        .find(|(_, _, m)| matches!(m, OfMessage::BarrierReply { token: 42 }))
        .expect("barrier reply received");
    // Barrier must not complete before the 15ms install finishes.
    assert!(barrier.0 >= t0 + SimDuration::from_millis(15));
}

#[test]
fn packet_in_and_packet_out_roundtrip() {
    let mut lab = build(TableMiss::Drop);
    // Rule: anything from MAC_A goes to the controller (the ARP-resolver
    // punt path). Later, the controller injects a frame toward host B.
    lab.world.node_mut::<StubController>(lab.ctrl).script = vec![
        (
            SimTime::from_millis(1),
            OfMessage::FlowMod {
                command: FlowModCommand::Add,
                priority: 10,
                cookie: 0,
                matcher: FlowMatch {
                    eth_src: Some(MAC_A),
                    ..FlowMatch::default()
                },
                actions: vec![Action::ToController],
            },
        ),
        (
            SimTime::from_millis(60),
            OfMessage::PacketOut {
                actions: vec![Action::Output(lab.sw_port_b.0 as u16)],
                frame: probe_frame(CTRL_MAC, MAC_B, 9),
            },
        ),
    ];
    lab.world.node_mut::<Host>(lab.host_a).script = vec![(
        SimTime::from_millis(30),
        PortId(0),
        probe_frame(MAC_A, MacAddr::BROADCAST, 5),
    )];
    lab.world.run_until(SimTime::from_millis(200));

    let ctrl = lab.world.node::<StubController>(lab.ctrl);
    let (_, _, pkt_in) = ctrl
        .received
        .iter()
        .find(|(_, _, m)| matches!(m, OfMessage::PacketIn { .. }))
        .expect("controller got PACKET_IN");
    match pkt_in {
        OfMessage::PacketIn { in_port, frame } => {
            assert_eq!(*in_port, lab.sw_port_a.0 as u16);
            assert_eq!(frame[frame.len() - 1], 5);
        }
        _ => unreachable!(),
    }
    let b = lab.world.node::<Host>(lab.host_b);
    assert_eq!(b.received.len(), 1, "PACKET_OUT was forwarded to host B");
    let (_, frame) = &b.received[0];
    assert_eq!(frame[frame.len() - 1], 9);
}

#[test]
fn port_status_reported_on_carrier_loss() {
    let mut lab = build(TableMiss::L2Learn);
    // Handshake first so the channel is up.
    lab.world.node_mut::<StubController>(lab.ctrl).script =
        vec![(SimTime::from_millis(1), OfMessage::Hello)];
    let host_b = lab.host_b;
    let sw = lab.sw;
    lab.world.schedule(SimTime::from_millis(10), move |w| {
        w.crash_node(host_b);
        let _ = sw;
    });
    lab.world.run_until(SimTime::from_millis(100));
    let ctrl = lab.world.node::<StubController>(lab.ctrl);
    let port_down = ctrl.received.iter().find_map(|(t, _, m)| match m {
        OfMessage::PortStatus { port, up: false } => Some((*t, *port)),
        _ => None,
    });
    let (t, port) = port_down.expect("controller learned about the dead port");
    assert_eq!(port, lab.sw_port_b.0 as u16);
    assert!(t >= SimTime::from_millis(10));
}
