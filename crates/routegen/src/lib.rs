//! Synthetic RIPE-RIS-style route feeds and MRT fixture export.
//!
//! The paper loads R2 and R3 with "an increasing number of actual BGP
//! routes collected from the RIPE RIS dataset" (1k … 500k prefixes),
//! both peers advertising the *same* set. This crate generates
//! deterministic synthetic full tables that preserve what the
//! experiments actually depend on:
//!
//! * the prefix **count** (the x-axis of Fig. 5),
//! * a realistic prefix-length mix (dominated by /24s, per CIDR report),
//! * attribute sharing — long runs of prefixes share one AS path, which
//!   is what lets BGP speakers (and the supercharger) pack NLRI,
//! * both providers announcing identical prefix sets with themselves as
//!   next-hop.
//!
//! Real RIS archives are still not fetchable from the offline lab, but
//! they no longer have to be: the [`mrt`] module exports these
//! synthetic tables *in RIS's own format* — RFC 6396 `TABLE_DUMP_V2`
//! RIB snapshots and bursty `BGP4MP_ET` update traces — so every
//! consumer of recorded data (`sc_mrt::RibSnapshot`, the
//! `FeedSource::MrtReplay` scenario path, `sc-bench replay`) runs
//! against committed `.mrt` fixtures that are byte-reproducible from a
//! seed (`cargo run --example routegen_mrt` regenerates them). Swap in
//! a genuine `bview`/`updates` file and the same pipeline replays it.
//!
//! Everything is a pure function of the seed, so two provider routers —
//! or two controller replicas — can regenerate identical feeds.

pub mod mrt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_bgp::attrs::{AsPath, RouteAttrs};
use sc_bgp::msg::UpdateMsg;
use sc_net::Ipv4Prefix;
use std::net::Ipv4Addr;

/// Feed generation parameters.
#[derive(Clone, Debug)]
pub struct FeedConfig {
    /// Number of distinct prefixes (the paper sweeps 1k → 500k).
    pub prefix_count: u32,
    /// Deterministic seed for the prefix universe and attribute runs.
    pub seed: u64,
    /// The announcing provider's next-hop address.
    pub next_hop: Ipv4Addr,
    /// The provider's AS (first hop of every path).
    pub origin_as: u16,
    /// Max NLRI entries per UPDATE before size-splitting (real tables
    /// pack a few hundred).
    pub max_nlri_per_update: usize,
}

impl FeedConfig {
    pub fn new(prefix_count: u32, seed: u64, next_hop: Ipv4Addr, origin_as: u16) -> FeedConfig {
        FeedConfig {
            prefix_count,
            seed,
            next_hop,
            origin_as,
            max_nlri_per_update: 300,
        }
    }
}

/// The deterministic prefix universe for a seed: `count` distinct,
/// sorted prefixes with a CIDR-report-like length mix, avoiding RFC1918
/// and other special-purpose space (the lab's infrastructure lives
/// there).
pub fn prefix_universe(count: u32, seed: u64) -> Vec<Ipv4Prefix> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_5eed);
    let mut set = std::collections::BTreeSet::new();
    while set.len() < count as usize {
        // Public-ish first octet: 1..=223, excluding 10 and 127;
        // 172.16/12 and 192.168/16 excluded below.
        let len: u8 = match rng.gen_range(0..100u32) {
            0..=59 => 24, // CIDR report: /24 dominates
            60..=72 => 23,
            73..=82 => 22,
            83..=88 => 21,
            89..=93 => 20,
            94..=96 => 19,
            97..=98 => 16,
            _ => 8,
        };
        let addr: u32 = rng.gen();
        let first = (addr >> 24) as u8;
        if first == 0 || first == 10 || first == 127 || first >= 224 {
            continue;
        }
        if first == 172 && (addr >> 20) & 0xf >= 1 {
            continue; // skip 172.16/12 conservatively
        }
        if first == 192 && ((addr >> 16) & 0xff) == 168 {
            continue;
        }
        set.insert(Ipv4Prefix::new(Ipv4Addr::from(addr), len));
    }
    set.into_iter().collect()
}

/// Generate the UPDATE stream for one provider: every prefix of the
/// universe announced with `cfg.next_hop`, consecutive prefixes sharing
/// attribute sets in runs (like a real table dump).
pub fn generate_feed(cfg: &FeedConfig) -> Vec<UpdateMsg> {
    let universe = prefix_universe(cfg.prefix_count, cfg.seed);
    generate_feed_for(cfg, &universe)
}

/// Like [`generate_feed`] but over a caller-provided universe (so R2 and
/// R3 provably announce the same prefixes).
pub fn generate_feed_for(cfg: &FeedConfig, universe: &[Ipv4Prefix]) -> Vec<UpdateMsg> {
    // Attribute-run RNG is salted with the origin AS so the two
    // providers have *different* paths (as in reality) over the *same*
    // prefixes.
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (cfg.origin_as as u64) << 32);
    let mut updates = Vec::new();
    let mut i = 0usize;
    while i < universe.len() {
        // Run length: how many consecutive prefixes share this path.
        let run = rng.gen_range(1..=64usize).min(universe.len() - i);
        let path_len = rng.gen_range(1..=4usize);
        let mut path = vec![cfg.origin_as];
        for _ in 0..path_len {
            path.push(rng.gen_range(1000..64000u16));
        }
        let mut attrs = RouteAttrs::ebgp(AsPath::sequence(path), cfg.next_hop);
        if rng.gen_bool(0.3) {
            attrs.med = Some(rng.gen_range(0..200));
        }
        if rng.gen_bool(0.2) {
            attrs.communities = vec![((cfg.origin_as as u32) << 16) | rng.gen_range(0..1000u32)];
        }
        let attrs = attrs.shared();
        for chunk in universe[i..i + run].chunks(cfg.max_nlri_per_update) {
            for part in UpdateMsg::announce(attrs.clone(), chunk.to_vec()).split_to_fit() {
                updates.push(part);
            }
        }
        i += run;
    }
    updates
}

/// The paper's flow-sampling rule: `n` destination IPs drawn from
/// random prefixes of the universe, always including one host in the
/// first and the last advertised prefix.
pub fn sample_flow_ips(universe: &[Ipv4Prefix], n: usize, seed: u64) -> Vec<Ipv4Addr> {
    assert!(!universe.is_empty());
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xf10f_f10f);
    let mut ips = Vec::with_capacity(n);
    ips.push(universe.first().unwrap().sample_host());
    if universe.len() > 1 {
        ips.push(universe.last().unwrap().sample_host());
    }
    while ips.len() < n {
        let p = universe[rng.gen_range(0..universe.len())];
        let ip = p.sample_host();
        if !ips.contains(&ip) {
            ips.push(ip);
        }
    }
    ips.truncate(n);
    ips
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_is_deterministic_sorted_distinct() {
        let a = prefix_universe(5_000, 42);
        let b = prefix_universe(5_000, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
        let mut sorted = a.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, a);
        // Different seed, different universe.
        let c = prefix_universe(5_000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn universe_avoids_infrastructure_space() {
        for p in prefix_universe(20_000, 7) {
            let o = p.network().octets();
            assert_ne!(o[0], 10, "{p} collides with the lab LAN");
            assert_ne!(o[0], 127);
            assert!(o[0] >= 1 && o[0] < 224, "{p} outside unicast space");
            assert!(!(o[0] == 192 && o[1] == 168), "{p}");
        }
    }

    #[test]
    fn length_mix_dominated_by_slash24() {
        let u = prefix_universe(50_000, 1);
        let s24 = u.iter().filter(|p| p.len() == 24).count() as f64 / u.len() as f64;
        assert!((0.5..0.7).contains(&s24), "/24 share {s24}");
        assert!(u.iter().all(|p| p.len() >= 8 && p.len() <= 24));
    }

    #[test]
    fn feed_covers_universe_exactly_with_correct_nh() {
        let cfg = FeedConfig::new(3_000, 5, Ipv4Addr::new(10, 0, 0, 2), 65002);
        let universe = prefix_universe(cfg.prefix_count, cfg.seed);
        let feed = generate_feed(&cfg);
        let mut announced = Vec::new();
        for u in &feed {
            assert!(u.withdrawn.is_empty());
            let attrs = u.attrs.as_ref().unwrap();
            assert_eq!(attrs.next_hop, Ipv4Addr::new(10, 0, 0, 2));
            assert_eq!(attrs.as_path.first_as(), Some(65002));
            assert!(
                sc_bgp::BgpMessage::Update(u.clone()).encode().len() <= 4096,
                "every UPDATE fits the BGP cap"
            );
            announced.extend(u.nlri.iter().copied());
        }
        let mut sorted = announced.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), announced.len(), "no duplicate NLRI");
        assert_eq!(sorted, universe, "feed covers the universe exactly");
    }

    #[test]
    fn providers_share_prefixes_not_paths() {
        let universe = prefix_universe(2_000, 9);
        let r2 = generate_feed_for(
            &FeedConfig::new(2_000, 9, Ipv4Addr::new(10, 0, 0, 2), 65002),
            &universe,
        );
        let r3 = generate_feed_for(
            &FeedConfig::new(2_000, 9, Ipv4Addr::new(10, 0, 0, 3), 65003),
            &universe,
        );
        let nlri = |feed: &[UpdateMsg]| {
            let mut v: Vec<Ipv4Prefix> = feed.iter().flat_map(|u| u.nlri.iter().copied()).collect();
            v.sort();
            v
        };
        assert_eq!(nlri(&r2), nlri(&r3), "same destinations");
        // Next-hops differ.
        assert!(r2
            .iter()
            .all(|u| u.attrs.as_ref().unwrap().next_hop == Ipv4Addr::new(10, 0, 0, 2)));
        assert!(r3
            .iter()
            .all(|u| u.attrs.as_ref().unwrap().next_hop == Ipv4Addr::new(10, 0, 0, 3)));
    }

    #[test]
    fn attribute_runs_share_arcs() {
        let cfg = FeedConfig::new(5_000, 11, Ipv4Addr::new(10, 0, 0, 2), 65002);
        let feed = generate_feed(&cfg);
        let distinct_attr_sets: std::collections::HashSet<*const RouteAttrs> = feed
            .iter()
            .map(|u| std::sync::Arc::as_ptr(u.attrs.as_ref().unwrap()))
            .collect();
        let total_nlri: usize = feed.iter().map(|u| u.nlri.len()).sum();
        assert!(
            distinct_attr_sets.len() * 4 < total_nlri,
            "attribute sharing across prefixes: {} sets for {} prefixes",
            distinct_attr_sets.len(),
            total_nlri
        );
        // Average run ≈ 32 → roughly count/32 attribute sets.
        let ratio = 5_000.0 / distinct_attr_sets.len() as f64;
        assert!((8.0..130.0).contains(&ratio), "run-length ratio {ratio}");
    }

    #[test]
    fn flow_sampling_includes_first_and_last() {
        let u = prefix_universe(1_000, 3);
        let ips = sample_flow_ips(&u, 100, 3);
        assert_eq!(ips.len(), 100);
        assert!(u.first().unwrap().contains(ips[0]));
        assert!(u.last().unwrap().contains(ips[1]));
        // Deterministic.
        assert_eq!(ips, sample_flow_ips(&u, 100, 3));
        // All sampled IPs are inside some universe prefix.
        for ip in &ips {
            assert!(u.iter().any(|p| p.contains(*ip)));
        }
        let dedup: std::collections::HashSet<_> = ips.iter().collect();
        assert_eq!(dedup.len(), ips.len(), "flows are distinct");
    }
}
