//! Deterministic MRT fixture export.
//!
//! Turns the synthetic feed generator into RIS-shaped archives: a
//! `TABLE_DUMP_V2` RIB snapshot (the `bview` shape — one record per
//! prefix, one attribute entry per collector peer) and a bursty
//! `BGP4MP_ET` update trace (the `updates` shape — withdraw bursts with
//! microsecond inter-arrivals, each slice re-announced moments later,
//! long quiet gaps between bursts). Both are pure functions of their
//! config, so the committed `tests/fixtures/*.mrt` files are
//! byte-reproducible: the `routegen_mrt` example rewrites them and a
//! fixture test pins the bytes.
//!
//! The trace's *shape* is what matters: recorded inter-arrival timing
//! (not a fixed tick) is exactly what `ReplaySchedule` preserves and
//! what the timer-wheel kernel has to absorb.

use crate::{generate_feed_for, prefix_universe, FeedConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_bgp::attrs::RouteAttrs;
use sc_bgp::msg::{BgpMessage, UpdateMsg};
use sc_mrt::{Bgp4mpMessage, MrtWriter, PeerTableEntry, RibEntry};
use sc_net::{Ipv4Addr, Ipv4Prefix};
use std::sync::Arc;

/// Parameters of an exported archive pair. The defaults produce the
/// committed fixtures; `sc-bench replay` scales the same generator to
/// paper size.
#[derive(Clone, Copy, Debug)]
pub struct MrtExportConfig {
    /// Prefixes in the snapshot universe.
    pub prefixes: u32,
    /// Seed for the universe, attributes, and burst timing.
    pub seed: u64,
    /// Collector peers (each contributes one RIB entry per prefix).
    pub peers: u16,
    /// Base MRT timestamp (seconds; fixtures use a 2015 epoch, the
    /// paper's era).
    pub epoch: u32,
    /// Withdraw/re-announce bursts in the update trace (peer 0 churns).
    pub bursts: u32,
    /// Prefixes withdrawn (then re-announced) per burst.
    pub burst_prefixes: u32,
    /// Mean quiet gap between burst onsets, microseconds (jittered
    /// ±50%; within a burst messages arrive microseconds apart).
    pub burst_gap_us: u64,
}

impl MrtExportConfig {
    /// The committed-fixture scale: small enough to live in git,
    /// structured enough to exercise every record kind.
    pub fn fixture() -> MrtExportConfig {
        MrtExportConfig {
            prefixes: 256,
            seed: 0x2015_0517, // the paper's SIGCOMM year/date
            peers: 2,
            epoch: 1_431_907_200, // 2015-05-18T00:00:00Z
            bursts: 24,
            burst_prefixes: 8,
            burst_gap_us: 400_000,
        }
    }
}

/// The recorded peer table: RIS-style documentation addresses, distinct
/// from every simulated node (consumers map recorded peers onto their
/// own routers and rewrite next-hops).
pub fn export_peers(cfg: &MrtExportConfig) -> Vec<PeerTableEntry> {
    (0..cfg.peers)
        .map(|i| PeerTableEntry {
            bgp_id: Ipv4Addr::new(198, 51, 100, i as u8 + 1),
            addr: Ipv4Addr::new(198, 51, 100, i as u8 + 1),
            asn: 64900 + i,
        })
        .collect()
}

/// Each peer's per-prefix attributes, in universe (= snapshot) order,
/// derived from the same run-structured generator the live providers
/// use.
fn per_peer_routes(
    cfg: &MrtExportConfig,
    universe: &[Ipv4Prefix],
    peers: &[PeerTableEntry],
) -> Vec<Vec<Arc<RouteAttrs>>> {
    peers
        .iter()
        .map(|p| {
            let feed = generate_feed_for(
                &FeedConfig::new(cfg.prefixes, cfg.seed, p.addr, p.asn),
                universe,
            );
            let mut attrs = Vec::with_capacity(universe.len());
            for u in &feed {
                let a = u.attrs.as_ref().expect("feeds only announce");
                attrs.extend(std::iter::repeat_n(a.clone(), u.nlri.len()));
            }
            assert_eq!(attrs.len(), universe.len(), "feed covers the universe");
            attrs
        })
        .collect()
}

/// Export the RIB snapshot: `PEER_INDEX_TABLE` + one `RIB_IPV4_UNICAST`
/// record per universe prefix carrying every peer's route.
pub fn rib_snapshot_mrt(cfg: &MrtExportConfig) -> Vec<u8> {
    let universe = prefix_universe(cfg.prefixes, cfg.seed);
    let peers = export_peers(cfg);
    let routes = per_peer_routes(cfg, &universe, &peers);
    let mut w = MrtWriter::new();
    w.peer_index_table(cfg.epoch, Ipv4Addr::new(192, 0, 2, 1), "sc-sim", &peers);
    for (seq, prefix) in universe.iter().enumerate() {
        let entries: Vec<RibEntry> = peers
            .iter()
            .enumerate()
            .map(|(pi, _)| RibEntry {
                peer_index: pi as u16,
                originated: cfg.epoch - 86_400, // table loaded a day ago
                attrs: routes[pi][seq].clone(),
            })
            .collect();
        w.rib_ipv4(cfg.epoch, seq as u32, *prefix, &entries);
    }
    w.into_bytes()
}

/// Export the bursty update trace: rotating slices of peer 0's table
/// are withdrawn (messages microseconds apart) and re-announced a few
/// hundred microseconds later, bursts separated by long jittered quiet
/// gaps. All timestamps are `BGP4MP_ET` (second + microsecond).
pub fn update_trace_mrt(cfg: &MrtExportConfig) -> Vec<u8> {
    let universe = prefix_universe(cfg.prefixes, cfg.seed);
    let peers = export_peers(cfg);
    // Only peer 0 churns, so only its routes are generated (each peer's
    // feed is an independent function of the seed).
    let routes = per_peer_routes(cfg, &universe, &peers[..1]);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x3927_7474); // "mrt"
    let mut w = MrtWriter::new();
    let slice = (cfg.burst_prefixes as usize).clamp(1, universe.len());
    let slices = (universe.len() / slice).max(1);
    let mut t_us: u64 = cfg.epoch as u64 * 1_000_000;
    let local_ip = Ipv4Addr::new(192, 0, 2, 1);
    let mut emit = |t_us: u64, update: UpdateMsg| {
        let peering = Bgp4mpMessage {
            peer_as: peers[0].asn,
            local_as: 64512,
            peer_ip: peers[0].addr,
            local_ip,
            msg: BgpMessage::Update(update),
        };
        MrtWriter::bgp4mp_message(
            &mut w,
            (t_us / 1_000_000) as u32,
            Some((t_us % 1_000_000) as u32),
            &peering,
        );
    };
    for b in 0..cfg.bursts {
        let s = b as usize % slices;
        let targets = &universe[s * slice..(s + 1) * slice];
        // Withdrawals: one message per few prefixes, µs apart.
        for chunk in targets.chunks(4) {
            emit(t_us, UpdateMsg::withdraw(chunk.to_vec()));
            t_us += rng.gen_range(2..60u64);
        }
        // Re-announcements a few hundred µs later, preserving the
        // recorded attribute runs (`targets[i]` is `universe[s*slice+i]`
        // by construction, so runs come straight off the route list).
        t_us += rng.gen_range(200..600u64);
        let mut i = 0;
        while i < targets.len() {
            let attrs = routes[0][s * slice + i].clone();
            let mut j = i + 1;
            while j < targets.len() && routes[0][s * slice + j] == attrs {
                j += 1;
            }
            emit(t_us, UpdateMsg::announce(attrs, targets[i..j].to_vec()));
            t_us += rng.gen_range(2..60u64);
            i = j;
        }
        // Quiet gap to the next burst onset (±50% jitter).
        t_us += cfg.burst_gap_us / 2 + rng.gen_range(0..cfg.burst_gap_us);
    }
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_mrt::{ReplaySchedule, RibSnapshot, TimeScale};
    use sc_net::SimDuration;

    #[test]
    fn exports_are_deterministic() {
        let cfg = MrtExportConfig::fixture();
        assert_eq!(rib_snapshot_mrt(&cfg), rib_snapshot_mrt(&cfg));
        assert_eq!(update_trace_mrt(&cfg), update_trace_mrt(&cfg));
        // A different seed produces a different archive.
        let other = MrtExportConfig {
            seed: cfg.seed + 1,
            ..cfg
        };
        assert_ne!(update_trace_mrt(&cfg), update_trace_mrt(&other));
    }

    #[test]
    fn snapshot_loads_back_to_the_universe() {
        let cfg = MrtExportConfig::fixture();
        let snap = RibSnapshot::load(&rib_snapshot_mrt(&cfg)).unwrap();
        assert_eq!(snap.peers.len(), 2);
        assert_eq!(snap.view, "sc-sim");
        let universe = prefix_universe(cfg.prefixes, cfg.seed);
        assert_eq!(snap.prefixes(), universe);
        for pi in 0..cfg.peers {
            let routes = snap.routes_for_peer(pi);
            assert_eq!(routes.len(), universe.len());
            assert!(routes
                .iter()
                .all(|(_, a)| a.next_hop == snap.peers[pi as usize].addr));
            assert!(routes
                .iter()
                .all(|(_, a)| a.as_path.first_as() == Some(64900 + pi)));
        }
    }

    #[test]
    fn trace_compiles_with_bursty_epochs() {
        let cfg = MrtExportConfig::fixture();
        let sched = ReplaySchedule::compile(&update_trace_mrt(&cfg), TimeScale::REAL).unwrap();
        assert!(!sched.events.is_empty());
        // Every burst withdraws and re-announces its slice.
        assert_eq!(
            sched.prefix_events(),
            2 * cfg.bursts as usize * cfg.burst_prefixes as usize
        );
        // Quiet-gap epoch detection finds one onset per burst: intra-
        // burst gaps are microseconds, inter-burst gaps ≥ 200 ms.
        let epochs = sched.epochs(SimDuration::from_millis(100));
        assert_eq!(epochs.len(), cfg.bursts as usize);
        assert_eq!(epochs[0], SimDuration::ZERO);
        // Warping compresses the whole trace proportionally.
        let fast =
            ReplaySchedule::compile(&update_trace_mrt(&cfg), "0.25".parse().unwrap()).unwrap();
        assert!(fast.end <= sched.end / 4 + SimDuration::from_nanos(1));
    }
}
