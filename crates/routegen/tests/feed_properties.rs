//! Contract tests for the synthetic feed generator: the scenario
//! engine and both provider routers rely on feeds being pure functions
//! of their seed, on the prefix universe staying clear of the lab's
//! infrastructure space, and on every UPDATE respecting the wire-size
//! caps.

use sc_bgp::BgpMessage;
use sc_net::Ipv4Prefix;
use sc_routegen::{generate_feed, generate_feed_for, prefix_universe, FeedConfig};
use std::net::Ipv4Addr;

const NH: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Same seed ⇒ the *entire* feed is identical: message boundaries,
/// attribute values, NLRI packing — two controller replicas (or a
/// provider and its model) must regenerate the same bytes.
#[test]
fn same_seed_same_feed() {
    let cfg = FeedConfig::new(4_000, 77, NH, 65002);
    let a = generate_feed(&cfg);
    let b = generate_feed(&cfg);
    assert_eq!(a.len(), b.len());
    for (ua, ub) in a.iter().zip(&b) {
        assert_eq!(ua.nlri, ub.nlri);
        assert_eq!(ua.withdrawn, ub.withdrawn);
        let (aa, ab) = (ua.attrs.as_ref().unwrap(), ub.attrs.as_ref().unwrap());
        assert_eq!(aa.as_path, ab.as_path);
        assert_eq!(aa.med, ab.med);
        assert_eq!(aa.communities, ab.communities);
        assert_eq!(
            BgpMessage::Update(ua.clone()).encode(),
            BgpMessage::Update(ub.clone()).encode(),
            "wire-identical"
        );
    }
    // A different seed produces a different feed.
    let c = generate_feed(&FeedConfig::new(4_000, 78, NH, 65002));
    let nlri = |f: &[sc_bgp::msg::UpdateMsg]| -> Vec<Ipv4Prefix> {
        f.iter().flat_map(|u| u.nlri.iter().copied()).collect()
    };
    assert_ne!(nlri(&a), nlri(&c));
}

/// The universe is distinct, sorted, and avoids every special-purpose
/// range the lab's infrastructure lives in — across seeds and sizes.
#[test]
fn universe_unique_and_clear_of_special_ranges() {
    for (count, seed) in [(1_000u32, 1u64), (10_000, 2), (30_000, 3)] {
        let u = prefix_universe(count, seed);
        assert_eq!(u.len(), count as usize);
        let mut dedup = u.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup, u, "sorted and distinct (count={count} seed={seed})");
        for p in &u {
            let o = p.network().octets();
            assert!(o[0] >= 1 && o[0] < 224, "{p} outside unicast");
            assert_ne!(o[0], 10, "{p} collides with the lab LAN / fabric");
            assert_ne!(o[0], 127, "{p} in loopback");
            assert!(!(o[0] == 192 && o[1] == 168), "{p} in 192.168/16");
            assert!(
                !(o[0] == 172 && (16..32).contains(&o[1])),
                "{p} in 172.16/12"
            );
        }
    }
}

/// NLRI split-size bounds: no UPDATE carries more prefixes than the
/// configured cap, and every encoded message fits BGP's 4096-byte
/// ceiling — even with a tiny cap forcing many splits.
#[test]
fn nlri_split_bounds_hold() {
    for max_nlri in [7usize, 50, 300] {
        let cfg = FeedConfig {
            max_nlri_per_update: max_nlri,
            ..FeedConfig::new(2_000, 5, NH, 65002)
        };
        let universe = prefix_universe(cfg.prefix_count, cfg.seed);
        let feed = generate_feed_for(&cfg, &universe);
        let mut covered = 0usize;
        for u in &feed {
            assert!(
                u.nlri.len() <= max_nlri,
                "update carries {} > cap {max_nlri}",
                u.nlri.len()
            );
            assert!(!u.nlri.is_empty(), "no empty announcements");
            let encoded = BgpMessage::Update(u.clone()).encode();
            assert!(encoded.len() <= 4096, "encoded {} bytes", encoded.len());
            covered += u.nlri.len();
        }
        assert_eq!(covered, universe.len(), "split covers the universe exactly");
    }
}
