//! ARP client: cache, request generation with rate limiting, and
//! pending-packet queueing.
//!
//! This is the mechanism the supercharger hijacks for provisioning: the
//! router receives routes whose next-hop is a *virtual* IP, asks "who
//! has 10.200.0.1?" on the wire, and the controller's ARP responder
//! answers with the backup-group's virtual MAC. From then on the
//! router's flat FIB tags all matching traffic with that VMAC.
//!
//! Behavior follows the guides' reference stack (smoltcp): at most one
//! request per second per address, a bounded queue of packets waiting on
//! resolution, and entry expiry.

use sc_net::{Frame, FxHashMap, MacAddr, SimDuration, SimTime};
use std::net::Ipv4Addr;

/// Maximum frames parked per unresolved next-hop.
const MAX_PENDING_PER_ADDR: usize = 8;
/// Re-request interval (smoltcp: "ARP requests are sent at a rate not
/// exceeding one per second").
const REQUEST_INTERVAL: SimDuration = SimDuration::from_secs(1);
/// Cache lifetime. Carrier-class routers default to hours (Cisco:
/// 4 h) — a short embedded-style timeout would inject periodic ARP
/// re-resolution blips into multi-minute convergence measurements.
const ENTRY_TTL: SimDuration = SimDuration::from_secs(4 * 3600);

#[derive(Debug)]
struct CacheEntry {
    mac: MacAddr,
    expires: SimTime,
    is_static: bool,
}

#[derive(Debug, Default)]
struct Pending {
    frames: Vec<Frame>,
    last_request: Option<SimTime>,
}

/// The ARP client state.
#[derive(Debug, Default)]
pub struct ArpClient {
    cache: FxHashMap<Ipv4Addr, CacheEntry>,
    pending: FxHashMap<Ipv4Addr, Pending>,
    /// Counters.
    pub requests_sent: u64,
    pub replies_learned: u64,
    pub frames_dropped: u64,
}

/// What the caller should do after asking to resolve an address.
#[derive(Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Use this MAC now.
    Ready(MacAddr),
    /// Frame parked; send an ARP request for the address.
    QueuedSendRequest(Ipv4Addr),
    /// Frame parked; a request was sent recently, wait.
    Queued,
    /// Queue full; frame dropped.
    Dropped,
}

impl ArpClient {
    pub fn new() -> ArpClient {
        ArpClient::default()
    }

    /// Install a permanent entry (infrastructure addresses whose MACs are
    /// configured statically in the lab, like real deployments do for
    /// router-to-router links).
    pub fn add_static(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.cache.insert(
            ip,
            CacheEntry {
                mac,
                expires: SimTime::MAX,
                is_static: true,
            },
        );
    }

    /// Current resolution, if fresh.
    pub fn lookup(&self, ip: Ipv4Addr, now: SimTime) -> Option<MacAddr> {
        self.lookup_with_expiry(ip, now).map(|(mac, _)| mac)
    }

    /// Like [`ArpClient::lookup`], also returning when the entry stops
    /// being valid (statics return [`SimTime::MAX`]). The router's flow
    /// cache stores this deadline so a memoized L2 rewrite can never
    /// outlive the ARP entry it was derived from.
    pub fn lookup_with_expiry(&self, ip: Ipv4Addr, now: SimTime) -> Option<(MacAddr, SimTime)> {
        self.cache
            .get(&ip)
            .filter(|e| e.expires > now)
            .map(|e| (e.mac, e.expires))
    }

    /// Resolve `ip` for `frame`. Either returns the MAC, or parks the
    /// frame and tells the caller whether to transmit an ARP request.
    pub fn resolve(&mut self, ip: Ipv4Addr, frame: Frame, now: SimTime) -> Resolution {
        if let Some(mac) = self.lookup(ip, now) {
            return Resolution::Ready(mac);
        }
        let pending = self.pending.entry(ip).or_default();
        if pending.frames.len() >= MAX_PENDING_PER_ADDR {
            self.frames_dropped += 1;
            return Resolution::Dropped;
        }
        pending.frames.push(frame);
        let due = match pending.last_request {
            None => true,
            Some(t) => now.saturating_duration_since(t) >= REQUEST_INTERVAL,
        };
        if due {
            pending.last_request = Some(now);
            self.requests_sent += 1;
            Resolution::QueuedSendRequest(ip)
        } else {
            Resolution::Queued
        }
    }

    /// Ask to (re-)request an address without a frame (e.g. prefetch of a
    /// next-hop learned from BGP). Returns true if a request should go
    /// out now (rate limit respected).
    pub fn prefetch(&mut self, ip: Ipv4Addr, now: SimTime) -> bool {
        if self.lookup(ip, now).is_some() {
            return false;
        }
        let pending = self.pending.entry(ip).or_default();
        let due = match pending.last_request {
            None => true,
            Some(t) => now.saturating_duration_since(t) >= REQUEST_INTERVAL,
        };
        if due {
            pending.last_request = Some(now);
            self.requests_sent += 1;
        }
        due
    }

    /// Learn a mapping (from an ARP reply — or gratuitously from a
    /// request's sender fields, as real stacks do). Returns any frames
    /// that were waiting for it.
    pub fn learn(&mut self, ip: Ipv4Addr, mac: MacAddr, now: SimTime) -> Vec<Frame> {
        match self.cache.get(&ip) {
            Some(e) if e.is_static => return Vec::new(), // statics never change
            _ => {}
        }
        self.cache.insert(
            ip,
            CacheEntry {
                mac,
                expires: now + ENTRY_TTL,
                is_static: false,
            },
        );
        self.replies_learned += 1;
        self.pending
            .remove(&ip)
            .map(|p| p.frames)
            .unwrap_or_default()
    }

    /// Addresses currently awaiting resolution whose request should be
    /// retried at `now` (call about once a second).
    pub fn retries_due(&mut self, now: SimTime) -> Vec<Ipv4Addr> {
        let mut due = Vec::new();
        for (ip, pending) in self.pending.iter_mut() {
            let expired = match pending.last_request {
                None => true,
                Some(t) => now.saturating_duration_since(t) >= REQUEST_INTERVAL,
            };
            if expired {
                pending.last_request = Some(now);
                due.push(*ip);
            }
        }
        due.sort(); // deterministic order
        self.requests_sent += due.len() as u64;
        due
    }

    /// Number of distinct unresolved addresses.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VNH: Ipv4Addr = Ipv4Addr::new(10, 200, 0, 1);
    const VMAC: MacAddr = MacAddr([0x02, 0x5c, 0, 0, 0, 0]);

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn static_entries_resolve_immediately_and_never_expire() {
        let mut arp = ArpClient::new();
        arp.add_static(VNH, VMAC);
        assert_eq!(arp.lookup(VNH, t(0)), Some(VMAC));
        assert_eq!(arp.lookup(VNH, SimTime::from_secs(1_000_000)), Some(VMAC));
        // learn() must not override a static entry.
        arp.learn(VNH, MacAddr::BROADCAST, t(1));
        assert_eq!(arp.lookup(VNH, t(2)), Some(VMAC));
    }

    #[test]
    fn first_resolve_queues_and_requests() {
        let mut arp = ArpClient::new();
        match arp.resolve(VNH, vec![1].into(), t(0)) {
            Resolution::QueuedSendRequest(ip) => assert_eq!(ip, VNH),
            other => panic!("expected request, got {other:?}"),
        }
        // Second frame within the rate-limit window: queued, no request.
        assert_eq!(arp.resolve(VNH, vec![2].into(), t(100)), Resolution::Queued);
        assert_eq!(arp.requests_sent, 1);
        assert_eq!(arp.pending_count(), 1);
    }

    #[test]
    fn reply_releases_queued_frames_in_order() {
        let mut arp = ArpClient::new();
        arp.resolve(VNH, vec![1].into(), t(0));
        arp.resolve(VNH, vec![2].into(), t(1));
        let released = arp.learn(VNH, VMAC, t(5));
        assert_eq!(released, vec![Frame::from(vec![1]), Frame::from(vec![2])]);
        assert_eq!(arp.lookup(VNH, t(6)), Some(VMAC));
        assert_eq!(arp.pending_count(), 0);
        // Subsequent resolutions hit the cache.
        assert_eq!(
            arp.resolve(VNH, vec![3].into(), t(7)),
            Resolution::Ready(VMAC)
        );
    }

    #[test]
    fn queue_bounded_drops_excess() {
        let mut arp = ArpClient::new();
        for i in 0..MAX_PENDING_PER_ADDR {
            let r = arp.resolve(VNH, vec![i as u8].into(), t(i as u64));
            assert_ne!(r, Resolution::Dropped);
        }
        assert_eq!(
            arp.resolve(VNH, vec![99].into(), t(50)),
            Resolution::Dropped
        );
        assert_eq!(arp.frames_dropped, 1);
    }

    #[test]
    fn rate_limit_one_request_per_second() {
        let mut arp = ArpClient::new();
        arp.resolve(VNH, vec![1].into(), t(0));
        assert_eq!(arp.resolve(VNH, vec![2].into(), t(999)), Resolution::Queued);
        match arp.resolve(VNH, vec![3].into(), t(1000)) {
            Resolution::QueuedSendRequest(_) => {}
            other => panic!("retry due after 1s, got {other:?}"),
        }
        assert_eq!(arp.requests_sent, 2);
    }

    #[test]
    fn entries_expire_after_ttl() {
        let mut arp = ArpClient::new();
        arp.learn(VNH, VMAC, t(0));
        assert_eq!(
            arp.lookup(VNH, SimTime::from_secs(4 * 3600 - 1)),
            Some(VMAC)
        );
        assert_eq!(arp.lookup(VNH, SimTime::from_secs(4 * 3600 + 1)), None);
    }

    #[test]
    fn retries_due_respects_interval_and_is_deterministic() {
        let mut arp = ArpClient::new();
        let a = Ipv4Addr::new(10, 200, 0, 2);
        let b = Ipv4Addr::new(10, 200, 0, 1);
        arp.resolve(a, vec![1].into(), t(0));
        arp.resolve(b, vec![2].into(), t(0));
        assert!(arp.retries_due(t(500)).is_empty());
        let due = arp.retries_due(SimTime::from_secs(2));
        assert_eq!(due, vec![b, a], "sorted for determinism");
    }

    #[test]
    fn prefetch_requests_without_frames() {
        let mut arp = ArpClient::new();
        assert!(arp.prefetch(VNH, t(0)));
        assert!(!arp.prefetch(VNH, t(10)), "rate limited");
        arp.learn(VNH, VMAC, t(20));
        assert!(!arp.prefetch(VNH, t(30)), "already resolved");
    }
}
