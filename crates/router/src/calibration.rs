//! Timing calibration for the modeled hardware.
//!
//! Every constant is traced to a number the paper reports; the simulator
//! treats these as ground truth for the device models. See `DESIGN.md`
//! §7 for the derivations.

use sc_net::SimDuration;

/// Calibrated device timing.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// Cost of updating one FIB entry.
    ///
    /// Fig. 5 slope: the stock router's worst case grows from ~0.9 s at
    /// 1k prefixes to 140.9 s at 500k ⇒ (140.9 − 0.375)/500 000 ≈ 281 µs
    /// per entry.
    pub fib_entry_update: SimDuration,

    /// Relative jitter applied per entry (±, in percent). The paper's
    /// box plots show modest spread around the linear trend.
    pub fib_entry_jitter_pct: u32,

    /// Control-plane latency between "peer declared down" and the first
    /// FIB entry update starting (BGP purge, best-path recomputation,
    /// FIB programming setup).
    ///
    /// §4: "in the best case, it took 375 ms for the standalone R1 to
    /// update the first FIB entry" — minus ≤90 ms of BFD detection
    /// leaves ≈285 ms of control-plane work.
    pub peer_down_processing: SimDuration,

    /// Per-UPDATE control-plane processing when routes churn without a
    /// session loss (used during table load).
    pub update_processing: SimDuration,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            fib_entry_update: SimDuration::from_micros(281),
            fib_entry_jitter_pct: 10,
            peer_down_processing: SimDuration::from_millis(285),
            update_processing: SimDuration::from_micros(50),
        }
    }
}

impl Calibration {
    /// The paper's Nexus 7k calibration (same as `Default`).
    pub fn nexus7k() -> Calibration {
        Calibration::default()
    }

    /// An idealized instant-FIB router (for ablations: how fast would the
    /// stock router need to be for supercharging to stop paying off?).
    pub fn instant() -> Calibration {
        Calibration {
            fib_entry_update: SimDuration::ZERO,
            fib_entry_jitter_pct: 0,
            peer_down_processing: SimDuration::ZERO,
            update_processing: SimDuration::ZERO,
        }
    }

    /// Expected stock convergence time for the *last* of `prefixes`
    /// entries (excluding failure detection), per the linear model.
    pub fn expected_full_walk(&self, prefixes: u64) -> SimDuration {
        self.peer_down_processing + self.fib_entry_update * prefixes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_fig5_endpoints() {
        let c = Calibration::nexus7k();
        // 500k prefixes: ≈140.5s + 285ms ≈ 140.8s (paper: 140.9s max,
        // including ≤90ms detection).
        let t = c.expected_full_walk(500_000);
        assert!(t >= SimDuration::from_secs(140) && t <= SimDuration::from_secs(142));
        // 1k prefixes: well under a second before detection.
        let t = c.expected_full_walk(1_000);
        assert!(t < SimDuration::from_millis(600));
    }

    #[test]
    fn best_case_matches_375ms_budget() {
        let c = Calibration::nexus7k();
        // detection (≤90ms) + processing + one entry ≈ 375ms.
        let first_entry = c.peer_down_processing + c.fib_entry_update;
        let with_detection = SimDuration::from_millis(90) + first_entry;
        assert!(
            with_detection >= SimDuration::from_millis(350)
                && with_detection <= SimDuration::from_millis(400),
            "got {with_detection}"
        );
    }
}
