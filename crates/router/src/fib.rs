//! The flat FIB and the entry-by-entry FIB walker.
//!
//! In the paper's stock router every FIB entry holds its own L2 next-hop
//! information (Fig. 1), so a peer failure forces the router to rewrite
//! *each* affected entry; the rewrite is serialized in hardware. The
//! walker models exactly that: a FIFO of pending operations drained at
//! the calibrated per-entry cost, with the data plane reading only the
//! already-updated state. What the traffic sink then measures per flow
//! is the paper's convergence distribution.

use crate::calibration::Calibration;
use sc_net::{Ipv4Prefix, PrefixTrie, SimDuration, SimTime};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// One step of the splitmix64 generator (the walker's private jitter
/// stream — counted per walker, so the draw sequence is a pure function
/// of the router's seed and its own walk history, independent of every
/// other node and of the executor).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One installed FIB entry: where traffic for a prefix goes *right now*.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FibEntry {
    /// The IP next-hop (possibly a virtual next-hop in supercharged
    /// mode); resolved to L2 via ARP at forwarding time.
    pub next_hop: Ipv4Addr,
}

/// A pending FIB operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FibOp {
    /// Install or overwrite the entry for `prefix`.
    Set {
        prefix: Ipv4Prefix,
        next_hop: Ipv4Addr,
    },
    /// Remove the entry (no route left).
    Remove { prefix: Ipv4Prefix },
}

impl FibOp {
    pub fn prefix(&self) -> Ipv4Prefix {
        match self {
            FibOp::Set { prefix, .. } | FibOp::Remove { prefix } => *prefix,
        }
    }
}

/// The installed table (what the data plane consults).
pub type Fib = PrefixTrie<FibEntry>;

/// The serialized hardware-update engine.
#[derive(Debug)]
pub struct FibWalker {
    cal: Calibration,
    queue: VecDeque<FibOp>,
    /// When the hardware becomes free for the next entry.
    busy_until: SimTime,
    /// Stats.
    pub ops_applied: u64,
    pub bursts: u64,
    /// Completion time of the most recently applied op (for tests).
    pub last_apply_at: Option<SimTime>,
    /// Jitter stream state (see [`splitmix64`]).
    jitter_state: u64,
}

impl FibWalker {
    /// `seed` roots the per-entry jitter stream; routers pass their
    /// router-id so each walker jitters independently but reproducibly.
    pub fn new(cal: Calibration, seed: u64) -> FibWalker {
        let mut jitter_state = seed ^ 0x6A09_E667_F3BC_C909;
        splitmix64(&mut jitter_state);
        FibWalker {
            cal,
            queue: VecDeque::new(),
            busy_until: SimTime::ZERO,
            ops_applied: 0,
            bursts: 0,
            last_apply_at: None,
            jitter_state,
        }
    }

    /// Number of operations still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued (the FIB reflects the RIB).
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }

    /// Queue a burst of operations produced by one control-plane event.
    /// `session_loss` bursts pay the (large) peer-down processing delay
    /// before the walk starts; ordinary update churn pays the small
    /// per-update cost.
    ///
    /// Returns the time the *first* queued op will complete, if any were
    /// queued — the caller arms its timer from [`FibWalker::next_apply_at`].
    pub fn enqueue_burst(
        &mut self,
        now: SimTime,
        ops: impl IntoIterator<Item = FibOp>,
        session_loss: bool,
    ) {
        let delay = if session_loss {
            self.cal.peer_down_processing
        } else {
            self.cal.update_processing
        };
        let start = self.busy_until.max(now) + delay;
        let was_empty = self.queue.is_empty();
        let mut queued_any = false;
        for op in ops {
            self.queue.push_back(op);
            queued_any = true;
        }
        if queued_any {
            self.bursts += 1;
            if was_empty {
                self.busy_until = start;
            } else {
                // Already walking: the new ops join the tail; the delay
                // models CPU work that overlaps the walk, so no extra
                // stall is added.
                self.busy_until = self.busy_until.max(start);
            }
        }
    }

    /// When the next op completes (the owner arms a timer at this time),
    /// or `None` when quiescent. Consumes a jitter draw for non-zero
    /// entry costs (`&mut self` for exactly that reason).
    pub fn next_apply_at(&mut self) -> Option<SimTime> {
        if self.queue.is_empty() {
            return None;
        }
        let cost = self.jittered_entry_cost();
        Some(self.busy_until + cost)
    }

    /// Apply exactly one pending op to `fib` at time `now` (the owner's
    /// timer fired). Returns the op applied.
    pub fn apply_one(&mut self, fib: &mut Fib, now: SimTime) -> Option<FibOp> {
        let op = self.queue.pop_front()?;
        match op {
            FibOp::Set { prefix, next_hop } => {
                fib.insert(prefix, FibEntry { next_hop });
            }
            FibOp::Remove { prefix } => {
                fib.remove(prefix);
            }
        }
        self.ops_applied += 1;
        self.busy_until = now;
        self.last_apply_at = Some(now);
        Some(op)
    }

    /// Apply the contiguous run of ops due at `now` in one walk tick,
    /// appending each applied op to `applied` (cleared first).
    ///
    /// With a non-zero per-entry cost this is exactly
    /// [`FibWalker::apply_one`] — the next op completes strictly later,
    /// so the run has length 1 and the owner re-arms its timer as
    /// before. With a zero-cost calibration (instant hardware) every
    /// queued op completes at the same instant; draining the whole run
    /// here collapses what used to be one kernel timer event *per
    /// entry* into one event per burst, without moving any op's
    /// completion time. Zero-cost runs consume no jitter draw (jitter
    /// is only drawn for non-zero base costs), so the walker's stream
    /// position is untouched either way.
    pub fn apply_batch(&mut self, fib: &mut Fib, now: SimTime, applied: &mut Vec<FibOp>) {
        applied.clear();
        let Some(op) = self.apply_one(fib, now) else {
            return;
        };
        applied.push(op);
        if self.cal.fib_entry_update.is_zero() {
            while let Some(op) = self.apply_one(fib, now) {
                applied.push(op);
            }
        }
    }

    fn jittered_entry_cost(&mut self) -> SimDuration {
        let base = self.cal.fib_entry_update.as_nanos();
        if base == 0 {
            return SimDuration::ZERO;
        }
        let pct = self.cal.fib_entry_jitter_pct as u64;
        if pct == 0 {
            return self.cal.fib_entry_update;
        }
        let span = base * pct / 100;
        let lo = base - span;
        let hi = base + span;
        let x = splitmix64(&mut self.jitter_state);
        SimDuration::from_nanos(lo + x % (hi - lo + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn nh(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, n, 1)
    }

    /// Drive the walker to quiescence, returning (prefix, completion
    /// time) per applied op.
    fn drain(walker: &mut FibWalker, fib: &mut Fib) -> Vec<(Ipv4Prefix, SimTime)> {
        let mut out = Vec::new();
        while let Some(at) = walker.next_apply_at() {
            let op = walker.apply_one(fib, at).unwrap();
            out.push((op.prefix(), at));
        }
        out
    }

    #[test]
    fn ops_apply_in_order_with_per_entry_cost() {
        let cal = Calibration {
            fib_entry_jitter_pct: 0,
            ..Calibration::nexus7k()
        };
        let mut w = FibWalker::new(cal, 7);
        let mut fib = Fib::new();
        let ops = vec![
            FibOp::Set {
                prefix: p("1.0.0.0/24"),
                next_hop: nh(2),
            },
            FibOp::Set {
                prefix: p("2.0.0.0/24"),
                next_hop: nh(2),
            },
            FibOp::Set {
                prefix: p("3.0.0.0/24"),
                next_hop: nh(2),
            },
        ];
        w.enqueue_burst(SimTime::from_secs(1), ops, true);
        let log = drain(&mut w, &mut fib);
        assert_eq!(log.len(), 3);
        // First completes after peer-down processing + one entry.
        let first_expected =
            SimTime::from_secs(1) + cal.peer_down_processing + cal.fib_entry_update;
        assert_eq!(log[0].1, first_expected);
        // Subsequent entries are spaced exactly one entry cost apart.
        assert_eq!(log[1].1 - log[0].1, cal.fib_entry_update);
        assert_eq!(log[2].1 - log[1].1, cal.fib_entry_update);
        assert_eq!(fib.len(), 3);
        assert!(w.is_quiescent());
    }

    #[test]
    fn linear_walk_matches_fig5_model() {
        // 10k entries must take ≈ 285ms + 10k × 281µs ≈ 3.1s.
        let mut w = FibWalker::new(Calibration::nexus7k(), 7);
        let mut fib = Fib::new();
        let ops: Vec<FibOp> = (0..10_000u32)
            .map(|i| FibOp::Set {
                prefix: Ipv4Prefix::new(Ipv4Addr::from(0x0a00_0000 + (i << 8)), 24),
                next_hop: nh(3),
            })
            .collect();
        w.enqueue_burst(SimTime::ZERO, ops, true);
        let log = drain(&mut w, &mut fib);
        let total = log.last().unwrap().1;
        let expect = Calibration::nexus7k().expected_full_walk(10_000);
        let ratio = total.as_nanos() as f64 / expect.as_nanos() as f64;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "total {total} vs expected {expect}"
        );
    }

    #[test]
    fn remove_ops_delete_entries() {
        let mut w = FibWalker::new(Calibration::instant(), 7);
        let mut fib = Fib::new();
        w.enqueue_burst(
            SimTime::ZERO,
            vec![FibOp::Set {
                prefix: p("1.0.0.0/24"),
                next_hop: nh(2),
            }],
            false,
        );
        drain(&mut w, &mut fib);
        assert_eq!(fib.len(), 1);
        w.enqueue_burst(
            SimTime::from_secs(1),
            vec![FibOp::Remove {
                prefix: p("1.0.0.0/24"),
            }],
            false,
        );
        drain(&mut w, &mut fib);
        assert!(fib.is_empty());
    }

    #[test]
    fn burst_while_walking_joins_tail() {
        let cal = Calibration {
            fib_entry_jitter_pct: 0,
            ..Calibration::nexus7k()
        };
        let mut w = FibWalker::new(cal, 7);
        let mut fib = Fib::new();
        w.enqueue_burst(
            SimTime::ZERO,
            vec![
                FibOp::Set {
                    prefix: p("1.0.0.0/24"),
                    next_hop: nh(2),
                },
                FibOp::Set {
                    prefix: p("2.0.0.0/24"),
                    next_hop: nh(2),
                },
            ],
            true,
        );
        // Apply the first, then a second burst lands mid-walk.
        let t1 = w.next_apply_at().unwrap();
        w.apply_one(&mut fib, t1);
        w.enqueue_burst(
            t1,
            vec![FibOp::Set {
                prefix: p("3.0.0.0/24"),
                next_hop: nh(3),
            }],
            false,
        );
        let log = drain(&mut w, &mut fib);
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].0, p("2.0.0.0/24"), "FIFO preserved");
        assert_eq!(log[1].0, p("3.0.0.0/24"));
        assert_eq!(fib.len(), 3);
    }

    #[test]
    fn jitter_bounds_respected() {
        let cal = Calibration::nexus7k(); // 10% jitter
        let mut w = FibWalker::new(cal, 7);
        for _ in 0..1000 {
            let c = w.jittered_entry_cost();
            let base = cal.fib_entry_update.as_nanos();
            assert!(c.as_nanos() >= base * 90 / 100);
            assert!(c.as_nanos() <= base * 110 / 100);
        }
    }

    #[test]
    fn instant_calibration_applies_immediately() {
        let mut w = FibWalker::new(Calibration::instant(), 7);
        let _fib = Fib::new();
        w.enqueue_burst(
            SimTime::from_millis(5),
            vec![FibOp::Set {
                prefix: p("1.0.0.0/24"),
                next_hop: nh(2),
            }],
            true,
        );
        let at = w.next_apply_at().unwrap();
        assert_eq!(at, SimTime::from_millis(5));
    }
}
