//! The data-plane forwarding flow cache: dst-IP → fully resolved
//! forwarding decision.
//!
//! Under probe load every packet of a flow repeats the same work —
//! longest-prefix match over a full-table FIB, an interface scan for
//! the next-hop's subnet, an ARP cache lookup. Real line cards memoize
//! exactly this (Cisco's flow/route caches, Linux's fib nexthop cache);
//! [`FlowCache`] is that memo. A hit must be *bit-identical* to the
//! miss path, so entries are invalidated precisely when the inputs
//! they were derived from change:
//!
//! * **FIB**: every [`crate::fib::FibWalker::apply_one`] invalidates
//!   the destinations covered by the applied prefix (a more-specific
//!   insert changes the best match for exactly those, a remove exposes
//!   a covering route for exactly those);
//! * **ARP**: learning or re-learning a mapping invalidates the
//!   destinations resolved through that next-hop; entry expiry is
//!   enforced per hit via the stored ARP deadline.

use sc_net::{FxHashMap, Ipv4Prefix, MacAddr, SimTime};
use std::net::Ipv4Addr;

/// One memoized forwarding decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowCacheEntry {
    /// The resolved IP next-hop (for ARP-change invalidation).
    pub next_hop: Ipv4Addr,
    /// Index into the router's interface table.
    pub iface: usize,
    /// The L2 destination (the next-hop's MAC at insert time).
    pub dst_mac: MacAddr,
    /// The backing ARP entry's expiry; a hit past this is a miss.
    pub expires: SimTime,
}

/// The cache plus hit/invalidation counters.
#[derive(Debug, Default)]
pub struct FlowCache {
    map: FxHashMap<Ipv4Addr, FlowCacheEntry>,
    pub hits: u64,
    pub misses: u64,
    pub invalidated: u64,
}

impl FlowCache {
    pub fn new() -> FlowCache {
        FlowCache::default()
    }

    /// The memoized decision for `dst`, if still valid at `now`.
    pub fn lookup(&mut self, dst: Ipv4Addr, now: SimTime) -> Option<FlowCacheEntry> {
        match self.map.get(&dst) {
            Some(e) if e.expires > now => {
                self.hits += 1;
                Some(*e)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoize the decision the slow path just computed for `dst`.
    pub fn insert(&mut self, dst: Ipv4Addr, entry: FlowCacheEntry) {
        self.map.insert(dst, entry);
    }

    /// A FIB entry for `prefix` changed: drop every destination it
    /// covers (their best match may have changed).
    pub fn invalidate_prefix(&mut self, prefix: Ipv4Prefix) {
        let before = self.map.len();
        self.map.retain(|dst, _| !prefix.contains(*dst));
        self.invalidated += (before - self.map.len()) as u64;
    }

    /// The ARP mapping for `next_hop` changed: drop every destination
    /// resolved through it.
    pub fn invalidate_next_hop(&mut self, next_hop: Ipv4Addr) {
        let before = self.map.len();
        self.map.retain(|_, e| e.next_hop != next_hop);
        self.invalidated += (before - self.map.len()) as u64;
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 9]);

    fn entry(nh: Ipv4Addr) -> FlowCacheEntry {
        FlowCacheEntry {
            next_hop: nh,
            iface: 1,
            dst_mac: MAC,
            expires: SimTime::from_secs(100),
        }
    }

    #[test]
    fn hit_miss_and_expiry() {
        let mut c = FlowCache::new();
        let dst = Ipv4Addr::new(1, 2, 3, 4);
        assert_eq!(c.lookup(dst, SimTime::ZERO), None);
        c.insert(dst, entry(Ipv4Addr::new(10, 1, 0, 100)));
        assert!(c.lookup(dst, SimTime::from_secs(1)).is_some());
        assert_eq!(
            c.lookup(dst, SimTime::from_secs(100)),
            None,
            "expired at the ARP deadline"
        );
        assert_eq!((c.hits, c.misses), (1, 2));
    }

    #[test]
    fn prefix_invalidation_is_exact() {
        let mut c = FlowCache::new();
        let inside = Ipv4Addr::new(1, 2, 3, 4);
        let outside = Ipv4Addr::new(9, 9, 9, 9);
        c.insert(inside, entry(Ipv4Addr::new(10, 1, 0, 100)));
        c.insert(outside, entry(Ipv4Addr::new(10, 1, 0, 100)));
        c.invalidate_prefix("1.2.3.0/24".parse().unwrap());
        assert_eq!(c.lookup(inside, SimTime::ZERO), None);
        assert!(c.lookup(outside, SimTime::ZERO).is_some());
        assert_eq!(c.invalidated, 1);
    }

    #[test]
    fn next_hop_invalidation_is_exact() {
        let mut c = FlowCache::new();
        let a = Ipv4Addr::new(1, 0, 0, 1);
        let b = Ipv4Addr::new(2, 0, 0, 1);
        let nh_a = Ipv4Addr::new(10, 1, 0, 100);
        let nh_b = Ipv4Addr::new(10, 2, 0, 100);
        c.insert(a, entry(nh_a));
        c.insert(b, entry(nh_b));
        c.invalidate_next_hop(nh_a);
        assert_eq!(c.lookup(a, SimTime::ZERO), None);
        assert!(c.lookup(b, SimTime::ZERO).is_some());
    }
}
