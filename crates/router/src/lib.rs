//! The legacy IP router model (Cisco Nexus 7k class, flat FIB).
//!
//! This crate is the *victim* of the paper: a BGP router whose
//! convergence after peer failure is dominated by updating its
//! hardware FIB one entry at a time. It provides:
//!
//! * [`calibration`] — the timing constants, each traced to a number the
//!   paper reports (Fig. 5 slope, the 375 ms best case, BFD settings);
//! * [`fib`] — the flat FIB and the **FIB walker**: a queue of pending
//!   entry updates drained at the calibrated per-entry cost, so the data
//!   plane converges exactly as slowly as the modeled hardware;
//! * [`arp`] — an ARP client with cache, request rate-limiting and
//!   pending-packet queueing (the router resolves the supercharger's
//!   virtual next-hops through this path);
//! * [`node`] — the [`node::LegacyRouter`] simulation node tying it all
//!   together: BGP sessions over reliable channels, optional BFD,
//!   RIB→FIB coupling, static routes, and data-plane forwarding with
//!   TTL/checksum handling.
//!
//! The same type models R1 (the supercharged router), and R2/R3 (the
//! provider routers originating full feeds) — they differ only in
//! configuration, exactly like the paper's lab.

pub mod arp;
pub mod calibration;
pub mod fib;
pub mod flowcache;
pub mod node;

pub use arp::ArpClient;
pub use calibration::Calibration;
pub use fib::{Fib, FibEntry, FibOp, FibWalker};
pub use flowcache::{FlowCache, FlowCacheEntry};
pub use node::{Interface, LegacyRouter, PeerConfig, RouterConfig, StaticRoute};
